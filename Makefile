GO ?= go

# Every demo under examples/ must run to completion; each is bounded by
# this timeout so a hung example fails CI instead of wedging it.
EXAMPLE_TIMEOUT ?= 120s

.PHONY: build test vet dope-vet examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Standard vet plus the repo's own protocol analyzers (cmd/dope-vet).
vet: dope-vet
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/dope-vet ./...

dope-vet:
	$(GO) build -o bin/dope-vet ./cmd/dope-vet

examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout $(EXAMPLE_TIMEOUT) $(GO) run ./$$d; \
	done

ci: build vet test examples

GO ?= go

.PHONY: build test vet dope-vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Standard vet plus the repo's own protocol analyzers (cmd/dope-vet).
vet: dope-vet
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/dope-vet ./...

dope-vet:
	$(GO) build -o bin/dope-vet ./cmd/dope-vet

ci: build vet test

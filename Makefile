GO ?= go

# Every demo under examples/ must run to completion; each is bounded by
# this timeout so a hung example fails CI instead of wedging it.
EXAMPLE_TIMEOUT ?= 120s

.PHONY: build test vet dope-vet examples stalls bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Standard vet plus the repo's own protocol analyzers (cmd/dope-vet),
# run both through the go vet unitchecker driver (which exercises the
# cross-package vetx fact flow) and as the standalone binary.
vet: dope-vet
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/bin/dope-vet ./...
	./bin/dope-vet ./...

dope-vet:
	$(GO) build -o bin/dope-vet ./cmd/dope-vet

examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout $(EXAMPLE_TIMEOUT) $(GO) run ./$$d; \
	done

# Stall-tolerance and overload-protection experiment (EXPERIMENTS.md).
stalls:
	$(GO) run ./cmd/dope-bench -exp stalls

# Begin/End hot-path microbenchmarks with the allocation gate CI runs on
# every push. Add OUT=BENCH_beginend.json to append a labeled entry to
# the checked-in trajectory file when recording a milestone.
BENCH_LABEL ?= dev
OUT ?=
bench:
	$(GO) run ./cmd/dope-bench -bench beginend -label $(BENCH_LABEL) \
		$(if $(OUT),-out $(OUT),) -gate

ci: build vet test examples

// Benchmarks that regenerate the paper's evaluation artifacts, one target
// per table/figure (see DESIGN.md's per-experiment index), plus ablations
// of the design choices the mechanisms encode. Custom metrics carry the
// figures' units:
//
//	go test -bench=. -benchmem
//
// The quantitative sweeps run on the deterministic discrete-event
// simulator, so ns/op measures harness cost while the reported metrics
// (ms-response, queries/s, watts) reproduce the paper's series.
package dope_test

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"dope"
	"dope/internal/apps"
	"dope/internal/harness"
	"dope/internal/mechanism"
	"dope/internal/sim"
)

// benchScale keeps each harness invocation fast under testing.B iteration.
const benchScale = 0.25

func runExperiment(b *testing.B, id string) *harness.Table {
	b.Helper()
	var tab *harness.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = harness.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// BenchmarkFig2a regenerates Figure 2(a): execution time vs load per inner DoP.
func BenchmarkFig2a(b *testing.B) {
	tab := runExperiment(b, "fig2a")
	b.ReportMetric(float64(len(tab.Rows)), "loads")
}

// BenchmarkFig2b regenerates Figure 2(b): throughput vs load per inner DoP.
func BenchmarkFig2b(b *testing.B) {
	tab := runExperiment(b, "fig2b")
	b.ReportMetric(float64(len(tab.Rows)), "loads")
}

// BenchmarkFig2c regenerates Figure 2(c): response time, statics vs oracle.
func BenchmarkFig2c(b *testing.B) {
	runExperiment(b, "fig2c")
	// Report the oracle's advantage at the crossover load (0.5).
	model := sim.Transcode()
	seq := sim.RunServer(model, sim.ServerConfig{Tasks: 200, LoadFactor: 0.5, Seed: 11, OuterK: 24, InnerM: 1})
	ora := sim.RunServer(model, sim.ServerConfig{Tasks: 200, LoadFactor: 0.5, Seed: 11, Oracle: true})
	b.ReportMetric(seq.MeanResponse*1000, "static-ms")
	b.ReportMetric(ora.MeanResponse*1000, "oracle-ms")
}

// BenchmarkFig11 regenerates each panel of Figure 11.
func BenchmarkFig11(b *testing.B) {
	for _, id := range []string{"fig11a", "fig11b", "fig11c", "fig11d"} {
		b.Run(id, func(b *testing.B) {
			runExperiment(b, id)
		})
	}
}

// BenchmarkFig12 regenerates Figure 12: ferret response time, statics vs DoPE.
func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12")
}

// BenchmarkFig13 regenerates Figure 13: the TBF search-then-stabilize trace.
func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13")
	res := sim.RunPipeline(sim.Ferret(), sim.PipelineConfig{
		Tasks: 1500, Mechanism: &mechanism.TBF{Threads: 24},
		Extents: []int{1, 1, 1, 1, 1, 1}, ControlEvery: 0.02,
	})
	b.ReportMetric(res.SteadyThroughput, "queries/s")
}

// BenchmarkFig14 regenerates Figure 14: the TPC power-throughput trace.
func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14")
	budget := 0.9 * 800.0
	res := sim.RunPipeline(sim.Ferret(), sim.PipelineConfig{
		Tasks: 1500, Mechanism: &mechanism.TPC{Threads: 24, Budget: budget},
		Extents: []int{1, 1, 1, 1, 1, 1}, ControlEvery: 0.02, PowerBudget: budget,
	})
	b.ReportMetric(res.MeanPower, "watts")
	b.ReportMetric(res.SteadyThroughput, "queries/s")
}

// BenchmarkTable5 regenerates the Figure 15 table.
func BenchmarkTable5(b *testing.B) {
	tab := runExperiment(b, "table5")
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

// BenchmarkTable3 regenerates the mechanism LoC table.
func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "table3")
}

// BenchmarkTable4 regenerates the application port table.
func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "table4")
}

// BenchmarkReconfigDip measures the live reconfiguration cost: forced extent
// toggles on a running ferret batch under in-place worker-group resizing vs
// the legacy whole-nest respawn, plus the simulator's view of the same A/B.
func BenchmarkReconfigDip(b *testing.B) {
	runExperiment(b, "reconfig-dip")
	run := func(respawn bool) sim.PipelineResult {
		return sim.RunPipeline(sim.Ferret(), sim.PipelineConfig{
			Tasks: 1500, ControlEvery: 0.02,
			Mechanism:  &mechanism.TBF{Threads: 24, DisableFusion: true},
			Extents:    []int{1, 1, 1, 1, 1, 1},
			ResizeCost: 0.002, DrainCost: 0.05, RespawnOnResize: respawn,
		})
	}
	// Whole-run throughput, not steady-state: the drain penalty lands in the
	// mechanism's search transient.
	b.ReportMetric(run(false).Throughput, "inplace-q/s")
	b.ReportMetric(run(true).Throughput, "respawn-q/s")
}

// BenchmarkFaults measures throughput under 1% injected panics for each
// failure policy: fail-stop terminates, fail-restart and fail-degrade
// absorb the faults and stay within 2x of the fault-free baseline.
func BenchmarkFaults(b *testing.B) {
	runExperiment(b, "faults")
}

// BenchmarkStalls measures the stall-tolerance and overload-protection
// table: fail-stop surfaces an injected stall (with a goroutine dump)
// within 2x the stage deadline, fail-restart/fail-degrade finish the batch
// within 2x of the stall-free baseline, and load shedding keeps p99 sojourn
// bounded at 2x overload while blocking backpressure does not.
func BenchmarkStalls(b *testing.B) {
	tab := runExperiment(b, "stalls")
	byArm := make(map[string][]string, len(tab.Rows))
	for _, row := range tab.Rows {
		byArm[row[0]] = row
	}
	p99 := func(arm string) float64 {
		row := byArm[arm]
		if row == nil {
			b.Fatalf("arm %q missing", arm)
		}
		v, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			b.Fatalf("arm %q p99 %q: %v", arm, row[6], err)
		}
		return v
	}
	b.ReportMetric(p99("block"), "block-p99-ms")
	b.ReportMetric(p99("shed-newest"), "shed-p99-ms")
}

// --- ablations of design choices (DESIGN.md) --------------------------------

// BenchmarkAblationHysteresis sweeps WQT-H's hysteresis lengths: too little
// hysteresis toggles configurations constantly; too much reacts late.
func BenchmarkAblationHysteresis(b *testing.B) {
	model := sim.Transcode()
	for _, h := range []int{1, 3, 10, 40} {
		b.Run(byInt("n", h), func(b *testing.B) {
			var resp float64
			var reconfs int
			for i := 0; i < b.N; i++ {
				m := &mechanism.WQTH{Threads: 24, Mmax: 8, Threshold: 6, NOn: h, NOff: h}
				res := sim.RunServer(model, sim.ServerConfig{
					Tasks: 300, LoadFactor: 0.7, Seed: 3, Mechanism: m,
					ControlEvery: 0.01, OuterK: 24, InnerM: 1,
				})
				resp = res.MeanResponse
				reconfs = res.Reconfigurations
			}
			b.ReportMetric(resp*1000, "ms-response")
			b.ReportMetric(float64(reconfs), "reconfigs")
		})
	}
}

// BenchmarkAblationSlope sweeps WQ-Linear's Qmax (Equation 3's k): small
// Qmax degrades DoP aggressively, large Qmax tolerates deep queues.
func BenchmarkAblationSlope(b *testing.B) {
	model := sim.Transcode()
	for _, qmax := range []float64{2, 6, 14, 40} {
		b.Run(byInt("qmax", int(qmax)), func(b *testing.B) {
			var resp float64
			for i := 0; i < b.N; i++ {
				m := &mechanism.WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: qmax}
				res := sim.RunServer(model, sim.ServerConfig{
					Tasks: 300, LoadFactor: 0.8, Seed: 3, Mechanism: m,
					ControlEvery: 0.01, OuterK: 3, InnerM: 8,
				})
				resp = res.MeanResponse
			}
			b.ReportMetric(resp*1000, "ms-response")
		})
	}
}

// BenchmarkAblationFusionThreshold sweeps TBF's imbalance threshold: at 0 it
// always fuses, at 1 it never does (becoming TB).
func BenchmarkAblationFusionThreshold(b *testing.B) {
	model := sim.Ferret()
	for _, th := range []float64{0.01, 0.5, 0.99} {
		b.Run(byInt("thx100", int(th*100)), func(b *testing.B) {
			var tput float64
			var alt int
			for i := 0; i < b.N; i++ {
				res := sim.RunPipeline(model, sim.PipelineConfig{
					Tasks: 1500, ControlEvery: 0.02,
					Mechanism: &mechanism.TBF{Threads: 24, FusionThreshold: th},
					Extents:   []int{1, 1, 1, 1, 1, 1},
				})
				tput = res.SteadyThroughput
				alt = res.FinalAlt
			}
			b.ReportMetric(tput, "queries/s")
			b.ReportMetric(float64(alt), "final-alt")
		})
	}
}

// BenchmarkContextTokens compares the budgeted context pool against
// oversubscribed pools (the Pthreads-OS row) in the simulator.
func BenchmarkContextTokens(b *testing.B) {
	model := sim.Dedup()
	for _, over := range []bool{false, true} {
		name := "budgeted"
		if over {
			name = "oversubscribed"
		}
		b.Run(name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				res := sim.RunPipeline(model, sim.PipelineConfig{
					Tasks: 1500, Extents: []int{1, 10, 11, 1}, Oversubscribed: over,
				})
				tput = res.SteadyThroughput
			}
			b.ReportMetric(tput, "items/s")
		})
	}
}

// BenchmarkMonitorOverhead checks the paper's §8.2 claim that run-time
// monitoring costs under 1% even when every task instance is monitored: it
// measures the kernel alone and the kernel inside a monitored Begin/End
// section on the real runtime, and reports the overhead percentage.
func BenchmarkMonitorOverhead(b *testing.B) {
	apps.SetNativeWork(true)
	defer apps.SetNativeWork(false)
	const units = 500_000 // ≈ 2 ms of real work per iteration (typical task grain)

	bare := time.Now()
	for i := 0; i < b.N; i++ {
		apps.Burn(units)
	}
	bareD := time.Since(bare)

	var iters atomic.Int64
	spec := &dope.NestSpec{Name: "bench", Alts: []*dope.AltSpec{{
		Name:   "loop",
		Stages: []dope.StageSpec{{Name: "worker", Type: dope.SEQ}},
		Make: func(item any) (*dope.AltInstance, error) {
			return &dope.AltInstance{Stages: []dope.StageFns{{
				Fn: func(w *dope.Worker) dope.Status {
					if int(iters.Add(1)) > b.N {
						return dope.Finished
					}
					w.Begin() //dopevet:ignore suspendcheck benchmark runs under a static configuration; statuses are irrelevant
					apps.Burn(units)
					w.End()
					return dope.Executing
				},
			}}}, nil
		},
	}}}
	d, err := dope.Create(spec, dope.StaticGoal(1))
	if err != nil {
		b.Fatal(err)
	}
	monStart := time.Now()
	if err := d.Destroy(); err != nil {
		b.Fatal(err)
	}
	monD := time.Since(monStart)
	if bareD > 0 {
		over := (monD.Seconds() - bareD.Seconds()) / bareD.Seconds() * 100
		b.ReportMetric(over, "overhead-%")
	}
}

// byInt builds a sub-benchmark name.
func byInt(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkAblationPlacement compares task placements on the 4-socket
// topology (the paper's §1 locality decision) for the fine-grained ferret
// variant.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, p := range []struct {
		name string
		val  sim.Placement
	}{
		{"scatter", sim.PlaceScatter},
		{"contiguous", sim.PlaceContiguous},
		{"none", sim.PlaceNone},
	} {
		b.Run(p.name, func(b *testing.B) {
			model := sim.Ferret()
			model.HopTime = 1.0e-3
			var tput float64
			for i := 0; i < b.N; i++ {
				res := sim.RunPipeline(model, sim.PipelineConfig{
					Tasks: 800, Extents: []int{1, 2, 3, 5, 10, 1}, Placement: p.val,
				})
				tput = res.SteadyThroughput
			}
			b.ReportMetric(tput, "queries/s")
		})
	}
}

// BenchmarkExtEDP regenerates the energy-delay-product extension table.
func BenchmarkExtEDP(b *testing.B) {
	runExperiment(b, "ext-edp")
}

// BenchmarkExtLocality regenerates the placement extension table.
func BenchmarkExtLocality(b *testing.B) {
	runExperiment(b, "ext-locality")
}

// Command dope-top is the live ops view of a DoPE executive: the nest tree
// with per-stage gauges and sparkline extents, the mechanism decision log,
// and — against a multi-tenant machine — the tenant arbitration table.
//
// It has two sources and one render path. Live mode polls an admin
// endpoint's GET /report (and GET /series when a metrics collector is
// attached); replay mode reads a JSONL snapshot log recorded with
// dope-trace -record or dope-bench. Both feed the same topui.Frame, so a
// recorded incident replays through the identical screen the operator
// watched live.
//
// Usage:
//
//	dope-top -addr localhost:7117              # live, single tenant
//	dope-top -addr localhost:7117/tenants/video
//	dope-top -replay run.jsonl                 # animate a recording
//	dope-top -replay run.jsonl -once           # final frame only (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dope/internal/metrics"
	"dope/internal/replay"
	"dope/internal/topui"
)

const clearScreen = "\x1b[H\x1b[2J"

func main() {
	var (
		addr     = flag.String("addr", "", "admin endpoint to poll (host:port or URL; append /tenants/<name> for one tenant of a machine)")
		replayAt = flag.String("replay", "", "replay a recorded JSONL snapshot log instead of polling")
		interval = flag.Duration("interval", 500*time.Millisecond, "poll/frame interval")
		window   = flag.Int("window", 240, "points retained per series")
		spark    = flag.Int("spark", 24, "sparkline width in cells")
		rows     = flag.Int("decisions", 8, "decision-log tail rows")
		once     = flag.Bool("once", false, "render one frame to stdout and exit (headless smoke)")
	)
	flag.Parse()

	opts := topui.Opts{SparkWidth: *spark, Decisions: *rows}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	switch {
	case *replayAt != "":
		os.Exit(runReplay(*replayAt, opts, *interval, *window, *once, sig))
	case *addr != "":
		os.Exit(runLive(*addr, opts, *interval, *window, *once, sig))
	default:
		fmt.Fprintln(os.Stderr, "dope-top: need -addr or -replay")
		flag.Usage()
		os.Exit(2)
	}
}

// runReplay feeds a recorded log through the shared render path. Animated
// mode redraws one frame per entry; -once ingests everything and prints the
// final screen, which is what the CI smoke step diffs.
func runReplay(path string, opts topui.Opts, interval time.Duration, window int, once bool, sig <-chan os.Signal) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-top:", err)
		return 1
	}
	entries, err := replay.ReadLog(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-top:", err)
		return 1
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "dope-top: empty log", path)
		return 1
	}
	opts.Title = "dope-top (replay " + path + ")"
	m := topui.NewModel(window, opts)
	defer m.Close()

	if once {
		for _, e := range entries {
			m.Ingest(e)
		}
		fmt.Print(m.Frame())
		return 0
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i, e := range entries {
		m.Ingest(e)
		fmt.Print(clearScreen + m.Frame())
		fmt.Printf("\n[%d/%d snapshots]\n", i+1, len(entries))
		if i == len(entries)-1 {
			break
		}
		select {
		case <-sig:
			return 0
		case <-tick.C:
		}
	}
	return 0
}

// runLive polls the admin surface. Every poll fetches /report (a
// replay.Entry — the same shape replay mode reads from disk) and feeds it
// into a local model; when the server has a collector attached, /series
// supplies its richer snapshot (live decision log, tenant table, power) and
// the frame renders from that instead of the locally synthesized one.
func runLive(addr string, opts topui.Opts, interval time.Duration, window int, once bool, sig <-chan os.Signal) int {
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	opts.Title = "dope-top " + base
	client := &http.Client{Timeout: 5 * time.Second}
	m := topui.NewModel(window, opts)
	defer m.Close()

	render := func() error {
		var e replay.Entry
		if err := getJSON(client, base+"/report", &e); err != nil {
			return fmt.Errorf("%s/report: %w", base, err)
		}
		m.Ingest(&e)
		var snap metrics.Snapshot
		frame := ""
		if err := getJSON(client, base+"/series", &snap); err == nil {
			frame = topui.Frame(&e, &snap, opts)
		} else {
			frame = m.Frame() // no collector server-side: synthesize locally
		}
		if once {
			fmt.Print(frame)
		} else {
			fmt.Print(clearScreen + frame)
		}
		return nil
	}

	if once {
		if err := render(); err != nil {
			fmt.Fprintln(os.Stderr, "dope-top:", err)
			return 1
		}
		return 0
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		if err := render(); err != nil {
			// The executive may be between runs; keep polling until signaled.
			fmt.Print(clearScreen)
			fmt.Println("dope-top:", err)
		}
		select {
		case <-sig:
			fmt.Println()
			return 0
		case <-tick.C:
		}
	}
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Command dope-bench regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one table or figure of "Parallelism
// Orchestration using DoPE" (PLDI 2011); see DESIGN.md for the index.
//
// Usage:
//
//	dope-bench -list
//	dope-bench -exp fig2c
//	dope-bench -exp table5 -scale 0.5
//	dope-bench -all
//
// Simulated experiments accept -scale to shrink/grow the task counts
// relative to the paper's 500-task runs; live experiments run the real
// DoPE executive at a fixed reduced scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dope/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (see -list)")
		scale  = flag.Float64("scale", 1.0, "task-count scale relative to the paper's runs")
		list   = flag.Bool("list", false, "list available experiments")
		all    = flag.Bool("all", false, "run every simulated experiment (skips live-*)")
		format = flag.String("format", "text", "output format: text | csv | json | plot")
	)
	flag.Parse()
	outputFormat = *format

	switch {
	case *list:
		for _, e := range harness.Experiments() {
			fmt.Printf("%-16s %s\n", e[0], e[1])
		}
	case *all:
		for _, e := range harness.Experiments() {
			if strings.HasPrefix(e[0], "live-") {
				continue
			}
			run(e[0], *scale)
		}
	case *exp != "":
		run(*exp, *scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// outputFormat selects how run renders tables.
var outputFormat = "text"

func run(id string, scale float64) {
	tab, err := harness.Run(id, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-bench:", err)
		os.Exit(1)
	}
	switch outputFormat {
	case "csv":
		err = tab.FprintCSV(os.Stdout)
	case "json":
		err = tab.FprintJSON(os.Stdout)
	case "plot":
		err = tab.FprintPlot(os.Stdout, 14)
	default:
		tab.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-bench:", err)
		os.Exit(1)
	}
}

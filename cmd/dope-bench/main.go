// Command dope-bench regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one table or figure of "Parallelism
// Orchestration using DoPE" (PLDI 2011); see DESIGN.md for the index.
//
// Usage:
//
//	dope-bench -list
//	dope-bench -exp fig2c
//	dope-bench -exp table5 -scale 0.5
//	dope-bench -all
//	dope-bench -bench beginend -label after -out BENCH_beginend.json -gate
//
// Simulated experiments accept -scale to shrink/grow the task counts
// relative to the paper's 500-task runs; live experiments run the real
// DoPE executive at a fixed reduced scale.
//
// The -bench mode runs the executive's own overhead microbenchmarks
// (internal/microbench) and appends a labeled entry to a BENCH_*.json
// trajectory file; -gate additionally fails the process when the
// uncontended Begin/End path allocates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dope/internal/harness"
	"dope/internal/microbench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (see -list)")
		scale  = flag.Float64("scale", 1.0, "task-count scale relative to the paper's runs")
		list   = flag.Bool("list", false, "list available experiments")
		all    = flag.Bool("all", false, "run every simulated experiment (skips live-*)")
		format = flag.String("format", "text", "output format: text | csv | json | plot")
		bench  = flag.String("bench", "", "overhead microbenchmark suite to run: beginend")
		out    = flag.String("out", "", "append the -bench entry to this BENCH_*.json trajectory file")
		label  = flag.String("label", "dev", "label for the -bench trajectory entry")
		gate   = flag.Bool("gate", false, "with -bench: exit nonzero if the uncontended Begin/End path allocates")
	)
	flag.Parse()
	outputFormat = *format

	switch {
	case *list:
		for _, e := range harness.Experiments() {
			fmt.Printf("%-16s %s\n", e[0], e[1])
		}
	case *bench != "":
		runBench(*bench, *out, *label, *gate)
	case *all:
		for _, e := range harness.Experiments() {
			if strings.HasPrefix(e[0], "live-") {
				continue
			}
			run(e[0], *scale)
		}
	case *exp != "":
		run(*exp, *scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runBench runs one microbenchmark suite, prints the results, appends a
// labeled entry to the trajectory file (when -out is given), and applies
// the allocation gate (when -gate is given).
func runBench(suite, outFile, label string, gate bool) {
	if suite != "beginend" {
		fmt.Fprintf(os.Stderr, "dope-bench: unknown -bench suite %q (want beginend)\n", suite)
		os.Exit(2)
	}
	results := microbench.BeginEnd()
	for _, r := range results {
		fmt.Printf("%-24s %12d iters %12.1f ns/op %6d B/op %6d allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if outFile != "" {
		entry := microbench.Entry{
			Label:      label,
			Date:       time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Results:    results,
		}
		if err := appendEntry(outFile, entry); err != nil {
			fmt.Fprintln(os.Stderr, "dope-bench:", err)
			os.Exit(1)
		}
	}
	if gate {
		if err := microbench.Gate(results); err != nil {
			fmt.Fprintln(os.Stderr, "dope-bench:", err)
			os.Exit(1)
		}
		fmt.Println("gate: ok (uncontended Begin/End is allocation-free)")
	}
}

// appendEntry reads the existing trajectory (if any), appends entry, and
// rewrites the file. An entry with the same label replaces its predecessor
// so re-running `make bench` does not grow the file without bound.
func appendEntry(path string, entry microbench.Entry) error {
	var entries []microbench.Entry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	}
	replaced := false
	for i := range entries {
		if entries[i].Label == entry.Label {
			entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, entry)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// outputFormat selects how run renders tables.
var outputFormat = "text"

func run(id string, scale float64) {
	tab, err := harness.Run(id, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-bench:", err)
		os.Exit(1)
	}
	switch outputFormat {
	case "csv":
		err = tab.FprintCSV(os.Stdout)
	case "json":
		err = tab.FprintJSON(os.Stdout)
	case "plot":
		err = tab.FprintPlot(os.Stdout, 14)
	default:
		tab.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-bench:", err)
		os.Exit(1)
	}
}

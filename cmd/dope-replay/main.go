// Command dope-replay replays a recorded monitoring log (produced by
// `dope-trace -record <file>`) against a mechanism, printing the decisions
// it would have made — offline mechanism development, the workflow the
// paper's separation of concerns enables for its third agent (§5).
//
// Usage:
//
//	dope-trace -app ferret -goal static -record run.jsonl
//	dope-replay -log run.jsonl -mechanism tbf
//	dope-replay -log run.jsonl -mechanism wqlinear -threads 24
package main

import (
	"flag"
	"fmt"
	"os"

	"dope"
	"dope/internal/replay"
)

func main() {
	var (
		logPath = flag.String("log", "", "JSONL monitoring log (from dope-trace -record)")
		mech    = flag.String("mechanism", "tbf", "mechanism: proportional | wqth | wqlinear | tb | tbf | fdp | seda | tpc | edp | loadprop")
		threads = flag.Int("threads", 24, "hardware-thread budget")
		watts   = flag.Float64("watts", 720, "power budget for tpc")
		mmax    = flag.Int("mmax", 8, "Mmax for wqth/wqlinear")
	)
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-replay:", err)
		os.Exit(1)
	}
	defer f.Close()
	entries, err := replay.ReadLog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-replay:", err)
		os.Exit(1)
	}
	m := pick(*mech, *threads, *watts, *mmax)
	if m == nil {
		fmt.Fprintf(os.Stderr, "dope-replay: unknown mechanism %q\n", *mech)
		os.Exit(2)
	}
	decisions := replay.Replay(entries, m)
	fmt.Printf("replayed %d snapshots through %s: %d decisions\n",
		len(entries), m.Name(), len(decisions))
	for _, d := range decisions {
		fmt.Printf("  t=%8.3fs snapshot %3d -> %s\n", d.TimeSec, d.Index, d.Config)
	}
	if len(decisions) == 0 {
		fmt.Println("  (the mechanism held the recorded configuration throughout)")
	}
}

func pick(name string, threads int, watts float64, mmax int) dope.Mechanism {
	switch name {
	case "proportional":
		return dope.Mechanisms.Proportional(threads)
	case "wqth":
		return dope.Mechanisms.WQTH(threads, mmax, 6)
	case "wqlinear":
		return dope.Mechanisms.WQLinear(threads, mmax, 14)
	case "tb":
		return dope.Mechanisms.TB(threads)
	case "tbf":
		return dope.Mechanisms.TBF(threads)
	case "fdp":
		return dope.Mechanisms.FDP(threads)
	case "seda":
		return dope.Mechanisms.SEDA(8, 1)
	case "tpc":
		return dope.Mechanisms.TPC(threads, watts)
	case "edp":
		return dope.Mechanisms.EDP(threads)
	case "loadprop":
		return dope.Mechanisms.LoadProp(threads)
	default:
		return nil
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"regexp"

	"dope/internal/analysis/framework"
)

// vetConfig is the JSON configuration the go command writes for each
// package unit when driving a vet tool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit described by cfgFile and exits: status 1
// if there are findings, 0 otherwise.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports through the export data the go command already
	// compiled for this unit's dependencies.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			if cfg.Compiler == "gccgo" && cfg.Standard[path] {
				return nil, nil // gccgo's own lookup
			}
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		Importer:  compilerImporter,
		GoVersion: languageVersion(cfg.GoVersion),
		Sizes:     types.SizesFor(cfg.Compiler, "amd64"),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Seed the fact store with the vetx files the go command collected from
	// this unit's dependencies, so call-site analyzers see the Begin/End
	// summaries of imported helpers.
	facts := framework.NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		dep, err := framework.ReadVetxFile(vetx)
		if err != nil {
			log.Fatalf("reading facts of %s: %v", path, err)
		}
		facts.Merge(dep)
	}

	// A VetxOnly unit exists purely to produce facts for its dependents:
	// run the analyzers with reporting disabled and write the store.
	if cfg.VetxOnly {
		if err := framework.ExportFacts(fset, files, pkg, info, analyzers(), facts); err != nil {
			log.Fatalf("%s: %v", cfg.ImportPath, err)
		}
		writeVetx(cfg.VetxOutput, facts)
		os.Exit(0)
	}

	findings, err := framework.RunPackageFacts(fset, files, pkg, info, analyzers(), facts)
	if err != nil {
		log.Fatalf("%s: %v", cfg.ImportPath, err)
	}
	// The store now also holds this unit's own facts (the analyzers export
	// while they run); hand the merged set to dependents. Facts accumulate
	// transitively this way, so a dependent sees indirect helpers too.
	writeVetx(cfg.VetxOutput, facts)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// writeVetx persists the fact store where the go command asked for it. The
// output file is mandatory when requested, even if no facts were produced.
func writeVetx(path string, facts *framework.FactStore) {
	if path == "" {
		return
	}
	if err := facts.WriteVetxFile(path); err != nil {
		log.Fatal(err)
	}
}

var versionRE = regexp.MustCompile(`^go\d+\.\d+`)

// languageVersion trims a toolchain version like "go1.24.0" to the language
// version form ("go1.24") accepted by go/types.
func languageVersion(v string) string {
	if m := versionRE.FindString(v); m != "" {
		return m
	}
	return ""
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolFactsRoundTrip drives dope-vet through the real go vet
// unitchecker protocol over a two-package module: a helper package whose
// exported function opens a Begin/End window, and a caller package that
// drops the returned status. The diagnostic at the caller is only possible
// if the helper's window fact survived the encode-to-vetx / decode-from-
// vetx round trip between the two per-package tool invocations.
func TestVetToolFactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and invokes go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not found: %v", err)
	}

	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "dope-vet")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dope-vet: %v\n%s", err, out)
	}

	// A throwaway module with two packages, depending on the real module
	// for the core types the analyzers anchor on.
	mod := filepath.Join(tmp, "vetxtest")
	writeFile(t, filepath.Join(mod, "go.mod"), fmt.Sprintf(
		"module vetxtest\n\ngo 1.22\n\nrequire dope v0.0.0\n\nreplace dope => %s\n", repoRoot))
	writeFile(t, filepath.Join(mod, "helper", "helper.go"), `// Package helper opens Begin/End windows on behalf of its callers.
package helper

import "dope"

// Open claims a context for the caller, who must observe the status and
// eventually call End.
func Open(w *dope.Worker) dope.Status {
	return w.Begin() //dopevet:ignore beginend deliberate opener: the caller closes the window
}
`)
	writeFile(t, filepath.Join(mod, "use", "use.go"), `// Package use calls helper from across a package boundary.
package use

import (
	"dope"

	"vetxtest/helper"
)

// Drops ignores the status of the helper-opened window and never Ends.
func Drops(w *dope.Worker) {
	helper.Open(w)
}

// Balanced closes the helper-opened window properly.
func Balanced(w *dope.Worker) dope.Status {
	if helper.Open(w) == dope.Suspended {
		return dope.Suspended
	}
	return w.End()
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded; want the cross-package Begin/End finding\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "still holding a platform context") {
		t.Fatalf("go vet output lacks the leak diagnostic:\n%s", text)
	}
	if !strings.Contains(text, filepath.Join("use", "use.go")) && !strings.Contains(text, "use.go") {
		t.Fatalf("diagnostic not attributed to the caller package:\n%s", text)
	}
	// The helper's own deliberate-opener diagnostic is suppressed at the
	// declaration; only the caller-side finding may appear.
	if strings.Contains(text, "helper.go") {
		t.Fatalf("suppressed helper-side diagnostic leaked through:\n%s", text)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

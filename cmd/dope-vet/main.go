// Command dope-vet is the static-analysis suite that enforces DoPE's
// Begin/End token protocol (the paper's Task interface, Table 2) and the
// configuration contracts around it. It runs ten analyzers:
//
//	beginend      Begin/End balanced on every control-flow path
//	suspendcheck  Begin/End statuses compared against Suspended
//	tokenhold     no blocking work while a platform context is held
//	nestspec      statically-constructible specs are well-formed
//	deadlinecheck deadlined stages watch Worker.Done in their loops
//	goalcheck     goal/mechanism pairings and control intervals are sane
//	stagealias    sibling stage functors share no aliased mutable state
//	lockcheck     inferred mutex guards hold at every plain field access
//	atomiccheck   no mixed sync/atomic + plain access, 64-bit alignment
//	padcheck      cache-line padding really isolates hot atomic fields
//
// The analyzers summarize exported helpers as object facts (does this
// function open a Begin/End window? block? cooperate with cancellation?)
// and check call sites in other packages against them; facts travel
// between packages through the go command's vetx files in -vettool mode
// and through the loader's import closure in standalone mode.
//
// It supports two modes:
//
//	dope-vet [packages...]                      standalone over the module
//	go vet -vettool=$(which dope-vet) ./...     as a go vet tool
//
// The second mode implements the unitchecker command-line protocol
// (-V=full, -flags, unit.cfg) so the go command can drive it per package
// with compiler-produced export data.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dope/internal/analysis/atomiccheck"
	"dope/internal/analysis/beginend"
	"dope/internal/analysis/deadlinecheck"
	"dope/internal/analysis/framework"
	"dope/internal/analysis/goalcheck"
	"dope/internal/analysis/load"
	"dope/internal/analysis/lockcheck"
	"dope/internal/analysis/nestspec"
	"dope/internal/analysis/padcheck"
	"dope/internal/analysis/stagealias"
	"dope/internal/analysis/suspendcheck"
	"dope/internal/analysis/tokenhold"
)

func analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		beginend.Analyzer,
		suspendcheck.Analyzer,
		tokenhold.Analyzer,
		nestspec.Analyzer,
		deadlinecheck.Analyzer,
		goalcheck.Analyzer,
		stagealias.Analyzer,
		lockcheck.Analyzer,
		atomiccheck.Analyzer,
		padcheck.Analyzer,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dope-vet: ")
	flag.Usage = usage
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for go vet)")
	flagsJSON := flag.Bool("flags", false, "print analyzer flags in JSON (for go vet)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit NDJSON finding records (suppressed sites included) instead of text")
	flag.Parse()

	if *flagsJSON {
		// No analyzer flags yet: an empty JSON array tells go vet there is
		// nothing to forward.
		fmt.Println("[]")
		return
	}
	if *list {
		for _, a := range analyzers() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0]) // invoked by go vet; exits
		return
	}
	os.Exit(runStandalone(args, *jsonOut))
}

func usage() {
	fmt.Fprintf(os.Stderr, `dope-vet statically enforces the DoPE Begin/End token protocol.

Usage:
	dope-vet [packages]          analyze module packages (default ./...)
	dope-vet -json [packages]    same, as NDJSON records for CI annotation
	dope-vet -list               list analyzers
	go vet -vettool=$(which dope-vet) ./...
`)
	os.Exit(2)
}

// jsonFinding is one `dope-vet -json` output record. Suppressed findings
// are included (CI annotates them as blessed) but only live ones fail the
// run.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// runStandalone loads module packages (tests included) and prints findings.
func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	l, err := load.NewLoader(cwd)
	if err != nil {
		log.Fatal(err)
	}
	var units []*load.Package
	for _, pat := range patterns {
		var us []*load.Package
		var err error
		switch {
		case pat == "all", pat == "./...":
			us, err = l.LoadTree(l.ModRoot)
		case strings.HasSuffix(pat, "/..."):
			us, err = l.LoadTree(strings.TrimSuffix(pat, "/..."))
		default:
			us, err = l.LoadDir(pat, "")
		}
		if err != nil {
			log.Fatalf("loading %s: %v", pat, err)
		}
		units = append(units, us...)
	}
	// Summarize every package the units pulled in (in dependency order) so
	// call-site checks see the facts of imported helpers, then analyze the
	// units themselves against the populated store.
	facts := framework.NewFactStore()
	for _, dep := range l.ImportClosure() {
		if err := framework.ExportFacts(l.Fset, dep.Files, dep.Types, dep.Info, analyzers(), facts); err != nil {
			log.Fatalf("%s: %v", dep.ID, err)
		}
	}
	exit := 0
	enc := json.NewEncoder(os.Stdout)
	for _, u := range units {
		findings, err := framework.RunPackageFactsAll(l.Fset, u.Files, u.Types, u.Info, analyzers(), facts)
		if err != nil {
			log.Fatalf("%s: %v", u.ID, err)
		}
		for _, f := range findings {
			pos := fmt.Sprintf("%s:%d:%d", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column)
			if jsonOut {
				enc.Encode(jsonFinding{
					Analyzer:   f.Analyzer,
					Pos:        pos,
					Message:    f.Message,
					Suppressed: f.Suppressed,
				})
			} else if !f.Suppressed {
				fmt.Printf("%s: %s (%s)\n", pos, f.Message, f.Analyzer)
			}
			if !f.Suppressed {
				exit = 1
			}
		}
	}
	return exit
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// versionFlag implements the -V=full protocol go vet uses for build
// caching: print a line identifying the executable's contents.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel dope-vet buildID=%02x\n", prog, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

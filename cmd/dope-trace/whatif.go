package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	"dope/internal/core"
	"dope/internal/replay"
)

// stageAgg accumulates one stage's what-if estimates across snapshots.
type stageAgg struct {
	name       string
	payoffDoP  float64
	payoffSvc  float64
	demand     float64
	samples    int
	bottleneck int
}

// nestAgg accumulates one nest's profile across snapshots.
type nestAgg struct {
	path      string
	stages    map[string]*stageAgg
	order     []string // first-seen stage order, for stable output
	valid     int
	invalid   int
	lastWhy   string
	nonFinite int
}

// runWhatIf reads a snapshot log recorded with -record and prints the
// averaged causal what-if profile per nest. Returns the process exit code:
// nonzero when no snapshot produced a valid profile (nothing to rank) or
// when any snapshot's estimates were non-finite before scrubbing — either
// means the profile cannot be trusted.
func runWhatIf(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-trace:", err)
		return 1
	}
	defer f.Close()
	entries, err := replay.ReadLog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-trace:", err)
		return 1
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "dope-trace: empty snapshot log")
		return 1
	}

	nests := map[string]*nestAgg{}
	var order []string
	for _, e := range entries {
		rep := replay.Decode(e)
		var walk func(n *core.NestReport)
		walk = func(n *core.NestReport) {
			if n == nil {
				return
			}
			agg := nests[n.Path]
			if agg == nil {
				agg = &nestAgg{path: n.Path, stages: map[string]*stageAgg{}}
				nests[n.Path] = agg
				order = append(order, n.Path)
			}
			prof := n.WhatIf()
			switch {
			case prof.Reason == "non-finite estimate scrubbed":
				agg.nonFinite++
			case !prof.Valid:
				agg.invalid++
				agg.lastWhy = prof.Reason
			default:
				agg.valid++
				for _, st := range prof.Stages {
					sa := agg.stages[st.Name]
					if sa == nil {
						sa = &stageAgg{name: st.Name}
						agg.stages[st.Name] = sa
						agg.order = append(agg.order, st.Name)
					}
					sa.payoffDoP += st.PayoffDoP
					sa.payoffSvc += st.PayoffService
					sa.demand += st.Demand
					sa.samples++
					if st.Bottleneck {
						sa.bottleneck++
					}
				}
			}
			for _, child := range n.Children {
				walk(child)
			}
		}
		walk(rep.Root)
	}

	exit := 0
	anyValid := false
	for _, p := range order {
		agg := nests[p]
		fmt.Printf("== what-if: %s (%d valid / %d total snapshots) ==\n",
			agg.path, agg.valid, agg.valid+agg.invalid+agg.nonFinite)
		if agg.nonFinite > 0 {
			fmt.Printf("  ERROR: %d snapshots produced non-finite payoffs\n", agg.nonFinite)
			exit = 1
		}
		if agg.valid == 0 {
			why := agg.lastWhy
			if why == "" {
				why = "no snapshots"
			}
			fmt.Printf("  no valid profile: %s\n", why)
			continue
		}
		anyValid = true
		rows := make([]*stageAgg, 0, len(agg.order))
		for _, name := range agg.order {
			rows = append(rows, agg.stages[name])
		}
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			if a.mean(a.payoffDoP) != b.mean(b.payoffDoP) {
				return a.mean(a.payoffDoP) > b.mean(b.payoffDoP)
			}
			return a.mean(a.payoffSvc) > b.mean(b.payoffSvc)
		})
		fmt.Printf("  %-12s %14s %16s %12s %11s\n",
			"stage", "payoff/+1 ctx", "payoff/-10% svc", "demand (ms)", "bottleneck")
		for _, sa := range rows {
			fmt.Printf("  %-12s %14.1f %16.1f %12.3f %10.0f%%\n",
				sa.name, sa.mean(sa.payoffDoP), sa.mean(sa.payoffSvc),
				sa.mean(sa.demand)*1e3,
				100*float64(sa.bottleneck)/float64(sa.samples))
		}
	}
	if !anyValid {
		fmt.Fprintln(os.Stderr, "dope-trace: no nest yielded a valid what-if profile")
		return 1
	}
	return exit
}

// mean averages an accumulated sum over the aggregate's sample count,
// guarding the empty case.
func (s *stageAgg) mean(sum float64) float64 {
	if s.samples == 0 {
		return 0
	}
	v := sum / float64(s.samples)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

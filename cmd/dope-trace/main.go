// Command dope-trace runs one of the ported applications on the real DoPE
// executive and streams the executive's reconfiguration decisions — a live
// view of the protocol walkthrough in §6 of the paper.
//
// Usage:
//
//	dope-trace -app ferret -goal throughput -requests 200
//	dope-trace -app x264 -goal response -load 0.8
//	dope-trace -app dedup -goal power -watts 720
//
// With -whatif it runs no application at all: it reads a snapshot log
// recorded by -record and prints the causal what-if profile — each nest's
// stages ranked by the predicted throughput payoff of one more hardware
// context (and of a 10% service-time cut), averaged over the valid
// snapshots. It exits nonzero when the log yields no valid profile or any
// snapshot produced a non-finite payoff:
//
//	dope-trace -app ferret -record run.jsonl
//	dope-trace -whatif run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dope"
	"dope/internal/admin"
	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/replay"
	"dope/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "ferret", "application: x264 | swaptions | bzip | gimp | ferret | dedup")
		goal     = flag.String("goal", "throughput", "goal: response | throughput | power | static")
		requests = flag.Int("requests", 200, "number of requests to serve")
		loadF    = flag.Float64("load", 0.7, "load factor for response-time goals")
		watts    = flag.Float64("watts", 720, "power budget for -goal power")
		threads  = flag.Int("threads", 24, "hardware-context budget")
		record   = flag.String("record", "", "record monitoring snapshots to this JSONL file (for dope-replay)")
		adminAt  = flag.String("admin", "", "serve the administration endpoint at this address (e.g. localhost:7117)")
		whatif   = flag.String("whatif", "", "offline: print the causal what-if profile of a recorded snapshot log and exit")
	)
	flag.Parse()

	if *whatif != "" {
		os.Exit(runWhatIf(*whatif))
	}

	s := apps.NewServer(nil)
	spec, twoLevel := buildApp(*app, s)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "dope-trace: unknown app %q\n", *app)
		os.Exit(2)
	}

	g := pickGoal(*goal, *threads, *watts)
	start := time.Now()
	d, err := dope.Create(spec, g,
		dope.WithControlInterval(10*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			switch ev.Kind {
			case dope.EventReconfigure:
				fmt.Printf("%8.3fs reconfigure (%s): %s\n",
					time.Since(start).Seconds(), ev.Mechanism, ev.Config)
			case dope.EventResize:
				fmt.Printf("%8.3fs resize %s: %d -> %d workers in place\n",
					time.Since(start).Seconds(), ev.Stage, ev.FromExtent, ev.ToExtent)
			case dope.EventSuspend:
				fmt.Printf("%8.3fs suspend: draining top-level tasks\n", time.Since(start).Seconds())
			case dope.EventResume:
				fmt.Printf("%8.3fs resume under %s\n", time.Since(start).Seconds(), ev.Config)
			case dope.EventFinish:
				fmt.Printf("%8.3fs finish\n", time.Since(start).Seconds())
			case dope.EventError:
				fmt.Printf("%8.3fs error: %v\n", time.Since(start).Seconds(), ev.Err)
			case dope.EventTaskFailure:
				esc := ""
				if ev.Escalated {
					esc = " (escalated)"
				}
				fmt.Printf("%8.3fs task failure %s/%s -> %s%s: failure %d in window, %d consecutive\n",
					time.Since(start).Seconds(), ev.Nest, ev.Stage, ev.Policy, esc,
					ev.Failures, ev.ConsecFailures)
			case dope.EventTaskStall:
				esc := ""
				if ev.Escalated {
					esc = " (escalated)"
				}
				during := ""
				if ev.DuringDrain {
					during = " during drain"
				}
				fmt.Printf("%8.3fs task stall %s/%s -> %s%s%s: %v over the %v deadline\n",
					time.Since(start).Seconds(), ev.Nest, ev.Stage, ev.Policy, esc, during,
					ev.Stalled.Round(time.Millisecond), ev.Deadline)
			case dope.EventShed:
				fmt.Printf("%8.3fs shed %s/%s: %d items dropped (%d total)\n",
					time.Since(start).Seconds(), ev.Nest, ev.Stage, ev.ShedItems, ev.ShedTotal)
			}
		}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dope-trace:", err)
		os.Exit(1)
	}
	if g.Name == "max-throughput-under-power" {
		d.RegisterPowerModel(50 * time.Millisecond)
	}

	// Ctrl-C stops the nest through the drain protocol, so the submit loop
	// below unblocks, the recorder flushes its last snapshot, and the log
	// stays parseable.
	defer d.StopOnInterrupt()()

	if *adminAt != "" {
		col, release := d.AttachCollector(512, 20*time.Millisecond)
		defer release()
		go func() {
			fmt.Printf("admin endpoint: http://%s/{report,config,mechanism,stats,series,whatif,healthz}  (dope-top -addr %s)\n",
				*adminAt, *adminAt)
			if err := admin.NewServer(*adminAt, d.AdminHandlerWithCollector(col)).ListenAndServe(); err != nil {
				fmt.Fprintln(os.Stderr, "dope-trace: admin:", err)
			}
		}()
	}

	// Optional snapshot recording for offline mechanism replay.
	var recDone chan struct{}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dope-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		rec := replay.NewRecorder(f)
		recDone = make(chan struct{})
		go func() {
			defer close(recDone)
			for {
				select {
				case <-d.Done():
					return
				case <-time.After(20 * time.Millisecond):
					if err := rec.Record(d.Report()); err != nil {
						fmt.Fprintln(os.Stderr, "dope-trace: record:", err)
						return
					}
				}
			}
		}()
		defer func() {
			<-recDone
			fmt.Printf("recorded %d snapshots to %s\n", rec.Count(), *record)
		}()
	}

	// Feed the work queue. Two-level server apps get Poisson arrivals so
	// load-sensitive mechanisms have something to react to; pipelines get a
	// batch.
	if twoLevel {
		seqExec := 0.05 // rough per-request seconds at these parameters
		maxTp := float64(*threads) / seqExec
		arr := workload.NewArrivals(workload.LoadFactor(*loadF).RateFor(maxTp), 7)
	feed:
		for i := 0; i < *requests; i++ {
			select {
			case <-d.Done(): // interrupted: stop feeding, drain what's queued
				break feed
			case <-time.After(arr.Next()):
			}
			s.Submit(1.0)
		}
	} else {
		for i := 0; i < *requests; i++ {
			select {
			case <-d.Done():
			default:
				s.Submit(1.0)
				continue
			}
			break
		}
	}
	s.Close()
	if err := d.Destroy(); err != nil {
		fmt.Fprintln(os.Stderr, "dope-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("served %d requests: mean response %.1f ms, throughput %.1f/s, %d reconfigurations\n",
		int(s.Resp.Count()), s.Resp.MeanResponse()*1000, s.Meter.Overall(), d.Reconfigurations())
}

// buildApp constructs the named application; the bool reports whether it is
// a two-level server app (outer loop over requests).
func buildApp(name string, s *apps.Server) (*core.NestSpec, bool) {
	switch name {
	case "x264":
		return apps.NewTranscode(s, apps.TranscodeParams{Frames: 12, UnitsPerFrame: 800}), true
	case "swaptions":
		return apps.NewSwaptions(s, apps.SwaptionsParams{Chunks: 16, UnitsPerChunk: 600}), true
	case "bzip":
		return apps.NewCompress(s, apps.CompressParams{Blocks: 12, UnitsPerBlock: 800}), true
	case "gimp":
		return apps.NewOilify(s, apps.OilifyParams{Rows: 12, UnitsPerRow: 800}), true
	case "ferret":
		return apps.NewFerret(s, apps.FerretParams{UnitsBase: 150}), false
	case "dedup":
		return apps.NewDedup(s, apps.DedupParams{ChunksPerItem: 10, UnitsPerChunk: 400}), false
	default:
		return nil, false
	}
}

func pickGoal(goal string, threads int, watts float64) dope.Goal {
	switch goal {
	case "response":
		return dope.MinResponseTime(threads, 8, 10)
	case "throughput":
		return dope.MaxThroughput(threads)
	case "power":
		return dope.MaxThroughputUnderPower(threads, watts)
	default:
		return dope.StaticGoal(threads)
	}
}

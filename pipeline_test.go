package dope_test

import (
	"sync/atomic"
	"testing"
	"time"

	"dope"
)

// buildStages returns a 3-stage integer pipeline with a heavy middle stage.
func buildStages(mid *atomic.Int64) []dope.PipeStage[int] {
	return []dope.PipeStage[int]{
		{Name: "parse", Fn: func(v, extent int) int { return v + 1 }},
		{Name: "work", Par: true, Fn: func(v, extent int) int {
			time.Sleep(300 * time.Microsecond)
			mid.Add(1)
			return v * 2
		}},
		{Name: "emit", Fn: func(v, extent int) int { return v }},
	}
}

func TestChannelPipelineProcessesAll(t *testing.T) {
	src := make(chan int, 64)
	var mid atomic.Int64
	var out []int
	var outMu atomic.Int64
	spec := dope.ChannelPipeline("calc", src, buildStages(&mid), func(v int) {
		out = append(out, v) // emit stage is SEQ: single writer
		outMu.Add(1)
	}, dope.PipelineOptions{})
	d, err := dope.Create(spec, dope.StaticGoal(4),
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: []int{1, 2, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		src <- i
	}
	close(src)
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if mid.Load() != 40 || outMu.Load() != 40 {
		t.Fatalf("processed mid=%d out=%d, want 40", mid.Load(), outMu.Load())
	}
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate output %d", v)
		}
		seen[v] = true
		// (i+1)*2 for i in [0,40)
		if v%2 != 0 || v < 2 || v > 80 {
			t.Fatalf("unexpected output %d", v)
		}
	}
}

func TestChannelPipelineAdaptsUnderTBF(t *testing.T) {
	src := make(chan int, 256)
	var mid atomic.Int64
	spec := dope.ChannelPipeline("calc", src, buildStages(&mid), nil,
		dope.PipelineOptions{Fused: true})
	d, err := dope.Create(spec, dope.MaxThroughput(8),
		dope.WithControlInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		src <- i
	}
	close(src)
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if mid.Load() != 300 && d.CurrentConfig().Alt == 0 {
		t.Fatalf("pipeline processed %d of 300", mid.Load())
	}
	if d.Reconfigurations() == 0 {
		t.Fatal("TBF never adapted the built pipeline")
	}
}

func TestChannelPipelineSurvivesReconfiguration(t *testing.T) {
	src := make(chan int, 512)
	var mid atomic.Int64
	var done atomic.Int64
	spec := dope.ChannelPipeline("calc", src, buildStages(&mid), func(int) {
		done.Add(1)
	}, dope.PipelineOptions{QueueCap: 4})
	d, err := dope.Create(spec, dope.StaticGoal(8),
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: []int{1, 1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		src <- i
	}
	time.Sleep(10 * time.Millisecond)
	// Root-level change with items in flight.
	d.SetConfig(&dope.Config{Alt: 0, Extents: []int{1, 4, 1}})
	for i := 100; i < 200; i++ {
		src <- i
	}
	close(src)
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 200 {
		t.Fatalf("completed %d of 200 across reconfiguration", done.Load())
	}
	// An extent-only root change resizes the stage's worker group in place:
	// no suspension cycle, but the reconfiguration and resize are counted.
	if d.Suspensions() != 0 {
		t.Fatalf("extent-only change caused %d suspensions", d.Suspensions())
	}
	if d.Reconfigurations() == 0 {
		t.Fatal("reconfiguration not counted")
	}
	if d.Resizes() == 0 {
		t.Fatal("no in-place resize recorded")
	}
}

func TestChannelPipelineFusedAlternative(t *testing.T) {
	src := make(chan int, 64)
	var mid atomic.Int64
	var done atomic.Int64
	spec := dope.ChannelPipeline("calc", src, buildStages(&mid), func(int) {
		done.Add(1)
	}, dope.PipelineOptions{Fused: true})
	d, err := dope.Create(spec, dope.StaticGoal(4),
		dope.WithInitialConfig(&dope.Config{Alt: 1, Extents: []int{3}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		src <- i
	}
	close(src)
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 30 {
		t.Fatalf("fused completed %d of 30", done.Load())
	}
}

func TestChannelPipelineExtentVisible(t *testing.T) {
	src := make(chan int, 8)
	var sawExtent atomic.Int64
	stages := []dope.PipeStage[int]{
		{Name: "only", Par: true, MinDoP: 2, Fn: func(v, extent int) int {
			sawExtent.Store(int64(extent))
			return v
		}},
	}
	spec := dope.ChannelPipeline("x", src, stages, nil, dope.PipelineOptions{})
	d, err := dope.Create(spec, dope.StaticGoal(4),
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: []int{3}}))
	if err != nil {
		t.Fatal(err)
	}
	src <- 1
	close(src)
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if sawExtent.Load() != 3 {
		t.Fatalf("stage saw extent %d, want 3", sawExtent.Load())
	}
}

func TestChannelPipelineRejectsEmptyStages(t *testing.T) {
	src := make(chan int)
	spec := dope.ChannelPipeline[int]("empty", src, nil, nil, dope.PipelineOptions{})
	if _, err := dope.Create(spec, dope.StaticGoal(2)); err == nil {
		t.Fatal("zero-stage pipeline accepted")
	}
}

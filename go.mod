module dope

go 1.22

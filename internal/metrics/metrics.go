// Package metrics records the end-to-end measurements the paper reports:
// per-request response time (queue wait + execution, Equation 1), system
// throughput, and per-task execution time. Recorders are safe for
// concurrent use by many worker goroutines.
package metrics

import (
	"sync"
	"time"

	"dope/internal/stats"
)

// ResponseRecorder accumulates per-request response times, split into the
// two components of the paper's Equation 1:
//
//	T_response(t) = T_exec(DoP) + q(t)/Throughput(DoP)
//
// i.e. execution time plus time waiting in the work queue.
type ResponseRecorder struct {
	mu        sync.Mutex
	wait      stats.Welford
	exec      stats.Welford
	response  stats.Welford
	responses []float64
}

// Observe records one completed request.
func (r *ResponseRecorder) Observe(wait, exec time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := wait.Seconds()
	e := exec.Seconds()
	r.wait.Observe(w)
	r.exec.Observe(e)
	r.response.Observe(w + e)
	r.responses = append(r.responses, w+e)
}

// Count returns the number of completed requests.
func (r *ResponseRecorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.response.Count()
}

// MeanResponse returns the mean response time in seconds.
func (r *ResponseRecorder) MeanResponse() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.response.Mean()
}

// MeanWait returns the mean queue wait in seconds.
func (r *ResponseRecorder) MeanWait() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wait.Mean()
}

// MeanExec returns the mean execution time in seconds.
func (r *ResponseRecorder) MeanExec() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.exec.Mean()
}

// Percentile returns the p-th percentile response time in seconds.
func (r *ResponseRecorder) Percentile(p float64) (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return stats.Percentile(r.responses, p)
}

// ThroughputMeter measures completions per second over its lifetime and
// over a sliding recent interval.
type ThroughputMeter struct {
	mu      sync.Mutex
	start   time.Time
	last    time.Time
	total   uint64
	started bool

	recent       *stats.EWMA // completions/sec, EWMA over inter-completion gaps
	lastComplete time.Time
}

// NewThroughputMeter returns a meter; alpha controls how quickly the recent
// throughput estimate adapts (0.1–0.3 works well for mechanism feedback).
func NewThroughputMeter(alpha float64) *ThroughputMeter {
	return &ThroughputMeter{recent: stats.NewEWMA(alpha)}
}

// Start marks the measurement epoch at now. Observations before Start use
// the first observation as the epoch.
func (m *ThroughputMeter) Start(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.start = now
	m.started = true
}

// Observe records one completion at time now.
func (m *ThroughputMeter) Observe(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.start = now
		m.started = true
	}
	m.total++
	m.last = now
	if !m.lastComplete.IsZero() {
		gap := now.Sub(m.lastComplete).Seconds()
		if gap > 0 {
			m.recent.Observe(1 / gap)
		}
	}
	m.lastComplete = now
}

// Total returns the number of completions observed.
func (m *ThroughputMeter) Total() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Overall returns completions/second from the epoch to the last completion,
// or 0 before two data points exist.
func (m *ThroughputMeter) Overall() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.total == 0 || !m.last.After(m.start) {
		return 0
	}
	return float64(m.total) / m.last.Sub(m.start).Seconds()
}

// Recent returns the EWMA estimate of current throughput (completions/sec).
func (m *ThroughputMeter) Recent() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recent.Value()
}

// Series is an append-only time series of (t, value) points used by the
// harness to emit the paper's time-trace figures (13 and 14). Safe for
// concurrent appends.
type Series struct {
	mu sync.Mutex
	ts []time.Duration
	vs []float64
}

// Append adds a point.
func (s *Series) Append(t time.Duration, v float64) {
	s.mu.Lock()
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
	s.mu.Unlock()
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ts)
}

// At returns the i-th point.
func (s *Series) At(i int) (time.Duration, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ts[i], s.vs[i]
}

// Values returns a copy of the value column.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.vs))
	copy(out, s.vs)
	return out
}

package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/core"
	"dope/internal/platform"
	"dope/internal/stats"
)

// DecisionEntry is one row of the live-ops decision log: a mechanism
// reconfiguration, an in-place resize, a failure/stall/shed event, or a
// tenant arbitration action, normalized to a flat shape the UI and the
// /series endpoint can render uniformly.
type DecisionEntry struct {
	Seq       uint64  `json:"seq"`
	T         float64 `json:"t"`
	Kind      string  `json:"kind"`
	Nest      string  `json:"nest,omitempty"`
	Stage     string  `json:"stage,omitempty"`
	Mechanism string  `json:"mechanism,omitempty"`
	From      int     `json:"from,omitempty"`
	To        int     `json:"to,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// TenantSample is one tenant's arbitration state at a sample instant. The
// tenancy layer adapts its own status type into this neutral shape so the
// metrics package stays import-cycle-free (tenancy imports metrics, never
// the reverse).
type TenantSample struct {
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Priority int     `json:"priority"`
	Weight   float64 `json:"weight"`
	Quota    int     `json:"quota"`
	Used     int     `json:"used"`
	Watts    float64 `json:"watts"`
	Shed     uint64  `json:"shed"`
	Rejected uint64  `json:"rejected"`
	Grants   uint64  `json:"grants"`
	Revokes  uint64  `json:"revokes"`
}

// Snapshot is the windowed view the /series endpoint serves. Cursor is the
// collector's sequence high-water mark: pass it back as the since argument
// to fetch only what arrived after this snapshot. Dropped counts events the
// throttled writer discarded because the consumer side fell behind.
type Snapshot struct {
	Now     float64                  `json:"now"`
	Cursor  uint64                   `json:"cursor"`
	Dropped uint64                   `json:"dropped"`
	Series  map[string][]stats.Point `json:"series"`
	Events  []DecisionEntry          `json:"events,omitempty"`
	Tenants []TenantSample           `json:"tenants,omitempty"`
}

// Collector subscribes to an executive's report and trace streams and
// maintains ring-buffered time series for the live ops surface: per-stage
// rate, queue sojourn, extent, load, and robustness counters; process-level
// context occupancy, rejections, and power draw; per-tenant quotas and
// arbitration decisions.
//
// Backpressure policy, in two layers, so the executive never blocks on a
// slow ops consumer:
//
//   - Series points land in fixed-capacity PointRings (drop-oldest): a
//     consumer that falls more than a window behind loses the oldest
//     samples, detectable from the sequence gap.
//   - Trace events pass through a bounded channel drained by a single
//     writer goroutine; when the channel is full ObserveEvent drops the
//     event and counts it in Dropped rather than blocking the control
//     loop's flush.
type Collector struct {
	window int

	// seq is the global sample sequence; every point and decision entry
	// gets the next value, so one cursor orders the whole snapshot.
	seq     atomic.Uint64
	dropped atomic.Uint64
	// live is set once a real trace feed is attached; it suppresses the
	// decisions ObserveReport synthesizes from config diffs (used when
	// replaying JSONL logs, which carry no events).
	live atomic.Bool

	mu      sync.Mutex
	series  map[string]*stats.PointRing
	events  []DecisionEntry // ring, evHead oldest, evN live
	evHead  int
	evN     int
	tenants []TenantSample
	lastCfg string
	now     float64

	evCh      chan core.Event
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewCollector returns a running collector holding at most window points
// per series and window decision-log entries. Window below 16 is raised to
// 16. Close releases the writer goroutine.
func NewCollector(window int) *Collector {
	if window < 16 {
		window = 16
	}
	c := &Collector{
		window: window,
		series: map[string]*stats.PointRing{},
		events: make([]DecisionEntry, window),
		evCh:   make(chan core.Event, 256),
		done:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.writer()
	return c
}

// Close stops the writer goroutine after draining anything already queued.
func (c *Collector) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Dropped returns how many events the throttled writer has discarded.
func (c *Collector) Dropped() uint64 { return c.dropped.Load() }

// ObserveEvent ingests one trace event without ever blocking: when the
// writer's channel is full the event is dropped and counted. Safe to use
// directly as a core.Exec trace tap.
func (c *Collector) ObserveEvent(ev core.Event) {
	c.live.Store(true)
	select {
	case c.evCh <- ev:
	default:
		c.dropped.Add(1)
	}
}

// writer drains the event channel onto the decision ring.
func (c *Collector) writer() {
	defer c.wg.Done()
	for {
		select {
		case ev := <-c.evCh:
			c.recordEvent(ev)
		case <-c.done:
			for {
				select {
				case ev := <-c.evCh:
					c.recordEvent(ev)
				default:
					return
				}
			}
		}
	}
}

func (c *Collector) recordEvent(ev core.Event) {
	d := DecisionEntry{
		T:         ev.Time.Seconds(),
		Kind:      ev.Kind.String(),
		Nest:      ev.Nest,
		Stage:     ev.Stage,
		Mechanism: ev.Mechanism,
		From:      ev.FromExtent,
		To:        ev.ToExtent,
	}
	switch {
	case ev.Err != nil:
		d.Detail = ev.Err.Error()
	case ev.Kind == core.EventShed:
		d.Detail = fmt.Sprintf("+%d items (total %d)", ev.ShedItems, ev.ShedTotal)
	case ev.Kind == core.EventTaskStall:
		d.Detail = fmt.Sprintf("stalled %.2fs (policy %v)", ev.Stalled.Seconds(), ev.Policy)
	case ev.Kind == core.EventTaskFailure:
		d.Detail = fmt.Sprintf("failures %d, consecutive %d (policy %v)",
			ev.Failures, ev.ConsecFailures, ev.Policy)
	case ev.Kind == core.EventReconfigure && ev.Config != nil:
		d.Detail = fmt.Sprintf("extents %v", ev.Config.Extents)
	}
	c.mu.Lock()
	c.pushEventLocked(d)
	c.mu.Unlock()
}

// RecordDecision appends an externally-produced decision entry (e.g. a
// tenant arbiter grant or revocation). Seq is assigned here; T is the
// caller's clock.
func (c *Collector) RecordDecision(d DecisionEntry) {
	c.mu.Lock()
	c.pushEventLocked(d)
	c.mu.Unlock()
}

func (c *Collector) pushEventLocked(d DecisionEntry) {
	d.Seq = c.seq.Add(1)
	if c.evN == len(c.events) {
		c.events[c.evHead] = d
		c.evHead = (c.evHead + 1) % len(c.events)
	} else {
		c.events[(c.evHead+c.evN)%len(c.events)] = d
		c.evN++
	}
}

// observe appends one point to the named series, creating the ring on first
// use.
func (c *Collector) observeLocked(name string, t, v float64) {
	r := c.series[name]
	if r == nil {
		r = stats.NewPointRing(c.window)
		c.series[name] = r
	}
	r.Append(stats.Point{Seq: c.seq.Add(1), T: t, V: v})
}

// ObserveReport ingests one monitoring snapshot: per-stage gauges and
// counters for every stage in the nest tree, process-level occupancy and
// rejection totals, and power draw when the platform exposes it. When no
// live trace feed is attached (replay of a JSONL log), configuration diffs
// between consecutive reports are synthesized into the decision log so
// post-mortems still show when the executive moved.
func (c *Collector) ObserveReport(r *core.Report) {
	if r == nil {
		return
	}
	t := r.Time.Seconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
	c.observeLocked("proc/contexts", t, float64(r.Contexts))
	c.observeLocked("proc/busy", t, float64(r.BusyContexts))
	c.observeLocked("proc/blocked", t, float64(r.BlockedAcquires))
	c.observeLocked("proc/rejected", t, float64(r.Rejected))
	if r.Features != nil {
		if w, err := r.Features.Value(platform.FeatureSystemPower); err == nil {
			c.observeLocked("power/watts", t, w)
		}
	}
	c.walkNestLocked(t, r.Root)
	if fp := configFingerprint(r.Config); fp != c.lastCfg {
		if c.lastCfg != "" && !c.live.Load() {
			c.pushEventLocked(DecisionEntry{
				T: t, Kind: core.EventReconfigure.String(),
				Detail: fp,
			})
		}
		c.lastCfg = fp
	}
}

func (c *Collector) walkNestLocked(t float64, n *core.NestReport) {
	if n == nil {
		return
	}
	for i := range n.Stages {
		st := &n.Stages[i]
		base := "stage/" + n.Path + "/" + st.Name + "/"
		c.observeLocked(base+"rate", t, st.Rate)
		c.observeLocked(base+"sojourn", t, st.QueueSojourn)
		c.observeLocked(base+"extent", t, float64(st.Extent))
		c.observeLocked(base+"workers", t, float64(st.Workers))
		c.observeLocked(base+"load", t, st.Load)
		c.observeLocked(base+"stalls", t, float64(st.Stalls))
		c.observeLocked(base+"shed", t, float64(st.Shed))
		c.observeLocked(base+"failures", t, float64(st.Failures))
		c.observeLocked(base+"zombies", t, float64(st.Zombies))
	}
	// Deterministic child order keeps replayed sequence numbers stable.
	if len(n.Children) > 0 {
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c.walkNestLocked(t, n.Children[k])
		}
	}
}

// configFingerprint renders a config tree to a short stable string, the
// cheap equality check behind synthesized reconfigure entries.
func configFingerprint(cfg *core.Config) string {
	if cfg == nil {
		return ""
	}
	var b strings.Builder
	var walk func(prefix string, c *core.Config)
	walk = func(prefix string, c *core.Config) {
		fmt.Fprintf(&b, "%salt=%d extents=%v;", prefix, c.Alt, c.Extents)
		if len(c.Children) > 0 {
			keys := make([]string, 0, len(c.Children))
			for k := range c.Children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(k+":", c.Children[k])
			}
		}
	}
	walk("", cfg)
	return b.String()
}

// ObserveTenants ingests one arbiter sweep: the latest per-tenant state
// (served verbatim in snapshots) plus per-tenant quota/usage/pressure
// series.
func (c *Collector) ObserveTenants(t float64, samples []TenantSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	c.tenants = append(c.tenants[:0], samples...)
	for _, s := range samples {
		base := "tenant/" + s.Name + "/"
		c.observeLocked(base+"quota", t, float64(s.Quota))
		c.observeLocked(base+"used", t, float64(s.Used))
		c.observeLocked(base+"watts", t, s.Watts)
		c.observeLocked(base+"shed", t, float64(s.Shed))
		c.observeLocked(base+"rejected", t, float64(s.Rejected))
	}
}

// Snapshot returns everything newer than since (0 = the whole held window):
// per-series points, decision-log entries, and the latest tenant state.
// Series with no new points are omitted.
func (c *Collector) Snapshot(since uint64) *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Snapshot{
		Now:     c.now,
		Cursor:  c.seq.Load(),
		Dropped: c.dropped.Load(),
		Series:  map[string][]stats.Point{},
	}
	for name, r := range c.series {
		if pts := r.Since(since); len(pts) > 0 {
			out.Series[name] = pts
		}
	}
	for i := 0; i < c.evN; i++ {
		d := c.events[(c.evHead+i)%len(c.events)]
		if d.Seq > since {
			out.Events = append(out.Events, d)
		}
	}
	if len(c.tenants) > 0 {
		out.Tenants = append([]TenantSample(nil), c.tenants...)
	}
	return out
}

// SeriesNames returns the sorted names of all series observed so far.
func (c *Collector) SeriesNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.series))
	for name := range c.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Attach subscribes the collector to a live executive: a trace tap feeds
// the decision log and a sampler goroutine calls ObserveReport every
// interval until the executive finishes or the returned release is called.
// The executive's Begin/End hot path is untouched — sampling happens on the
// collector's own goroutine against the same Report() the control loop
// already builds.
func (c *Collector) Attach(e *core.Exec, interval time.Duration) (release func()) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	c.live.Store(true)
	untap := e.TapTrace(c.ObserveEvent)
	stop := make(chan struct{})
	var stopOnce sync.Once
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.ObserveReport(e.Report())
			case <-e.Done():
				c.ObserveReport(e.Report())
				return
			case <-stop:
				return
			case <-c.done:
				return
			}
		}
	}()
	return func() {
		stopOnce.Do(func() {
			untap()
			close(stop)
		})
	}
}

package metrics_test

import (
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
)

// BenchmarkBeginEndCollector is the go-test twin of the microbench gate
// case: the uncontended Begin/End loop with a Collector tapping the trace
// stream and sampling Report every 10ms. ReportAllocs counts the sampler's
// allocations too, so the 0 allocs/op hot-path guarantee holds only if the
// collector stays off the Begin/End path and its own work amortizes away.
func BenchmarkBeginEndCollector(b *testing.B) {
	b.ReportAllocs()
	var n int
	spec := &core.NestSpec{Name: "bench", Alts: []*core.AltSpec{{
		Name:   "loop",
		Stages: []core.StageSpec{{Name: "worker", Type: core.SEQ}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if n >= b.N {
						return core.Finished
					}
					n++
					w.Begin() //dopevet:ignore suspendcheck benchmark runs under a static configuration; statuses are irrelevant
					w.End()
					return core.Executing
				},
			}}}, nil
		},
	}}}
	e, err := core.New(spec,
		core.WithContexts(1),
		core.WithInitialConfig(&core.Config{Extents: []int{1}}))
	if err != nil {
		b.Fatal(err)
	}
	col := metrics.NewCollector(256)
	defer col.Close()
	release := col.Attach(e, 10*time.Millisecond)
	defer release()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

package metrics

import (
	"encoding/json"
	"testing"
	"time"

	"dope/internal/core"
)

func sampleReport(t float64, extent int, rate float64) *core.Report {
	return &core.Report{
		Time:         time.Duration(t * float64(time.Second)),
		Contexts:     8,
		BusyContexts: 3,
		Rejected:     5,
		Config:       &core.Config{Alt: 0, Extents: []int{extent}},
		Root: &core.NestReport{
			Name: "app", Path: "app",
			Stages: []core.StageReport{{
				Name: "work", Type: core.PAR, Extent: extent,
				Rate: rate, QueueSojourn: 0.002, Load: 4, Workers: extent,
				Stalls: 1, Shed: 2, Failures: 3, Zombies: 0,
			}},
			Children: map[string]*core.NestReport{
				"inner": {
					Name: "inner", Path: "app/inner",
					Stages: []core.StageReport{{Name: "leaf", Extent: 1, Rate: 10}},
				},
			},
		},
	}
}

func TestCollectorSeriesAndCursor(t *testing.T) {
	c := NewCollector(64)
	defer c.Close()
	c.ObserveReport(sampleReport(0.1, 2, 100))
	c.ObserveReport(sampleReport(0.2, 2, 120))

	snap := c.Snapshot(0)
	if snap.Cursor == 0 {
		t.Fatal("cursor did not advance")
	}
	rate := snap.Series["stage/app/work/rate"]
	if len(rate) != 2 || rate[0].V != 100 || rate[1].V != 120 {
		t.Fatalf("rate series = %+v, want two points 100,120", rate)
	}
	for _, name := range []string{
		"stage/app/work/sojourn", "stage/app/work/extent", "stage/app/work/stalls",
		"stage/app/work/shed", "stage/app/work/failures",
		"stage/app/inner/leaf/rate",
		"proc/contexts", "proc/busy", "proc/rejected",
	} {
		if len(snap.Series[name]) == 0 {
			t.Errorf("series %q missing from snapshot", name)
		}
	}

	// Incremental fetch: only the second report's points come back.
	mid := rate[0].Seq
	inc := c.Snapshot(snap.Cursor)
	if len(inc.Series) != 0 {
		t.Fatalf("snapshot at cursor returned %d series, want 0", len(inc.Series))
	}
	c.ObserveReport(sampleReport(0.3, 2, 140))
	inc = c.Snapshot(snap.Cursor)
	if got := inc.Series["stage/app/work/rate"]; len(got) != 1 || got[0].V != 140 {
		t.Fatalf("incremental rate = %+v, want one point 140", got)
	}
	if got := c.Snapshot(mid).Series["stage/app/work/rate"]; len(got) != 2 {
		t.Fatalf("mid-cursor rate = %+v, want 2 points", got)
	}

	// The snapshot marshals: this is the /series payload.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestCollectorSynthesizedDecisions(t *testing.T) {
	c := NewCollector(64)
	defer c.Close()
	// No trace feed attached: config changes between reports synthesize
	// reconfigure entries (the replay post-mortem path).
	c.ObserveReport(sampleReport(0.1, 2, 100))
	c.ObserveReport(sampleReport(0.2, 2, 100)) // unchanged: no entry
	c.ObserveReport(sampleReport(0.3, 4, 100)) // extent moved: entry
	snap := c.Snapshot(0)
	if len(snap.Events) != 1 {
		t.Fatalf("got %d synthesized events, want 1: %+v", len(snap.Events), snap.Events)
	}
	if snap.Events[0].Kind != core.EventReconfigure.String() {
		t.Errorf("kind = %q", snap.Events[0].Kind)
	}

	// Once a live event feed exists, synthesis stops (no duplicates).
	c.ObserveEvent(core.Event{Kind: core.EventResize, Stage: "work", FromExtent: 4, ToExtent: 6})
	c.ObserveReport(sampleReport(0.4, 6, 100))
	deadline := time.Now().Add(time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = len(c.Snapshot(0).Events)
		if n >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n != 2 {
		t.Fatalf("got %d events after live feed, want 2 (no synthesized duplicate)", n)
	}
}

func TestCollectorTenants(t *testing.T) {
	c := NewCollector(32)
	defer c.Close()
	c.ObserveTenants(1.0, []TenantSample{
		{Name: "video", State: "running", Quota: 6, Used: 5, Grants: 2, Revokes: 1},
		{Name: "search", State: "running", Quota: 2, Used: 2},
	})
	c.RecordDecision(DecisionEntry{T: 1.0, Kind: "grant", Nest: "video", From: 4, To: 6})
	snap := c.Snapshot(0)
	if len(snap.Tenants) != 2 || snap.Tenants[0].Name != "video" {
		t.Fatalf("tenants = %+v", snap.Tenants)
	}
	if len(snap.Series["tenant/video/quota"]) != 1 {
		t.Fatal("tenant quota series missing")
	}
	if len(snap.Events) != 1 || snap.Events[0].Kind != "grant" {
		t.Fatalf("events = %+v", snap.Events)
	}
}

func TestCollectorEventOverflowDrops(t *testing.T) {
	c := NewCollector(16)
	// Saturate the bounded channel faster than the writer can drain; the
	// producer must never block, only count drops.
	for i := 0; i < 100000; i++ {
		c.ObserveEvent(core.Event{Kind: core.EventResize, FromExtent: i, ToExtent: i + 1})
	}
	c.Close()
	snap := c.Snapshot(0)
	if len(snap.Events) == 0 {
		t.Fatal("no events recorded at all")
	}
	if snap.Dropped == 0 {
		t.Log("writer kept up with 100k events; drop path not exercised this run")
	}
}

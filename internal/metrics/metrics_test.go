package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestResponseRecorderEquation1(t *testing.T) {
	var r ResponseRecorder
	r.Observe(2*time.Second, 3*time.Second)
	r.Observe(0, 1*time.Second)
	if r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.MeanWait(); got != 1 {
		t.Errorf("mean wait = %v", got)
	}
	if got := r.MeanExec(); got != 2 {
		t.Errorf("mean exec = %v", got)
	}
	// Response = wait + exec per Equation 1.
	if got := r.MeanResponse(); got != 3 {
		t.Errorf("mean response = %v", got)
	}
}

func TestResponseRecorderPercentile(t *testing.T) {
	var r ResponseRecorder
	for i := 1; i <= 100; i++ {
		r.Observe(0, time.Duration(i)*time.Millisecond)
	}
	p99, err := r.Percentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p99-0.09901) > 0.001 {
		t.Errorf("p99 = %v", p99)
	}
	var empty ResponseRecorder
	if _, err := empty.Percentile(50); err == nil {
		t.Error("empty percentile should error")
	}
}

func TestResponseRecorderConcurrent(t *testing.T) {
	var r ResponseRecorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(time.Millisecond, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestThroughputMeterOverall(t *testing.T) {
	m := NewThroughputMeter(0.2)
	t0 := time.Unix(0, 0)
	m.Start(t0)
	for i := 1; i <= 10; i++ {
		m.Observe(t0.Add(time.Duration(i) * time.Second))
	}
	// 10 completions over 10 seconds.
	if got := m.Overall(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("overall = %v", got)
	}
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestThroughputMeterRecentTracksRate(t *testing.T) {
	m := NewThroughputMeter(0.5)
	t0 := time.Unix(0, 0)
	m.Start(t0)
	// Completions every 100ms => 10/sec.
	for i := 1; i <= 50; i++ {
		m.Observe(t0.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	if got := m.Recent(); math.Abs(got-10) > 0.5 {
		t.Fatalf("recent = %v, want ~10", got)
	}
}

func TestThroughputMeterSelfStart(t *testing.T) {
	m := NewThroughputMeter(0.2)
	t0 := time.Unix(100, 0)
	m.Observe(t0)
	m.Observe(t0.Add(2 * time.Second))
	if got := m.Overall(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("overall = %v, want 1 (2 completions / 2s)", got)
	}
}

func TestThroughputMeterEmpty(t *testing.T) {
	m := NewThroughputMeter(0.2)
	if m.Overall() != 0 || m.Recent() != 0 || m.Total() != 0 {
		t.Fatal("empty meter should report zeros")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Fatal("fresh series non-empty")
	}
	s.Append(time.Second, 5)
	s.Append(2*time.Second, 7)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	ts, v := s.At(1)
	if ts != 2*time.Second || v != 7 {
		t.Fatalf("At(1) = %v, %v", ts, v)
	}
	vals := s.Values()
	if len(vals) != 2 || vals[0] != 5 {
		t.Fatalf("values = %v", vals)
	}
	vals[0] = 999 // must not alias internal storage
	if _, v := s.At(0); v != 5 {
		t.Fatal("Values aliases internal storage")
	}
}

func TestSeriesConcurrentAppend(t *testing.T) {
	var s Series
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				s.Append(time.Duration(j), float64(j))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1000 {
		t.Fatalf("len = %d", s.Len())
	}
}

// Package platform models the parallel platform underneath DoPE: hardware
// execution contexts, a feature registry for platform monitoring, and a
// clock abstraction.
//
// The paper evaluates on a 24-core Intel Xeon X7460. We do not have that
// machine; instead a Contexts token pool caps how many task instances may be
// inside their CPU-intensive sections (between Task.Begin and Task.End)
// simultaneously, which is exactly the resource the paper's DoP extents
// ration. Goroutines stand in for Pthreads; the Go scheduler plays the role
// of the OS scheduler in the "Pthreads-OS" baseline.
package platform

import (
	"sync"
	"time"
)

// Clock abstracts time so that the runtime and the discrete-event simulator
// can share monitoring code. Real code uses WallClock; tests and the
// simulator use a VirtualClock they advance explicitly.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// WallClock is the process's real monotonic clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (WallClock) Since(t time.Time) time.Duration { return time.Since(t) }

// VirtualClock is a manually advanced clock for deterministic tests and the
// discrete-event simulator. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d. Negative d is ignored; virtual time
// never runs backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// Package platform models the parallel platform underneath DoPE: hardware
// execution contexts, a feature registry for platform monitoring, and a
// clock abstraction.
//
// The paper evaluates on a 24-core Intel Xeon X7460. We do not have that
// machine; instead a Contexts token pool caps how many task instances may be
// inside their CPU-intensive sections (between Task.Begin and Task.End)
// simultaneously, which is exactly the resource the paper's DoP extents
// ration. Goroutines stand in for Pthreads; the Go scheduler plays the role
// of the OS scheduler in the "Pthreads-OS" baseline.
package platform

import (
	"sync"
	"time"
)

// Clock abstracts time so that the runtime and the discrete-event simulator
// can share monitoring code. Real code uses WallClock; tests and the
// simulator use a VirtualClock they advance explicitly.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// NewTicker returns a ticker that delivers on multiples of d in this
	// clock's time base. The executive's control loop runs on it, so a
	// virtual clock drives control ticks deterministically.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-agnostic face of time.Ticker: a channel of tick
// times plus Stop. Like time.Ticker, ticks are dropped (not queued) when
// the receiver lags.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop releases the ticker's resources; the channel is not closed.
	Stop()
}

// WallClock is the process's real monotonic clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Since implements Clock.
func (WallClock) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTicker implements Clock over time.NewTicker.
func (WallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{t: time.NewTicker(d)}
}

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }

func (w wallTicker) Stop() { w.t.Stop() }

// VirtualClock is a manually advanced clock for deterministic tests and the
// discrete-event simulator. It is safe for concurrent use.
type VirtualClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*virtualTicker
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d. Negative d is ignored; virtual time
// never runs backwards. Tickers whose next deadline falls inside the jump
// fire (once per crossing, coalesced like time.Ticker).
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.fireLocked()
	c.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
		c.fireLocked()
	}
	c.mu.Unlock()
}

// NewTicker implements Clock: the ticker fires when Advance/Set crosses its
// next deadline. Delivery is non-blocking with a one-tick buffer, matching
// time.Ticker's drop-on-lag semantics.
func (c *VirtualClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("platform: non-positive ticker period")
	}
	c.mu.Lock()
	t := &virtualTicker{
		clock:  c,
		period: d,
		next:   c.now.Add(d),
		ch:     make(chan time.Time, 1),
	}
	c.tickers = append(c.tickers, t)
	c.mu.Unlock()
	return t
}

// fireLocked delivers due ticks. Called with c.mu held.
func (c *VirtualClock) fireLocked() {
	for _, t := range c.tickers {
		if t.next.After(c.now) {
			continue
		}
		select {
		case t.ch <- c.now:
		default: // receiver lagging: drop, like time.Ticker
		}
		// Skip any deadlines the jump overran; next strictly after now.
		missed := c.now.Sub(t.next)/t.period + 1
		t.next = t.next.Add(missed * t.period)
	}
}

type virtualTicker struct {
	clock  *VirtualClock
	period time.Duration
	next   time.Time
	ch     chan time.Time
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

func (t *virtualTicker) Stop() {
	c := t.clock
	c.mu.Lock()
	for i, other := range c.tickers {
		if other == t {
			c.tickers = append(c.tickers[:i], c.tickers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

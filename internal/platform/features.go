package platform

import (
	"fmt"
	"sort"
	"sync"
)

// FeatureCB produces the current value of a platform feature, e.g. system
// power draw, temperature, or the number of available hardware contexts.
// This is the callback the mechanism developer registers (Figure 9:
// DoPE::registerCB / DoPE::getValue).
type FeatureCB func() float64

// Features is the platform feature registry. Mechanism developers register
// named features with callbacks; mechanisms query current values during
// reconfiguration. Safe for concurrent use.
type Features struct {
	mu  sync.RWMutex
	cbs map[string]FeatureCB
}

// NewFeatures returns an empty registry.
func NewFeatures() *Features {
	return &Features{cbs: make(map[string]FeatureCB)}
}

// Register installs cb as the producer for feature name, replacing any
// previous registration. A nil cb removes the feature.
func (f *Features) Register(name string, cb FeatureCB) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cb == nil {
		delete(f.cbs, name)
		return
	}
	f.cbs[name] = cb
}

// Value returns the current value of the named feature.
func (f *Features) Value(name string) (float64, error) {
	f.mu.RLock()
	cb, ok := f.cbs[name]
	f.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("platform: unknown feature %q", name)
	}
	return cb(), nil
}

// Has reports whether the named feature is registered.
func (f *Features) Has(name string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.cbs[name]
	return ok
}

// Names returns the registered feature names in sorted order.
func (f *Features) Names() []string {
	f.mu.RLock()
	names := make([]string, 0, len(f.cbs))
	for n := range f.cbs {
		names = append(names, n)
	}
	f.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Well-known feature names used across the runtime and mechanisms.
const (
	// FeatureSystemPower is the instantaneous full-system power draw in
	// watts, as sampled through the (rate-limited) PDU.
	FeatureSystemPower = "SystemPower"
	// FeatureHardwareContexts is the number of hardware contexts available
	// to the application.
	FeatureHardwareContexts = "HardwareContexts"
	// FeatureBusyContexts is the number of currently occupied contexts.
	FeatureBusyContexts = "BusyContexts"
)

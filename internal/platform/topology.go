package platform

// Topology describes the machine's socket structure. The paper's third
// orchestration decision — "on which hardware thread should each stage be
// placed to maximize locality of communication" (§1) — needs to know which
// contexts share a socket: tasks exchanging items across sockets pay more
// for every queue transfer than tasks sharing a last-level cache.
type Topology struct {
	// Sockets is the number of processor packages.
	Sockets int
	// CoresPerSocket is the number of hardware contexts per package.
	CoresPerSocket int
}

// DefaultTopology is the evaluation machine: 4 sockets × 6-core Intel
// X7460 (§8.2).
func DefaultTopology() Topology { return Topology{Sockets: 4, CoresPerSocket: 6} }

// Contexts returns the machine's total hardware contexts.
func (t Topology) Contexts() int { return t.Sockets * t.CoresPerSocket }

// SocketOf returns the socket housing context id (ids are dense,
// socket-major). Out-of-range ids clamp to the last socket.
func (t Topology) SocketOf(ctx int) int {
	if ctx < 0 {
		return 0
	}
	s := ctx / t.CoresPerSocket
	if s >= t.Sockets {
		return t.Sockets - 1
	}
	return s
}

// SocketSpan returns how many distinct sockets a contiguous block of n
// contexts starting at context `start` touches.
func (t Topology) SocketSpan(start, n int) int {
	if n <= 0 {
		return 0
	}
	return t.SocketOf(start+n-1) - t.SocketOf(start) + 1
}

// SharedFraction estimates the fraction of communication between two
// context blocks that stays on-socket: the overlap of their socket sets
// weighted by the receiving block's distribution. Blocks are contiguous
// [aStart, aStart+aN) and [bStart, bStart+bN).
func (t Topology) SharedFraction(aStart, aN, bStart, bN int) float64 {
	if aN <= 0 || bN <= 0 {
		return 0
	}
	inA := make(map[int]bool)
	for c := aStart; c < aStart+aN; c++ {
		inA[t.SocketOf(c)] = true
	}
	shared := 0
	for c := bStart; c < bStart+bN; c++ {
		if inA[t.SocketOf(c)] {
			shared++
		}
	}
	return float64(shared) / float64(bN)
}

package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Contexts models a fixed set of hardware execution contexts (the paper's
// "hardware threads"). A task instance acquires one context for the duration
// of its CPU-intensive section; when all contexts are busy further acquires
// block, which is the oversubscription the Pthreads-OS baseline suffers and
// DoPE's DoP budgeting avoids.
//
// The pool is two-tier. The fast tier is a set of sharded token freelists:
// each shard packs its free-token count and its served-acquire count into
// one atomic word, so the common-case Acquire and Release are a single CAS
// with no lock and no allocation. The slow tier is the original mutex — it
// is taken only when a would-be acquirer finds every shard empty and must
// block, and it exists solely to park and wake those waiters; every token
// transfer, including the ones that resolve a blocked Acquire, still goes
// through the shard CAS, so the accounting getters stay exact.
//
// Acquire/Release are also usable in a non-blocking mode (TryAcquire) so the
// scheduler can detect saturation without stalling.
//
// Tokens are not pinned to a home shard: a token taken from shard 0 may be
// returned to shard 1. The overflow panic is therefore keyed to the global
// invariant sum(free_i) <= n — each shard caps free_i at cap_i with
// sum(cap_i) = n, so a Release that finds every shard at cap has proven the
// pool already holds all n tokens, exactly the condition under which the
// previous channel-based implementation panicked.
type Contexts struct {
	n      int
	shards []ctxShard
	caps   []uint64 // free-token capacity per shard; sum == n
	peak   atomic.Int64

	waitBlocked atomic.Int64 // acquirers currently blocked

	mu   sync.Mutex // slow tier: parks acquirers when all shards are empty
	cond *sync.Cond
}

// maxShards bounds the freelist fan-out. More shards spread CAS contention
// but lengthen the worst-case probe; eight covers the machine sizes the
// executive targets without making TryAcquire's full pass noticeable.
const maxShards = 8

// Shard word layout: low freeBits hold the shard's free-token count, the
// remaining high bits count acquires served by this shard. One successful
// CAS of (word - 1 + acquireInc) both takes a token and counts the acquire,
// so the Acquires() total is exact without a second atomic op.
const (
	freeBits   = 20
	freeMask   = (1 << freeBits) - 1
	acquireInc = 1 << freeBits
)

// ctxShard is padded out to a cache line so shards never false-share, and
// carries the occupancy integral for the acquires it served. The integral is
// sampled at one acquire in sampleEvery rather than every acquire — the
// sample decision falls out of the acquire counter already packed in the
// shard word, so the common-case acquire pays no extra atomic write for it.
type ctxShard struct {
	// The three atomics share the shard's line deliberately: busySum and
	// samples are written only by the 1-in-sampleEvery acquirer that just
	// won the CAS on word, so the writer already owns the line — splitting
	// them would triple the shard footprint for no contention win (layout
	// pinned by the BENCH_beginend.json trajectory).
	//dopevet:ignore padcheck sampled integral written by the CAS winner that owns the line
	word    atomic.Uint64 // packed free count + acquire count
	busySum atomic.Int64  // sum of global busy at sampled acquires
	samples atomic.Int64  // how many acquires were sampled
	_       [40]byte
}

// sampleEvery subsamples the occupancy integral: shard acquire counts 1,
// 1+sampleEvery, 1+2*sampleEvery, ... are sampled, so a shard's first acquire
// always is (MeanOccupancy is nonzero as soon as anything was acquired).
const sampleEvery = 8

// NewContexts returns a pool of n hardware contexts. n < 1 is treated as 1.
func NewContexts(n int) *Contexts {
	if n < 1 {
		n = 1
	}
	k := n
	if k > maxShards {
		k = maxShards
	}
	c := &Contexts{
		n:      n,
		shards: make([]ctxShard, k),
		caps:   make([]uint64, k),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < k; i++ {
		cap := uint64(n / k)
		if i < n%k {
			cap++
		}
		c.caps[i] = cap
		c.shards[i].word.Store(cap) // all tokens start free
	}
	return c
}

// N returns the number of hardware contexts.
func (c *Contexts) N() int { return c.n }

// takeToken claims a token from some shard and returns the shard index.
// One CAS attempt per shard per pass: a CAS loss means another context just
// moved on that shard, so the probe advances rather than fighting for the
// same cache line. A false return is a snapshot ("all shards looked empty"),
// the same guarantee the non-blocking channel receive used to give.
// The second return is the winning shard's pre-CAS word: it carries both the
// free count (from which a single-shard pool derives the exact occupancy) and
// the acquire count (which decides occupancy sampling), so noteAcquire needs
// no extra loads beyond what the take already paid for.
func (c *Contexts) takeToken() (shard int, prev uint64, ok bool) {
	for i := range c.shards {
		w := c.shards[i].word.Load()
		if w&freeMask == 0 {
			continue
		}
		if c.shards[i].word.CompareAndSwap(w, w-1+acquireInc) {
			return i, w, true
		}
	}
	return 0, 0, false
}

// putToken returns a token to the lowest shard with spare capacity. Unlike
// takeToken it retries a shard whose CAS was lost while the shard still has
// room: advancing only on observed-at-cap is what makes a false return a
// proof that sum(free) == n, i.e. a genuine overflow.
func (c *Contexts) putToken() bool {
	for i := range c.shards {
		for {
			w := c.shards[i].word.Load()
			if w&freeMask >= c.caps[i] {
				break // shard full; try the next one
			}
			if c.shards[i].word.CompareAndSwap(w, w+1) {
				return true
			}
		}
	}
	return false
}

// Acquire blocks until a context is free and claims it.
func (c *Contexts) Acquire() {
	if shard, prev, ok := c.takeToken(); ok {
		c.noteAcquire(shard, prev)
		return
	}
	c.acquireSlow()
}

// acquireSlow parks the caller until a token appears. Registering in
// waitBlocked *before* the locked re-check closes the lost-wakeup window: a
// releaser publishes its token before it reads waitBlocked, so either the
// re-check sees the token or the releaser sees the registration and
// broadcasts.
func (c *Contexts) acquireSlow() {
	c.waitBlocked.Add(1)
	c.mu.Lock()
	shard, prev, ok := c.takeToken()
	for !ok {
		c.cond.Wait()
		shard, prev, ok = c.takeToken()
	}
	c.mu.Unlock()
	c.waitBlocked.Add(-1)
	c.noteAcquire(shard, prev)
}

// TryAcquire claims a context if one is free and reports whether it did.
func (c *Contexts) TryAcquire() bool {
	if shard, prev, ok := c.takeToken(); ok {
		c.noteAcquire(shard, prev)
		return true
	}
	return false
}

// noteAcquire updates the occupancy statistics for the acquire that just
// succeeded (prev is the winning shard's pre-CAS word). Busy is derived from
// the shard words (n minus the free tokens), not kept as a separate counter,
// so Release stays a single CAS. With a single shard the taking CAS's own
// free count is the exact occupancy; with several the snapshot can sag below
// the true concurrent occupancy when another acquire's CAS has landed but its
// shard read here raced a release, so it is clamped to at least 1 (the
// sampling acquirer itself holds a token). It can never exceed n because free
// counts are nonnegative. The occupancy integral is only written for sampled
// acquires; the peak watermark is checked on every acquire.
func (c *Contexts) noteAcquire(shard int, prev uint64) {
	var b int64
	if len(c.shards) == 1 {
		b = int64(c.n) - int64(prev&freeMask) + 1
	} else {
		b = c.sampleBusy()
	}
	if b > c.peak.Load() {
		c.bumpPeak(b)
	}
	if (prev>>freeBits)%sampleEvery == 0 {
		c.shards[shard].busySum.Add(b)
		c.shards[shard].samples.Add(1)
	}
}

// sampleBusy estimates the occupancy of a multi-shard pool for noteAcquire,
// clamped to at least 1 (the sampling acquirer holds a token). Split out so
// single-shard pools keep noteAcquire inlinable.
func (c *Contexts) sampleBusy() int64 {
	b := int64(c.n) - c.freeTokens()
	if b < 1 {
		b = 1
	}
	return b
}

// bumpPeak raises the peak-occupancy watermark to at least b. Split out of
// noteAcquire so the common no-new-peak path stays within the inliner's
// budget.
func (c *Contexts) bumpPeak(b int64) {
	for {
		p := c.peak.Load()
		if b <= p || c.peak.CompareAndSwap(p, b) {
			return
		}
	}
}

// freeTokens sums the shards' free counts. The per-shard loads are not a
// consistent cut, so the sum is a snapshot bounded by [0, n], exact whenever
// the pool is quiescent.
func (c *Contexts) freeTokens() int64 {
	var free int64
	for i := range c.shards {
		free += int64(c.shards[i].word.Load() & freeMask)
	}
	return free
}

// Release returns a context to the pool. Releasing more than was acquired
// panics: that is a scheduler bug, not a recoverable condition. The check is
// the putToken overflow proof itself — every shard at cap means all n tokens
// are already free, so this Release has no matching Acquire.
func (c *Contexts) Release() {
	if !c.putToken() {
		panic(fmt.Sprintf("platform: Release without matching Acquire (context pool overflow, n=%d)", c.n))
	}
	if c.waitBlocked.Load() > 0 {
		// The broadcast must run under mu so it cannot slip between a
		// waiter's failed re-check and its cond.Wait.
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// Busy returns how many contexts are currently claimed.
func (c *Contexts) Busy() int {
	b := int64(c.n) - c.freeTokens()
	if b < 0 {
		b = 0
	}
	return int(b)
}

// Idle returns how many contexts are currently free.
func (c *Contexts) Idle() int { return c.n - c.Busy() }

// Peak returns the maximum simultaneous occupancy observed.
func (c *Contexts) Peak() int { return int(c.peak.Load()) }

// Blocked returns how many acquirers are currently waiting for a context; a
// persistently positive value signals oversubscription.
func (c *Contexts) Blocked() int { return int(c.waitBlocked.Load()) }

// MeanOccupancy returns the average number of busy contexts over sampled
// acquires (one in sampleEvery per shard, always including the first), an
// acquire-weighted utilization proxy for the monitors.
func (c *Contexts) MeanOccupancy() float64 {
	var sum, samples int64
	for i := range c.shards {
		sum += c.shards[i].busySum.Load()
		samples += c.shards[i].samples.Load()
	}
	if samples == 0 {
		return 0
	}
	return float64(sum) / float64(samples)
}

// Acquires returns the total number of successful acquisitions.
func (c *Contexts) Acquires() uint64 {
	var acquires uint64
	for i := range c.shards {
		acquires += c.shards[i].word.Load() >> freeBits
	}
	return acquires
}

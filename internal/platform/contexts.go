package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Contexts models a fixed set of hardware execution contexts (the paper's
// "hardware threads"). A task instance acquires one context for the duration
// of its CPU-intensive section; when all contexts are busy further acquires
// block, which is the oversubscription the Pthreads-OS baseline suffers and
// DoPE's DoP budgeting avoids.
//
// Acquire/Release are also usable in a non-blocking mode (TryAcquire) so the
// scheduler can detect saturation without stalling.
type Contexts struct {
	n      int
	tokens chan struct{}
	busy   atomic.Int64
	peak   atomic.Int64

	mu          sync.Mutex
	busyIntSum  float64 // integral of busy over acquire count, for utilization
	acquires    uint64
	releases    uint64
	waitBlocked atomic.Int64 // acquirers currently blocked
}

// NewContexts returns a pool of n hardware contexts. n < 1 is treated as 1.
func NewContexts(n int) *Contexts {
	if n < 1 {
		n = 1
	}
	c := &Contexts{n: n, tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		c.tokens <- struct{}{}
	}
	return c
}

// N returns the number of hardware contexts.
func (c *Contexts) N() int { return c.n }

// Acquire blocks until a context is free and claims it.
func (c *Contexts) Acquire() {
	c.waitBlocked.Add(1)
	<-c.tokens
	c.waitBlocked.Add(-1)
	c.noteAcquire()
}

// TryAcquire claims a context if one is free and reports whether it did.
func (c *Contexts) TryAcquire() bool {
	select {
	case <-c.tokens:
		c.noteAcquire()
		return true
	default:
		return false
	}
}

func (c *Contexts) noteAcquire() {
	b := c.busy.Add(1)
	for {
		p := c.peak.Load()
		if b <= p || c.peak.CompareAndSwap(p, b) {
			break
		}
	}
	c.mu.Lock()
	c.acquires++
	c.busyIntSum += float64(b)
	c.mu.Unlock()
}

// Release returns a context to the pool. Releasing more than was acquired
// panics: that is a scheduler bug, not a recoverable condition.
func (c *Contexts) Release() {
	if c.busy.Add(-1) < 0 {
		panic("platform: Release without matching Acquire")
	}
	c.mu.Lock()
	c.releases++
	c.mu.Unlock()
	select {
	case c.tokens <- struct{}{}:
	default:
		panic(fmt.Sprintf("platform: context pool overflow (n=%d)", c.n))
	}
}

// Busy returns how many contexts are currently claimed.
func (c *Contexts) Busy() int { return int(c.busy.Load()) }

// Idle returns how many contexts are currently free.
func (c *Contexts) Idle() int { return c.n - c.Busy() }

// Peak returns the maximum simultaneous occupancy observed.
func (c *Contexts) Peak() int { return int(c.peak.Load()) }

// Blocked returns how many acquirers are currently waiting for a context; a
// persistently positive value signals oversubscription.
func (c *Contexts) Blocked() int { return int(c.waitBlocked.Load()) }

// MeanOccupancy returns the average number of busy contexts sampled at each
// acquire, an (acquire-weighted) utilization proxy for the monitors.
func (c *Contexts) MeanOccupancy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acquires == 0 {
		return 0
	}
	return c.busyIntSum / float64(c.acquires)
}

// Acquires returns the total number of successful acquisitions.
func (c *Contexts) Acquires() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acquires
}

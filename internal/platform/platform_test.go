package platform

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewVirtualClock(start)
	if !c.Now().Equal(start) {
		t.Fatal("start time wrong")
	}
	c.Advance(5 * time.Second)
	if got := c.Since(start); got != 5*time.Second {
		t.Fatalf("since = %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Since(start); got != 5*time.Second {
		t.Fatalf("negative advance moved clock: %v", got)
	}
}

func TestVirtualClockSet(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewVirtualClock(start)
	target := start.Add(time.Minute)
	c.Set(target)
	if !c.Now().Equal(target) {
		t.Fatal("set failed")
	}
	c.Set(start) // backwards: ignored
	if !c.Now().Equal(target) {
		t.Fatal("clock moved backwards")
	}
}

func TestWallClock(t *testing.T) {
	var c WallClock
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("wall clock ran backwards")
	}
}

func TestVirtualTickerFiresOnAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	tk := c.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
		t.Fatal("ticker fired before any advance")
	default:
	}
	c.Advance(9 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("ticker fired before its period elapsed")
	default:
	}
	c.Advance(time.Millisecond)
	select {
	case at := <-tk.C():
		if !at.Equal(time.Unix(0, 0).Add(10 * time.Millisecond)) {
			t.Fatalf("tick time = %v", at)
		}
	default:
		t.Fatal("ticker did not fire at its period")
	}
}

func TestVirtualTickerCoalescesMissedTicks(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	// A jump across 100 periods delivers one (buffered) tick, like
	// time.Ticker with a lagging receiver.
	c.Advance(100 * time.Millisecond)
	select {
	case <-tk.C():
	default:
		t.Fatal("no tick after a long jump")
	}
	select {
	case <-tk.C():
		t.Fatal("missed ticks were queued instead of dropped")
	default:
	}
	// The next deadline is the first multiple after the jump.
	c.Advance(time.Millisecond)
	select {
	case <-tk.C():
	default:
		t.Fatal("ticker dead after a coalesced jump")
	}
}

func TestVirtualTickerStop(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	tk := c.NewTicker(time.Millisecond)
	tk.Stop()
	c.Advance(10 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestWallTicker(t *testing.T) {
	var c WallClock
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("wall ticker never fired")
	}
}

func TestContextsBounds(t *testing.T) {
	c := NewContexts(2)
	if c.N() != 2 || c.Idle() != 2 || c.Busy() != 0 {
		t.Fatal("fresh pool state wrong")
	}
	c.Acquire()
	c.Acquire()
	if c.Busy() != 2 || c.Idle() != 0 {
		t.Fatalf("busy=%d idle=%d", c.Busy(), c.Idle())
	}
	if c.TryAcquire() {
		t.Fatal("TryAcquire should fail on exhausted pool")
	}
	c.Release()
	if !c.TryAcquire() {
		t.Fatal("TryAcquire should succeed after release")
	}
	c.Release()
	c.Release()
	if c.Peak() != 2 {
		t.Fatalf("peak = %d", c.Peak())
	}
}

func TestContextsMinimumOne(t *testing.T) {
	c := NewContexts(0)
	if c.N() != 1 {
		t.Fatalf("n = %d, want 1", c.N())
	}
}

func TestContextsReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContexts(1).Release()
}

func TestContextsBlockedCount(t *testing.T) {
	c := NewContexts(1)
	c.Acquire()
	done := make(chan struct{})
	go func() {
		c.Acquire()
		close(done)
	}()
	deadline := time.Now().Add(time.Second)
	for c.Blocked() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocked count never reached 1")
		}
		time.Sleep(time.Millisecond)
	}
	c.Release()
	<-done
	c.Release()
	if c.Blocked() != 0 {
		t.Fatalf("blocked = %d", c.Blocked())
	}
}

func TestContextsNeverExceedsN(t *testing.T) {
	const n, workers, iters = 4, 16, 50
	c := NewContexts(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Acquire()
				if b := c.Busy(); b > n {
					t.Errorf("busy = %d > %d", b, n)
				}
				c.Release()
			}
		}()
	}
	wg.Wait()
	if c.Peak() > n {
		t.Fatalf("peak = %d > %d", c.Peak(), n)
	}
	if c.Acquires() != workers*iters {
		t.Fatalf("acquires = %d", c.Acquires())
	}
	if c.MeanOccupancy() <= 0 || c.MeanOccupancy() > n {
		t.Fatalf("mean occupancy = %v", c.MeanOccupancy())
	}
}

func TestFeaturesRegistry(t *testing.T) {
	f := NewFeatures()
	if f.Has(FeatureSystemPower) {
		t.Fatal("fresh registry should be empty")
	}
	if _, err := f.Value(FeatureSystemPower); err == nil {
		t.Fatal("unknown feature should error")
	}
	f.Register(FeatureSystemPower, func() float64 { return 450 })
	v, err := f.Value(FeatureSystemPower)
	if err != nil || v != 450 {
		t.Fatalf("value = %v, %v", v, err)
	}
	f.Register(FeatureHardwareContexts, func() float64 { return 24 })
	names := f.Names()
	if len(names) != 2 || names[0] != FeatureHardwareContexts {
		t.Fatalf("names = %v", names)
	}
	f.Register(FeatureSystemPower, nil) // remove
	if f.Has(FeatureSystemPower) {
		t.Fatal("nil registration should remove")
	}
}

func TestFeaturesConcurrent(t *testing.T) {
	f := NewFeatures()
	f.Register("x", func() float64 { return 1 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := f.Value("x"); err != nil {
					t.Errorf("value: %v", err)
				}
				f.Register("x", func() float64 { return 1 })
			}
		}()
	}
	wg.Wait()
}

// Property: for any interleaving of acquire/release pairs the pool never
// exceeds its capacity and ends balanced.
func TestContextsBalanceProperty(t *testing.T) {
	f := func(nRaw uint8, ops uint8) bool {
		n := int(nRaw)%8 + 1
		c := NewContexts(n)
		held := 0
		for i := 0; i < int(ops); i++ {
			if held < n && i%3 != 0 {
				c.Acquire()
				held++
			} else if held > 0 {
				c.Release()
				held--
			}
			if c.Busy() != held || c.Busy() > n {
				return false
			}
		}
		for held > 0 {
			c.Release()
			held--
		}
		return c.Busy() == 0 && c.Idle() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ContextPool is the executive-facing surface of a hardware-context token
// pool. *Contexts (the machine-wide sharded pool) implements it directly;
// *TenantPool implements it as a quota-bounded view over a shared *Contexts,
// so several executives can share one machine under an arbiter while each
// one's mechanisms keep seeing a pool sized to their own grant.
type ContextPool interface {
	// N is the pool size the owner may plan against. For a TenantPool this
	// is the live quota, so mechanisms that size themselves from
	// Report.Contexts track quota changes automatically.
	N() int
	// Acquire blocks until a context is available and claims it.
	Acquire()
	// TryAcquire claims a context if one is available without blocking.
	TryAcquire() bool
	// Release returns a context; releasing more than was acquired panics.
	Release()
	// Busy, Idle, Peak, Blocked, MeanOccupancy, and Acquires are the
	// occupancy statistics the monitors and admin surfaces read.
	Busy() int
	Idle() int
	Peak() int
	Blocked() int
	MeanOccupancy() float64
	Acquires() uint64
}

var (
	_ ContextPool = (*Contexts)(nil)
	_ ContextPool = (*TenantPool)(nil)
)

// TenantPool word layout: the low tpUsedBits hold the tenant's held-token
// count, the high bits hold its current quota. One CAS both checks
// used < quota and takes the slot, so the admission decision and the count
// update cannot be split by a concurrent quota change.
const (
	tpUsedBits = 32
	tpUsedMask = (1 << tpUsedBits) - 1
)

// TenantPool is one tenant's quota-bounded view of a shared Contexts pool.
// Acquire first claims a slot against the tenant's own quota (a CAS on the
// packed used|quota word) and only then takes a token from the shared pool;
// Release returns the shared token before decrementing the used count, so
// used is always an upper bound on the tenant's shared-pool holdings.
//
// Isolation invariant: as long as the arbiter keeps
// sum_i max(quota_i, used_i) <= shared.N(), a tenant whose quota admits an
// acquire always finds a free shared token, so one tenant's stalls, panics,
// or quota debt never block another tenant's Begin fast path. Waiters that
// exhaust their own quota park on the tenant's private condvar, never on the
// shared pool's.
//
// Quota changes (SetQuota) take effect immediately for admission; a quota
// lowered below the current used count simply stops admitting until Releases
// drain the debt — nothing is preempted here, revocation escalation is the
// arbiter's job.
type TenantPool struct {
	shared *Contexts

	word     atomic.Uint64 // packed used count (low) + quota (high)
	peak     atomic.Int64
	acquires atomic.Uint64
	busySum  atomic.Int64 // sum of used at sampled acquires
	samples  atomic.Int64

	waitBlocked atomic.Int64 // acquirers parked on this tenant's quota

	mu   sync.Mutex // parks quota-exhausted acquirers; see Contexts.acquireSlow
	cond *sync.Cond
}

// NewTenantPool returns a quota-bounded view of shared. The quota is clamped
// to [0, shared.N()]; a zero quota admits nothing until SetQuota raises it.
func NewTenantPool(shared *Contexts, quota int) *TenantPool {
	t := &TenantPool{shared: shared}
	t.cond = sync.NewCond(&t.mu)
	t.word.Store(uint64(clampQuota(quota, shared.N())) << tpUsedBits)
	return t
}

func clampQuota(q, n int) int {
	if q < 0 {
		return 0
	}
	if q > n {
		return n
	}
	return q
}

// Shared returns the machine-wide pool this view draws from.
func (t *TenantPool) Shared() *Contexts { return t.shared }

// N returns the tenant's current quota (the pool size its mechanisms should
// plan against).
func (t *TenantPool) N() int { return int(t.word.Load() >> tpUsedBits) }

// Quota is N under its arbitration name.
func (t *TenantPool) Quota() int { return t.N() }

// SetQuota installs a new quota, clamped to [0, shared.N()]. Raising the
// quota wakes parked acquirers; lowering it below the current used count
// leaves the overage to drain through Releases.
func (t *TenantPool) SetQuota(q int) {
	nq := uint64(clampQuota(q, t.shared.N()))
	for {
		w := t.word.Load()
		if t.word.CompareAndSwap(w, w&tpUsedMask|nq<<tpUsedBits) {
			if nq > w>>tpUsedBits && t.waitBlocked.Load() > 0 {
				t.mu.Lock()
				t.cond.Broadcast()
				t.mu.Unlock()
			}
			return
		}
	}
}

// takeQuota claims one slot against the quota and returns the resulting used
// count (the tenant's exact occupancy, used for peak/mean accounting). A
// false return means used >= quota at some instant — the tenant is at its
// grant, not that the machine is busy.
func (t *TenantPool) takeQuota() (used int64, ok bool) {
	for {
		w := t.word.Load()
		if w&tpUsedMask >= w>>tpUsedBits {
			return 0, false
		}
		if t.word.CompareAndSwap(w, w+1) {
			return int64(w&tpUsedMask) + 1, true
		}
	}
}

// Acquire blocks until the tenant's quota admits the caller, then claims a
// token from the shared pool. Under the arbiter's isolation invariant the
// shared claim never blocks; without an arbiter (overcommitted hand-built
// quotas) it degrades to waiting on the shared pool like everyone else.
func (t *TenantPool) Acquire() {
	used, ok := t.takeQuota()
	if !ok {
		used = t.acquireSlow()
	}
	t.shared.Acquire()
	t.noteAcquire(used)
}

// acquireSlow parks the caller until quota admits it, mirroring
// Contexts.acquireSlow: registering in waitBlocked before the locked
// re-check closes the lost-wakeup window against Release and SetQuota.
func (t *TenantPool) acquireSlow() int64 {
	t.waitBlocked.Add(1)
	t.mu.Lock()
	used, ok := t.takeQuota()
	for !ok {
		t.cond.Wait()
		used, ok = t.takeQuota()
	}
	t.mu.Unlock()
	t.waitBlocked.Add(-1)
	return used
}

// TryAcquire claims a context if the quota and the shared pool both admit
// one. A quota slot taken against a shared pool that turns out to be empty
// is rolled back, so TryAcquire never strands quota.
func (t *TenantPool) TryAcquire() bool {
	used, ok := t.takeQuota()
	if !ok {
		return false
	}
	if !t.shared.TryAcquire() {
		t.putQuota()
		return false
	}
	t.noteAcquire(used)
	return true
}

// Release returns the shared token first and only then decrements the used
// count: used stays an upper bound on the tenant's shared holdings, so a
// waiter admitted by the decrement always finds the token already free.
func (t *TenantPool) Release() {
	t.shared.Release()
	t.putQuota()
	if t.waitBlocked.Load() > 0 {
		// Broadcast under mu so the wakeup cannot slip between a waiter's
		// failed re-check and its cond.Wait.
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

func (t *TenantPool) putQuota() {
	for {
		w := t.word.Load()
		if w&tpUsedMask == 0 {
			panic(fmt.Sprintf("platform: TenantPool Release without matching Acquire (quota=%d)", w>>tpUsedBits))
		}
		if t.word.CompareAndSwap(w, w-1) {
			return
		}
	}
}

// noteAcquire maintains the occupancy statistics. used is exact (it came out
// of the winning CAS), so peak needs no clamping; the mean integral is
// subsampled one acquire in sampleEvery, always including the first.
func (t *TenantPool) noteAcquire(used int64) {
	a := t.acquires.Add(1)
	for {
		p := t.peak.Load()
		if used <= p || t.peak.CompareAndSwap(p, used) {
			break
		}
	}
	if (a-1)%sampleEvery == 0 {
		t.busySum.Add(used)
		t.samples.Add(1)
	}
}

// Busy returns how many contexts the tenant currently holds (including any
// over-quota debt still draining after a revocation).
func (t *TenantPool) Busy() int { return int(t.word.Load() & tpUsedMask) }

// Idle returns how much of the quota is currently unclaimed.
func (t *TenantPool) Idle() int {
	w := t.word.Load()
	idle := int(w>>tpUsedBits) - int(w&tpUsedMask)
	if idle < 0 {
		return 0
	}
	return idle
}

// OverQuota returns how far the tenant's holdings exceed its quota — nonzero
// only while a lowered quota's debt drains.
func (t *TenantPool) OverQuota() int {
	w := t.word.Load()
	over := int(w&tpUsedMask) - int(w>>tpUsedBits)
	if over < 0 {
		return 0
	}
	return over
}

// Peak returns the maximum simultaneous occupancy the tenant reached.
func (t *TenantPool) Peak() int { return int(t.peak.Load()) }

// Blocked returns how many of the tenant's acquirers are parked on its
// quota. Blocking on the shared pool (an arbiter invariant violation or an
// arbiter-less overcommit) shows up on shared.Blocked instead.
func (t *TenantPool) Blocked() int { return int(t.waitBlocked.Load()) }

// MeanOccupancy returns the tenant's average held contexts over sampled
// acquires.
func (t *TenantPool) MeanOccupancy() float64 {
	samples := t.samples.Load()
	if samples == 0 {
		return 0
	}
	return float64(t.busySum.Load()) / float64(samples)
}

// Acquires returns the tenant's total successful acquisitions.
func (t *TenantPool) Acquires() uint64 { return t.acquires.Load() }

package platform

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTenantPoolQuotaBounds(t *testing.T) {
	shared := NewContexts(8)
	tp := NewTenantPool(shared, 3)
	if tp.N() != 3 || tp.Quota() != 3 {
		t.Fatalf("quota = %d, want 3", tp.N())
	}
	for i := 0; i < 3; i++ {
		if !tp.TryAcquire() {
			t.Fatalf("TryAcquire %d under quota failed", i)
		}
	}
	if tp.TryAcquire() {
		t.Fatal("TryAcquire beyond quota succeeded")
	}
	if tp.Busy() != 3 || tp.Idle() != 0 {
		t.Fatalf("busy=%d idle=%d, want 3/0", tp.Busy(), tp.Idle())
	}
	if shared.Busy() != 3 {
		t.Fatalf("shared busy = %d, want 3", shared.Busy())
	}
	for i := 0; i < 3; i++ {
		tp.Release()
	}
	if shared.Busy() != 0 || tp.Busy() != 0 {
		t.Fatalf("after releases: shared busy=%d tenant busy=%d", shared.Busy(), tp.Busy())
	}
}

func TestTenantPoolClampsQuotaToShared(t *testing.T) {
	shared := NewContexts(4)
	tp := NewTenantPool(shared, 99)
	if tp.N() != 4 {
		t.Fatalf("quota = %d, want clamp to 4", tp.N())
	}
	tp.SetQuota(-5)
	if tp.N() != 0 {
		t.Fatalf("quota = %d, want clamp to 0", tp.N())
	}
}

func TestTenantPoolReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unmatched Release")
		}
	}()
	tp := NewTenantPool(NewContexts(2), 2)
	tp.Release()
}

func TestTenantPoolAcquireBlocksAtQuota(t *testing.T) {
	shared := NewContexts(4)
	tp := NewTenantPool(shared, 1)
	tp.Acquire()
	got := make(chan struct{})
	go func() {
		tp.Acquire()
		close(got)
	}()
	waitCond(t, func() bool { return tp.Blocked() == 1 })
	select {
	case <-got:
		t.Fatal("second Acquire ran past a quota of 1")
	default:
	}
	tp.Release()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Acquire never woke after Release")
	}
	tp.Release()
}

func TestTenantPoolSetQuotaWakesWaiters(t *testing.T) {
	shared := NewContexts(4)
	tp := NewTenantPool(shared, 0)
	got := make(chan struct{})
	go func() {
		tp.Acquire()
		close(got)
	}()
	waitCond(t, func() bool { return tp.Blocked() == 1 })
	tp.SetQuota(2)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire never woke after SetQuota raised the quota")
	}
	tp.Release()
}

func TestTenantPoolOverQuotaDebtDrains(t *testing.T) {
	shared := NewContexts(8)
	tp := NewTenantPool(shared, 4)
	for i := 0; i < 4; i++ {
		tp.Acquire()
	}
	tp.SetQuota(1)
	if got := tp.OverQuota(); got != 3 {
		t.Fatalf("OverQuota = %d, want 3", got)
	}
	if tp.TryAcquire() {
		t.Fatal("TryAcquire admitted while over quota")
	}
	for i := 0; i < 3; i++ {
		tp.Release()
	}
	if got := tp.OverQuota(); got != 0 {
		t.Fatalf("OverQuota after drain = %d, want 0", got)
	}
	// used == quota == 1: still no headroom.
	if tp.TryAcquire() {
		t.Fatal("TryAcquire admitted at quota")
	}
	tp.Release()
	if !tp.TryAcquire() {
		t.Fatal("TryAcquire refused under quota after debt drained")
	}
	tp.Release()
}

// TestTenantPoolIsolation pins the containment invariant: with
// sum(quota_i) <= N, a tenant that exhausts its own quota (its workers stuck
// holding tokens) never makes another tenant's under-quota Acquire block.
func TestTenantPoolIsolation(t *testing.T) {
	shared := NewContexts(4)
	hog := NewTenantPool(shared, 2)
	victim := NewTenantPool(shared, 2)
	hog.Acquire()
	hog.Acquire() // hog wedged at quota, tokens never released
	done := make(chan struct{})
	go func() {
		victim.Acquire()
		victim.Acquire()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("victim's under-quota Acquire blocked behind the hog")
	}
	if shared.Busy() != 4 {
		t.Fatalf("shared busy = %d, want 4", shared.Busy())
	}
	victim.Release()
	victim.Release()
	hog.Release()
	hog.Release()
}

func TestTenantPoolTryAcquireRollsBackQuotaOnSharedExhaustion(t *testing.T) {
	shared := NewContexts(2)
	other := NewTenantPool(shared, 2)
	tp := NewTenantPool(shared, 2) // overcommitted on purpose: 2+2 > 2
	other.Acquire()
	other.Acquire()
	if tp.TryAcquire() {
		t.Fatal("TryAcquire succeeded with the shared pool empty")
	}
	if tp.Busy() != 0 {
		t.Fatalf("quota slot leaked: busy = %d, want 0", tp.Busy())
	}
	other.Release()
	other.Release()
}

func TestTenantPoolStats(t *testing.T) {
	shared := NewContexts(8)
	tp := NewTenantPool(shared, 4)
	tp.Acquire()
	tp.Acquire()
	if tp.Peak() != 2 {
		t.Fatalf("peak = %d, want 2", tp.Peak())
	}
	if tp.Acquires() != 2 {
		t.Fatalf("acquires = %d, want 2", tp.Acquires())
	}
	if m := tp.MeanOccupancy(); m < 1 || m > 2 {
		t.Fatalf("mean occupancy = %v, want within [1,2]", m)
	}
	tp.Release()
	tp.Release()
}

// TestTenantPoolConcurrentChurn hammers two tenants over one shared pool
// while quotas move, then checks the global balance invariant: all tokens
// return and no tenant leaks quota slots.
func TestTenantPoolConcurrentChurn(t *testing.T) {
	const n = 8
	shared := NewContexts(n)
	a := NewTenantPool(shared, n/2)
	b := NewTenantPool(shared, n/2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(tp *TenantPool) {
		defer wg.Done()
		for !stop.Load() {
			tp.Acquire()
			tp.Release()
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go worker(a)
		go worker(b)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		quotas := []int{1, 3, 2, 4, 1, 2}
		for i := 0; !stop.Load(); i++ {
			q := quotas[i%len(quotas)]
			a.SetQuota(q)
			b.SetQuota(n - q)
			time.Sleep(time.Millisecond)
		}
		// Leave both quotas open so parked workers can finish their
		// in-flight Acquire and observe stop.
		a.SetQuota(n / 2)
		b.SetQuota(n / 2)
	}()
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if shared.Busy() != 0 {
		t.Fatalf("shared busy = %d after churn, want 0", shared.Busy())
	}
	if a.Busy() != 0 || b.Busy() != 0 {
		t.Fatalf("tenant busy = %d/%d after churn, want 0/0", a.Busy(), b.Busy())
	}
	if a.Peak() > n || b.Peak() > n {
		t.Fatalf("tenant peak %d/%d exceeds machine size %d", a.Peak(), b.Peak(), n)
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

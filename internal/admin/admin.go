// Package admin exposes a running executive over HTTP — the
// administrator's console (§4): inspect the monitoring snapshot, pin a
// static configuration, or switch the active mechanism, all against a live
// system without touching application code.
//
// Endpoints (JSON):
//
//	GET  /report     the current monitoring snapshot (replay.Entry shape)
//	GET  /config     the active parallelism configuration
//	PUT  /config     install a configuration (normalized; extent changes
//	                 resize stages in place, alternative switches suspend)
//	GET  /mechanism  {"name": "..."} of the active mechanism, or null
//	PUT  /mechanism  {"name": "tbf"} switch mechanisms by registered name;
//	                 {"name": "static"} freezes the current configuration
//	GET  /stats      executive counters (uptime, reconfigurations,
//	                 suspensions, in-place resizes, stalls, shed items, ...)
//	                 plus per-stage observation rows (queue sojourn, observed)
//	GET  /series     ring-buffered time series from an attached
//	                 metrics.Collector (per-stage rate/sojourn/extent,
//	                 robustness counters, power, decision log); ?since=<cursor>
//	                 fetches incrementally — pass the previous response's
//	                 "cursor" to get only newer points; 404 when no collector
//	                 is attached
//	GET  /whatif     the causal what-if profile per nest: stages ranked by
//	                 the predicted throughput payoff of one more context
//	                 (or a 10% service-time cut), from live measurements
//	GET  /healthz    liveness probe: 200 while healthy, 503 once a task has
//	                 failed or stalled under FailStop or abandoned (zombie)
//	                 slots linger, with per-stage detail
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/monitor"
	"dope/internal/replay"
)

// MechanismFactory constructs a fresh mechanism instance. Factories are
// used (rather than instances) because mechanisms carry per-run state.
type MechanismFactory func() core.Mechanism

// Handler builds the administration http.Handler for a running executive.
// mechs maps names accepted by PUT /mechanism to factories; the name
// "static" is always available and installs no mechanism. GET /series
// answers 404 until a collector is attached via HandlerWithCollector.
func Handler(e *core.Exec, mechs map[string]MechanismFactory) http.Handler {
	return HandlerWithCollector(e, mechs, nil)
}

// HandlerWithCollector is Handler plus a live-ops collector backing the
// GET /series endpoint. The collector is typically attached to the same
// executive (metrics.Collector.Attach) but the handler serves whatever
// snapshot the collector holds.
func HandlerWithCollector(e *core.Exec, mechs map[string]MechanismFactory, col *metrics.Collector) http.Handler {
	mux := http.NewServeMux()
	h := &adminState{exec: e, mechs: mechs, col: col}
	mux.HandleFunc("/", h.index)
	mux.HandleFunc("/report", h.report)
	mux.HandleFunc("/config", h.config)
	mux.HandleFunc("/mechanism", h.mechanism)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/series", h.series)
	mux.HandleFunc("/whatif", h.whatif)
	mux.HandleFunc("/healthz", h.healthz)
	return mux
}

// serveSeries answers GET /series from a collector snapshot: the full held
// window by default, or everything after ?since=<cursor> for incremental
// consumers (dope-top's live mode polls this way).
func serveSeries(w http.ResponseWriter, r *http.Request, col *metrics.Collector) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if col == nil {
		http.Error(w, "no metrics collector attached", http.StatusNotFound)
		return
	}
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad since cursor %q: %v", s, err), http.StatusBadRequest)
			return
		}
		since = v
	}
	writeJSON(w, col.Snapshot(since))
}

// NewServer wraps the admin handler in an http.Server with read/write
// timeouts, so a stuck or slow client cannot pin the admin port's
// goroutines the way a stalled task can no longer pin the executive.
func NewServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

type adminState struct {
	exec  *core.Exec
	mechs map[string]MechanismFactory
	col   *metrics.Collector
}

func (h *adminState) series(w http.ResponseWriter, r *http.Request) {
	serveSeries(w, r, h.col)
}

func (h *adminState) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, map[string]any{
		"endpoints": []string{
			"GET /report", "GET /config", "PUT /config",
			"GET /mechanism", "PUT /mechanism", "GET /stats",
			"GET /series", "GET /whatif", "GET /healthz",
		},
		"mechanisms": h.names(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *adminState) report(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, replay.Encode(h.exec.Report()))
}

func (h *adminState) config(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, h.exec.CurrentConfig())
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg, err := core.ParseConfig(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h.exec.SetConfig(cfg)
		writeJSON(w, h.exec.CurrentConfig())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// mechanismBody is the PUT /mechanism payload.
type mechanismBody struct {
	Name string `json:"name"`
}

func (h *adminState) mechanism(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		m := h.exec.Mechanism()
		if m == nil {
			writeJSON(w, map[string]any{"name": nil, "available": h.names()})
			return
		}
		writeJSON(w, map[string]any{"name": m.Name(), "available": h.names()})
	case http.MethodPut, http.MethodPost:
		var body mechanismBody
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if body.Name == "static" || body.Name == "" {
			h.exec.SetMechanism(nil)
			writeJSON(w, map[string]any{"name": nil})
			return
		}
		factory, ok := h.mechs[body.Name]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown mechanism %q (available: %v)",
				body.Name, h.names()), http.StatusBadRequest)
			return
		}
		m := factory()
		h.exec.SetMechanism(m)
		writeJSON(w, map[string]any{"name": m.Name()})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h *adminState) names() []string {
	out := []string{"static"}
	for n := range h.mechs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (h *adminState) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rep := h.exec.Report()
	var stalls, shed uint64
	var zombies int
	stages := []stageStats{}
	walkStages(rep.Root, func(nest string, sr *core.StageReport) {
		stalls += sr.Stalls
		shed += sr.Shed
		zombies += sr.Zombies
		stages = append(stages, stageStats{
			Nest: nest, Stage: sr.Name,
			SojournSec: sr.QueueSojourn, Observed: sr.Observed,
			Rate: sr.Rate, Extent: sr.Extent, Workers: sr.Workers,
		})
	})
	writeJSON(w, map[string]any{
		"uptimeSec":        h.exec.Uptime().Seconds(),
		"reconfigurations": h.exec.Reconfigurations(),
		"suspensions":      h.exec.Suspensions(),
		"resizes":          h.exec.Resizes(),
		"taskFailures":     h.exec.TaskFailures(),
		"taskStalls":       h.exec.TaskStalls(),
		"stageStalls":      stalls,
		"shedItems":        shed,
		"zombieSlots":      zombies,
		"rejectedArrivals": rep.Rejected,
		"contexts":         h.exec.Contexts().N(),
		"busyContexts":     h.exec.Contexts().Busy(),
		"peakContexts":     h.exec.Contexts().Peak(),
		"stages":           stages,
	})
}

// stageStats is one per-stage observation row in GET /stats: the sojourn
// gauge and observation flag (added with the sojourn-aware mechanisms) that
// the roll-up counters above cannot carry.
type stageStats struct {
	Nest       string  `json:"nest"`
	Stage      string  `json:"stage"`
	SojournSec float64 `json:"sojournSec"`
	Observed   bool    `json:"observed"`
	Rate       float64 `json:"rate"`
	Extent     int     `json:"extent"`
	Workers    int     `json:"workers"`
}

// whatif serves the live causal what-if profile: one WhatIfReport per nest
// in the tree, keyed by path, each ranking that nest's stages by the
// predicted throughput payoff of one more hardware context. A nest whose
// stages have not all completed an iteration yet reports Valid=false with
// the reason, never a fabricated estimate; non-finite payoffs are scrubbed
// before marshalling.
func (h *adminState) whatif(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rep := h.exec.Report()
	nests := map[string]monitor.WhatIfReport{}
	var walk func(n *core.NestReport)
	walk = func(n *core.NestReport) {
		if n == nil {
			return
		}
		nests[n.Path] = n.WhatIf()
		for _, child := range n.Children {
			walk(child)
		}
	}
	walk(rep.Root)
	root := ""
	if rep.Root != nil {
		root = rep.Root.Path
	}
	writeJSON(w, map[string]any{"root": root, "nests": nests})
}

// walkStages visits every stage report in the nest tree.
func walkStages(n *core.NestReport, visit func(nestPath string, sr *core.StageReport)) {
	if n == nil {
		return
	}
	for i := range n.Stages {
		visit(n.Path, &n.Stages[i])
	}
	for _, child := range n.Children {
		walkStages(child, visit)
	}
}

// stageHealth is one unhealthy stage's detail in the /healthz body.
type stageHealth struct {
	Nest              string `json:"nest"`
	Stage             string `json:"stage"`
	Stalls            uint64 `json:"stalls"`
	StallsDuringDrain uint64 `json:"stallsDuringDrain"`
	Zombies           int    `json:"zombies"`
	Shed              uint64 `json:"shed"`
	Workers           int    `json:"workers"`
}

// healthz is the load-balancer probe. 200 while the executive is healthy;
// 503 once a task failure or stall escalated to FailStop (the run error is
// set — the executive is terminating) or while abandoned (zombie) slots
// linger. Stages that have ever stalled or shed stay listed in the detail
// body either way, so a probe flapping back to 200 still shows history.
func (h *adminState) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	detail := []stageHealth{}
	zombies := 0
	walkStages(h.exec.Report().Root, func(nest string, sr *core.StageReport) {
		zombies += sr.Zombies
		if sr.Stalls > 0 || sr.Zombies > 0 || sr.Shed > 0 {
			detail = append(detail, stageHealth{
				Nest: nest, Stage: sr.Name,
				Stalls: sr.Stalls, StallsDuringDrain: sr.StallsDuringDrain,
				Zombies: sr.Zombies, Shed: sr.Shed, Workers: sr.Workers,
			})
		}
	})
	status, code := "ok", http.StatusOK
	var failure any
	if zombies > 0 {
		status, code = "stalled", http.StatusServiceUnavailable
	}
	if err := h.exec.Err(); err != nil {
		status, code = "failed", http.StatusServiceUnavailable
		// The run error may carry a multi-page goroutine dump; the probe
		// body keeps the headline and leaves the dump to GET /report logs.
		failure, _, _ = strings.Cut(err.Error(), "\n")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"status":     status,
		"error":      failure,
		"taskStalls": h.exec.TaskStalls(),
		"zombies":    zombies,
		"stages":     detail,
	})
}

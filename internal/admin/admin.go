// Package admin exposes a running executive over HTTP — the
// administrator's console (§4): inspect the monitoring snapshot, pin a
// static configuration, or switch the active mechanism, all against a live
// system without touching application code.
//
// Endpoints (JSON):
//
//	GET  /report     the current monitoring snapshot (replay.Entry shape)
//	GET  /config     the active parallelism configuration
//	PUT  /config     install a configuration (normalized; extent changes
//	                 resize stages in place, alternative switches suspend)
//	GET  /mechanism  {"name": "..."} of the active mechanism, or null
//	PUT  /mechanism  {"name": "tbf"} switch mechanisms by registered name;
//	                 {"name": "static"} freezes the current configuration
//	GET  /stats      executive counters (uptime, reconfigurations,
//	                 suspensions, in-place resizes, ...)
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"dope/internal/core"
	"dope/internal/replay"
)

// MechanismFactory constructs a fresh mechanism instance. Factories are
// used (rather than instances) because mechanisms carry per-run state.
type MechanismFactory func() core.Mechanism

// Handler builds the administration http.Handler for a running executive.
// mechs maps names accepted by PUT /mechanism to factories; the name
// "static" is always available and installs no mechanism.
func Handler(e *core.Exec, mechs map[string]MechanismFactory) http.Handler {
	mux := http.NewServeMux()
	h := &adminState{exec: e, mechs: mechs}
	mux.HandleFunc("/", h.index)
	mux.HandleFunc("/report", h.report)
	mux.HandleFunc("/config", h.config)
	mux.HandleFunc("/mechanism", h.mechanism)
	mux.HandleFunc("/stats", h.stats)
	return mux
}

type adminState struct {
	exec  *core.Exec
	mechs map[string]MechanismFactory
}

func (h *adminState) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, map[string]any{
		"endpoints": []string{
			"GET /report", "GET /config", "PUT /config",
			"GET /mechanism", "PUT /mechanism", "GET /stats",
		},
		"mechanisms": h.names(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *adminState) report(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, replay.Encode(h.exec.Report()))
}

func (h *adminState) config(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, h.exec.CurrentConfig())
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg, err := core.ParseConfig(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h.exec.SetConfig(cfg)
		writeJSON(w, h.exec.CurrentConfig())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// mechanismBody is the PUT /mechanism payload.
type mechanismBody struct {
	Name string `json:"name"`
}

func (h *adminState) mechanism(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		m := h.exec.Mechanism()
		if m == nil {
			writeJSON(w, map[string]any{"name": nil, "available": h.names()})
			return
		}
		writeJSON(w, map[string]any{"name": m.Name(), "available": h.names()})
	case http.MethodPut, http.MethodPost:
		var body mechanismBody
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if body.Name == "static" || body.Name == "" {
			h.exec.SetMechanism(nil)
			writeJSON(w, map[string]any{"name": nil})
			return
		}
		factory, ok := h.mechs[body.Name]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown mechanism %q (available: %v)",
				body.Name, h.names()), http.StatusBadRequest)
			return
		}
		m := factory()
		h.exec.SetMechanism(m)
		writeJSON(w, map[string]any{"name": m.Name()})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (h *adminState) names() []string {
	out := []string{"static"}
	for n := range h.mechs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (h *adminState) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]any{
		"uptimeSec":        h.exec.Uptime().Seconds(),
		"reconfigurations": h.exec.Reconfigurations(),
		"suspensions":      h.exec.Suspensions(),
		"resizes":          h.exec.Resizes(),
		"taskFailures":     h.exec.TaskFailures(),
		"contexts":         h.exec.Contexts().N(),
		"busyContexts":     h.exec.Contexts().Busy(),
		"peakContexts":     h.exec.Contexts().Peak(),
	})
}

package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"dope/internal/metrics"
	"dope/internal/tenancy"
)

// MultiHandler builds the administration handler for a machine running many
// tenants under a tenancy.Arbiter. Every tenant-facing route keys on the
// stable registered tenant name — never on registration order — so detail
// rows survive a tenant being unregistered and re-registered: the name
// resolves to whatever executive currently owns it at request time.
//
// Endpoints (JSON):
//
//	GET /tenants                 per-tenant status map keyed by tenant name
//	                             (state, quota, used, shed, rejected, watts)
//	ANY /tenants/<name>/<sub>    the single-tenant admin surface (report,
//	                             config, mechanism, stats, whatif, healthz)
//	                             of the named tenant's executive
//	GET /stats                   machine counters: shared pool occupancy,
//	                             admission rejections, arbitration churn
//	                             (grants/revokes), per-tenant roll-up
//	GET /series                  ring-buffered time series from an attached
//	                             collector (per-tenant quota/used/pressure,
//	                             arbitration decision log); ?since=<cursor>
//	                             for incremental fetch; 404 when no
//	                             collector is attached
//	GET /healthz                 machine probe: one tenant's failure does
//	                             not fail the machine — 503 only when every
//	                             registered tenant is unhealthy; per-tenant
//	                             health is always in the detail body
func MultiHandler(arb *tenancy.Arbiter, mechs map[string]MechanismFactory) http.Handler {
	return MultiHandlerWithCollector(arb, mechs, nil)
}

// MultiHandlerWithCollector is MultiHandler plus a live-ops collector
// backing GET /series — typically the one fed by Arbiter.AttachCollector.
// The per-tenant delegated surface shares the same collector, so
// /tenants/<name>/series answers too.
func MultiHandlerWithCollector(arb *tenancy.Arbiter, mechs map[string]MechanismFactory, col *metrics.Collector) http.Handler {
	mux := http.NewServeMux()
	h := &multiState{arb: arb, mechs: mechs, col: col}
	mux.HandleFunc("/", h.index)
	mux.HandleFunc("/tenants", h.tenants)
	mux.HandleFunc("/tenants/", h.tenant)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/series", h.series)
	mux.HandleFunc("/healthz", h.healthz)
	return mux
}

type multiState struct {
	arb   *tenancy.Arbiter
	mechs map[string]MechanismFactory
	col   *metrics.Collector
}

func (h *multiState) series(w http.ResponseWriter, r *http.Request) {
	serveSeries(w, r, h.col)
}

func (h *multiState) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	names := []string{}
	for _, st := range h.arb.Tenants() {
		names = append(names, st.Name)
	}
	writeJSON(w, map[string]any{
		"endpoints": []string{
			"GET /tenants", "ANY /tenants/<name>/<endpoint>",
			"GET /stats", "GET /healthz",
		},
		"tenants": names,
	})
}

// tenants serves the per-tenant status rows keyed by stable name.
func (h *multiState) tenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rows := map[string]tenancy.TenantStatus{}
	for _, st := range h.arb.Tenants() {
		rows[st.Name] = st
	}
	writeJSON(w, rows)
}

// tenant routes /tenants/<name>/<sub> to the named tenant's single-tenant
// admin surface. The name is resolved on every request, so after an
// unregister/re-register cycle the same URL reaches the new executive.
func (h *multiState) tenant(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/tenants/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		h.tenants(w, r)
		return
	}
	t, ok := h.arb.Tenant(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no tenant named %q", name), http.StatusNotFound)
		return
	}
	inner := HandlerWithCollector(t.Exec(), h.mechs, h.col)
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	inner.ServeHTTP(w, r2)
}

func (h *multiState) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	pool := h.arb.Pool()
	perTenant := map[string]tenancy.TenantStatus{}
	var shed, rejected, grants, revokes uint64
	for _, st := range h.arb.Tenants() {
		perTenant[st.Name] = st
		shed += st.Shed
		rejected += st.Rejected
		grants += st.Grants
		revokes += st.Revokes
	}
	writeJSON(w, map[string]any{
		"contexts":         pool.N(),
		"busyContexts":     pool.Busy(),
		"peakContexts":     pool.Peak(),
		"blockedAcquires":  pool.Blocked(),
		"powerBudget":      h.arb.PowerBudget(),
		"rejectedTenants":  h.arb.RejectedTenants(),
		"shedItems":        shed,
		"rejectedArrivals": rejected,
		"grants":           grants,
		"revokes":          revokes,
		"tenants":          perTenant,
	})
}

// tenantHealth is one tenant's row in the machine /healthz body.
type tenantHealth struct {
	State     string `json:"state"`
	Healthy   bool   `json:"healthy"`
	Quota     int    `json:"quota"`
	OverQuota int    `json:"overQuota"`
	Shed      uint64 `json:"shed"`
	Rejected  uint64 `json:"rejected"`
	Err       string `json:"err,omitempty"`
}

// healthz is the machine-level probe. Tenant-scoped containment shows up
// here deliberately: a failed, evicted, or erroring tenant degrades only its
// own row (probe it at /tenants/<name>/healthz for a per-tenant 503); the
// machine answers 503 only when every registered tenant is unhealthy, i.e.
// when there is no healthy tenant left to serve.
func (h *multiState) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rows := map[string]tenantHealth{}
	healthy := 0
	sts := h.arb.Tenants()
	for _, st := range sts {
		ok := st.Err == "" &&
			st.State != tenancy.Failed.String() &&
			st.State != tenancy.Evicted.String()
		if ok {
			healthy++
		}
		rows[st.Name] = tenantHealth{
			State: st.State, Healthy: ok,
			Quota: st.Quota, OverQuota: st.OverQuota,
			Shed: st.Shed, Rejected: st.Rejected, Err: st.Err,
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case len(sts) == 0:
		status = "idle"
	case healthy == 0:
		status, code = "failed", http.StatusServiceUnavailable
	case healthy < len(sts):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSONBody(w, map[string]any{
		"status":  status,
		"healthy": healthy,
		"total":   len(sts),
		"tenants": rows,
	})
}

// writeJSONBody encodes after the status code is already committed (writeJSON
// would reset it on error).
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package admin

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/queue"
)

// testExec launches a small pipeline server and returns the executive, the
// work queue, and a completion counter.
func testExec(t *testing.T) (*core.Exec, *queue.Queue[int], *atomic.Int64) {
	t.Helper()
	work := queue.New[int](0)
	out := queue.New[int](4)
	var consumed atomic.Int64
	spec := &core.NestSpec{Name: "svc", Alts: []*core.AltSpec{{
		Name: "pipeline",
		Stages: []core.StageSpec{
			{Name: "produce", Type: core.SEQ},
			{Name: "consume", Type: core.PAR},
		},
		Make: func(item any) (*core.AltInstance, error) {
			out.Reopen()
			return &core.AltInstance{Stages: []core.StageFns{
				{
					Fn: func(w *core.Worker) core.Status {
						if w.Suspending() {
							return core.Suspended
						}
						v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
						if errors.Is(err, queue.ErrClosed) {
							return core.Finished
						}
						if !ok {
							return core.Suspended
						}
						w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
						w.End()
						out.Enqueue(v)
						return core.Executing
					},
					Load: func() float64 { return float64(work.Len()) },
					Fini: out.Close,
				},
				{
					Fn: func(w *core.Worker) core.Status {
						_, err := out.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin() //dopevet:ignore suspendcheck,tokenhold drain stage exits via queue close; sleep simulates stage work
						time.Sleep(200 * time.Microsecond)
						consumed.Add(1)
						w.End()
						return core.Executing
					},
					Load: func() float64 { return float64(out.Len()) },
				},
			}}, nil
		},
	}}}
	e, err := core.New(spec, core.WithContexts(8),
		core.WithControlInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return e, work, &consumed
}

func adminServer(t *testing.T, e *core.Exec) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(e, map[string]MechanismFactory{
		"tbf": func() core.Mechanism { return &mechanism.TBF{Threads: 8} },
		"fdp": func() core.Mechanism { return &mechanism.FDP{Threads: 8} },
	}))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func putJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestReportEndpoint(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)

	var rep struct {
		Contexts int `json:"contexts"`
		Root     struct {
			Name   string `json:"name"`
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"root"`
	}
	getJSON(t, srv.URL+"/report", &rep)
	if rep.Contexts != 8 || rep.Root.Name != "svc" || len(rep.Root.Stages) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestConfigEndpointRoundTrip(t *testing.T) {
	e, work, consumed := testExec(t)
	srv := adminServer(t, e)
	for i := 0; i < 50; i++ {
		work.Enqueue(i)
	}
	resp := putJSON(t, srv.URL+"/config", `{"alt":0,"extents":[1,4]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /config: %d", resp.StatusCode)
	}
	var cfg core.Config
	getJSON(t, srv.URL+"/config", &cfg)
	if cfg.Extents[1] != 4 {
		t.Fatalf("config = %v", &cfg)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if consumed.Load() != 50 {
		t.Fatalf("consumed %d of 50 across admin reconfiguration", consumed.Load())
	}
}

func TestConfigEndpointRejectsGarbage(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)
	if resp := putJSON(t, srv.URL+"/config", `{nope`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage config: %d", resp.StatusCode)
	}
}

func TestMechanismEndpoint(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)

	var got struct {
		Name      *string  `json:"name"`
		Available []string `json:"available"`
	}
	getJSON(t, srv.URL+"/mechanism", &got)
	if got.Name != nil {
		t.Fatalf("initial mechanism = %v, want null", got.Name)
	}
	if len(got.Available) != 3 { // static, tbf, fdp
		t.Fatalf("available = %v", got.Available)
	}

	if resp := putJSON(t, srv.URL+"/mechanism", `{"name":"tbf"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT tbf: %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/mechanism", &got)
	if got.Name == nil || *got.Name != "TBF" {
		t.Fatalf("mechanism = %v", got.Name)
	}

	if resp := putJSON(t, srv.URL+"/mechanism", `{"name":"static"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT static: %d", resp.StatusCode)
	}
	if e.Mechanism() != nil {
		t.Fatal("static should clear the mechanism")
	}

	if resp := putJSON(t, srv.URL+"/mechanism", `{"name":"zzz"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mechanism: %d", resp.StatusCode)
	}
}

func TestStatsEndpointAndMethodChecks(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)

	var stats map[string]any
	getJSON(t, srv.URL+"/stats", &stats)
	if stats["contexts"].(float64) != 8 {
		t.Fatalf("stats = %v", stats)
	}
	// Reconfiguration accounting is exposed: suspensions (whole-nest
	// respawns) and resizes (in-place worker-group changes) separately.
	for _, k := range []string{"reconfigurations", "suspensions", "resizes", "taskFailures"} {
		if _, ok := stats[k]; !ok {
			t.Fatalf("stats missing %q: %v", k, stats)
		}
	}
	// Method checks.
	resp, err := http.Post(srv.URL+"/report", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /report: %d", resp.StatusCode)
	}
}

func TestHealthzHealthy(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)

	var got struct {
		Status string `json:"status"`
		Error  any    `json:"error"`
	}
	getJSON(t, srv.URL+"/healthz", &got)
	if got.Status != "ok" || got.Error != nil {
		t.Fatalf("healthz = %+v", got)
	}
	resp, err := http.Post(srv.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: %d", resp.StatusCode)
	}
}

func TestHealthzReportsStall(t *testing.T) {
	// A stage whose first invocation wedges forever under FailStop: the
	// watchdog abandons the slot and records the run error, and /healthz
	// flips to 503 with the stage named in the detail.
	gate := make(chan struct{})
	defer close(gate)
	var calls atomic.Int64
	spec := &core.NestSpec{Name: "svc", Alts: []*core.AltSpec{{
		Name: "loop",
		Stages: []core.StageSpec{{
			Name: "wedge", Type: core.PAR,
			Deadline: 20 * time.Millisecond, OnFailure: core.FailStop,
		}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					if calls.Add(1) == 1 {
						//dopevet:ignore tokenhold the test wedges this worker on purpose to trip /healthz
						<-gate // wedged: only abandonment frees the goroutine's slot
					} else {
						//dopevet:ignore tokenhold simulated work stands in for a CPU-bound body
						time.Sleep(100 * time.Microsecond)
					}
					return w.End()
				},
			}}}, nil
		},
	}}}
	e, err := core.New(spec, core.WithContexts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	srv := adminServer(t, e)

	deadline := time.Now().Add(5 * time.Second)
	for e.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Err() == nil {
		t.Fatal("stall never escalated to a run error")
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz: %d, want 503", resp.StatusCode)
	}
	var got struct {
		Status     string `json:"status"`
		Error      string `json:"error"`
		TaskStalls uint64 `json:"taskStalls"`
		Zombies    int    `json:"zombies"`
		Stages     []struct {
			Nest    string `json:"nest"`
			Stage   string `json:"stage"`
			Stalls  uint64 `json:"stalls"`
			Zombies int    `json:"zombies"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "failed" || !strings.Contains(got.Error, "stalled") {
		t.Fatalf("healthz = %+v", got)
	}
	if strings.Contains(got.Error, "goroutine ") {
		t.Fatalf("healthz error should omit the goroutine dump: %.120q", got.Error)
	}
	if got.TaskStalls == 0 || got.Zombies == 0 {
		t.Fatalf("healthz counters = %+v", got)
	}
	found := false
	for _, st := range got.Stages {
		if st.Stage == "wedge" && st.Stalls > 0 && st.Zombies > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("wedged stage missing from detail: %+v", got.Stages)
	}
	e.Stop()
	if werr := e.Wait(); werr == nil || !strings.Contains(werr.Error(), "stalled") {
		t.Fatalf("Wait = %v, want the stall error", werr)
	}
}

func TestNewServerTimeouts(t *testing.T) {
	srv := NewServer("localhost:0", http.NotFoundHandler())
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("NewServer lacks timeouts: %+v", srv)
	}
}

func TestAdminDrivesLiveAdaptation(t *testing.T) {
	// End to end: switch the live system to TBF over HTTP and watch it
	// reconfigure.
	e, work, consumed := testExec(t)
	srv := adminServer(t, e)
	for i := 0; i < 400; i++ {
		work.Enqueue(i)
	}
	putJSON(t, srv.URL+"/mechanism", `{"name":"tbf"}`)
	deadline := time.Now().Add(3 * time.Second)
	for e.Reconfigurations() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if e.Reconfigurations() == 0 {
		t.Fatal("admin-installed mechanism never reconfigured")
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if consumed.Load() != 400 {
		t.Fatalf("consumed %d of 400", consumed.Load())
	}
}

func TestIndexEndpoint(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)
	var got struct {
		Endpoints  []string `json:"endpoints"`
		Mechanisms []string `json:"mechanisms"`
	}
	getJSON(t, srv.URL+"/", &got)
	if len(got.Endpoints) != 9 || len(got.Mechanisms) != 3 {
		t.Fatalf("index = %+v", got)
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

// TestWhatIfEndpoint drives work through the pipeline until the live
// what-if profile turns valid, then checks its shape: one report per nest,
// finite ranked payoffs, and the PAR consume stage carrying the only
// nonzero DoP payoff (the SEQ producer cannot accept contexts).
func TestWhatIfEndpoint(t *testing.T) {
	e, work, consumed := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	srv := adminServer(t, e)

	for i := 0; i < 64; i++ {
		work.Enqueue(i)
	}
	waitFor(t, func() bool { return consumed.Load() >= 64 })

	type whatIfBody struct {
		Root  string `json:"root"`
		Nests map[string]struct {
			Valid      bool   `json:"Valid"`
			Reason     string `json:"Reason"`
			Bottleneck string `json:"Bottleneck"`
			Stages     []struct {
				Name      string  `json:"Name"`
				PayoffDoP float64 `json:"PayoffDoP"`
				Demand    float64 `json:"Demand"`
			} `json:"Stages"`
		} `json:"nests"`
	}
	var got whatIfBody
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, srv.URL+"/whatif", &got)
		if rep, ok := got.Nests["svc"]; ok && rep.Valid {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("what-if never turned valid: %+v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got.Root != "svc" {
		t.Fatalf("root = %q, want svc", got.Root)
	}
	rep := got.Nests["svc"]
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %+v", rep.Stages)
	}
	for _, st := range rep.Stages {
		if st.Name == "produce" && st.PayoffDoP != 0 {
			t.Fatalf("SEQ stage has DoP payoff %v", st.PayoffDoP)
		}
		if st.Demand < 0 {
			t.Fatalf("negative demand for %s", st.Name)
		}
	}

	resp, err := http.Post(srv.URL+"/whatif", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /whatif = %d, want 405", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package admin

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dope/internal/metrics"
	"dope/internal/platform"
	"dope/internal/stats"
	"dope/internal/tenancy"
)

// seriesBody mirrors the metrics.Snapshot JSON shape as a client sees it.
type seriesBody struct {
	Now     float64                  `json:"now"`
	Cursor  uint64                   `json:"cursor"`
	Dropped uint64                   `json:"dropped"`
	Series  map[string][]stats.Point `json:"series"`
	Events  []metrics.DecisionEntry  `json:"events"`
	Tenants []metrics.TenantSample   `json:"tenants"`
}

func TestSeriesEndpointSingleTenant(t *testing.T) {
	e, work, _ := testExec(t)
	defer func() { work.Close(); e.Wait() }()
	col := metrics.NewCollector(256)
	defer col.Close()
	release := col.Attach(e, 5*time.Millisecond)
	defer release()
	srv := httptest.NewServer(HandlerWithCollector(e, nil, col))
	t.Cleanup(srv.Close)

	for i := 0; i < 50; i++ {
		work.Enqueue(i)
	}
	var got seriesBody
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/series", &got)
		if len(got.Series["stage/svc/consume/rate"]) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(got.Series["stage/svc/consume/rate"]) == 0 {
		t.Fatalf("no consume-rate points served; series: %d keys", len(got.Series))
	}
	if got.Cursor == 0 {
		t.Fatal("cursor missing from payload")
	}

	// Incremental fetch with the served cursor returns only newer points.
	var inc seriesBody
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/series?since="+strconv.FormatUint(got.Cursor, 10), &inc)
		if len(inc.Series) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for name, pts := range inc.Series {
		for _, p := range pts {
			if p.Seq <= got.Cursor {
				t.Fatalf("series %q returned stale point seq %d <= cursor %d", name, p.Seq, got.Cursor)
			}
		}
	}

	// A bad cursor is a 400; no collector is a 404.
	resp, err := http.Get(srv.URL + "/series?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: got %d, want 400", resp.StatusCode)
	}
	bare := httptest.NewServer(Handler(e, nil))
	t.Cleanup(bare.Close)
	resp, err = http.Get(bare.URL + "/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no collector: got %d, want 404", resp.StatusCode)
	}
}

func TestSeriesEndpointMultiTenant(t *testing.T) {
	arb := tenancy.New(platform.NewContexts(8),
		tenancy.WithTickInterval(2*time.Millisecond))
	t.Cleanup(arb.Close)
	col := metrics.NewCollector(256)
	t.Cleanup(col.Close)
	release := arb.AttachCollector(col, 5*time.Millisecond)
	t.Cleanup(release)
	srv := httptest.NewServer(MultiHandlerWithCollector(arb, nil, col))
	t.Cleanup(srv.Close)

	q, _ := register(t, arb, "alpha")
	defer q.Close()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}

	var got seriesBody
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/series", &got)
		if len(got.Series["tenant/alpha/quota"]) > 0 && len(got.Tenants) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(got.Series["tenant/alpha/quota"]) == 0 {
		t.Fatal("no tenant quota series on the machine /series endpoint")
	}
	if len(got.Tenants) != 1 || got.Tenants[0].Name != "alpha" {
		t.Fatalf("tenant table = %+v", got.Tenants)
	}
	// The delegated per-tenant surface serves the same collector.
	var sub seriesBody
	getJSON(t, srv.URL+"/tenants/alpha/series", &sub)
	if sub.Cursor == 0 {
		t.Fatal("delegated /tenants/alpha/series served nothing")
	}
}

// TestStatsExportsStageObservations pins the /stats audit: per-stage sojourn
// gauges and the Observed flag must be exported, not just the roll-ups.
func TestStatsExportsStageObservations(t *testing.T) {
	e, work, consumed := testExec(t)
	defer func() { e.Wait() }()
	for i := 0; i < 200; i++ {
		work.Enqueue(i)
	}
	deadline := time.Now().Add(2 * time.Second)
	for consumed.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	srv := adminServer(t, e)
	var got struct {
		RejectedArrivals uint64       `json:"rejectedArrivals"`
		Stages           []stageStats `json:"stages"`
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/stats", &got)
		if len(got.Stages) == 2 && got.Stages[1].Observed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	work.Close()
	if len(got.Stages) != 2 {
		t.Fatalf("stages rows = %+v, want produce+consume", got.Stages)
	}
	byName := map[string]stageStats{}
	for _, s := range got.Stages {
		byName[s.Stage] = s
		if s.Nest != "svc" {
			t.Errorf("stage %s has nest %q, want svc", s.Stage, s.Nest)
		}
	}
	if !byName["consume"].Observed {
		t.Error("consume stage never marked Observed in /stats")
	}
	if byName["consume"].SojournSec < 0 {
		t.Error("negative sojourn gauge")
	}
}

// TestMultiStatsExportsArbitrationChurn pins the machine /stats grant and
// revoke roll-ups plus the per-tenant Grants/Revokes rows.
func TestMultiStatsExportsArbitrationChurn(t *testing.T) {
	arb := tenancy.New(platform.NewContexts(8),
		tenancy.WithTickInterval(2*time.Millisecond))
	t.Cleanup(arb.Close)
	srv := httptest.NewServer(MultiHandler(arb, nil))
	t.Cleanup(srv.Close)

	qa, _ := register(t, arb, "alpha")
	defer qa.Close()
	for i := 0; i < 100; i++ {
		qa.Enqueue(i)
	}
	var got struct {
		Grants  uint64                          `json:"grants"`
		Revokes uint64                          `json:"revokes"`
		Tenants map[string]tenancy.TenantStatus `json:"tenants"`
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/stats", &got)
		if got.Grants > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Grants == 0 {
		t.Fatal("machine /stats never showed a grant")
	}
	row, ok := got.Tenants["alpha"]
	if !ok || row.Grants == 0 {
		t.Fatalf("per-tenant grant count missing: %+v", got.Tenants)
	}
}

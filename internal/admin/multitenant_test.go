package admin

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/platform"
	"dope/internal/queue"
	"dope/internal/tenancy"
)

// tenantSpec builds a one-stage doall nest draining work for tenant tests.
func tenantSpec(name string, work *queue.Queue[int], processed *atomic.Int64) *core.NestSpec {
	return &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: "worker", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					_, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					processed.Add(1)
					w.End()
					return core.Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func multiServer(t *testing.T) (*tenancy.Arbiter, *httptest.Server) {
	t.Helper()
	arb := tenancy.New(platform.NewContexts(8),
		tenancy.WithTickInterval(2*time.Millisecond))
	t.Cleanup(arb.Close)
	srv := httptest.NewServer(MultiHandler(arb, nil))
	t.Cleanup(srv.Close)
	return arb, srv
}

func register(t *testing.T, arb *tenancy.Arbiter, name string) (*queue.Queue[int], *atomic.Int64) {
	t.Helper()
	q := queue.New[int](0)
	var n atomic.Int64
	if _, err := arb.Register(tenancy.TenantSpec{Name: name, Root: tenantSpec(name, q, &n)}); err != nil {
		t.Fatal(err)
	}
	return q, &n
}

func TestMultiTenantRowsKeyedByName(t *testing.T) {
	arb, srv := multiServer(t)
	qa, _ := register(t, arb, "alpha")
	qb, _ := register(t, arb, "beta")
	defer qa.Close()
	defer qb.Close()

	var rows map[string]tenancy.TenantStatus
	getJSON(t, srv.URL+"/tenants", &rows)
	if len(rows) != 2 {
		t.Fatalf("got %d tenant rows, want 2", len(rows))
	}
	for _, name := range []string{"alpha", "beta"} {
		st, ok := rows[name]
		if !ok {
			t.Fatalf("no row keyed %q: %v", name, rows)
		}
		if st.Name != name || st.State != "running" {
			t.Fatalf("row %q = %+v", name, st)
		}
	}

	// Per-tenant single-tenant surface reached through the stable name.
	var stats map[string]any
	getJSON(t, srv.URL+"/tenants/beta/stats", &stats)
	if _, ok := stats["contexts"]; !ok {
		t.Fatalf("per-tenant stats missing contexts: %v", stats)
	}
}

// TestMultiTenantRowsSurviveReRegister is the satellite regression: detail
// rows key on the registered tenant name, so unregistering and
// re-registering a tenant keeps its URL and its row identity — no index
// shifting, no stale executive.
func TestMultiTenantRowsSurviveReRegister(t *testing.T) {
	arb, srv := multiServer(t)
	qa, _ := register(t, arb, "alpha")
	defer qa.Close()
	qb, nb := register(t, arb, "beta")

	// Let beta do some work, then retire it.
	for i := 0; i < 10; i++ {
		qb.Enqueue(i)
	}
	qb.Close()
	deadline := time.Now().Add(5 * time.Second)
	for nb.Load() != 10 {
		if time.Now().After(deadline) {
			t.Fatalf("beta processed %d/10", nb.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := arb.Unregister("beta"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/tenants/beta/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered tenant answered %d, want 404", resp.StatusCode)
	}
	var rows map[string]tenancy.TenantStatus
	getJSON(t, srv.URL+"/tenants", &rows)
	if _, ok := rows["beta"]; ok {
		t.Fatal("unregistered tenant still has a row")
	}
	if _, ok := rows["alpha"]; !ok {
		t.Fatal("alpha's row vanished with beta's unregistration")
	}

	// Re-register the same name: the same URLs reach the new executive.
	qb2, _ := register(t, arb, "beta")
	defer qb2.Close()
	getJSON(t, srv.URL+"/tenants", &rows)
	st, ok := rows["beta"]
	if !ok {
		t.Fatal("re-registered tenant has no row under its stable name")
	}
	if st.State != "running" {
		t.Fatalf("re-registered beta state = %q, want running", st.State)
	}
	var stats map[string]any
	getJSON(t, srv.URL+"/tenants/beta/stats", &stats)
	if up, ok := stats["uptimeSec"].(float64); !ok || up > 60 {
		t.Fatalf("re-registered beta's stats look stale: %v", stats)
	}
}

// TestMultiTenantHealthzIsolation pins the machine probe's containment
// semantics: one tenant failing degrades its own row but the machine stays
// 200 while any tenant is healthy.
func TestMultiTenantHealthzIsolation(t *testing.T) {
	arb, srv := multiServer(t)
	qa, _ := register(t, arb, "good")
	defer qa.Close()

	// A tenant that panics on its first item under the default FailStop.
	qBad := queue.New[int](0)
	bad := &core.NestSpec{Name: "bad", Alts: []*core.AltSpec{{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: "worker", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					panic("meltdown")
				},
			}}}, nil
		},
	}}}
	bt, err := arb.Register(tenancy.TenantSpec{Name: "bad", Root: bad})
	if err != nil {
		t.Fatal(err)
	}
	qBad.Close()
	_ = bt.Exec().Wait()
	deadline := time.Now().Add(5 * time.Second)
	for bt.State() != tenancy.Failed {
		if time.Now().After(deadline) {
			t.Fatalf("bad tenant state = %v, want failed", bt.State())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status  string                  `json:"status"`
		Tenants map[string]tenantHealth `json:"tenants"`
	}
	decodeBody(t, resp, &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("machine healthz = %d with a healthy tenant present, want 200", resp.StatusCode)
	}
	if body.Status != "degraded" {
		t.Fatalf("status = %q, want degraded", body.Status)
	}
	if body.Tenants["bad"].Healthy || !body.Tenants["good"].Healthy {
		t.Fatalf("per-tenant health wrong: %+v", body.Tenants)
	}

	// The per-tenant probe still answers 503 for the failed tenant.
	resp2, err := http.Get(srv.URL + "/tenants/bad/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed tenant's own healthz = %d, want 503", resp2.StatusCode)
	}

	// Retire the healthy tenant; with only the failed one left the machine
	// probe flips to 503.
	qa.Close()
	if err := arb.Unregister("good"); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("machine healthz = %d with no healthy tenant, want 503", resp3.StatusCode)
	}
}

func decodeBody(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// Package workload generates the request streams used throughout the
// paper's evaluation: "the arrival of tasks was simulated using a task
// queuing thread that enqueues tasks to a work queue according to a Poisson
// distribution. The average arrival rate determines the load factor on the
// system. A load factor of 1.0 corresponds to an average arrival rate equal
// to the maximum throughput sustainable by the system" (§8.2).
//
// Streams are seeded so every experiment is reproducible.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Arrivals is a Poisson arrival process: successive inter-arrival gaps are
// exponentially distributed with the configured rate. Not safe for
// concurrent use; each generator owns one stream.
type Arrivals struct {
	rng  *rand.Rand
	rate float64 // arrivals per second
}

// NewArrivals returns a Poisson process with the given mean arrival rate
// (tasks/second), seeded deterministically. Rate must be positive; a
// non-positive rate panics because it yields an undefined process.
func NewArrivals(rate float64, seed int64) *Arrivals {
	if rate <= 0 {
		panic("workload: arrival rate must be positive")
	}
	return &Arrivals{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

// Rate returns the mean arrival rate in tasks per second.
func (a *Arrivals) Rate() float64 { return a.rate }

// Next returns the next exponentially distributed inter-arrival gap.
func (a *Arrivals) Next() time.Duration {
	u := a.rng.Float64()
	for u == 0 { // avoid log(0)
		u = a.rng.Float64()
	}
	gap := -math.Log(u) / a.rate
	return time.Duration(gap * float64(time.Second))
}

// Times returns the first n absolute arrival offsets from time zero.
func (a *Arrivals) Times(n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := range out {
		t += a.Next()
		out[i] = t
	}
	return out
}

// LoadFactor describes an experiment operating point: the ratio of the mean
// arrival rate to the system's maximum sustainable throughput.
type LoadFactor float64

// RateFor converts the load factor into an arrival rate given the system's
// calibrated maximum throughput (tasks/second).
func (lf LoadFactor) RateFor(maxThroughput float64) float64 {
	return float64(lf) * maxThroughput
}

// CalibrationTasks is the number of tasks the paper uses to determine
// maximum throughput ("N was set to 500", §8.2).
const CalibrationTasks = 500

// MaxThroughput computes the paper's calibration: N tasks / T seconds where
// T is the time to execute the tasks in parallel but each task itself
// sequential. Runtime must be positive.
func MaxThroughput(nTasks int, runtime time.Duration) float64 {
	if runtime <= 0 {
		panic("workload: calibration runtime must be positive")
	}
	return float64(nTasks) / runtime.Seconds()
}

// Sizes generates per-task work sizes. The paper's service-type workloads
// have roughly homogeneous transactions (videos, queries, files); Jitter
// adds bounded multiplicative noise around the base size so parallel stages
// see realistic imbalance.
type Sizes struct {
	rng    *rand.Rand
	base   float64
	jitter float64 // fraction in [0,1): size in base*(1±jitter)
}

// NewSizes returns a size stream around base with the given jitter fraction
// (clamped to [0, 0.99]).
func NewSizes(base float64, jitter float64, seed int64) *Sizes {
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 0.99 {
		jitter = 0.99
	}
	return &Sizes{rng: rand.New(rand.NewSource(seed)), base: base, jitter: jitter}
}

// Next returns the next task size (always positive).
func (s *Sizes) Next() float64 {
	if s.jitter == 0 {
		return s.base
	}
	return s.base * (1 + s.jitter*(2*s.rng.Float64()-1))
}

package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestArrivalsMeanRate(t *testing.T) {
	const rate = 50.0 // tasks/sec
	a := NewArrivals(rate, 1)
	const n = 20000
	var total time.Duration
	for i := 0; i < n; i++ {
		total += a.Next()
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-rate)/rate > 0.05 {
		t.Fatalf("empirical rate = %.2f, want ~%.2f", gotRate, rate)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	a := NewArrivals(10, 42)
	b := NewArrivals(10, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewArrivals(10, 43)
	same := true
	aa := NewArrivals(10, 42)
	for i := 0; i < 10; i++ {
		if aa.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestArrivalsGapsPositive(t *testing.T) {
	a := NewArrivals(1000, 7)
	for i := 0; i < 1000; i++ {
		if g := a.Next(); g <= 0 {
			t.Fatalf("gap %d = %v", i, g)
		}
	}
}

func TestArrivalsTimesMonotone(t *testing.T) {
	a := NewArrivals(5, 3)
	ts := a.Times(50)
	if len(ts) != 50 {
		t.Fatalf("len = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("times not strictly increasing at %d", i)
		}
	}
}

func TestArrivalsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArrivals(0, 1)
}

func TestLoadFactorRate(t *testing.T) {
	lf := LoadFactor(0.8)
	if got := lf.RateFor(100); got != 80 {
		t.Fatalf("rate = %v", got)
	}
}

func TestMaxThroughput(t *testing.T) {
	if got := MaxThroughput(500, 100*time.Second); got != 5 {
		t.Fatalf("max throughput = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero runtime")
		}
	}()
	MaxThroughput(1, 0)
}

func TestSizesBounds(t *testing.T) {
	s := NewSizes(100, 0.2, 9)
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if v < 80-1e-9 || v > 120+1e-9 {
			t.Fatalf("size %v outside jitter band", v)
		}
	}
}

func TestSizesNoJitter(t *testing.T) {
	s := NewSizes(50, 0, 1)
	for i := 0; i < 10; i++ {
		if s.Next() != 50 {
			t.Fatal("zero jitter must return base exactly")
		}
	}
}

func TestSizesJitterClamped(t *testing.T) {
	s := NewSizes(10, 5 /* clamped to .99 */, 1)
	for i := 0; i < 100; i++ {
		if v := s.Next(); v <= 0 {
			t.Fatalf("size must stay positive, got %v", v)
		}
	}
}

// Property: arrival gaps are always positive for any seed and sane rate.
func TestGapsPositiveProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint16) bool {
		rate := float64(rateRaw%1000) + 0.5
		a := NewArrivals(rate, seed)
		for i := 0; i < 50; i++ {
			if a.Next() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

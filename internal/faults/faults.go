// Package faults is a deterministic fault injector for DoPE stage functors.
// It wraps StageFns so that a configurable fraction of iterations panic (or
// stall), which is how the harness and tests exercise the executive's
// failure policies without depending on real flaky hardware.
//
// Determinism matters more than realism here: an experiment comparing
// FailStop, FailRestart, and FailDegrade is only meaningful if each arm sees
// the same fault schedule. The injector therefore decides per stage from a
// call counter and a seeded hash — iteration n of stage s either always
// faults or never does, independent of goroutine scheduling. (Which worker
// slot draws the faulting call still varies run to run; the count and
// spacing of faults do not.)
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/core"
)

// Kind selects what an injected fault does to the victim iteration.
type Kind int

const (
	// Panic makes the iteration panic with a *Fault value before the
	// functor body runs.
	Panic Kind = iota
	// Delay stalls the iteration for the configured duration before the
	// functor body runs; it models a transient hiccup rather than a crash.
	Delay
	// Stall blocks the iteration forever inside its Begin/End CPU section:
	// the victim opens a window and waits on Worker.Done(), so it never
	// returns unless the executive's stall watchdog (or a drain
	// cancellation) abandons the slot. It models a task wedged on dead I/O
	// — the failure deadlines and drain timeouts exist for — while staying
	// leak-free in tests: abandonment closes Done and the goroutine exits
	// through the zombie path.
	Stall
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	default:
		return "unknown"
	}
}

// Fault is the value injected panics carry, so tests and policies can tell
// injected faults from genuine application bugs.
type Fault struct {
	Stage string // stage name the fault was injected into
	Call  uint64 // 1-based call sequence number within the stage
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected fault in stage %q (call %d)", f.Stage, f.Call)
}

// Injector decides, per stage functor call, whether to inject a fault.
type Injector struct {
	kind  Kind
	rate  float64 // faults per call in [0,1]
	seed  uint64
	delay time.Duration

	mu       sync.Mutex
	counters map[string]*stageCounter

	injected atomic.Uint64
	calls    atomic.Uint64
}

type stageCounter struct {
	calls atomic.Uint64
}

// Option configures an Injector.
type Option func(*Injector)

// WithKind selects the fault kind (default Panic).
func WithKind(k Kind) Option { return func(in *Injector) { in.kind = k } }

// WithDelay sets the stall duration for Delay faults (default 1ms).
func WithDelay(d time.Duration) Option { return func(in *Injector) { in.delay = d } }

// New returns an injector that faults the given fraction of calls (clamped
// to [0,1]) using seed to derive the deterministic schedule. The same
// (rate, seed) pair always selects the same call numbers within each stage.
func New(rate float64, seed uint64, opts ...Option) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in := &Injector{
		kind:     Panic,
		rate:     rate,
		seed:     seed,
		delay:    time.Millisecond,
		counters: make(map[string]*stageCounter),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Injected returns how many faults have been injected.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Calls returns how many wrapped functor calls have been observed.
func (in *Injector) Calls() uint64 { return in.calls.Load() }

func (in *Injector) counter(stage string) *stageCounter {
	in.mu.Lock()
	defer in.mu.Unlock()
	c, ok := in.counters[stage]
	if !ok {
		c = &stageCounter{}
		in.counters[stage] = c
	}
	return c
}

// splitmix64 is the finalizer from the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash that maps (seed, stage, call) onto an effectively
// uniform value, so thresholding it reproduces the configured rate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a folds a string into a 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// shouldFault reports whether call number n (1-based) of stage should fault.
func (in *Injector) shouldFault(stage string, n uint64) bool {
	if in.rate <= 0 {
		return false
	}
	h := splitmix64(in.seed ^ fnv1a(stage) ^ splitmix64(n))
	return float64(h>>11)/float64(1<<53) < in.rate
}

// wrapFn wraps one stage functor with the injection check.
func (in *Injector) wrapFn(stage string, fn core.Functor) core.Functor {
	c := in.counter(stage)
	return func(w *core.Worker) core.Status {
		n := c.calls.Add(1)
		in.calls.Add(1)
		if in.shouldFault(stage, n) {
			in.injected.Add(1)
			switch in.kind {
			case Delay:
				time.Sleep(in.delay)
			case Stall:
				// Open a CPU section and never close it voluntarily: the
				// invocation-deadline watchdog sees the overdue window. Done
				// unblocks the goroutine once the slot is abandoned (or the
				// run drains), so the test process does not accumulate stuck
				// goroutines.
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				<-w.Done() //dopevet:ignore tokenhold injected stall: blocking inside the window is the fault being simulated
				w.End() //dopevet:ignore suspendcheck injected stall: End after abandonment is the fenced zombie path
				return core.Suspended
			default:
				panic(&Fault{Stage: stage, Call: n})
			}
		}
		return fn(w)
	}
}

// Wrap returns a copy of fns whose functor is instrumented with fault
// injection for the named stage. Load/Init/Fini pass through untouched.
func (in *Injector) Wrap(stage string, fns core.StageFns) core.StageFns {
	fns.Fn = in.wrapFn(stage, fns.Fn)
	return fns
}

// WrapAlt rewrites alt's Make so every instantiated stage functor is
// instrumented. only, when non-empty, restricts injection to the named
// stages; others pass through unwrapped.
func (in *Injector) WrapAlt(alt *core.AltSpec, only ...string) {
	allow := make(map[string]bool, len(only))
	for _, s := range only {
		allow[s] = true
	}
	inner := alt.Make
	stages := alt.Stages
	alt.Make = func(item any) (*core.AltInstance, error) {
		inst, err := inner(item)
		if err != nil || inst == nil {
			return inst, err
		}
		for i := range inst.Stages {
			if i >= len(stages) {
				break
			}
			name := stages[i].Name
			if len(allow) > 0 && !allow[name] {
				continue
			}
			inst.Stages[i] = in.Wrap(name, inst.Stages[i])
		}
		return inst, nil
	}
}

// WrapNest instruments every alternative of the nest tree rooted at spec,
// including nested loops. only, when non-empty, restricts injection to the
// named stages anywhere in the tree. Shared sub-nests are wrapped once.
func (in *Injector) WrapNest(spec *core.NestSpec, only ...string) {
	in.wrapNest(spec, only, map[*core.NestSpec]bool{})
}

func (in *Injector) wrapNest(spec *core.NestSpec, only []string, seen map[*core.NestSpec]bool) {
	if spec == nil || seen[spec] {
		return
	}
	seen[spec] = true
	for _, alt := range spec.Alts {
		in.WrapAlt(alt, only...)
		for i := range alt.Stages {
			if alt.Stages[i].Nest != nil {
				in.wrapNest(alt.Stages[i].Nest, only, seen)
			}
		}
	}
}

package faults

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/queue"
)

func scheduleFor(rate float64, seed uint64, stage string, n int) []uint64 {
	in := New(rate, seed)
	var out []uint64
	for i := uint64(1); i <= uint64(n); i++ {
		if in.shouldFault(stage, i) {
			out = append(out, i)
		}
	}
	return out
}

func TestScheduleDeterministic(t *testing.T) {
	a := scheduleFor(0.05, 42, "rank", 10000)
	b := scheduleFor(0.05, 42, "rank", 10000)
	if len(a) == 0 {
		t.Fatal("5% rate selected nothing in 10k calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestScheduleVariesWithSeedAndStage(t *testing.T) {
	base := scheduleFor(0.05, 42, "rank", 10000)
	otherSeed := scheduleFor(0.05, 43, "rank", 10000)
	otherStage := scheduleFor(0.05, 42, "seg", 10000)
	same := func(a, b []uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(base, otherSeed) {
		t.Fatal("different seeds produced the same schedule")
	}
	if same(base, otherStage) {
		t.Fatal("different stages produced the same schedule")
	}
}

func TestRateIsHonored(t *testing.T) {
	const n = 200000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		got := float64(len(scheduleFor(rate, 7, "s", n))) / n
		if math.Abs(got-rate) > rate*0.2 {
			t.Errorf("rate %.2f: observed %.4f", rate, got)
		}
	}
	if len(scheduleFor(0, 7, "s", 1000)) != 0 {
		t.Error("zero rate injected")
	}
	if len(scheduleFor(1, 7, "s", 1000)) != 1000 {
		t.Error("unit rate skipped calls")
	}
}

func TestRateClamped(t *testing.T) {
	if New(-0.5, 1).rate != 0 || New(1.5, 1).rate != 1 {
		t.Fatal("rate not clamped to [0,1]")
	}
}

func TestWrapPanicsWithFaultValue(t *testing.T) {
	in := New(1, 1) // every call faults
	fns := in.Wrap("s", core.StageFns{Fn: func(w *core.Worker) core.Status {
		t.Error("functor body ran despite injection")
		return core.Finished
	}})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("recovered %T, want *Fault", r)
		}
		if f.Stage != "s" || f.Call != 1 {
			t.Fatalf("fault = %+v", f)
		}
		if !strings.Contains(f.Error(), `stage "s"`) {
			t.Fatalf("fault error = %q", f.Error())
		}
	}()
	fns.Fn(nil)
}

func TestDelayKindStallsInsteadOfPanicking(t *testing.T) {
	in := New(1, 1, WithKind(Delay), WithDelay(10*time.Millisecond))
	ran := false
	fns := in.Wrap("s", core.StageFns{Fn: func(w *core.Worker) core.Status {
		ran = true
		return core.Finished
	}})
	start := time.Now()
	if got := fns.Fn(nil); got != core.Finished {
		t.Fatalf("status = %v", got)
	}
	if !ran {
		t.Fatal("delayed functor never ran")
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay fault stalled only %v", d)
	}
	if in.Injected() != 1 || in.Calls() != 1 {
		t.Fatalf("counters = %d/%d", in.Injected(), in.Calls())
	}
	if Delay.String() != "delay" || Panic.String() != "panic" {
		t.Fatal("kind names wrong")
	}
}

// drainSpec is a one-stage PAR nest consuming work.
func drainSpec(work *queue.Queue[int], processed *atomic.Int64) *core.NestSpec {
	return &core.NestSpec{Name: "app", Alts: []*core.AltSpec{{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: "worker", Type: core.PAR, OnFailure: core.FailRestart}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					_ = v
					processed.Add(1)
					w.End()
					return core.Executing
				},
			}}}, nil
		},
	}}}
}

func TestWrapNestEndToEnd(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := drainSpec(work, &processed)
	in := New(0.1, 99)
	in.WrapNest(spec)

	// Items are microseconds of work, so ~30 injected faults land within
	// one rolling window; raise the budget so FailRestart never escalates.
	e, err := core.New(spec, core.WithContexts(2),
		core.WithFailureBudget(1000, time.Second),
		core.WithRestartBackoff(50*time.Microsecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const items = 300
	for i := 0; i < items; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Run(); err != nil {
		t.Fatalf("run under injection failed: %v", err)
	}
	if in.Injected() == 0 {
		t.Fatal("no faults injected at 10% over 300 items")
	}
	if in.Calls() == 0 {
		t.Fatal("injector saw no calls")
	}
	if e.TaskFailures() != in.Injected() {
		t.Fatalf("executive absorbed %d failures, injector reports %d",
			e.TaskFailures(), in.Injected())
	}
	// An injected panic fires before the dequeue, so no work is lost under
	// FailRestart: all items processed.
	if processed.Load() != items {
		t.Fatalf("processed = %d, want %d", processed.Load(), items)
	}
}

func TestWrapAltOnlyFilters(t *testing.T) {
	alt := &core.AltSpec{
		Name: "a",
		Stages: []core.StageSpec{
			{Name: "safe", Type: core.SEQ},
			{Name: "victim", Type: core.SEQ},
		},
		Make: func(item any) (*core.AltInstance, error) {
			mk := func() core.StageFns {
				return core.StageFns{Fn: func(w *core.Worker) core.Status { return core.Finished }}
			}
			return &core.AltInstance{Stages: []core.StageFns{mk(), mk()}}, nil
		},
	}
	in := New(1, 1)
	in.WrapAlt(alt, "victim")
	inst, err := alt.Make(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Stages[0].Fn(nil); got != core.Finished {
		t.Fatalf("safe stage faulted or misbehaved: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("victim stage did not fault")
			}
		}()
		inst.Stages[1].Fn(nil)
	}()
}

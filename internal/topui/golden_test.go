package topui

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/replay"
	"dope/internal/stats"
)

// report builds a deterministic two-level nest report at time t.
func report(t float64, extent int, rate float64) *core.Report {
	return &core.Report{
		Tenant:       "video",
		Time:         time.Duration(t * float64(time.Second)),
		Contexts:     8,
		BusyContexts: 4,
		Rejected:     3,
		Config:       &core.Config{Alt: 0, Extents: []int{1, extent}},
		Root: &core.NestReport{
			Name: "svc", Path: "svc", AltName: "pipeline",
			Spec: &core.NestSpec{Name: "svc", Alts: []*core.AltSpec{{
				Name: "pipeline",
				Stages: []core.StageSpec{
					{Name: "produce", Type: core.SEQ},
					{Name: "consume", Type: core.PAR},
				},
			}}},
			Stages: []core.StageReport{
				{Name: "produce", Type: core.SEQ, Extent: 1, Rate: rate,
					QueueSojourn: 0.0004, Observed: true},
				{Name: "consume", Type: core.PAR, Extent: extent, Rate: rate * 0.97,
					QueueSojourn: 0.0021, Stalls: 2, Shed: 5, Failures: 1,
					Workers: extent, Observed: true},
			},
			Children: map[string]*core.NestReport{
				"inner": {
					Name: "inner", Path: "svc/inner", AltName: "doall",
					Stages: []core.StageReport{
						{Name: "leaf", Type: core.PAR, Extent: 2, Rate: 40}},
				},
			},
		},
	}
}

// TestGoldenFrameLiveVsReplay is the record→replay-through-UI pin: frames
// rendered from live entries must equal frames rendered after those entries
// round-trip through a recorded JSONL log. If either the replay encoding or
// the render path drops a field, the frames diverge and this fails.
func TestGoldenFrameLiveVsReplay(t *testing.T) {
	reports := []*core.Report{
		report(0.1, 2, 120),
		report(0.2, 2, 130),
		report(0.3, 5, 180), // reconfigure: synthesized decision entry
		report(0.4, 5, 210),
	}

	// "Live" side: entries straight from the running reports.
	live := NewModel(64, Opts{})
	defer live.Close()
	var buf bytes.Buffer
	rec := replay.NewRecorder(&buf)
	for _, r := range reports {
		e := replay.Encode(r)
		live.Ingest(e)
		if err := rec.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	liveFrame := live.Frame()

	// Post-mortem side: the same run read back from the JSONL log.
	entries, err := replay.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	post := NewModel(64, Opts{})
	defer post.Close()
	for _, e := range entries {
		post.Ingest(e)
	}
	postFrame := post.Frame()

	if liveFrame != postFrame {
		t.Fatalf("live and replay frames diverged:\n--- live ---\n%s\n--- replay ---\n%s",
			liveFrame, postFrame)
	}

	// The frame carries the load-bearing content.
	for _, want := range []string{
		"tenant=video",                        // Entry.Tenant survived
		"3 rejected",                          // Entry.Rejected survived
		"produce", "consume", "inner", "leaf", // the tree
		"PAR", "SEQ",
		"DECISIONS",   // synthesized reconfigure from the extent change
		"reconfigure", // its kind
	} {
		if !strings.Contains(liveFrame, want) {
			t.Errorf("frame missing %q:\n%s", want, liveFrame)
		}
	}
	// Robustness counters render (the PR's bugfix surface): consume's
	// stalls/shed/failures columns carry 2/5/1.
	var consumeRow string
	for _, line := range strings.Split(liveFrame, "\n") {
		if strings.Contains(line, "consume") {
			consumeRow = line
		}
	}
	for _, col := range []string{" 2 ", " 5 ", " 1 "} {
		if !strings.Contains(consumeRow+" ", col) {
			t.Errorf("consume row missing counter %q: %q", strings.TrimSpace(col), consumeRow)
		}
	}
}

// TestFrameIsPure pins that Frame has no hidden state: rendering the same
// inputs twice yields identical bytes.
func TestFrameIsPure(t *testing.T) {
	m := NewModel(32, Opts{})
	defer m.Close()
	m.Ingest(replay.Encode(report(1.0, 3, 99)))
	m.IngestTenants(1.0, []metrics.TenantSample{
		{Name: "video", State: "running", Quota: 5, Used: 4, Grants: 2, Revokes: 1},
	})
	a, b := m.Frame(), m.Frame()
	if a != b {
		t.Fatal("two renders of the same model differ")
	}
	if !strings.Contains(a, "TENANT") || !strings.Contains(a, "video") {
		t.Errorf("tenant table missing:\n%s", a)
	}
}

// TestSparkline pins the scaling edge cases.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 4); got != "    " {
		t.Errorf("empty spark = %q", got)
	}
	ramp := mkPoints(1, 2, 3, 4, 5, 6, 7, 8)
	s := sparkline(ramp, 8)
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("ramp spark = %q", s)
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("ramp spark = %q, want ▁..█", s)
	}
	flat := sparkline(mkPoints(5, 5, 5), 3)
	for _, r := range flat {
		if r != sparkRunes[len(sparkRunes)/2] {
			t.Errorf("flat spark = %q, want mid-height", flat)
		}
	}
	// Window wider than data left-pads with spaces.
	padded := sparkline(mkPoints(1, 9), 5)
	if !strings.HasPrefix(padded, "   ") {
		t.Errorf("padded spark = %q", padded)
	}
}

func mkPoints(vs ...float64) []stats.Point {
	out := make([]stats.Point, len(vs))
	for i, v := range vs {
		out[i] = stats.Point{Seq: uint64(i + 1), T: float64(i), V: v}
	}
	return out
}

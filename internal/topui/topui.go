// Package topui renders the dope-top terminal frame: the nest tree with
// per-stage gauges and sparkline extents, the mechanism decision log, and
// the tenant arbitration table.
//
// Frame is a pure function of (latest entry, metrics snapshot) — the single
// render path behind both dope-top modes. Live mode feeds it the /report
// entry and the /series snapshot of a running admin server; replay mode
// feeds it entries read from a recorded JSONL trace through a local
// Collector. Because every pixel derives from the replay.Entry shape, a
// recorded incident replays through the identical UI the operator watched
// live — the golden-frame test pins the two paths to byte equality.
package topui

import (
	"fmt"
	"sort"
	"strings"

	"dope/internal/metrics"
	"dope/internal/replay"
	"dope/internal/stats"
)

// Opts shapes a frame.
type Opts struct {
	// SparkWidth is the sparkline width in cells (default 24).
	SparkWidth int
	// Decisions is how many decision-log tail rows to show (default 8).
	Decisions int
	// Title overrides the frame header's leading tag (default "dope-top").
	Title string
}

func (o Opts) withDefaults() Opts {
	if o.SparkWidth <= 0 {
		o.SparkWidth = 24
	}
	if o.Decisions <= 0 {
		o.Decisions = 8
	}
	if o.Title == "" {
		o.Title = "dope-top"
	}
	return o
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last w points as block glyphs, scaled to the
// window's own min/max (a flat series renders mid-height).
func sparkline(pts []stats.Point, w int) string {
	if len(pts) == 0 || w <= 0 {
		return strings.Repeat(" ", w)
	}
	if len(pts) > w {
		pts = pts[len(pts)-w:]
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	for i := 0; i < w-len(pts); i++ {
		b.WriteByte(' ')
	}
	for _, p := range pts {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((p.V - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Frame renders one screen. Either argument may be nil: a nil entry renders
// only collector-derived sections (tenant arbitration without a selected
// tenant's tree), a nil snapshot renders the tree without sparklines or the
// decision log.
func Frame(e *replay.Entry, snap *metrics.Snapshot, opts Opts) string {
	opts = opts.withDefaults()
	var b strings.Builder

	// Header.
	switch {
	case e != nil:
		fmt.Fprintf(&b, "%s  t=%.1fs", opts.Title, e.TimeSec)
		if e.Tenant != "" {
			fmt.Fprintf(&b, "  tenant=%s", e.Tenant)
		}
		fmt.Fprintf(&b, "  ctx %d/%d busy, %d blocked", e.BusyContexts, e.Contexts, e.BlockedAcquires)
		if e.Rejected > 0 {
			fmt.Fprintf(&b, ", %d rejected", e.Rejected)
		}
	case snap != nil:
		fmt.Fprintf(&b, "%s  t=%.1fs", opts.Title, snap.Now)
	default:
		b.WriteString(opts.Title)
	}
	if snap != nil {
		if w, ok := lastValue(snap, "power/watts"); ok {
			fmt.Fprintf(&b, "  power %.1fW", w)
		}
		if snap.Dropped > 0 {
			fmt.Fprintf(&b, "  [%d events dropped]", snap.Dropped)
		}
	}
	b.WriteByte('\n')

	// Nest tree.
	if e != nil && e.Root != nil {
		fmt.Fprintf(&b, "\n%-34s %3s %4s %8s %8s %6s %5s %5s  %s\n",
			"NEST/STAGE", "typ", "dop", "rate/s", "sojourn", "stall", "shed", "fail", "extent "+strings.Repeat("─", opts.SparkWidth-7))
		renderNest(&b, e.Root, 0, snap, opts)
	}

	// Tenant arbitration table.
	if snap != nil && len(snap.Tenants) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-9s %5s %5s %7s %6s %6s %6s %7s  %s\n",
			"TENANT", "state", "quota", "used", "watts", "shed", "rej", "grant", "revoke", "quota "+strings.Repeat("─", opts.SparkWidth-6))
		for _, t := range snap.Tenants {
			spark := sparkline(snap.Series["tenant/"+t.Name+"/quota"], opts.SparkWidth)
			fmt.Fprintf(&b, "%-12s %-9s %5d %5d %7.1f %6d %6d %6d %7d  %s\n",
				t.Name, t.State, t.Quota, t.Used, t.Watts, t.Shed, t.Rejected,
				t.Grants, t.Revokes, spark)
		}
	}

	// Decision log tail.
	if snap != nil && len(snap.Events) > 0 {
		fmt.Fprintf(&b, "\nDECISIONS (last %d)\n", opts.Decisions)
		evs := snap.Events
		if len(evs) > opts.Decisions {
			evs = evs[len(evs)-opts.Decisions:]
		}
		for _, d := range evs {
			fmt.Fprintf(&b, "  %7.2fs  %-12s", d.T, d.Kind)
			if d.Nest != "" {
				fmt.Fprintf(&b, " %s", d.Nest)
			}
			if d.Stage != "" {
				fmt.Fprintf(&b, "/%s", d.Stage)
			}
			if d.From != d.To {
				fmt.Fprintf(&b, " %d→%d", d.From, d.To)
			}
			if d.Mechanism != "" {
				fmt.Fprintf(&b, " (%s)", d.Mechanism)
			}
			if d.Detail != "" {
				fmt.Fprintf(&b, "  %s", d.Detail)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func renderNest(b *strings.Builder, n *replay.NestObs, depth int, snap *metrics.Snapshot, opts Opts) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s  [alt %s]\n", indent, n.Name, n.AltName)
	for _, st := range n.Stages {
		typ := "SEQ"
		if st.Par {
			typ = "PAR"
		}
		var spark string
		if snap != nil {
			spark = sparkline(snap.Series["stage/"+n.Path+"/"+st.Name+"/extent"], opts.SparkWidth)
		} else {
			spark = strings.Repeat(" ", opts.SparkWidth)
		}
		name := indent + "  " + st.Name
		fmt.Fprintf(b, "%-34s %3s %4d %8.1f %7.1fm %6d %5d %5d  %s\n",
			name, typ, st.Extent, st.Rate, st.Sojourn*1000,
			st.Stalls, st.Shed, st.Failures, spark)
	}
	if len(n.Children) > 0 {
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			renderNest(b, n.Children[k], depth+1, snap, opts)
		}
	}
}

func lastValue(snap *metrics.Snapshot, name string) (float64, bool) {
	pts := snap.Series[name]
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].V, true
}

// Model is the stateful side of the render path: it owns a local Collector
// and the latest entry, so a stream of replay entries — from a recorded
// JSONL trace or from polling a live /report — renders exactly like a
// server-side /series-backed frame.
type Model struct {
	col  *metrics.Collector
	last *replay.Entry
	opts Opts
}

// NewModel returns a model holding window points per series.
func NewModel(window int, opts Opts) *Model {
	return &Model{col: metrics.NewCollector(window), opts: opts.withDefaults()}
}

// Ingest feeds one entry: the decoded report lands in the collector (series
// points plus synthesized reconfigure decisions) and the entry becomes the
// tree to render.
func (m *Model) Ingest(e *replay.Entry) {
	if e == nil {
		return
	}
	m.last = e
	m.col.ObserveReport(replay.Decode(e))
}

// IngestTenants forwards a tenant sweep into the model's collector.
func (m *Model) IngestTenants(t float64, samples []metrics.TenantSample) {
	m.col.ObserveTenants(t, samples)
}

// Frame renders the current screen.
func (m *Model) Frame() string {
	return Frame(m.last, m.col.Snapshot(0), m.opts)
}

// Close releases the model's collector.
func (m *Model) Close() { m.col.Close() }

// Package microbench measures the executive's own per-task overhead — the
// Begin/End hot path — outside `go test`, so cmd/dope-bench can emit a
// benchmark trajectory file (BENCH_beginend.json) that is checked in and
// compared across PRs. The paper's §8.2 requires DoPE's monitoring and
// orchestration overhead to stay negligible relative to task grain; these
// numbers are the repo's standing evidence.
//
// Two variants bracket the interesting regimes:
//
//   - BeginEnd: one worker, one hardware context — the uncontended fast
//     path. The CI gate requires 0 allocs/op here.
//   - BeginEndContended8: eight workers on eight contexts hammering the
//     token pool, the per-slot monitor accumulators, and the shared stage
//     aggregate concurrently.
//   - BeginEndMultiTenant: two single-worker tenants acquiring through
//     per-tenant quota pools layered over one shared context pool — the
//     multi-tenant fast path (quota CAS + shared CAS per Begin). Also
//     gated at 0 allocs/op.
//   - BeginEndCollector: the uncontended path with a live-ops
//     metrics.Collector attached (trace tap + report sampler). The
//     collector runs entirely off the hot path, so this is gated at
//     0 allocs/op too: its own sampling allocations amortize below one
//     object per million iterations.
package microbench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/platform"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Entry is one labeled run of the whole suite — one point on the
// trajectory.
type Entry struct {
	Label      string   `json:"label"`
	Date       string   `json:"date"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// beginEndSpec builds a one-stage nest whose functor is a bare monitored
// section: Begin immediately followed by End, iterated until every slot has
// burned its quota. Each slot counts in its own padded plain counter so the
// harness does not add a shared atomic RMW to every measured iteration. With
// workers > 1 the stage is PAR and every slot crosses the token pool and the
// monitor concurrently.
func beginEndSpec(quota int, workers int) *core.NestSpec {
	typ := core.SEQ
	if workers > 1 {
		typ = core.PAR
	}
	cnt := make([]struct {
		n int
		_ [56]byte
	}, workers)
	return &core.NestSpec{Name: "bench", Alts: []*core.AltSpec{{
		Name:   "loop",
		Stages: []core.StageSpec{{Name: "worker", Type: typ}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					c := &cnt[w.Slot()]
					if c.n >= quota {
						return core.Finished
					}
					c.n++
					w.Begin() //dopevet:ignore suspendcheck benchmark runs under a static configuration; statuses are irrelevant
					w.End()
					return core.Executing
				},
			}}}, nil
		},
	}}}
}

func runBeginEnd(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		spec := beginEndSpec((b.N+workers-1)/workers, workers)
		e, err := core.New(spec,
			core.WithContexts(workers),
			core.WithInitialConfig(&core.Config{Extents: []int{workers}}))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// runBeginEndMultiTenant measures the tenant-pool Begin/End path: two
// single-worker executives, each acquiring through its own
// platform.TenantPool (quota 1) over one shared two-context pool. Both
// tenants stay inside their quota, so every iteration takes the quota-CAS +
// shared-CAS fast path — the per-Begin cost of multi-tenancy.
func runBeginEndMultiTenant(b *testing.B) {
	b.ReportAllocs()
	const tenants = 2
	shared := platform.NewContexts(tenants)
	quota := (b.N + tenants - 1) / tenants
	execs := make([]*core.Exec, tenants)
	for i := range execs {
		tp := platform.NewTenantPool(shared, 1)
		e, err := core.New(beginEndSpec(quota, 1),
			core.WithContextPool(tp),
			core.WithInitialConfig(&core.Config{Extents: []int{1}}))
		if err != nil {
			b.Fatal(err)
		}
		execs[i] = e
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i, e := range execs {
		wg.Add(1)
		go func(i int, e *core.Exec) {
			defer wg.Done()
			errs[i] = e.Run()
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// runBeginEndCollector is the acceptance check for the live-ops layer:
// the same uncontended Begin/End loop, but with a metrics.Collector tapping
// the trace stream and sampling Report every 10ms while the benchmark runs.
// testing.Benchmark counts every allocation in the process, so the
// collector's own sampling shows up here — and must still amortize to
// 0 allocs/op over the measured iterations.
func runBeginEndCollector(b *testing.B) {
	b.ReportAllocs()
	spec := beginEndSpec(b.N, 1)
	e, err := core.New(spec,
		core.WithContexts(1),
		core.WithInitialConfig(&core.Config{Extents: []int{1}}))
	if err != nil {
		b.Fatal(err)
	}
	col := metrics.NewCollector(256)
	defer col.Close()
	release := col.Attach(e, 10*time.Millisecond)
	defer release()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BeginEnd runs the Begin/End suite and returns its results.
func BeginEnd() []Result {
	cases := []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"BeginEnd", runBeginEnd(1)},
		{"BeginEndContended8", runBeginEnd(8)},
		{"BeginEndMultiTenant", runBeginEndMultiTenant},
		{"BeginEndCollector", runBeginEndCollector},
	}
	out := make([]Result, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.bench)
		out = append(out, Result{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// Gate enforces the benchmark acceptance floor: the uncontended Begin/End
// path must be allocation-free — single-tenant, multi-tenant, and with a
// live-ops collector attached alike. It returns an error naming the first
// violation.
func Gate(results []Result) error {
	for _, r := range results {
		switch r.Name {
		case "BeginEnd", "BeginEndMultiTenant", "BeginEndCollector":
		default:
			continue
		}
		if r.AllocsPerOp > 0 {
			return fmt.Errorf("microbench: %s allocates %d objects/op, want 0 (Begin/End fast path must be allocation-free)",
				r.Name, r.AllocsPerOp)
		}
	}
	return nil
}

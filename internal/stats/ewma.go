package stats

import "math"

// EWMA is an exponentially weighted moving average. The zero value is not
// ready for use; construct with NewEWMA. Alpha in (0, 1] weights the newest
// observation: higher alpha reacts faster, lower alpha smooths more.
//
// EWMA is the estimator DoPE's monitors use for per-task execution time and
// throughput (the paper's mechanisms consume "a moving average of the
// throughput ... of each task", §7.2). It is not safe for concurrent use;
// callers serialize access.
type EWMA struct {
	alpha float64
	value float64
	n     uint64
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha outside
// (0, 1] is clamped into the interval.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-9
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average. The first observation seeds the average
// exactly, so a freshly constructed EWMA is unbiased for a constant signal.
func (e *EWMA) Observe(x float64) {
	e.n++
	if e.n == 1 {
		e.value = x
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// ObserveBatch folds k observations of mean value x into the average in one
// step, as if Observe(x) had been called k times: the existing value decays
// by (1-alpha)^k and the batch mean supplies the rest of the weight. A batch
// of one is exactly Observe. Used by the monitor's deferred fold, where the
// control tick absorbs every iteration a worker slot accumulated since the
// previous tick.
func (e *EWMA) ObserveBatch(x float64, k uint64) {
	if k == 0 {
		return
	}
	if e.n == 0 {
		e.n = k
		e.value = x
		return
	}
	e.n += k
	w := 1 - math.Pow(1-e.alpha, float64(k))
	e.value += w * (x - e.value)
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Count returns how many observations have been folded in.
func (e *EWMA) Count() uint64 { return e.n }

// Reset discards all state, as if freshly constructed.
func (e *EWMA) Reset() {
	e.value = 0
	e.n = 0
}

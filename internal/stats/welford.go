package stats

import "math"

// Welford accumulates mean and variance online using Welford's algorithm,
// which is numerically stable for long runs. The zero value is ready to use.
// It is not safe for concurrent use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds x into the accumulator.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 before any observation.
func (w *Welford) Max() float64 { return w.max }

// Reset discards all state.
func (w *Welford) Reset() { *w = Welford{} }

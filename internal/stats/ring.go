package stats

import "sync"

// Point is one sample of a time series: the value V observed at T seconds of
// uptime, stamped with the producing collector's global sequence number so
// consumers can fetch incrementally ("everything after cursor C") without
// the producer tracking per-consumer state.
type Point struct {
	Seq uint64  `json:"seq"`
	T   float64 `json:"t"`
	V   float64 `json:"v"`
}

// PointRing is a fixed-capacity ring of Points. When full, each append
// evicts the oldest point — the live-ops backpressure policy: a consumer
// that falls more than a window behind loses the oldest samples, never
// blocks the producer. Safe for concurrent use; Append is O(1) and
// allocation-free after construction.
type PointRing struct {
	mu   sync.Mutex
	buf  []Point
	head int // index of the oldest point
	n    int
}

// NewPointRing returns a ring holding at most capacity points. Capacity
// below 1 is treated as 1.
func NewPointRing(capacity int) *PointRing {
	if capacity < 1 {
		capacity = 1
	}
	return &PointRing{buf: make([]Point, capacity)}
}

// Append adds a point, evicting the oldest when full. Sequence numbers are
// assigned by the caller and must be monotonically increasing per ring;
// Since relies on that order to binary-search its cut.
func (r *PointRing) Append(p Point) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.buf[r.head] = p
		r.head = (r.head + 1) % len(r.buf)
	} else {
		r.buf[(r.head+r.n)%len(r.buf)] = p
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of points currently held.
func (r *PointRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *PointRing) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Last returns the newest point and whether the ring is non-empty.
func (r *PointRing) Last() (Point, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return Point{}, false
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)], true
}

// Since copies out every held point with Seq > cursor, oldest first. A zero
// cursor returns the whole window. Points older than the ring window are
// gone — an incremental consumer that slept too long simply resumes from
// what remains (and can detect the gap by comparing the first returned Seq
// against its cursor+1).
func (r *PointRing) Since(cursor uint64) []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Binary search the oldest index with Seq > cursor (points are in
	// ascending Seq order from head).
	lo, hi := 0, r.n
	for lo < hi {
		mid := (lo + hi) / 2
		if r.buf[(r.head+mid)%len(r.buf)].Seq > cursor {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == r.n {
		return nil
	}
	out := make([]Point, 0, r.n-lo)
	for i := lo; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Snapshot is Since(0): a copy of the full held window, oldest first.
func (r *PointRing) Snapshot() []Point { return r.Since(0) }

package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket linear histogram over [lo, hi). Observations
// outside the range land in saturating underflow/overflow buckets so counts
// are never lost. It is not safe for concurrent use.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n < 1 or hi <= lo, which indicate programming
// errors rather than data conditions.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(n),
		buckets: make([]uint64, n),
	}
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations, including out-of-range.
func (h *Histogram) Count() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow returns the count of observations below the range.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Decay scales every bucket count (including underflow/overflow) by factor,
// rounding down, so old observations gradually lose weight: a collector that
// decays its sojourn histogram each tick keeps quantiles tracking the recent
// regime instead of the whole run. Factor is clamped to [0, 1); counts of 1
// decay to 0, so a stream that stops contributing eventually empties the
// histogram entirely.
func (h *Histogram) Decay(factor float64) {
	if factor < 0 {
		factor = 0
	}
	if factor >= 1 {
		return
	}
	var total uint64
	for i, c := range h.buckets {
		h.buckets[i] = uint64(float64(c) * factor)
		total += h.buckets[i]
	}
	h.underflow = uint64(float64(h.underflow) * factor)
	h.overflow = uint64(float64(h.overflow) * factor)
	h.total = total + h.underflow + h.overflow
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) assuming
// observations are uniform within each bucket. Out-of-range counts are
// attributed to the range edges. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// String renders a compact ASCII sketch, useful in trace output.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := uint64(1)
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.buckets {
		bar := int(float64(c) / float64(maxCount) * 20)
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n",
			h.lo+float64(i)*h.width, h.lo+float64(i+1)*h.width, c,
			strings.Repeat("#", bar))
	}
	return b.String()
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestGeoMeanMatchesPaperStyleSpeedups(t *testing.T) {
	// The paper reports a 136% geomean improvement for two apps; check the
	// arithmetic we use to reproduce that claim: geomean(2.36x, 2.36x)=2.36.
	g := GeoMean([]float64{2.36, 2.36})
	if !almostEqual(g, 2.36, 1e-9) {
		t.Fatalf("geomean = %v", g)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	lo, err := Min([]float64{3, 1, 2})
	if err != nil || lo != 1 {
		t.Errorf("Min = %v, %v", lo, err)
	}
	hi, err := Max([]float64{3, 1, 2})
	if err != nil || hi != 3 {
		t.Errorf("Max = %v, %v", hi, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	p50, err := Percentile(xs, 50)
	if err != nil || p50 != 3 {
		t.Errorf("p50 = %v, %v", p50, err)
	}
	p0, _ := Percentile(xs, 0)
	if p0 != 1 {
		t.Errorf("p0 = %v", p0)
	}
	p100, _ := Percentile(xs, 100)
	if p100 != 5 {
		t.Errorf("p100 = %v", p100)
	}
	p25, _ := Percentile(xs, 25)
	if p25 != 2 {
		t.Errorf("p25 = %v", p25)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 33, 50, 100} {
		got, err := Percentile([]float64{7}, p)
		if err != nil || got != 7 {
			t.Errorf("Percentile([7], %v) = %v, %v", p, got, err)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil || m != 5 {
		t.Errorf("Median = %v, %v", m, err)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 2 + 3x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 2, 1e-9) || !almostEqual(b, 3, 1e-9) {
		t.Errorf("fit = (%v, %v), want (2, 3)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		lo, _ := Min(clean)
		hi, _ := Max(clean)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(clean, p)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

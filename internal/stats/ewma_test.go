package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	e.Observe(42)
	if e.Value() != 42 {
		t.Errorf("value = %v, want 42", e.Value())
	}
	if e.Count() != 1 {
		t.Errorf("count = %d, want 1", e.Count())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(7)
	}
	if e.Value() != 7 {
		t.Errorf("value = %v, want 7", e.Value())
	}
}

func TestEWMATracksStep(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0)
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Value()-10) > 1e-6 {
		t.Errorf("value = %v, want ~10", e.Value())
	}
}

func TestEWMAAlphaClamping(t *testing.T) {
	e := NewEWMA(5) // clamped to 1: tracks the latest observation exactly
	e.Observe(1)
	e.Observe(9)
	if e.Value() != 9 {
		t.Errorf("alpha=1 EWMA should equal last observation, got %v", e.Value())
	}
	e2 := NewEWMA(-1) // clamped to tiny positive: effectively frozen at seed
	e2.Observe(3)
	e2.Observe(1000)
	if math.Abs(e2.Value()-3) > 0.01 {
		t.Errorf("tiny-alpha EWMA moved too much: %v", e2.Value())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.2)
	e.Observe(5)
	e.Reset()
	if e.Value() != 0 || e.Count() != 0 {
		t.Error("reset did not clear state")
	}
	e.Observe(11)
	if e.Value() != 11 {
		t.Error("post-reset observation should seed")
	}
}

// Property: EWMA value always lies within [min, max] of the observations.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(alpha float64, xs []float64) bool {
		a := math.Mod(math.Abs(alpha), 1)
		if a == 0 {
			a = 0.5
		}
		e := NewEWMA(a)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			e.Observe(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if e.Count() == 0 {
			return true
		}
		return e.Value() >= lo-1e-6 && e.Value() <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordAgainstClosedForm(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Observe(x)
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSmallCounts(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Error("variance of one sample should be 0")
	}
	if w.Mean() != 3 {
		t.Errorf("mean = %v", w.Mean())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Observe(1)
	w.Observe(2)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("reset failed")
	}
}

// Property: Welford mean matches naive mean for well-conditioned inputs.
func TestWelfordMeanMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		clean := xs[:0:0]
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			w.Observe(x)
		}
		if len(clean) == 0 {
			return true
		}
		naive := Mean(clean)
		scale := 1.0
		if math.Abs(naive) > 1 {
			scale = math.Abs(naive)
		}
		return math.Abs(w.Mean()-naive)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 || w.Full() {
		t.Fatal("fresh window state wrong")
	}
	w.Observe(1)
	w.Observe(2)
	if w.Sum() != 3 || w.Len() != 2 || w.Full() {
		t.Fatalf("sum=%v len=%d", w.Sum(), w.Len())
	}
	w.Observe(3)
	if !w.Full() || w.Sum() != 6 {
		t.Fatalf("full=%v sum=%v", w.Full(), w.Sum())
	}
	w.Observe(10) // evicts 1
	if w.Sum() != 15 || w.Len() != 3 {
		t.Fatalf("after evict sum=%v len=%d", w.Sum(), w.Len())
	}
	if w.At(0) != 2 || w.At(1) != 3 || w.At(2) != 10 {
		t.Fatalf("order wrong: %v %v %v", w.At(0), w.At(1), w.At(2))
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindow(2)
	if w.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	w.Observe(4)
	w.Observe(6)
	if w.Mean() != 5 {
		t.Errorf("mean = %v", w.Mean())
	}
}

func TestWindowCapacityClamp(t *testing.T) {
	w := NewWindow(0)
	if w.Cap() != 1 {
		t.Errorf("cap = %d, want 1", w.Cap())
	}
	w.Observe(1)
	w.Observe(2)
	if w.Sum() != 2 {
		t.Errorf("sum = %v, want 2", w.Sum())
	}
}

func TestWindowThresholdPredicates(t *testing.T) {
	w := NewWindow(3)
	w.Observe(1)
	w.Observe(2)
	if w.AllBelow(10) {
		t.Error("not-full window must not satisfy AllBelow")
	}
	w.Observe(3)
	if !w.AllBelow(4) {
		t.Error("AllBelow(4) should hold for {1,2,3}")
	}
	if w.AllBelow(3) {
		t.Error("AllBelow(3) should fail for {1,2,3}")
	}
	if !w.AllAtLeast(1) {
		t.Error("AllAtLeast(1) should hold for {1,2,3}")
	}
	if w.AllAtLeast(2) {
		t.Error("AllAtLeast(2) should fail for {1,2,3}")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(2)
	w.Observe(5)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 {
		t.Error("reset failed")
	}
}

// Property: window sum equals the sum of the last min(len, cap) values.
func TestWindowSumProperty(t *testing.T) {
	f := func(capRaw uint8, xs []float64) bool {
		capacity := int(capRaw)%16 + 1
		w := NewWindow(capacity)
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			w.Observe(x)
		}
		start := 0
		if len(clean) > capacity {
			start = len(clean) - capacity
		}
		want := 0.0
		for _, x := range clean[start:] {
			want += x
		}
		return math.Abs(w.Sum()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

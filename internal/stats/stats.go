// Package stats provides the small statistical toolkit used by the DoPE
// runtime and its experiment harness: exponentially weighted moving
// averages, online mean/variance (Welford), simple moving windows,
// percentiles, histograms, and a least-squares line fit.
//
// Everything here is deliberately allocation-light: mechanisms consult these
// estimators on the hot reconfiguration path, and the paper reports total
// monitoring overhead below 1%.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result NaN, matching the mathematical domain.
// It returns 0 for empty input.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest element of xs. It returns an error for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs. It returns an error for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted; a copy is
// sorted internally. It returns an error for empty input or p out of range.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b. It requires at least two points with distinct x
// values.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched lengths")
	}
	if len(xs) < 2 {
		return 0, 0, ErrEmpty
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

package stats

// Window is a fixed-capacity sliding window of float64 observations with an
// O(1) running sum. When full, each new observation evicts the oldest.
// It is not safe for concurrent use.
//
// The WQT-H mechanism uses a Window over work-queue occupancies to implement
// its "for more than N consecutive tasks" hysteresis condition.
type Window struct {
	buf  []float64
	head int
	n    int
	sum  float64
}

// NewWindow returns a window holding at most capacity observations.
// Capacity below 1 is treated as 1.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe appends x, evicting the oldest observation if the window is full.
func (w *Window) Observe(x float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
		w.buf[w.head] = x
		w.sum += x
		w.head = (w.head + 1) % len(w.buf)
		return
	}
	w.buf[(w.head+w.n)%len(w.buf)] = x
	w.sum += x
	w.n++
}

// Len returns the number of observations currently held.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds Cap observations.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Sum returns the sum of held observations.
func (w *Window) Sum() float64 { return w.sum }

// Mean returns the mean of held observations, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// At returns the i-th oldest held observation; i must be in [0, Len()).
func (w *Window) At(i int) float64 {
	return w.buf[(w.head+i)%len(w.buf)]
}

// AllBelow reports whether the window is full and every held observation is
// strictly below threshold.
func (w *Window) AllBelow(threshold float64) bool {
	if !w.Full() {
		return false
	}
	for i := 0; i < w.n; i++ {
		if w.At(i) >= threshold {
			return false
		}
	}
	return true
}

// AllAtLeast reports whether the window is full and every held observation
// is at or above threshold.
func (w *Window) AllAtLeast(threshold float64) bool {
	if !w.Full() {
		return false
	}
	for i := 0; i < w.n; i++ {
		if w.At(i) < threshold {
			return false
		}
	}
	return true
}

// Reset empties the window.
func (w *Window) Reset() {
	w.head, w.n, w.sum = 0, 0, 0
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	wantBuckets := []uint64{2, 1, 1, 0, 1}
	for i, want := range wantBuckets {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(-5)
	h.Observe(2)
	h.Observe(1) // hi is exclusive
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Errorf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	h.Observe(0.3 - 1e-16) // float noise must not index past the last bucket
	if h.Count() != 1 {
		t.Fatal("observation lost")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	q50 := h.Quantile(0.5)
	if math.Abs(q50-50) > 1.5 {
		t.Errorf("q50 = %v", q50)
	}
	q0 := h.Quantile(0)
	if q0 > 1 {
		t.Errorf("q0 = %v", q0)
	}
	if !math.IsNaN(NewHistogram(0, 1, 1).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Observe(5)
	if q := h.Quantile(-1); q > 10 || q < 0 {
		t.Errorf("q(-1) = %v", q)
	}
	if q := h.Quantile(2); q > 10 || q < 0 {
		t.Errorf("q(2) = %v", q)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero buckets", func() { NewHistogram(0, 1, 0) })
	mustPanic("empty range", func() { NewHistogram(1, 1, 4) })
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Observe(0.5)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("expected a bar in %q", s)
	}
}

// Property: total count equals buckets + underflow + overflow.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-10, 10, 7)
		n := uint64(0)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		var inRange uint64
		for i := 0; i < h.NumBuckets(); i++ {
			inRange += h.Bucket(i)
		}
		return h.Count() == n && inRange+h.Underflow()+h.Overflow() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

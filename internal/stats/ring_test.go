package stats

import (
	"sync"
	"testing"
)

func TestPointRingWraparound(t *testing.T) {
	r := NewPointRing(4)
	for i := 1; i <= 10; i++ {
		r.Append(Point{Seq: uint64(i), T: float64(i), V: float64(i * i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	// Oldest-first, newest 4 survive the wrap.
	for i, p := range got {
		want := uint64(7 + i)
		if p.Seq != want {
			t.Errorf("point %d: Seq = %d, want %d", i, p.Seq, want)
		}
		if p.V != float64(want*want) {
			t.Errorf("point %d: V = %g, want %g", i, p.V, float64(want*want))
		}
	}
	last, ok := r.Last()
	if !ok || last.Seq != 10 {
		t.Errorf("Last = %+v, %v; want Seq 10", last, ok)
	}
}

func TestPointRingSinceCursor(t *testing.T) {
	r := NewPointRing(8)
	for i := 1; i <= 6; i++ {
		r.Append(Point{Seq: uint64(i), V: float64(i)})
	}
	got := r.Since(4)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("Since(4) = %+v, want seqs 5,6", got)
	}
	if got := r.Since(6); got != nil {
		t.Fatalf("Since(6) = %+v, want nil", got)
	}
	if got := r.Since(0); len(got) != 6 {
		t.Fatalf("Since(0) len = %d, want 6", len(got))
	}
	// A cursor that fell off the back of the window resumes at the oldest
	// held point; the consumer detects the gap from the first Seq.
	for i := 7; i <= 20; i++ {
		r.Append(Point{Seq: uint64(i), V: float64(i)})
	}
	got = r.Since(3)
	if len(got) != 8 || got[0].Seq != 13 {
		t.Fatalf("Since(3) after wrap = %d points starting %d, want 8 starting 13",
			len(got), got[0].Seq)
	}
}

func TestPointRingEmptyAndTiny(t *testing.T) {
	r := NewPointRing(0) // clamps to 1
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", r.Cap())
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty ring reported a point")
	}
	if got := r.Since(0); got != nil {
		t.Fatalf("Since on empty ring = %+v", got)
	}
	r.Append(Point{Seq: 1, V: 1})
	r.Append(Point{Seq: 2, V: 2})
	if got := r.Snapshot(); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("capacity-1 ring holds %+v, want only seq 2", got)
	}
}

// TestPointRingConcurrentObserveSnapshot is the collector's regime: one
// producer appending while consumers snapshot incrementally. Run under
// -race this pins the locking; in any mode it checks that every snapshot is
// a gap-free ascending slice of what the producer wrote.
func TestPointRingConcurrentObserveSnapshot(t *testing.T) {
	r := NewPointRing(64)
	const writes = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			r.Append(Point{Seq: uint64(i), T: float64(i), V: float64(i)})
		}
	}()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var cursor uint64
			for {
				pts := r.Since(cursor)
				for i, p := range pts {
					if p.Seq <= cursor {
						t.Errorf("point %d: Seq %d not after cursor %d", i, p.Seq, cursor)
						return
					}
					if i > 0 && p.Seq != pts[i-1].Seq+1 {
						t.Errorf("gap inside one snapshot: %d -> %d", pts[i-1].Seq, p.Seq)
						return
					}
					cursor = p.Seq
				}
				select {
				case <-stop:
					if cursor == writes {
						return
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

func TestWindowWraparound(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 7; i++ {
		w.Observe(float64(i))
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("Len = %d, Full = %v; want 3, true", w.Len(), w.Full())
	}
	if w.Sum() != 5+6+7 {
		t.Errorf("Sum = %g, want 18", w.Sum())
	}
	if w.Mean() != 6 {
		t.Errorf("Mean = %g, want 6", w.Mean())
	}
	for i := 0; i < 3; i++ {
		if got, want := w.At(i), float64(5+i); got != want {
			t.Errorf("At(%d) = %g, want %g", i, got, want)
		}
	}
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 {
		t.Errorf("after Reset: Len %d Sum %g", w.Len(), w.Sum())
	}
	// Running sum stays exact through many evictions.
	w2 := NewWindow(5)
	for i := 0; i < 1000; i++ {
		w2.Observe(float64(i % 13))
	}
	var want float64
	for i := 0; i < w2.Len(); i++ {
		want += w2.At(i)
	}
	if diff := w2.Sum() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("running sum drifted: Sum %g vs recomputed %g", w2.Sum(), want)
	}
}

func TestHistogramQuantilesUnderDecay(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	// Old regime: everything near 90.
	for i := 0; i < 1000; i++ {
		h.Observe(90)
	}
	if q := h.Quantile(0.5); q < 85 || q > 95 {
		t.Fatalf("pre-decay median = %g, want ~90", q)
	}
	// Regime change: decay the history hard, then observe the new regime.
	for i := 0; i < 8; i++ {
		h.Decay(0.1)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(10)
	}
	if q := h.Quantile(0.5); q < 5 || q > 15 {
		t.Errorf("post-decay median = %g, want ~10 (old regime should have lost its weight)", q)
	}
	if q := h.Quantile(0.99); q > 95 {
		// With the old mass decayed to zero even p99 must leave the old bucket.
		t.Errorf("post-decay p99 = %g, want below 95", q)
	}
	// Count bookkeeping stays consistent under decay.
	var sum uint64
	for i := 0; i < h.NumBuckets(); i++ {
		sum += h.Bucket(i)
	}
	sum += h.Underflow() + h.Overflow()
	if sum != h.Count() {
		t.Errorf("Count = %d but buckets sum to %d", h.Count(), sum)
	}
	// Decay to extinction: single counts round down to zero.
	h2 := NewHistogram(0, 10, 10)
	h2.Observe(5)
	h2.Decay(0.5)
	if h2.Count() != 0 {
		t.Errorf("count-1 histogram after Decay(0.5): Count = %d, want 0", h2.Count())
	}
	// Factor >= 1 is a no-op, factor < 0 clamps to full reset.
	h3 := NewHistogram(0, 10, 10)
	h3.Observe(5)
	h3.Decay(1.5)
	if h3.Count() != 1 {
		t.Errorf("Decay(1.5) changed the histogram: Count = %d", h3.Count())
	}
	h3.Decay(-1)
	if h3.Count() != 0 {
		t.Errorf("Decay(-1) left Count = %d, want 0", h3.Count())
	}
}

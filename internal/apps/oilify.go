package apps

import "dope/internal/core"

// OilifyParams tunes the gimp-oilify-like image-editing application: one
// request is one image whose tile rows are independent (a DOALL), each
// applying a neighborhood filter.
type OilifyParams struct {
	// Rows is the number of tile rows per image (default 24).
	Rows int
	// UnitsPerRow is the Burn cost per nominal row (default 1800).
	UnitsPerRow int
	// Sigma is the DOALL coordination overhead (default 0.06: the oilify
	// neighborhood filter shares edge pixels between tiles, so it scales a
	// little worse than swaptions).
	Sigma float64
}

func (p *OilifyParams) defaults() {
	if p.Rows <= 0 {
		p.Rows = 24
	}
	if p.UnitsPerRow <= 0 {
		p.UnitsPerRow = 1800
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.06
	}
}

// NewOilify builds the image-editing application: outer loop over images,
// inner DOALL over tile rows or sequential sweep.
func NewOilify(s *Server, p OilifyParams) *core.NestSpec {
	p.defaults()
	inner := &core.NestSpec{Name: "image", Alts: []*core.AltSpec{
		doallAlt("filter", doallParams{
			chunks: p.Rows, unitsPerChunk: p.UnitsPerRow,
			sigma: p.Sigma, minDoP: 2,
		}),
		seqSweepAlt("filter-seq", p.Rows, p.UnitsPerRow),
	}}
	return OuterLoop("gimp", s, inner)
}

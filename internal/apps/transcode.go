package apps

import (
	"dope/internal/core"
	"dope/internal/queue"
)

// TranscodeParams tunes the x264-like video transcoding application.
type TranscodeParams struct {
	// Frames is the number of frames per video (default 24).
	Frames int
	// UnitsPerFrame is the Burn cost of transforming one nominal frame
	// (default 1500).
	UnitsPerFrame int
	// Sigma is the per-worker synchronization overhead of the transform
	// stage; the default 0.04 calibrates the inner-loop speedup to the
	// paper's ≈6.3× at DoP 8.
	Sigma float64
}

func (p *TranscodeParams) defaults() {
	if p.Frames <= 0 {
		p.Frames = 24
	}
	if p.UnitsPerFrame <= 0 {
		p.UnitsPerFrame = 1500
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.04
	}
}

// readShare and writeShare size the pipeline's SEQ stages relative to the
// transform stage, mirroring x264's light demux/mux around heavy encode.
const (
	readShare  = 8
	writeShare = 8
)

// NewTranscode builds the video-transcoding application of the paper's
// running example (Figures 1, 5–7): an outer DOALL loop over submitted
// videos whose inner loop is either a read→transform→write pipeline over
// frames or a fused sequential transcode. The returned spec is the root
// nest to hand to dope.Create.
func NewTranscode(s *Server, p TranscodeParams) *core.NestSpec {
	p.defaults()
	inner := &core.NestSpec{Name: "video", Alts: []*core.AltSpec{
		transcodePipelineAlt(p),
		transcodeFusedAlt(p),
	}}
	return OuterLoop("x264", s, inner)
}

// frame is one unit of intra-video work.
type frame struct {
	index int
	units int
}

func transcodePipelineAlt(p TranscodeParams) *core.AltSpec {
	return &core.AltSpec{
		Name: "pipeline",
		Stages: []core.StageSpec{
			{Name: "read", Type: core.SEQ},
			{Name: "transform", Type: core.PAR, MinDoP: 2},
			{Name: "write", Type: core.SEQ},
		},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			frameUnits := int(float64(p.UnitsPerFrame) * req.Size)
			q1 := queue.New[frame](8)
			q2 := queue.New[frame](8)
			next := 0
			written := 0
			return &core.AltInstance{Stages: []core.StageFns{
				{
					// Read: demux the next frame (light SEQ work).
					Fn: func(w *core.Worker) core.Status {
						if next >= p.Frames {
							return core.Finished
						}
						if w.Begin() == core.Suspended {
							return core.Suspended
						}
						Work(frameUnits / readShare)
						f := frame{index: next, units: frameUnits}
						next++
						w.End()
						q1.Enqueue(f)
						return core.Executing
					},
					Fini: q1.Close,
				},
				{
					// Transform: encode the frame (heavy PAR work with
					// synchronization overhead growing with the extent).
					Fn: func(w *core.Worker) core.Status {
						f, err := q1.Dequeue()
						if err != nil {
							return core.Finished
						}
						// The frame is already claimed: encode and forward it,
						// then propagate a Suspended window.
						w.Begin()
						Work(InflatedUnits(f.units, w.Extent(), p.Sigma))
						st := w.End()
						q2.Enqueue(f)
						if st == core.Suspended {
							return core.Suspended
						}
						return core.Executing
					},
					Load: func() float64 { return float64(q1.Len()) },
					Fini: q2.Close,
				},
				{
					// Write: mux the encoded frame (light SEQ work).
					Fn: func(w *core.Worker) core.Status {
						f, err := q2.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin()
						Work(f.units / writeShare)
						written++
						if w.End() == core.Suspended {
							return core.Suspended
						}
						return core.Executing
					},
					Load: func() float64 { return float64(q2.Len()) },
				},
			}}, nil
		},
	}
}

func transcodeFusedAlt(p TranscodeParams) *core.AltSpec {
	return &core.AltSpec{
		Name:   "fused",
		Stages: []core.StageSpec{{Name: "transcode", Type: core.SEQ}},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			frameUnits := int(float64(p.UnitsPerFrame) * req.Size)
			next := 0
			return &core.AltInstance{Stages: []core.StageFns{{
				// The fused transcode does read+transform+write per frame
				// with no queue traffic and no parallel overhead — the
				// throughput-optimal sequential execution.
				Fn: func(w *core.Worker) core.Status {
					if next >= p.Frames {
						return core.Finished
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					Work(frameUnits/readShare + frameUnits + frameUnits/writeShare)
					next++
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
			}}}, nil
		},
	}
}

package apps

import (
	"dope/internal/core"
	"dope/internal/queue"
)

// CompressParams tunes the bzip-like block-compression application. Its
// defining characteristic in the paper is Table 4's "Inner DoPmin extent
// for speedup = 4": block-parallel compression pays a fixed split/startup
// cost plus high per-worker coordination, so fewer than four workers are
// slower than the fused sequential compressor. This starves WQ-Linear of
// useful intermediate configurations (§8.2.1, Figure 11(c)).
type CompressParams struct {
	// Blocks is the number of compression blocks per file (default 16).
	Blocks int
	// UnitsPerBlock is the Burn cost per nominal block (default 1600).
	UnitsPerBlock int
	// Sigma is the per-worker coordination overhead (default 0.10).
	Sigma float64
	// StartupBlocks is the parallel-mode fixed cost, in block-equivalents
	// of extra split work (default 2).
	StartupBlocks int
}

func (p *CompressParams) defaults() {
	if p.Blocks <= 0 {
		p.Blocks = 16
	}
	if p.UnitsPerBlock <= 0 {
		p.UnitsPerBlock = 1600
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.10
	}
	if p.StartupBlocks <= 0 {
		p.StartupBlocks = 2
	}
}

// NewCompress builds the data-compression application: outer loop over
// files, inner block pipeline (split → compress → concat) or fused
// sequential compressor.
func NewCompress(s *Server, p CompressParams) *core.NestSpec {
	p.defaults()
	inner := &core.NestSpec{Name: "file", Alts: []*core.AltSpec{
		compressPipelineAlt(p),
		compressFusedAlt(p),
	}}
	return OuterLoop("bzip", s, inner)
}

type block struct {
	index int
	units int
}

func compressPipelineAlt(p CompressParams) *core.AltSpec {
	return &core.AltSpec{
		Name: "blocks",
		Stages: []core.StageSpec{
			{Name: "split", Type: core.SEQ},
			{Name: "compress", Type: core.PAR, MinDoP: 4},
			{Name: "concat", Type: core.SEQ},
		},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			blockUnits := int(float64(p.UnitsPerBlock) * req.Size)
			q1 := queue.New[block](8)
			q2 := queue.New[block](8)
			next := 0
			startupPaid := false
			return &core.AltInstance{Stages: []core.StageFns{
				{
					// Split: block boundary scan; the parallel path pays a
					// fixed startup (buffer partitioning, bookkeeping).
					Fn: func(w *core.Worker) core.Status {
						if next >= p.Blocks {
							return core.Finished
						}
						if w.Begin() == core.Suspended {
							return core.Suspended
						}
						scan := blockUnits / 16
						if !startupPaid {
							scan += blockUnits * p.StartupBlocks
							startupPaid = true
						}
						Work(scan)
						b := block{index: next, units: blockUnits}
						next++
						w.End()
						q1.Enqueue(b)
						return core.Executing
					},
					Fini: q1.Close,
				},
				{
					// Compress: the heavy per-block work with steep
					// coordination overhead.
					Fn: func(w *core.Worker) core.Status {
						b, err := q1.Dequeue()
						if err != nil {
							return core.Finished
						}
						// The block is already claimed: finish and forward it,
						// then propagate a Suspended window.
						w.Begin()
						Work(InflatedUnits(b.units, w.Extent(), p.Sigma))
						st := w.End()
						q2.Enqueue(b)
						if st == core.Suspended {
							return core.Suspended
						}
						return core.Executing
					},
					Load: func() float64 { return float64(q1.Len()) },
					Fini: q2.Close,
				},
				{
					// Concat: reassemble the output stream.
					Fn: func(w *core.Worker) core.Status {
						b, err := q2.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin()
						Work(b.units / 16)
						if w.End() == core.Suspended {
							return core.Suspended
						}
						return core.Executing
					},
					Load: func() float64 { return float64(q2.Len()) },
				},
			}}, nil
		},
	}
}

func compressFusedAlt(p CompressParams) *core.AltSpec {
	return &core.AltSpec{
		Name:   "fused",
		Stages: []core.StageSpec{{Name: "compress", Type: core.SEQ}},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			blockUnits := int(float64(p.UnitsPerBlock) * req.Size)
			done := 0
			return &core.AltInstance{Stages: []core.StageFns{{
				// The fused compressor streams through the file: no split
				// startup, no queues, no coordination.
				Fn: func(w *core.Worker) core.Status {
					if done >= p.Blocks {
						return core.Finished
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					Work(blockUnits + blockUnits/8)
					done++
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
			}}}, nil
		},
	}
}

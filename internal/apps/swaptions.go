package apps

import (
	"sync/atomic"

	"dope/internal/core"
)

// SwaptionsParams tunes the Monte Carlo option-pricing application
// (PARSEC's swaptions shape: one pricing request = many independent
// simulation chunks).
type SwaptionsParams struct {
	// Chunks is the number of independent simulation chunks per request
	// (default 32).
	Chunks int
	// UnitsPerChunk is the Burn cost per nominal chunk (default 1200).
	UnitsPerChunk int
	// Sigma is the DOALL coordination overhead per extra worker
	// (default 0.05).
	Sigma float64
}

func (p *SwaptionsParams) defaults() {
	if p.Chunks <= 0 {
		p.Chunks = 32
	}
	if p.UnitsPerChunk <= 0 {
		p.UnitsPerChunk = 1200
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.05
	}
}

// NewSwaptions builds the option-pricing application: an outer loop over
// pricing requests whose inner loop is a DOALL over Monte Carlo chunks (or
// a sequential sweep).
func NewSwaptions(s *Server, p SwaptionsParams) *core.NestSpec {
	p.defaults()
	inner := &core.NestSpec{Name: "price", Alts: []*core.AltSpec{
		doallAlt("simulate", doallParams{
			chunks: p.Chunks, unitsPerChunk: p.UnitsPerChunk,
			sigma: p.Sigma, minDoP: 2,
		}),
		seqSweepAlt("simulate-seq", p.Chunks, p.UnitsPerChunk),
	}}
	return OuterLoop("swaptions", s, inner)
}

// doallParams describes a self-scheduling DOALL inner loop shared by
// swaptions and oilify.
type doallParams struct {
	chunks        int
	unitsPerChunk int
	sigma         float64
	minDoP        int
}

// doallAlt builds a DOALL alternative: workers self-schedule chunk indices
// from an atomic counter until the chunk space is exhausted.
func doallAlt(stage string, p doallParams) *core.AltSpec {
	return &core.AltSpec{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: stage, Type: core.PAR, MinDoP: p.minDoP}},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			units := int(float64(p.unitsPerChunk) * req.Size)
			var next atomic.Int64
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					i := next.Add(1) - 1
					if i >= int64(p.chunks) {
						return core.Finished
					}
					// Chunk i is already claimed (next was advanced), so it
					// is priced even when the window reports Suspended.
					w.Begin()
					Work(InflatedUnits(units, w.Extent(), p.sigma))
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
				Load: func() float64 {
					remaining := int64(p.chunks) - next.Load()
					if remaining < 0 {
						remaining = 0
					}
					return float64(remaining)
				},
			}}}, nil
		},
	}
}

// seqSweepAlt builds the sequential alternative: one SEQ stage sweeping all
// chunks with no coordination overhead.
func seqSweepAlt(stage string, chunks, unitsPerChunk int) *core.AltSpec {
	return &core.AltSpec{
		Name:   "sequential",
		Stages: []core.StageSpec{{Name: stage, Type: core.SEQ}},
		Make: func(item any) (*core.AltInstance, error) {
			req, err := reqFrom(item)
			if err != nil {
				return nil, err
			}
			units := int(float64(unitsPerChunk) * req.Size)
			done := 0
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if done >= chunks {
						return core.Finished
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					Work(units)
					done++
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
			}}}, nil
		},
	}
}

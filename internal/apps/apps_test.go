package apps

import (
	"testing"
	"testing/quick"
	"time"

	"dope/internal/core"
)

// smallTranscode returns fast-running parameters for tests.
func smallTranscode() TranscodeParams {
	return TranscodeParams{Frames: 6, UnitsPerFrame: 200, Sigma: 0.04}
}

// runServerApp drives n requests through an app spec under a static config
// and waits for completion.
func runServerApp(t *testing.T, s *Server, spec *core.NestSpec, cfg *core.Config, n int, contexts int) *core.Exec {
	t.Helper()
	e, err := core.New(spec, core.WithContexts(contexts), core.WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Submit(1.0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBurnDeterministic(t *testing.T) {
	if Burn(1000) != Burn(1000) {
		t.Fatal("Burn must be deterministic")
	}
	if Burn(0) == 0 {
		t.Fatal("zero-unit burn should still return the seed state")
	}
}

func TestCalibratePositive(t *testing.T) {
	if Calibrate() <= 0 {
		t.Fatal("calibration must be positive")
	}
}

func TestSyncOverheadFactor(t *testing.T) {
	if SyncOverheadFactor(1, 0.04) != 1 {
		t.Fatal("extent 1 has no overhead")
	}
	if SyncOverheadFactor(8, 0.04) != 1.28 {
		t.Fatalf("factor(8, .04) = %v", SyncOverheadFactor(8, 0.04))
	}
	// The paper's transcode calibration: s(8) = 8/1.28 ≈ 6.25×.
	s8 := 8 / SyncOverheadFactor(8, 0.04)
	if s8 < 6.0 || s8 > 6.5 {
		t.Fatalf("speedup(8) = %v, want ≈6.3", s8)
	}
	if InflatedUnits(100, 2, 0.5) != 150 {
		t.Fatalf("inflated = %d", InflatedUnits(100, 2, 0.5))
	}
}

func TestTranscodeCompletesPipeline(t *testing.T) {
	s := NewServer(nil)
	spec := NewTranscode(s, smallTranscode())
	cfg := &core.Config{Alt: 0, Extents: []int{2}}
	cfg.SetChild("video", &core.Config{Alt: 0, Extents: []int{1, 3, 1}})
	runServerApp(t, s, spec, cfg, 8, 12)
	if got := s.Resp.Count(); got != 8 {
		t.Fatalf("completed = %d, want 8", got)
	}
	if s.Resp.MeanExec() <= 0 {
		t.Fatal("exec time not recorded")
	}
}

func TestTranscodeCompletesFused(t *testing.T) {
	s := NewServer(nil)
	spec := NewTranscode(s, smallTranscode())
	cfg := &core.Config{Alt: 0, Extents: []int{4}}
	cfg.SetChild("video", &core.Config{Alt: 1, Extents: []int{1}})
	runServerApp(t, s, spec, cfg, 8, 8)
	if got := s.Resp.Count(); got != 8 {
		t.Fatalf("completed = %d, want 8", got)
	}
}

func TestTranscodeParallelIsFasterPerItem(t *testing.T) {
	// Inner parallelism must reduce per-request execution time (Fig 2a).
	params := TranscodeParams{Frames: 12, UnitsPerFrame: 3000, Sigma: 0.04}

	sSeq := NewServer(nil)
	cfgSeq := &core.Config{Alt: 0, Extents: []int{1}}
	cfgSeq.SetChild("video", &core.Config{Alt: 1, Extents: []int{1}})
	runServerApp(t, sSeq, NewTranscode(sSeq, params), cfgSeq, 4, 8)

	sPar := NewServer(nil)
	cfgPar := &core.Config{Alt: 0, Extents: []int{1}}
	cfgPar.SetChild("video", &core.Config{Alt: 0, Extents: []int{1, 6, 1}})
	runServerApp(t, sPar, NewTranscode(sPar, params), cfgPar, 4, 8)

	seq := sSeq.Resp.MeanExec()
	par := sPar.Resp.MeanExec()
	if par >= seq {
		t.Fatalf("parallel exec %.4fs not faster than sequential %.4fs", par, seq)
	}
}

func TestSwaptionsCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewSwaptions(s, SwaptionsParams{Chunks: 8, UnitsPerChunk: 200})
	cfg := &core.Config{Alt: 0, Extents: []int{2}}
	cfg.SetChild("price", &core.Config{Alt: 0, Extents: []int{3}})
	runServerApp(t, s, spec, cfg, 6, 8)
	if got := s.Resp.Count(); got != 6 {
		t.Fatalf("completed = %d", got)
	}
}

func TestSwaptionsSequentialAlt(t *testing.T) {
	s := NewServer(nil)
	spec := NewSwaptions(s, SwaptionsParams{Chunks: 8, UnitsPerChunk: 200})
	cfg := &core.Config{Alt: 0, Extents: []int{3}}
	cfg.SetChild("price", &core.Config{Alt: 1, Extents: []int{1}})
	runServerApp(t, s, spec, cfg, 6, 8)
	if got := s.Resp.Count(); got != 6 {
		t.Fatalf("completed = %d", got)
	}
}

func TestCompressCompletesBothAlts(t *testing.T) {
	for alt := 0; alt <= 1; alt++ {
		s := NewServer(nil)
		spec := NewCompress(s, CompressParams{Blocks: 6, UnitsPerBlock: 200})
		cfg := &core.Config{Alt: 0, Extents: []int{2}}
		extents := []int{1, 4, 1}
		if alt == 1 {
			extents = []int{1}
		}
		cfg.SetChild("file", &core.Config{Alt: alt, Extents: extents})
		runServerApp(t, s, spec, cfg, 5, 12)
		if got := s.Resp.Count(); got != 5 {
			t.Fatalf("alt %d: completed = %d", alt, got)
		}
	}
}

func TestCompressMinDoPDeclared(t *testing.T) {
	s := NewServer(nil)
	spec := NewCompress(s, CompressParams{})
	inner := spec.Alts[0].Stages[0].Nest
	if inner == nil {
		t.Fatal("compress must nest the file loop")
	}
	var compressStage *core.StageSpec
	for i := range inner.Alts[0].Stages {
		if inner.Alts[0].Stages[i].Name == "compress" {
			compressStage = &inner.Alts[0].Stages[i]
		}
	}
	if compressStage == nil || compressStage.MinDoP != 4 {
		t.Fatalf("compress stage MinDoP = %+v, want 4 (Table 4)", compressStage)
	}
	s.Close()
}

func TestOilifyCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewOilify(s, OilifyParams{Rows: 6, UnitsPerRow: 200})
	cfg := &core.Config{Alt: 0, Extents: []int{2}}
	cfg.SetChild("image", &core.Config{Alt: 0, Extents: []int{2}})
	runServerApp(t, s, spec, cfg, 6, 8)
	if got := s.Resp.Count(); got != 6 {
		t.Fatalf("completed = %d", got)
	}
}

func TestFerretPipelineCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewFerret(s, FerretParams{UnitsBase: 100})
	cfg := &core.Config{Alt: 0, Extents: []int{1, 2, 2, 2, 2, 1}}
	runServerApp(t, s, spec, cfg, 20, 12)
	if got := s.Resp.Count(); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
	if s.Meter.Total() != 20 {
		t.Fatalf("meter total = %d", s.Meter.Total())
	}
}

func TestFerretFusedCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewFerret(s, FerretParams{UnitsBase: 100})
	cfg := &core.Config{Alt: 1, Extents: []int{6}}
	runServerApp(t, s, spec, cfg, 20, 12)
	if got := s.Resp.Count(); got != 20 {
		t.Fatalf("completed = %d", got)
	}
}

func TestFerretSurvivesReconfiguration(t *testing.T) {
	s := NewServer(nil)
	spec := NewFerret(s, FerretParams{UnitsBase: 150})
	cfg := &core.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}
	e, err := core.New(spec, core.WithContexts(12), core.WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.Submit(1.0)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Rebalance the pipeline mid-run: forces a root suspension with queries
	// in flight in the intermediate queues.
	e.SetConfig(&core.Config{Alt: 0, Extents: []int{1, 2, 2, 3, 3, 1}})
	for i := 0; i < 30; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Resp.Count(); got != 60 {
		t.Fatalf("completed = %d, want 60 (no queries lost in reconfiguration)", got)
	}
}

func TestFerretFusionSwitchDrainsInFlight(t *testing.T) {
	s := NewServer(nil)
	spec := NewFerret(s, FerretParams{UnitsBase: 150})
	cfg := &core.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}
	e, err := core.New(spec, core.WithContexts(8), core.WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		s.Submit(1.0)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Switch to the fused alternative with items in flight.
	e.SetConfig(&core.Config{Alt: 1, Extents: []int{4}})
	for i := 0; i < 25; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Resp.Count(); got != 50 {
		t.Fatalf("completed = %d, want 50 (fusion switch must drain in-flight queries)", got)
	}
}

func TestDedupPipelineCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewDedup(s, DedupParams{ChunksPerItem: 8, UnitsPerChunk: 150})
	cfg := &core.Config{Alt: 0, Extents: []int{1, 2, 2, 1}}
	runServerApp(t, s, spec, cfg, 15, 12)
	if got := s.Resp.Count(); got != 15 {
		t.Fatalf("completed = %d", got)
	}
}

func TestDedupFusedCompletes(t *testing.T) {
	s := NewServer(nil)
	spec := NewDedup(s, DedupParams{ChunksPerItem: 8, UnitsPerChunk: 150})
	cfg := &core.Config{Alt: 1, Extents: []int{4}}
	runServerApp(t, s, spec, cfg, 15, 8)
	if got := s.Resp.Count(); got != 15 {
		t.Fatalf("completed = %d", got)
	}
}

func TestDedupDuplicatesShareHashes(t *testing.T) {
	// chunkSeed must produce real duplicates across requests.
	seen := map[uint64]int{}
	for req := 1; req <= 10; req++ {
		for i := 0; i < 9; i++ {
			seen[chunkSeed(req, i, 3)]++
		}
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups += n
		}
	}
	if dups == 0 {
		t.Fatal("no duplicate chunk content generated")
	}
	// And hashing is deterministic on content.
	if hashChunk(42, 4096) != hashChunk(42, 4096) {
		t.Fatal("hashChunk not deterministic")
	}
	if hashChunk(42, 4096) == hashChunk(43, 4096) {
		t.Fatal("distinct seeds should hash differently")
	}
}

func TestServerAccounting(t *testing.T) {
	s := NewServer(nil)
	s.Submit(1.0)
	s.Submit(2.0)
	if s.Submitted() != 2 || s.Work.Len() != 2 {
		t.Fatalf("submitted=%d len=%d", s.Submitted(), s.Work.Len())
	}
	r, err := s.Work.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	start := s.Clock().Now()
	s.Complete(r, start)
	if s.Resp.Count() != 1 || s.Meter.Total() != 1 {
		t.Fatal("completion not recorded")
	}
}

func TestReqFromRejectsBadItems(t *testing.T) {
	if _, err := reqFrom(nil); err == nil {
		t.Fatal("nil item should error")
	}
	if _, err := reqFrom("nope"); err == nil {
		t.Fatal("wrong type should error")
	}
	if _, err := reqFrom(&Request{}); err != nil {
		t.Fatal(err)
	}
}

func TestInflatedUnitsMonotoneProperty(t *testing.T) {
	f := func(unitsRaw uint16, sigmaRaw uint8) bool {
		units := int(unitsRaw)
		sigma := float64(sigmaRaw%50) / 100
		prev := -1
		for e := 1; e <= 32; e *= 2 {
			v := InflatedUnits(units, e, sigma)
			if v < prev || v < units*boolToInt(units >= 0) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestOuterLoopSuspensionLosesNoRequests(t *testing.T) {
	// The canonical two-level server shape must conserve requests across a
	// root reconfiguration for every server app.
	builders := map[string]func(*Server) *core.NestSpec{
		"x264":      func(s *Server) *core.NestSpec { return NewTranscode(s, TranscodeParams{Frames: 4, UnitsPerFrame: 150}) },
		"swaptions": func(s *Server) *core.NestSpec { return NewSwaptions(s, SwaptionsParams{Chunks: 4, UnitsPerChunk: 150}) },
		"bzip":      func(s *Server) *core.NestSpec { return NewCompress(s, CompressParams{Blocks: 4, UnitsPerBlock: 150}) },
		"gimp":      func(s *Server) *core.NestSpec { return NewOilify(s, OilifyParams{Rows: 4, UnitsPerRow: 150}) },
	}
	for name, build := range builders {
		s := NewServer(nil)
		spec := build(s)
		cfg := core.DefaultConfig(spec)
		cfg.Extents[0] = 2
		e, err := core.New(spec, core.WithContexts(8), core.WithInitialConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			s.Submit(1.0)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		nc := e.CurrentConfig()
		nc.Extents[0] = 5
		e.SetConfig(nc)
		for i := 0; i < 12; i++ {
			s.Submit(1.0)
		}
		s.Close()
		if err := e.Wait(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := s.Resp.Count(); got != 24 {
			t.Fatalf("%s: completed %d of 24 across reconfiguration", name, got)
		}
	}
}

func TestNativeWorkToggle(t *testing.T) {
	SetNativeWork(true)
	start := time.Now()
	Work(200) // native: ~instant spin, far below the 200µs virtual cost
	native := time.Since(start)
	SetNativeWork(false)
	start = time.Now()
	Work(200)
	virtual := time.Since(start)
	if virtual < 150*time.Microsecond {
		t.Fatalf("virtual work too fast: %v", virtual)
	}
	_ = native // native timing is host-dependent; only the mode switch matters
	Work(0)    // zero units must not sleep
}

func TestDedupDuplicateSkippingSavesWork(t *testing.T) {
	// With DupPeriod=1 every chunk shares one of 4 hot contents, so all
	// compression after the first few unique chunks is skipped; the run
	// must finish much faster than with unique chunks everywhere.
	run := func(dupPeriod int) time.Duration {
		s := NewServer(nil)
		spec := NewDedup(s, DedupParams{
			ChunksPerItem: 8, UnitsPerChunk: 3000, DupPeriod: dupPeriod,
		})
		cfg := &core.Config{Alt: 0, Extents: []int{1, 2, 2, 1}}
		e, err := core.New(spec, core.WithContexts(8), core.WithInitialConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		const n = 12
		for i := 0; i < n; i++ {
			s.Submit(1.0)
		}
		s.Close()
		start := time.Now()
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := s.Resp.Count(); got != n {
			t.Fatalf("completed = %d", got)
		}
		return time.Since(start)
	}
	mostlyUnique := run(1000000) // DupPeriod so large only i=0 chunks repeat
	allHot := run(1)
	if float64(allHot) >= 0.9*float64(mostlyUnique) {
		t.Fatalf("dedup hits should save time: hot=%v unique=%v", allHot, mostlyUnique)
	}
}

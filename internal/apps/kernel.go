// Package apps ports the paper's six evaluation applications (Table 4) to
// the DoPE API as synthetic kernels. We do not have the original inputs
// (yuv4mpeg videos, SPEC ref data, PARSEC native sets), so each app
// reproduces the *parallelism structure* — loop-nest shape, pipeline
// topology, queue wiring, stage cost ratios, and parallel-efficiency
// characteristics — with calibrated CPU-bound work standing in for codec,
// compression, and search math. DoP adaptation only observes task timing
// and queue occupancy, so this substitution preserves the behaviour the
// paper evaluates (see DESIGN.md).
//
// Applications:
//
//   - transcode: x264-like video transcoding — outer DOALL over videos ×
//     inner 3-stage pipeline over frames (Figure 1).
//   - swaptions: Monte Carlo option pricing — outer over requests × inner
//     DOALL over simulation chunks.
//   - compress: bzip-like block compression — inner block pipeline whose
//     minimum useful DoP is 4 (Table 4).
//   - oilify: gimp oilify plugin — outer over images × inner DOALL tiles.
//   - ferret: 6-stage content-based image-search pipeline with a fused
//     middle alternative.
//   - dedup: chunk/hash/compress/write deduplication pipeline with a fused
//     alternative.
package apps

import (
	"sync/atomic"
	"time"
)

// sink prevents the optimizer from discarding kernel work.
var sink atomic.Uint64

// nativeMode selects how Work is performed: false (default) = virtual
// work, true = spin on the host CPU.
var nativeMode atomic.Bool

// UnitDuration is the virtual-CPU time one work unit represents in
// simulated mode: 1 µs. All app parameters are expressed in units, so one
// nominal transcode frame (1500 units) costs 1.5 ms of context occupancy.
const UnitDuration = time.Microsecond

// SetNativeWork switches Work between spinning on the host CPU (true) and
// virtual work (false, the default). Virtual work lets a small host model
// the paper's 24-context Xeon: the worker occupies its hardware context —
// the resource DoP extents ration — for the work's duration without
// consuming a host core, so context-gated parallel speedups are observable
// even on a single-CPU machine. Spin mode is for hosts with enough real
// cores.
func SetNativeWork(native bool) { nativeMode.Store(native) }

// Work performs `units` of CPU-intensive work under the current mode. Call
// it only between Worker.Begin and Worker.End, where the hardware context
// is held.
func Work(units int) {
	if units <= 0 {
		return
	}
	if nativeMode.Load() {
		Burn(units)
		return
	}
	// The sleep is deliberate context occupancy, not a stall: in virtual
	// mode the worker holds its hardware context for the work's duration
	// without consuming a host core.
	time.Sleep(time.Duration(units) * UnitDuration) //dopevet:ignore tokenhold virtual work occupies the context on purpose
}

// Burn executes a deterministic CPU-bound kernel of the given size and
// returns its checksum. One unit is one multiply-accumulate step; use
// Calibrate to translate units into wall time on the host.
func Burn(units int) uint64 {
	var x uint64 = 88172645463325252
	for i := 0; i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	sink.Store(x)
	return x
}

// Calibrate measures how many kernel units run per microsecond on this
// host, so experiments can express stage costs in time.
func Calibrate() float64 {
	const probe = 2_000_000
	start := time.Now()
	Burn(probe)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return float64(probe)
	}
	return float64(probe) / float64(elapsed.Microseconds()+1)
}

// SyncOverheadFactor models the synchronization/communication overhead of
// running a stage's work spread over extent workers: the per-item cost is
// inflated by (1 + sigma·(extent-1)). With sigma ≈ 0.04 the resulting
// speedup curve s(m) = m/(1+sigma(m-1)) hits the paper's ≈6.3× at m = 8
// for the transcode inner loop.
func SyncOverheadFactor(extent int, sigma float64) float64 {
	if extent <= 1 {
		return 1
	}
	return 1 + sigma*float64(extent-1)
}

// InflatedUnits applies SyncOverheadFactor to a unit count.
func InflatedUnits(units int, extent int, sigma float64) int {
	return int(float64(units) * SyncOverheadFactor(extent, sigma))
}

package apps

import (
	"errors"
	"fmt"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/platform"
	"dope/internal/queue"
)

// Request is one user transaction: a video to transcode, a query to
// answer, a file to compress.
type Request struct {
	// ID orders requests for debugging.
	ID int
	// Size scales the request's work (1.0 = nominal).
	Size float64
	// Arrived is when the request entered the work queue.
	Arrived time.Time
}

// Server is the service harness around an online application: the work
// queue the paper's "task queueing thread" feeds, plus response-time and
// throughput accounting. One Server backs one application instance.
type Server struct {
	// Work is the request queue; the outer task's LoadCB reports its
	// occupancy.
	Work *queue.Queue[*Request]
	// Resp records per-request wait/exec/response times.
	Resp *metrics.ResponseRecorder
	// Meter tracks completions per second.
	Meter *metrics.ThroughputMeter

	clock platform.Clock
	subs  int
}

// NewServer returns a harness using the given clock (nil = wall clock).
func NewServer(clock platform.Clock) *Server {
	if clock == nil {
		clock = platform.WallClock{}
	}
	return &Server{
		Work:  queue.New[*Request](0),
		Resp:  &metrics.ResponseRecorder{},
		Meter: metrics.NewThroughputMeter(0.2),
		clock: clock,
	}
}

// Clock returns the server's clock.
func (s *Server) Clock() platform.Clock { return s.clock }

// Submit stamps and enqueues a request.
func (s *Server) Submit(size float64) error {
	s.subs++
	return s.Work.Enqueue(&Request{ID: s.subs, Size: size, Arrived: s.clock.Now()})
}

// Close marks the end of the request stream; tasks finish after draining.
func (s *Server) Close() { s.Work.Close() }

// Complete records a finished request whose execution began at execStart.
func (s *Server) Complete(r *Request, execStart time.Time) {
	now := s.clock.Now()
	s.Resp.Observe(execStart.Sub(r.Arrived), now.Sub(execStart))
	s.Meter.Observe(now)
}

// Submitted returns how many requests have been submitted.
func (s *Server) Submitted() int { return s.subs }

// queuePoll is how often blocked tasks re-check for work and suspension.
const queuePoll = 200 * time.Microsecond

// OuterLoop builds the canonical root nest of a two-level server
// application (the paper's Figure 1 structure): a single PAR stage that
// dequeues requests and runs the inner nest once per request, with
// response accounting around it. This is the DoPE port of the Pthreads
// Transcode outer loop in Figure 7.
func OuterLoop(name string, s *Server, inner *core.NestSpec) *core.NestSpec {
	return &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name:   "outer",
		Stages: []core.StageSpec{{Name: "serve", Type: core.PAR, Nest: inner}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					req, ok, err := s.Work.DequeueWhile(
						func() bool { return !w.Suspending() }, queuePoll)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					start := s.clock.Now()
					st, err := w.RunNest(inner, req)
					if err != nil {
						// An instantiation error is fatal to the request but
						// must not wedge the loop.
						return core.Finished
					}
					s.Complete(req, start)
					if st == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
				Load: func() float64 { return float64(s.Work.Len()) },
			}}}, nil
		},
	}}}
}

// reqFrom extracts the *Request a nested instantiation was made for.
func reqFrom(item any) (*Request, error) {
	r, ok := item.(*Request)
	if !ok || r == nil {
		return nil, fmt.Errorf("apps: nested loop instantiated without a request (got %T)", item)
	}
	return r, nil
}

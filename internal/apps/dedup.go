package apps

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/core"
	"dope/internal/queue"
)

// DedupParams tunes the deduplication application (the shape of PARSEC's
// dedup): a pipeline
//
//	chunk → hash → compress → write
//
// where duplicate chunks (identified by content hash) skip compression,
// plus a fused alternative processing whole requests in one parallel task.
type DedupParams struct {
	// ChunksPerItem is how many chunks one request splits into (default 16).
	ChunksPerItem int
	// UnitsPerChunk is the compression cost per unique nominal chunk
	// (default 900).
	UnitsPerChunk int
	// DupPeriod makes every DupPeriod-th chunk a duplicate of a hot chunk
	// (default 3, i.e. ~1/3 duplicates).
	DupPeriod int
	// Sigma is the per-worker coordination overhead (default 0.05).
	Sigma float64
}

func (p *DedupParams) defaults() {
	if p.ChunksPerItem <= 0 {
		p.ChunksPerItem = 16
	}
	if p.UnitsPerChunk <= 0 {
		p.UnitsPerChunk = 900
	}
	if p.DupPeriod <= 0 {
		p.DupPeriod = 3
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.05
	}
}

// chunk is one deduplication unit in flight.
type chunk struct {
	parent    *Request
	start     time.Time
	remaining *atomic.Int64 // chunks of the parent still in flight
	seed      uint64
	sum       uint64
	dup       bool
}

// chunkSeed derives deterministic chunk content: every DupPeriod-th chunk
// shares one of a few hot seeds so the dedup index gets real hits.
func chunkSeed(reqID, i, dupPeriod int) uint64 {
	if i%dupPeriod == 0 {
		return uint64(1000 + i%4) // hot content
	}
	return uint64(reqID)<<20 | uint64(i)
}

// hashChunk produces the chunk's content digest over synthetic bytes. It
// is real CPU work (FNV-1a over a generated stream), not virtual work.
func hashChunk(seed uint64, bytes int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	x := seed
	for i := 0; i < bytes/8; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for b := 0; b < 8; b++ {
			buf[b] = byte(x >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// NewDedup builds the deduplication application as a root-level pipeline
// over the server's work queue. Reconfiguration uses the same drain
// protocol as ferret: only the head stage observes suspension, downstream
// stages drain until the Fini cascade closes their in-queues, and Make
// reopens the emptied queues on respawn.
func NewDedup(s *Server, p DedupParams) *core.NestSpec {
	p.defaults()
	q1 := queue.New[chunk](32)
	q2 := queue.New[chunk](32)
	q3 := queue.New[chunk](32)
	var index sync.Map // digest -> true

	hashWork := func(c *chunk) {
		c.sum = hashChunk(c.seed, 4096)
	}
	compressWork := func(c *chunk, extent int) {
		if _, dup := index.LoadOrStore(c.sum, true); dup {
			c.dup = true
			return
		}
		Work(InflatedUnits(int(float64(p.UnitsPerChunk)*c.parent.Size), extent, p.Sigma))
	}
	writeWork := func(c chunk) {
		Work(p.UnitsPerChunk / 16)
		if c.remaining.Add(-1) == 0 {
			s.Complete(c.parent, c.start)
		}
	}

	pipeline := &core.AltSpec{
		Name: "pipeline",
		Stages: []core.StageSpec{
			{Name: "chunk", Type: core.SEQ},
			{Name: "hash", Type: core.PAR},
			{Name: "compress", Type: core.PAR},
			{Name: "write", Type: core.SEQ},
		},
		Make: func(item any) (*core.AltInstance, error) {
			q1.Reopen()
			q2.Reopen()
			q3.Reopen()
			return &core.AltInstance{Stages: []core.StageFns{
				{
					// Chunk (head): content-defined splitting; the only
					// stage that watches suspension — checked every
					// iteration so a deep backlog cannot mask it.
					Fn: func(w *core.Worker) core.Status {
						if w.Suspending() {
							return core.Suspended
						}
						req, ok, err := s.Work.DequeueWhile(
							func() bool { return !w.Suspending() }, queuePoll)
						if errors.Is(err, queue.ErrClosed) {
							return core.Finished
						}
						if !ok {
							return core.Suspended
						}
						start := s.clock.Now()
						// The request is already claimed: chunk and forward
						// it before propagating a Suspended window.
						w.Begin()
						Work(p.UnitsPerChunk / 8)
						st := w.End()
						remaining := &atomic.Int64{}
						remaining.Store(int64(p.ChunksPerItem))
						for i := 0; i < p.ChunksPerItem; i++ {
							q1.Enqueue(chunk{
								parent: req, start: start, remaining: remaining,
								seed: chunkSeed(req.ID, i, p.DupPeriod),
							})
						}
						if st == core.Suspended {
							return core.Suspended
						}
						return core.Executing
					},
					Load: func() float64 { return float64(s.Work.Len()) },
					Fini: q1.Close,
				},
				{
					// Hash: digest each chunk; drains q1 to exhaustion.
					Fn: func(w *core.Worker) core.Status {
						c, err := q1.Dequeue()
						if err != nil {
							return core.Finished
						}
						// Drain stage: exits via q1 closing so queued chunks
						// survive an alternative switch.
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						hashWork(&c)
						w.End()
						q2.Enqueue(c)
						return core.Executing
					},
					Load: func() float64 { return float64(q1.Len()) },
					Fini: q2.Close,
				},
				{
					// Compress: unique chunks only; duplicates skip.
					Fn: func(w *core.Worker) core.Status {
						c, err := q2.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						compressWork(&c, w.Extent())
						w.End()
						q3.Enqueue(c)
						return core.Executing
					},
					Load: func() float64 { return float64(q2.Len()) },
					Fini: q3.Close,
				},
				{
					// Write: emit and account.
					Fn: func(w *core.Worker) core.Status {
						c, err := q3.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						writeWork(c)
						w.End()
						return core.Executing
					},
					Load: func() float64 { return float64(q3.Len()) },
				},
			}}, nil
		},
	}

	fused := &core.AltSpec{
		Name:   "fused",
		Stages: []core.StageSpec{{Name: "dedup", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				// The fused task: chunk, hash, compress, write per request
				// with no forwarding.
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					req, ok, err := s.Work.DequeueWhile(
						func() bool { return !w.Suspending() }, queuePoll)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					start := s.clock.Now()
					w.Begin()
					Work(p.UnitsPerChunk / 8)
					remaining := &atomic.Int64{}
					remaining.Store(int64(p.ChunksPerItem))
					for i := 0; i < p.ChunksPerItem; i++ {
						c := chunk{
							parent: req, start: start, remaining: remaining,
							seed: chunkSeed(req.ID, i, p.DupPeriod),
						}
						hashWork(&c)
						compressWork(&c, w.Extent())
						writeWork(c)
					}
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
				Load: func() float64 { return float64(s.Work.Len()) },
			}}}, nil
		},
	}

	return &core.NestSpec{Name: "dedup", Alts: []*core.AltSpec{pipeline, fused}}
}

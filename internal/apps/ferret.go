package apps

import (
	"errors"
	"time"

	"dope/internal/core"
	"dope/internal/queue"
)

// FerretParams tunes the content-based image-search engine (the shape of
// PARSEC's ferret): a six-stage pipeline
//
//	load → segment → extract → index → rank → out
//
// over queries, where the middle four stages are parallel and heavily
// skewed toward rank (similarity search against the whole index), plus a
// fused alternative in which one parallel task performs all stages with no
// inter-stage forwarding — the fused task the paper's developers registered
// for TBF (§7.2).
type FerretParams struct {
	// UnitsBase scales all stage costs (default 400).
	UnitsBase int
	// HopUnits is the communication cost paid per inter-stage queue
	// transfer in the pipeline alternative (default UnitsBase/4); the
	// fused task avoids it.
	HopUnits int
	// Sigma is the per-worker coordination overhead (default 0.03).
	Sigma float64
}

func (p *FerretParams) defaults() {
	if p.UnitsBase <= 0 {
		p.UnitsBase = 400
	}
	if p.HopUnits <= 0 {
		p.HopUnits = p.UnitsBase / 4
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.03
	}
}

// ferretShape gives the stage cost multipliers (× UnitsBase): rank
// dominates, so thread placement matters.
var ferretShape = [6]float64{0.5, 1, 2, 4, 8, 0.5}

// ferretStageNames index-aligns with ferretShape.
var ferretStageNames = [6]string{"load", "segment", "extract", "index", "rank", "out"}

// fitem is a query in flight through the pipeline.
type fitem struct {
	req   *Request
	start time.Time
}

// NewFerret builds the image-search application as a root-level pipeline
// over the server's query queue.
//
// Reconfiguration follows the paper's drain protocol (§3.2 step 5): only
// the head stage observes suspension — it stops pulling new queries — and
// every downstream stage keeps consuming until the Fini cascade closes its
// in-queue, so the pipeline is empty when the executive respawns it. Make
// therefore reopens the (bounded) inter-stage queues and never needs to
// migrate in-flight work across alternatives.
func NewFerret(s *Server, p FerretParams) *core.NestSpec {
	p.defaults()
	// Persistent inter-stage queues (qs[0] feeds segment, ..., qs[4] feeds
	// out); bounded so the cheap head stage cannot inhale the entire work
	// queue and defeat the LoadCB signals.
	var qs [5]*queue.Queue[fitem]
	for i := range qs {
		qs[i] = queue.New[fitem](4)
	}
	stageUnits := func(i int, size float64) int {
		return int(ferretShape[i] * float64(p.UnitsBase) * size)
	}
	// work runs the CPU portion of middle stage i (1..4) for an item: the
	// forwarding cost plus the stage kernel, issued as one Work call (sleep
	// wakeups carry real latency on small hosts; one virtual-work call per
	// CPU section keeps measured times faithful to the model).
	work := func(i int, it fitem, extent int) {
		Work(p.HopUnits + InflatedUnits(stageUnits(i, it.req.Size), extent, p.Sigma))
	}
	finish := func(it fitem) {
		Work(stageUnits(5, it.req.Size))
		s.Complete(it.req, it.start)
	}

	pipeline := &core.AltSpec{
		Name: "pipeline",
		Stages: []core.StageSpec{
			{Name: ferretStageNames[0], Type: core.SEQ},
			{Name: ferretStageNames[1], Type: core.PAR},
			{Name: ferretStageNames[2], Type: core.PAR},
			{Name: ferretStageNames[3], Type: core.PAR},
			{Name: ferretStageNames[4], Type: core.PAR},
			{Name: ferretStageNames[5], Type: core.SEQ},
		},
		Make: func(item any) (*core.AltInstance, error) {
			for _, q := range qs {
				q.Reopen() // empty after the previous run's drain
			}
			inst := &core.AltInstance{Stages: make([]core.StageFns, 6)}
			// Stage 0 (head): load queries from the server work queue. It
			// alone watches for suspension; its Fini closes qs[0] so the
			// drain cascades downstream.
			inst.Stages[0] = core.StageFns{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					req, ok, err := s.Work.DequeueWhile(
						func() bool { return !w.Suspending() }, queuePoll)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					it := fitem{req: req, start: s.clock.Now()}
					// The request is already claimed: load and forward it
					// before propagating a Suspended window.
					w.Begin()
					Work(stageUnits(0, req.Size))
					st := w.End()
					qs[0].Enqueue(it)
					if st == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
				Load: func() float64 { return float64(s.Work.Len()) },
				Fini: qs[0].Close,
			}
			// Stages 1..4: the parallel middle. They drain their in-queues
			// to exhaustion regardless of suspension.
			for i := 1; i <= 4; i++ {
				in, out := qs[i-1], qs[i]
				stageIdx := i
				inst.Stages[i] = core.StageFns{
					Fn: func(w *core.Worker) core.Status {
						it, err := in.Dequeue()
						if err != nil {
							return core.Finished
						}
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						work(stageIdx, it, w.Extent())
						w.End()
						out.Enqueue(it)
						return core.Executing
					},
					Load: func() float64 { return float64(in.Len()) },
					Fini: out.Close,
				}
			}
			// Stage 5: rank output and completion accounting.
			inst.Stages[5] = core.StageFns{
				Fn: func(w *core.Worker) core.Status {
					it, err := qs[4].Dequeue()
					if err != nil {
						return core.Finished
					}
					w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
					finish(it)
					w.End()
					return core.Executing
				},
				Load: func() float64 { return float64(qs[4].Len()) },
			}
			return inst, nil
		},
	}

	fused := &core.AltSpec{
		Name: "fused",
		Stages: []core.StageSpec{
			{Name: "query", Type: core.PAR},
		},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				// One parallel task performs load..out back to back with no
				// forwarding cost — the explicitly fused task.
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					req, ok, err := s.Work.DequeueWhile(
						func() bool { return !w.Suspending() }, queuePoll)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					it := fitem{req: req, start: s.clock.Now()}
					w.Begin()
					units := stageUnits(0, req.Size)
					for j := 1; j <= 4; j++ {
						units += InflatedUnits(stageUnits(j, req.Size), w.Extent(), p.Sigma)
					}
					Work(units)
					finish(it)
					if w.End() == core.Suspended {
						return core.Suspended
					}
					return core.Executing
				},
				Load: func() float64 { return float64(s.Work.Len()) },
			}}}, nil
		},
	}

	return &core.NestSpec{Name: "ferret", Alts: []*core.AltSpec{pipeline, fused}}
}

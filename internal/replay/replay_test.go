package replay

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/platform"
)

// liveReport produces a genuine report by briefly running ferret on the
// real executive.
func liveReport(t *testing.T) *core.Report {
	t.Helper()
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 80})
	e, err := core.New(spec, core.WithContexts(8),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 2, 2, 2, 2, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Report()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rep := liveReport(t)
	entry := Encode(rep)
	back := Decode(entry)

	if back.Contexts != rep.Contexts || back.BusyContexts != rep.BusyContexts {
		t.Fatal("context counts lost")
	}
	if back.Root == nil || back.Root.Name != rep.Root.Name {
		t.Fatal("root lost")
	}
	if len(back.Root.Stages) != len(rep.Root.Stages) {
		t.Fatal("stages lost")
	}
	for i := range rep.Root.Stages {
		a, b := rep.Root.Stages[i], back.Root.Stages[i]
		if a.Name != b.Name || a.Type != b.Type || a.Extent != b.Extent ||
			a.ExecTime != b.ExecTime || a.Iterations != b.Iterations {
			t.Fatalf("stage %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// The structural spec survives, including alternatives.
	if back.Root.Spec == nil || len(back.Root.Spec.Alts) != len(rep.Root.Spec.Alts) {
		t.Fatal("spec alternatives lost")
	}
	if err := back.Root.Spec.Validate(); err != nil {
		t.Fatalf("reconstructed spec invalid: %v", err)
	}
	if !back.Config.Equal(rep.Config) {
		t.Fatalf("config mismatch: %v vs %v", back.Config, rep.Config)
	}
	// Features answer the recorded values.
	v, err := back.Features.Value(platform.FeatureHardwareContexts)
	if err != nil || v != 8 {
		t.Fatalf("feature = %v, %v", v, err)
	}
}

func TestRecorderAndReadLog(t *testing.T) {
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 3; i++ {
		if err := rec.Record(rep); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Count() != 3 {
		t.Fatalf("count = %d", rec.Count())
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Root.Name != "ferret" {
		t.Fatalf("root = %q", entries[0].Root.Name)
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	entries, err := ReadLog(strings.NewReader("\n\n"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("blank lines should be skipped: %v, %d", err, len(entries))
	}
}

func TestReplayDrivesRealMechanism(t *testing.T) {
	// Record a run where the ferret pipeline is badly unbalanced, then
	// replay TBF over the log: it must propose a rebalanced (or fused)
	// configuration.
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 5; i++ {
		rec.Record(rep)
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decisions := Replay(entries, &mechanism.TBF{Threads: 24})
	if len(decisions) == 0 {
		t.Fatal("TBF made no decision over the recorded run")
	}
	first := decisions[0]
	if first.Config == nil {
		t.Fatal("nil decision config")
	}
	total := 0
	if first.Config.Alt == 0 {
		for _, e := range first.Config.Extents {
			total += e
		}
		if total <= 10 {
			t.Fatalf("TBF proposal too small: %v", first.Config)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 4; i++ {
		rec.Record(rep)
	}
	raw := buf.Bytes()
	e1, _ := ReadLog(bytes.NewReader(raw))
	e2, _ := ReadLog(bytes.NewReader(raw))
	d1 := Replay(e1, &mechanism.FDP{Threads: 24})
	d2 := Replay(e2, &mechanism.FDP{Threads: 24})
	if len(d1) != len(d2) {
		t.Fatalf("replay not deterministic: %d vs %d decisions", len(d1), len(d2))
	}
	for i := range d1 {
		if !d1[i].Config.Equal(d2[i].Config) {
			t.Fatalf("decision %d differs", i)
		}
	}
}

func TestRecordWhileRunning(t *testing.T) {
	// Record snapshots every few milliseconds while the executive runs,
	// the way cmd/dope-trace -record does.
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 80})
	e, err := core.New(spec, core.WithContexts(8),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			rec.Record(e.Report())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 60; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	<-done
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("too few snapshots: %d", len(entries))
	}
	// Later entries show progress.
	lastIters := entries[len(entries)-1].Root.Stages[0].Iterations
	if lastIters == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestDecodeUnknownQueueSafe(t *testing.T) {
	// A log from a newer producer may omit fields; decoding must not panic.
	e := &Entry{Spec: &SpecRecord{Name: "x", Alts: []AltRecord{{Name: "a",
		Stages: []StageRecord{{Name: "s", Par: true}}}}}}
	rep := Decode(e)
	if rep.Root != nil {
		t.Fatal("nil root should stay nil")
	}
}

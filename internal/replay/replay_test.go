package replay

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/platform"
)

// liveReport produces a genuine report by briefly running ferret on the
// real executive.
func liveReport(t *testing.T) *core.Report {
	t.Helper()
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 80})
	e, err := core.New(spec, core.WithContexts(8),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 2, 2, 2, 2, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Report()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rep := liveReport(t)
	entry := Encode(rep)
	back := Decode(entry)

	if back.Contexts != rep.Contexts || back.BusyContexts != rep.BusyContexts {
		t.Fatal("context counts lost")
	}
	if back.Root == nil || back.Root.Name != rep.Root.Name {
		t.Fatal("root lost")
	}
	if len(back.Root.Stages) != len(rep.Root.Stages) {
		t.Fatal("stages lost")
	}
	for i := range rep.Root.Stages {
		a, b := rep.Root.Stages[i], back.Root.Stages[i]
		if a.Name != b.Name || a.Type != b.Type || a.Extent != b.Extent ||
			a.ExecTime != b.ExecTime || a.Iterations != b.Iterations {
			t.Fatalf("stage %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// The structural spec survives, including alternatives.
	if back.Root.Spec == nil || len(back.Root.Spec.Alts) != len(rep.Root.Spec.Alts) {
		t.Fatal("spec alternatives lost")
	}
	if err := back.Root.Spec.Validate(); err != nil {
		t.Fatalf("reconstructed spec invalid: %v", err)
	}
	if !back.Config.Equal(rep.Config) {
		t.Fatalf("config mismatch: %v vs %v", back.Config, rep.Config)
	}
	// Features answer the recorded values.
	v, err := back.Features.Value(platform.FeatureHardwareContexts)
	if err != nil || v != 8 {
		t.Fatalf("feature = %v, %v", v, err)
	}
}

func TestRecorderAndReadLog(t *testing.T) {
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 3; i++ {
		if err := rec.Record(rep); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Count() != 3 {
		t.Fatalf("count = %d", rec.Count())
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Root.Name != "ferret" {
		t.Fatalf("root = %q", entries[0].Root.Name)
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	entries, err := ReadLog(strings.NewReader("\n\n"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("blank lines should be skipped: %v, %d", err, len(entries))
	}
}

func TestReplayDrivesRealMechanism(t *testing.T) {
	// Record a run where the ferret pipeline is badly unbalanced, then
	// replay TBF over the log: it must propose a rebalanced (or fused)
	// configuration.
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 5; i++ {
		rec.Record(rep)
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decisions := Replay(entries, &mechanism.TBF{Threads: 24})
	if len(decisions) == 0 {
		t.Fatal("TBF made no decision over the recorded run")
	}
	first := decisions[0]
	if first.Config == nil {
		t.Fatal("nil decision config")
	}
	total := 0
	if first.Config.Alt == 0 {
		for _, e := range first.Config.Extents {
			total += e
		}
		if total <= 10 {
			t.Fatalf("TBF proposal too small: %v", first.Config)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	rep := liveReport(t)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 4; i++ {
		rec.Record(rep)
	}
	raw := buf.Bytes()
	e1, _ := ReadLog(bytes.NewReader(raw))
	e2, _ := ReadLog(bytes.NewReader(raw))
	d1 := Replay(e1, &mechanism.FDP{Threads: 24})
	d2 := Replay(e2, &mechanism.FDP{Threads: 24})
	if len(d1) != len(d2) {
		t.Fatalf("replay not deterministic: %d vs %d decisions", len(d1), len(d2))
	}
	for i := range d1 {
		if !d1[i].Config.Equal(d2[i].Config) {
			t.Fatalf("decision %d differs", i)
		}
	}
}

func TestRecordWhileRunning(t *testing.T) {
	// Record snapshots every few milliseconds while the executive runs,
	// the way cmd/dope-trace -record does.
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 80})
	e, err := core.New(spec, core.WithContexts(8),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			rec.Record(e.Report())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 60; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	<-done
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("too few snapshots: %d", len(entries))
	}
	// Later entries show progress.
	lastIters := entries[len(entries)-1].Root.Stages[0].Iterations
	if lastIters == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestDecodeUnknownQueueSafe(t *testing.T) {
	// A log from a newer producer may omit fields; decoding must not panic.
	e := &Entry{Spec: &SpecRecord{Name: "x", Alts: []AltRecord{{Name: "a",
		Stages: []StageRecord{{Name: "s", Par: true}}}}}}
	rep := Decode(e)
	if rep.Root != nil {
		t.Fatal("nil root should stay nil")
	}
}

// TestRobustnessCountersRoundTrip pins the full counter set through
// Encode -> JSONL -> ReadLog -> Decode. Before this test existed, the
// StageObs row silently dropped Stalls, Zombies, Shed, Failures and the
// slot-churn counters, so replayed incidents looked like clean runs. Every
// field is nonzero so an accidentally dropped json tag cannot hide behind a
// zero value.
func TestRobustnessCountersRoundTrip(t *testing.T) {
	rep := &core.Report{
		Tenant:          "video",
		Time:            1500 * time.Millisecond,
		Contexts:        8,
		BusyContexts:    5,
		BlockedAcquires: 2,
		Rejected:        42,
		Config:          &core.Config{Alt: 0, Extents: []int{3}},
		Root: &core.NestReport{
			Name: "app", Path: "app", AltIndex: 0, AltName: "only",
			Spec: &core.NestSpec{Name: "app", Alts: []*core.AltSpec{{
				Name:   "only",
				Stages: []core.StageSpec{{Name: "work", Type: core.PAR}},
			}}},
			Stages: []core.StageReport{{
				Name: "work", Type: core.PAR, MinDoP: 1, MaxDoP: 16,
				Extent: 3, ExecTime: 0.01, MeanExecTime: 0.012,
				Rate: 250, Load: 7, LoadInstances: 3,
				Iterations: 1000, Completed: 2, Workers: 3,
				Spawned: 9, Retired: 6, Resizes: 4,
				Failures: 11, ConsecutiveFailures: 3,
				Stalls: 5, StallsDuringDrain: 2, Zombies: 1,
				Shed: 17, QueueSojourn: 0.004, Observed: true,
			}},
		},
	}

	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	if err := rec.Record(rep); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	back := Decode(entries[0])

	if back.Tenant != "video" {
		t.Errorf("Tenant = %q, want video", back.Tenant)
	}
	if back.Rejected != 42 {
		t.Errorf("Rejected = %d, want 42", back.Rejected)
	}
	a, b := rep.Root.Stages[0], back.Root.Stages[0]
	if a.Spawned != b.Spawned || a.Retired != b.Retired || a.Resizes != b.Resizes {
		t.Errorf("slot churn lost: %+v vs %+v", a, b)
	}
	if a.Failures != b.Failures || a.ConsecutiveFailures != b.ConsecutiveFailures {
		t.Errorf("failure counters lost: %d/%d vs %d/%d",
			a.Failures, a.ConsecutiveFailures, b.Failures, b.ConsecutiveFailures)
	}
	if a.Stalls != b.Stalls || a.StallsDuringDrain != b.StallsDuringDrain {
		t.Errorf("stall counters lost: %d/%d vs %d/%d",
			a.Stalls, a.StallsDuringDrain, b.Stalls, b.StallsDuringDrain)
	}
	if a.Zombies != b.Zombies {
		t.Errorf("Zombies = %d, want %d", b.Zombies, a.Zombies)
	}
	if a.Shed != b.Shed {
		t.Errorf("Shed = %d, want %d", b.Shed, a.Shed)
	}
	if a.QueueSojourn != b.QueueSojourn || a.Observed != b.Observed {
		t.Errorf("sojourn/observed lost: %g/%v vs %g/%v",
			a.QueueSojourn, a.Observed, b.QueueSojourn, b.Observed)
	}
}

// TestInterruptedRecordingStillParses pins the truncated-tail contract: a
// recorder killed mid-write leaves a partial final line, and ReadLog must
// serve every complete entry before it instead of failing the whole log.
func TestInterruptedRecordingStillParses(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := 0; i < 5; i++ {
		rep := &core.Report{Time: time.Duration(i) * time.Second, Contexts: 8}
		if err := rec.Record(rep); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.String()

	// Chop the log mid-way through the last entry, newline and all — the
	// shape a SIGKILL mid-write leaves behind.
	cut := full[:len(full)-len("\n")-17]
	entries, err := ReadLog(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail should parse, got %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("got %d entries from truncated log, want 4", len(entries))
	}
	for i, e := range entries {
		if e.TimeSec != float64(i) {
			t.Errorf("entry %d: TimeSec = %g, want %d", i, e.TimeSec, i)
		}
	}

	// Corruption before the tail is still an error: splice garbage into the
	// middle of an otherwise complete log.
	lines := strings.SplitAfter(full, "\n")
	lines[2] = lines[2][:10] + "\n"
	if _, err := ReadLog(strings.NewReader(strings.Join(lines, ""))); err == nil {
		t.Fatal("mid-log corruption must not be silently dropped")
	}
}

// Package replay records the executive's monitoring snapshots to a JSONL
// log and replays them offline against any mechanism. This is tooling for
// the paper's third agent, the mechanism developer (§5): capture one run
// of an application, then iterate on a mechanism's logic against the
// recorded observations without re-running the application at all.
//
// A recorded Report keeps everything a mechanism consumes — the stage
// observations, the configuration, the platform features it read — plus
// enough of the spec structure (names, types, DoP bounds, alternatives) to
// reconstruct a structural NestSpec on load. Functors are not (and cannot
// be) serialized; replayed specs use placeholder factories and are only
// suitable for driving mechanisms, never for execution.
package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"dope/internal/core"
	"dope/internal/platform"
)

// SpecRecord is the serializable structure of a NestSpec.
type SpecRecord struct {
	Name string      `json:"name"`
	Alts []AltRecord `json:"alts"`
}

// AltRecord is the serializable structure of one alternative.
type AltRecord struct {
	Name   string        `json:"name"`
	Stages []StageRecord `json:"stages"`
}

// StageRecord is the serializable structure of one stage.
type StageRecord struct {
	Name   string      `json:"name"`
	Par    bool        `json:"par"`
	MinDoP int         `json:"minDoP,omitempty"`
	MaxDoP int         `json:"maxDoP,omitempty"`
	Nest   *SpecRecord `json:"nest,omitempty"`
}

// StageObs is one stage's observation row.
type StageObs struct {
	Name          string  `json:"name"`
	Par           bool    `json:"par"`
	MinDoP        int     `json:"minDoP,omitempty"`
	MaxDoP        int     `json:"maxDoP,omitempty"`
	HasNest       bool    `json:"hasNest,omitempty"`
	Extent        int     `json:"extent"`
	ExecTime      float64 `json:"execTime"`
	MeanExecTime  float64 `json:"meanExecTime"`
	Rate          float64 `json:"rate"`
	Load          float64 `json:"load"`
	LoadInstances int     `json:"loadInstances"`
	Iterations    uint64  `json:"iterations"`
	Completed     uint64  `json:"completed"`
	Workers       int     `json:"workers,omitempty"`
	Sojourn       float64 `json:"sojourn,omitempty"`
	Observed      bool    `json:"observed,omitempty"`
	// Robustness counters. A post-mortem replay is only trustworthy if the
	// failure story survives the round trip: slot churn, absorbed panics,
	// watchdog stalls, zombie slots, and shed queue items all record here.
	Spawned           uint64 `json:"spawned,omitempty"`
	Retired           uint64 `json:"retired,omitempty"`
	Resizes           uint64 `json:"resizes,omitempty"`
	Failures          uint64 `json:"failures,omitempty"`
	ConsecFailures    int    `json:"consecFailures,omitempty"`
	Stalls            uint64 `json:"stalls,omitempty"`
	StallsDuringDrain uint64 `json:"stallsDuringDrain,omitempty"`
	Zombies           int    `json:"zombies,omitempty"`
	Shed              uint64 `json:"shed,omitempty"`
}

// NestObs is one nest's observation subtree.
type NestObs struct {
	Name     string              `json:"name"`
	Path     string              `json:"path"`
	AltIndex int                 `json:"altIndex"`
	AltName  string              `json:"altName"`
	Stages   []StageObs          `json:"stages"`
	Children map[string]*NestObs `json:"children,omitempty"`
}

// ConfigRecord mirrors core.Config.
type ConfigRecord struct {
	Alt      int                      `json:"alt"`
	Extents  []int                    `json:"extents"`
	Children map[string]*ConfigRecord `json:"children,omitempty"`
}

// Entry is one recorded control-tick snapshot.
type Entry struct {
	// TimeSec is the executive uptime at the snapshot, in seconds.
	TimeSec float64 `json:"t"`
	// Tenant is the executive's identity in a multi-tenant process; "" when
	// single-tenant.
	Tenant string `json:"tenant,omitempty"`
	// Contexts/BusyContexts/BlockedAcquires mirror core.Report.
	Contexts        int `json:"contexts"`
	BusyContexts    int `json:"busy"`
	BlockedAcquires int `json:"blocked"`
	// Rejected mirrors core.Report.Rejected: admissions refused before any
	// stage queue saw the work.
	Rejected uint64 `json:"rejected,omitempty"`
	// Features holds the sampled platform features by name.
	Features map[string]float64 `json:"features,omitempty"`
	// Spec is the structural spec tree (recorded once per entry for
	// self-containedness; logs compress well).
	Spec *SpecRecord `json:"spec"`
	// Config is the active configuration.
	Config *ConfigRecord `json:"config"`
	// Root is the observation tree.
	Root *NestObs `json:"root"`
}

// --- encoding ---------------------------------------------------------------

func encodeSpec(s *core.NestSpec) *SpecRecord {
	if s == nil {
		return nil
	}
	out := &SpecRecord{Name: s.Name}
	for _, alt := range s.Alts {
		ar := AltRecord{Name: alt.Name}
		for i := range alt.Stages {
			st := &alt.Stages[i]
			ar.Stages = append(ar.Stages, StageRecord{
				Name: st.Name, Par: st.Type == core.PAR,
				MinDoP: st.MinDoP, MaxDoP: st.MaxDoP,
				Nest: encodeSpec(st.Nest),
			})
		}
		out.Alts = append(out.Alts, ar)
	}
	return out
}

func encodeConfig(c *core.Config) *ConfigRecord {
	if c == nil {
		return nil
	}
	out := &ConfigRecord{Alt: c.Alt, Extents: append([]int(nil), c.Extents...)}
	for k, v := range c.Children {
		if out.Children == nil {
			out.Children = map[string]*ConfigRecord{}
		}
		out.Children[k] = encodeConfig(v)
	}
	return out
}

func encodeNest(n *core.NestReport) *NestObs {
	if n == nil {
		return nil
	}
	out := &NestObs{
		Name: n.Name, Path: n.Path, AltIndex: n.AltIndex, AltName: n.AltName,
	}
	for _, st := range n.Stages {
		out.Stages = append(out.Stages, StageObs{
			Name: st.Name, Par: st.Type == core.PAR,
			MinDoP: st.MinDoP, MaxDoP: st.MaxDoP, HasNest: st.HasNest,
			Extent: st.Extent, ExecTime: st.ExecTime, MeanExecTime: st.MeanExecTime,
			Rate: st.Rate, Load: st.Load, LoadInstances: st.LoadInstances,
			Iterations: st.Iterations, Completed: st.Completed,
			Workers: st.Workers, Sojourn: st.QueueSojourn, Observed: st.Observed,
			Spawned: st.Spawned, Retired: st.Retired, Resizes: st.Resizes,
			Failures: st.Failures, ConsecFailures: st.ConsecutiveFailures,
			Stalls: st.Stalls, StallsDuringDrain: st.StallsDuringDrain,
			Zombies: st.Zombies, Shed: st.Shed,
		})
	}
	for k, v := range n.Children {
		if out.Children == nil {
			out.Children = map[string]*NestObs{}
		}
		out.Children[k] = encodeNest(v)
	}
	return out
}

// Encode converts a live report into a serializable entry. Feature values
// are sampled now, through the registered callbacks.
func Encode(r *core.Report) *Entry {
	e := &Entry{
		TimeSec:         r.Time.Seconds(),
		Tenant:          r.Tenant,
		Contexts:        r.Contexts,
		BusyContexts:    r.BusyContexts,
		BlockedAcquires: r.BlockedAcquires,
		Rejected:        r.Rejected,
		Spec:            encodeSpec(rootSpec(r)),
		Config:          encodeConfig(r.Config),
		Root:            encodeNest(r.Root),
	}
	if r.Features != nil {
		for _, name := range r.Features.Names() {
			if v, err := r.Features.Value(name); err == nil {
				if e.Features == nil {
					e.Features = map[string]float64{}
				}
				e.Features[name] = v
			}
		}
	}
	return e
}

func rootSpec(r *core.Report) *core.NestSpec {
	if r.Root == nil {
		return nil
	}
	return r.Root.Spec
}

// --- decoding ---------------------------------------------------------------

// noopMake stands in for the unserializable functor factories.
func noopMake(item any) (*core.AltInstance, error) { return nil, nil }

func decodeSpec(s *SpecRecord) *core.NestSpec {
	if s == nil {
		return nil
	}
	out := &core.NestSpec{Name: s.Name}
	for _, ar := range s.Alts {
		alt := &core.AltSpec{Name: ar.Name, Make: noopMake}
		for _, sr := range ar.Stages {
			t := core.SEQ
			if sr.Par {
				t = core.PAR
			}
			alt.Stages = append(alt.Stages, core.StageSpec{
				Name: sr.Name, Type: t, MinDoP: sr.MinDoP, MaxDoP: sr.MaxDoP,
				Nest: decodeSpec(sr.Nest),
			})
		}
		out.Alts = append(out.Alts, alt)
	}
	return out
}

func decodeConfig(c *ConfigRecord) *core.Config {
	if c == nil {
		return nil
	}
	out := &core.Config{Alt: c.Alt, Extents: append([]int(nil), c.Extents...)}
	for k, v := range c.Children {
		out.SetChild(k, decodeConfig(v))
	}
	return out
}

func decodeNest(n *NestObs, spec *core.NestSpec) *core.NestReport {
	if n == nil {
		return nil
	}
	out := &core.NestReport{
		Name: n.Name, Path: n.Path, Spec: spec,
		AltIndex: n.AltIndex, AltName: n.AltName,
	}
	for _, st := range n.Stages {
		t := core.SEQ
		if st.Par {
			t = core.PAR
		}
		out.Stages = append(out.Stages, core.StageReport{
			Name: st.Name, Type: t, MinDoP: st.MinDoP, MaxDoP: st.MaxDoP,
			HasNest: st.HasNest, Extent: st.Extent,
			ExecTime: st.ExecTime, MeanExecTime: st.MeanExecTime,
			Rate: st.Rate, Load: st.Load, LoadInstances: st.LoadInstances,
			Iterations: st.Iterations, Completed: st.Completed,
			Workers: st.Workers, QueueSojourn: st.Sojourn, Observed: st.Observed,
			Spawned: st.Spawned, Retired: st.Retired, Resizes: st.Resizes,
			Failures: st.Failures, ConsecutiveFailures: st.ConsecFailures,
			Stalls: st.Stalls, StallsDuringDrain: st.StallsDuringDrain,
			Zombies: st.Zombies, Shed: st.Shed,
		})
	}
	for k, v := range n.Children {
		if out.Children == nil {
			out.Children = map[string]*core.NestReport{}
		}
		var childSpec *core.NestSpec
		if spec != nil {
			childSpec = findChild(spec, k)
		}
		out.Children[k] = decodeNest(v, childSpec)
	}
	return out
}

func findChild(spec *core.NestSpec, name string) *core.NestSpec {
	for _, alt := range spec.Alts {
		for i := range alt.Stages {
			if n := alt.Stages[i].Nest; n != nil && n.Name == name {
				return n
			}
		}
	}
	return nil
}

// Decode reconstructs a core.Report a mechanism can consume. The spec tree
// is structural only (placeholder factories); Features answers exactly the
// recorded values.
func Decode(e *Entry) *core.Report {
	spec := decodeSpec(e.Spec)
	features := platform.NewFeatures()
	for name, v := range e.Features {
		v := v
		features.Register(name, func() float64 { return v })
	}
	return &core.Report{
		Time:            time.Duration(e.TimeSec * float64(time.Second)),
		Tenant:          e.Tenant,
		Contexts:        e.Contexts,
		BusyContexts:    e.BusyContexts,
		BlockedAcquires: e.BlockedAcquires,
		Rejected:        e.Rejected,
		Features:        features,
		Config:          decodeConfig(e.Config),
		Root:            decodeNest(e.Root, spec),
	}
}

// --- log I/O ----------------------------------------------------------------

// Recorder appends entries to a JSONL stream. Safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
}

// NewRecorder wraps w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{enc: json.NewEncoder(w)}
}

// Record samples and appends one snapshot.
func (r *Recorder) Record(rep *core.Report) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(Encode(rep)); err != nil {
		return fmt.Errorf("replay: record: %w", err)
	}
	r.n++
	return nil
}

// Count returns how many entries were recorded.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// ReadLog parses a JSONL log into entries.
//
// A recorder killed mid-write (SIGKILL, OOM, power loss) leaves one
// truncated, newline-less line at the tail of the file; ReadLog drops that
// tail and returns the entries before it, so an interrupted recording
// still replays. A malformed line that IS newline-terminated — anywhere,
// including last — is real corruption and stays an error.
func ReadLog(rd io.Reader) ([]*Entry, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var out []*Entry
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("replay: %w", err)
		}
		terminated := err == nil
		if b := bytes.TrimSuffix(raw, []byte("\n")); len(bytes.TrimSpace(b)) > 0 {
			line++
			var e Entry
			if uerr := json.Unmarshal(b, &e); uerr != nil {
				if !terminated {
					return out, nil // truncated tail of an interrupted recording
				}
				return nil, fmt.Errorf("replay: line %d: %w", line, uerr)
			}
			out = append(out, &e)
		}
		if err == io.EOF {
			return out, nil
		}
	}
}

// Decision is one mechanism output during a replay.
type Decision struct {
	// Index and TimeSec locate the triggering entry.
	Index   int
	TimeSec float64
	// Config is the mechanism's (normalized) proposal; nil means "keep".
	Config *core.Config
}

// Replay feeds every entry to the mechanism in order and collects its
// non-nil decisions, normalizing each against the recorded spec — an
// offline dry-run of "what would this mechanism have done".
func Replay(entries []*Entry, m core.Mechanism) []Decision {
	var out []Decision
	for i, e := range entries {
		rep := Decode(e)
		cfg := m.Reconfigure(rep)
		if cfg == nil {
			continue
		}
		if rep.Root != nil && rep.Root.Spec != nil {
			cfg.Normalize(rep.Root.Spec)
		}
		out = append(out, Decision{Index: i, TimeSec: e.TimeSec, Config: cfg})
	}
	return out
}

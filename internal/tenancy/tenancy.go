// Package tenancy multiplexes many DoPE executives — tenants — onto one
// machine. Each tenant registers a nest with its own goal mechanism; the
// arbiter grants every tenant a quota-bounded view (platform.TenantPool) of
// the single shared hardware-context pool and re-divides the quota lattice
// each tick: weighted max-min fair share within strict priority tiers,
// work-conserving redistribution of idle quota, and per-tenant power
// sub-budgets split from a machine-wide watt budget.
//
// Robustness is the point of the layer. Failure, stall, and overload
// handling — the per-process machinery of internal/core — becomes per-tenant
// containment here:
//
//   - A fail-stop, watchdog fire, or panic storm in one tenant ends only
//     that tenant's run; its grant is reclaimed and redistributed, and
//     because every tenant admits acquires against its own quota word, the
//     failure never blocks another tenant's Begin fast path.
//   - Quota revocation reuses the drain protocol: lowering a quota stops
//     admitting immediately and lets the overage drain through Releases;
//     a tenant that stays over its grant past the grace period has its
//     configuration clamped in place, and past the eviction deadline it is
//     stopped outright — the drain bounded by WithDrainTimeout and the
//     stall watchdog, so a zombie tenant cannot hold the arbiter hostage.
//   - Admission control composes with queue shedding: registrations beyond
//     the machine's context floors are rejected, arrivals into a tenant
//     whose grant is gone or backlogged are refused by Admit, and both are
//     counted per tenant alongside the stages' Shed counters.
package tenancy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/platform"
)

// State is a tenant's lifecycle phase.
type State int32

const (
	// Running: registered, granted, executing.
	Running State = iota
	// Draining: an unregister or arbiter shutdown is draining the tenant.
	Draining
	// Stopped: unregistered cleanly.
	Stopped
	// Finished: the tenant's workload completed naturally.
	Finished
	// Failed: the tenant's run ended with an error (fail-stop escalation,
	// panic storm over budget).
	Failed
	// Evicted: the arbiter stopped the tenant for holding contexts past a
	// revocation deadline.
	Evicted
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	case Finished:
		return "finished"
	case Failed:
		return "failed"
	case Evicted:
		return "evicted"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Errors returned by Register and Unregister.
var (
	ErrSaturated     = errors.New("tenancy: machine saturated (context floors exhausted)")
	ErrDuplicate     = errors.New("tenancy: tenant name already registered")
	ErrUnknownTenant = errors.New("tenancy: no such tenant")
	ErrClosed        = errors.New("tenancy: arbiter closed")
)

// TenantSpec describes one nest to run under the arbiter.
type TenantSpec struct {
	// Name is the tenant's stable identity: admin detail rows, reports, and
	// re-registrations key on it, never on registration order.
	Name string
	// Root is the tenant's nest.
	Root *core.NestSpec
	// Weight is the tenant's share within its priority tier (default 1).
	Weight float64
	// Priority selects the strict tier: higher tiers' demands are satisfied
	// before lower tiers see any surplus. Floors (MinContexts) are honored
	// across all tiers.
	Priority int
	// MinContexts is the admission floor (default 1): registration fails
	// when the live tenants' floors plus this one exceed the machine.
	MinContexts int
	// MaxContexts caps the tenant's grant; 0 means the machine size.
	MaxContexts int
	// Mechanism is the tenant's adaptation mechanism (nil = static). It
	// sees Report.Contexts equal to the tenant's live quota, so budget-free
	// mechanisms follow grants automatically.
	Mechanism core.Mechanism
	// PowerMechanism, when set, rebuilds the tenant's mechanism whenever
	// its share of the machine watt budget changes (the per-tenant TPC
	// sub-budget hook). It replaces Mechanism on the first split.
	PowerMechanism func(watts float64) core.Mechanism
	// Options are appended to the executive's construction options, after
	// the arbiter's own (pool, name, drain timeout), so they may override
	// the drain timeout or add deadlines, failure policies, traces.
	Options []core.Option
}

// Tenant is one registered nest and its grant.
type Tenant struct {
	arb  *Arbiter
	spec TenantSpec
	pool *platform.TenantPool
	exec *core.Exec

	state    atomic.Int32
	rejected atomic.Uint64 // Admit refusals
	grants   atomic.Uint64 // arbiter quota raises applied to this tenant
	revokes  atomic.Uint64 // arbiter quota cuts (including eviction's cut to 0)

	mu        sync.Mutex
	quota     int
	watts     float64
	demand    float64   // decaying max of used+blocked, the fair-share signal
	overSince time.Time // since when the over-quota drain has made no progress
	lastOver  int       // over-quota debt at the previous enforcement pass
	err       error
}

// Name returns the tenant's stable registered name.
func (t *Tenant) Name() string { return t.spec.Name }

// Exec returns the tenant's executive.
func (t *Tenant) Exec() *core.Exec { return t.exec }

// Pool returns the tenant's quota-bounded context view.
func (t *Tenant) Pool() *platform.TenantPool { return t.pool }

// State returns the tenant's lifecycle phase.
func (t *Tenant) State() State { return State(t.state.Load()) }

// Err returns the tenant's run error, if its run has ended with one.
func (t *Tenant) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Quota returns the tenant's current grant.
func (t *Tenant) Quota() int { return t.pool.Quota() }

// Rejected returns how many arrivals Admit has refused.
func (t *Tenant) Rejected() uint64 { return t.rejected.Load() }

// Grants and Revokes count arbiter quota raises and cuts applied to this
// tenant — the churn signal behind the admin per-tenant arbitration rows.
func (t *Tenant) Grants() uint64  { return t.grants.Load() }
func (t *Tenant) Revokes() uint64 { return t.revokes.Load() }

// admitBacklogFactor bounds the arrival backlog Admit tolerates: once more
// than admitBacklogFactor×quota workers are parked on the tenant's quota,
// new arrivals are refused rather than queued behind a grant that cannot
// absorb them.
const admitBacklogFactor = 2

// Admit is the tenant-level admission check for one arrival. It refuses —
// and counts the refusal — when the tenant is no longer running, its grant
// is gone, or its quota backlog says the machine share cannot absorb more.
// Callers shed the arrival (or push back) instead of submitting it; the
// per-stage queue OverloadPolicy remains the second line of defense for
// work already admitted.
func (t *Tenant) Admit() bool {
	q := t.pool.Quota()
	if t.State() != Running || q == 0 || t.pool.Blocked() > admitBacklogFactor*q {
		t.rejected.Add(1)
		return false
	}
	return true
}

// TenantStatus is a point-in-time snapshot for admin surfaces, keyed by the
// stable tenant name.
type TenantStatus struct {
	Name      string  `json:"name"`
	State     string  `json:"state"`
	Priority  int     `json:"priority"`
	Weight    float64 `json:"weight"`
	Quota     int     `json:"quota"`
	Used      int     `json:"used"`
	OverQuota int     `json:"overQuota"`
	Peak      int     `json:"peak"`
	Blocked   int     `json:"blocked"`
	Acquires  uint64  `json:"acquires"`
	Watts     float64 `json:"watts"`
	Shed      uint64  `json:"shed"`
	Rejected  uint64  `json:"rejected"`
	Grants    uint64  `json:"grants"`
	Revokes   uint64  `json:"revokes"`
	Err       string  `json:"err,omitempty"`
}

// Arbiter divides one shared context pool among registered tenants.
type Arbiter struct {
	pool         *platform.Contexts
	interval     time.Duration
	drainTimeout time.Duration
	revokeGrace  time.Duration
	evictAfter   time.Duration
	watts        float64
	manualTick   bool

	mu       sync.Mutex
	tenants  map[string]*Tenant
	closed   bool
	rejected atomic.Uint64 // registrations refused by admission control

	// start anchors the time axis the collector samples against;
	// collector, when attached, receives grant/revoke/evict decisions.
	start     time.Time
	collector atomic.Pointer[metrics.Collector]

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Option configures an Arbiter.
type Option func(*Arbiter)

// WithTickInterval sets how often the arbiter re-divides quotas.
func WithTickInterval(d time.Duration) Option {
	return func(a *Arbiter) {
		if d > 0 {
			a.interval = d
		}
	}
}

// WithPowerBudget sets the machine-wide watt budget split into per-tenant
// sub-budgets in proportion to their grants.
func WithPowerBudget(watts float64) Option {
	return func(a *Arbiter) {
		if watts > 0 {
			a.watts = watts
		}
	}
}

// WithDrainTimeout sets the drain bound installed on every tenant executive
// (overridable per tenant through TenantSpec.Options). It bounds both
// reconfiguration drains and the revocation Stop, so a zombie tenant cannot
// hold the arbiter hostage.
func WithDrainTimeout(d time.Duration) Option {
	return func(a *Arbiter) {
		if d > 0 {
			a.drainTimeout = d
		}
	}
}

// WithRevokeGrace sets how long a tenant may sit over its quota before the
// arbiter clamps its configuration in place.
func WithRevokeGrace(d time.Duration) Option {
	return func(a *Arbiter) {
		if d > 0 {
			a.revokeGrace = d
		}
	}
}

// WithEvictAfter sets how long a tenant may stay over quota before it is
// stopped outright.
func WithEvictAfter(d time.Duration) Option {
	return func(a *Arbiter) {
		if d > 0 {
			a.evictAfter = d
		}
	}
}

// WithManualTick disables the background tick goroutine; tests drive the
// arbiter deterministically through Tick.
func WithManualTick() Option {
	return func(a *Arbiter) { a.manualTick = true }
}

// New builds an arbiter over the shared pool and starts its tick loop
// (unless WithManualTick).
func New(pool *platform.Contexts, opts ...Option) *Arbiter {
	a := &Arbiter{
		pool:         pool,
		interval:     10 * time.Millisecond,
		drainTimeout: 250 * time.Millisecond,
		revokeGrace:  50 * time.Millisecond,
		evictAfter:   500 * time.Millisecond,
		tenants:      make(map[string]*Tenant),
		stopCh:       make(chan struct{}),
		start:        time.Now(),
	}
	for _, o := range opts {
		o(a)
	}
	if !a.manualTick {
		a.wg.Add(1)
		go a.loop()
	}
	return a
}

// Pool returns the shared machine pool.
func (a *Arbiter) Pool() *platform.Contexts { return a.pool }

// PowerBudget returns the machine-wide watt budget (0 = none).
func (a *Arbiter) PowerBudget() float64 { return a.watts }

// RejectedTenants returns how many registrations admission control refused.
func (a *Arbiter) RejectedTenants() uint64 { return a.rejected.Load() }

// Register admits a tenant, builds its executive over a fresh quota view of
// the shared pool, grants it an initial quota, and starts it. Registration
// is refused — and counted — when the name is taken or when the live
// tenants' context floors plus the new one exceed the machine.
func (a *Arbiter) Register(spec TenantSpec) (*Tenant, error) {
	if spec.Name == "" {
		return nil, errors.New("tenancy: tenant needs a name")
	}
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	if spec.MinContexts < 1 {
		spec.MinContexts = 1
	}
	n := a.pool.N()
	if spec.MaxContexts <= 0 || spec.MaxContexts > n {
		spec.MaxContexts = n
	}
	if spec.MinContexts > spec.MaxContexts {
		spec.MinContexts = spec.MaxContexts
	}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := a.tenants[spec.Name]; dup {
		a.mu.Unlock()
		return nil, ErrDuplicate
	}
	floors := spec.MinContexts
	for _, t := range a.tenants {
		if t.State() == Running || t.State() == Draining {
			floors += t.spec.MinContexts
		}
	}
	if floors > n {
		a.rejected.Add(1)
		a.mu.Unlock()
		return nil, ErrSaturated
	}
	tp := platform.NewTenantPool(a.pool, 0)
	t := &Tenant{arb: a, spec: spec, pool: tp}
	opts := []core.Option{
		core.WithContextPool(tp),
		core.WithName(spec.Name),
		core.WithDrainTimeout(a.drainTimeout),
		// The tenant's admission refusals surface in its own reports, so
		// recorded traces and the live-ops series carry the shed arrivals.
		core.WithRejectedGauge(t.rejected.Load),
	}
	if spec.Mechanism != nil {
		opts = append(opts, core.WithMechanism(spec.Mechanism))
	}
	opts = append(opts, spec.Options...)
	e, err := core.New(spec.Root, opts...)
	if err != nil {
		a.mu.Unlock()
		return nil, err
	}
	t.exec = e
	t.state.Store(int32(Running))
	a.tenants[spec.Name] = t
	a.rebalanceLocked()
	a.mu.Unlock()

	if err := e.Start(); err != nil {
		// Cannot happen for a fresh executive; contain anyway.
		a.mu.Lock()
		delete(a.tenants, spec.Name)
		tp.SetQuota(0)
		a.rebalanceLocked()
		a.mu.Unlock()
		return nil, err
	}
	a.wg.Add(1)
	go a.watch(t)
	return t, nil
}

// watch contains a tenant whose run ends on its own: a natural finish keeps
// the row (Finished), a run error marks it Failed; either way only this
// tenant's grant is reclaimed and the surplus is redistributed at once.
func (a *Arbiter) watch(t *Tenant) {
	defer a.wg.Done()
	err := t.exec.Wait()
	t.mu.Lock()
	t.err = err
	t.mu.Unlock()
	if err != nil {
		t.state.CompareAndSwap(int32(Running), int32(Failed))
	} else {
		t.state.CompareAndSwap(int32(Running), int32(Finished))
	}
	t.pool.SetQuota(0)
	a.mu.Lock()
	if !a.closed {
		a.rebalanceLocked()
	}
	a.mu.Unlock()
}

// Unregister stops a tenant (the drain bounded by its drain timeout and the
// stall watchdog), reclaims its grant, removes it, and redistributes.
func (a *Arbiter) Unregister(name string) error {
	a.mu.Lock()
	t, ok := a.tenants[name]
	if !ok {
		a.mu.Unlock()
		return ErrUnknownTenant
	}
	delete(a.tenants, name)
	a.mu.Unlock()

	if t.state.CompareAndSwap(int32(Running), int32(Draining)) {
		t.exec.Stop()
	}
	_ = t.exec.Wait()
	t.state.CompareAndSwap(int32(Draining), int32(Stopped))
	t.pool.SetQuota(0)

	a.mu.Lock()
	if !a.closed {
		a.rebalanceLocked()
	}
	a.mu.Unlock()
	return nil
}

// Tenant returns the registered tenant with the given name.
func (a *Arbiter) Tenant(name string) (*Tenant, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	return t, ok
}

// Tenants snapshots every registered tenant's status, sorted by name.
func (a *Arbiter) Tenants() []TenantStatus {
	a.mu.Lock()
	ts := make([]*Tenant, 0, len(a.tenants))
	for _, t := range a.tenants {
		ts = append(ts, t)
	}
	a.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].spec.Name < ts[j].spec.Name })
	out := make([]TenantStatus, len(ts))
	for i, t := range ts {
		out[i] = t.status()
	}
	return out
}

func (t *Tenant) status() TenantStatus {
	t.mu.Lock()
	watts := t.watts
	err := t.err
	t.mu.Unlock()
	st := TenantStatus{
		Name:      t.spec.Name,
		State:     t.State().String(),
		Priority:  t.spec.Priority,
		Weight:    t.spec.Weight,
		Quota:     t.pool.Quota(),
		Used:      t.pool.Busy(),
		OverQuota: t.pool.OverQuota(),
		Peak:      t.pool.Peak(),
		Blocked:   t.pool.Blocked(),
		Acquires:  t.pool.Acquires(),
		Watts:     watts,
		Shed:      sumShed(t.exec.Report().Root),
		Rejected:  t.rejected.Load(),
		Grants:    t.grants.Load(),
		Revokes:   t.revokes.Load(),
	}
	if err != nil {
		st.Err = err.Error()
	}
	return st
}

// sumShed totals the queue-shed counters across a nest tree: the per-tenant
// composition of the stage-level overload policies.
func sumShed(nr *core.NestReport) uint64 {
	if nr == nil {
		return 0
	}
	var s uint64
	for i := range nr.Stages {
		s += nr.Stages[i].Shed
	}
	for _, c := range nr.Children {
		s += sumShed(c)
	}
	return s
}

// Close stops the tick loop, drains and stops every tenant, and reclaims
// all grants. Registered tenants transition to Draining→Stopped unless
// their runs had already ended.
func (a *Arbiter) Close() {
	a.mu.Lock()
	a.closed = true
	ts := make([]*Tenant, 0, len(a.tenants))
	for _, t := range a.tenants {
		ts = append(ts, t)
	}
	a.mu.Unlock()
	a.stopOnce.Do(func() { close(a.stopCh) })
	for _, t := range ts {
		if t.state.CompareAndSwap(int32(Running), int32(Draining)) {
			t.exec.Stop()
		}
		_ = t.exec.Wait()
		t.state.CompareAndSwap(int32(Draining), int32(Stopped))
		t.pool.SetQuota(0)
	}
	a.wg.Wait()
}

func (a *Arbiter) loop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-ticker.C:
		}
		a.Tick()
	}
}

// Tick runs one arbitration round: refresh demand signals, escalate
// revocations, re-divide the quota lattice. Exported so tests (and the
// manual-tick mode) can drive arbitration deterministically.
func (a *Arbiter) Tick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.updateDemandLocked()
	a.enforceLocked(time.Now())
	a.rebalanceLocked()
}

// demandDecay is the per-tick decay of the demand signal: demand rises
// instantly to used+blocked and forgets an idle burst over a few ticks, so
// fair-share grants neither thrash on a single empty poll nor camp on a
// burst that ended.
const demandDecay = 0.8

func (a *Arbiter) updateDemandLocked() {
	for _, t := range a.tenants {
		if t.State() != Running {
			continue
		}
		inst := float64(t.pool.Busy() + t.pool.Blocked())
		t.mu.Lock()
		if d := t.demand * demandDecay; inst < d {
			inst = d
		}
		t.demand = inst
		t.mu.Unlock()
	}
}

// enforceLocked escalates revocation on tenants holding contexts beyond
// their grant. The escalation clock runs only while the drain makes no
// progress: an honest tenant's debt shrinks with every Release (admission
// above the lowered quota is already shut), so a shrinking debt resets the
// clock. A debt that sits flat past the grace period gets the tenant's
// configuration clamped in place to its quota (in-place resizes retire
// slots, whose Releases pay the debt); flat past the eviction deadline the
// tenant is stopped — its drain bounded by the drain timeout, with the
// stall watchdog reclaiming tokens from slots that never come back.
func (a *Arbiter) enforceLocked(now time.Time) {
	for _, t := range a.tenants {
		if t.State() != Running {
			continue
		}
		over := t.pool.OverQuota()
		t.mu.Lock()
		prev := t.lastOver
		t.lastOver = over
		switch {
		case over == 0:
			t.overSince = time.Time{}
			t.mu.Unlock()
		case t.overSince.IsZero() || over < prev:
			t.overSince = now
			t.mu.Unlock()
		case now.Sub(t.overSince) >= a.evictAfter:
			t.mu.Unlock()
			if t.state.CompareAndSwap(int32(Running), int32(Evicted)) {
				from := t.pool.Quota()
				t.pool.SetQuota(0)
				t.revokes.Add(1)
				a.recordDecision("evict", t.spec.Name, from, 0)
				t.exec.Stop()
			}
		case now.Sub(t.overSince) >= a.revokeGrace:
			quota := t.pool.Quota()
			t.mu.Unlock()
			clampConfig(t.exec, quota)
		default:
			t.mu.Unlock()
		}
	}
}

// clampConfig scales a tenant's root extents down so their sum fits the
// quota, triggering in-place worker-group shrinks; each retiring slot's
// Release pays down the over-quota debt.
func clampConfig(e *core.Exec, quota int) {
	if quota < 1 {
		return
	}
	cfg := e.CurrentConfig()
	total := 0
	for _, x := range cfg.Extents {
		total += x
	}
	if total <= quota {
		return
	}
	for i, x := range cfg.Extents {
		nx := x * quota / total
		if nx < 1 {
			nx = 1
		}
		cfg.Extents[i] = nx
	}
	e.SetConfig(cfg)
}

// rebalanceLocked re-divides the machine among running tenants:
//
//  1. floors — every running tenant gets MinContexts (admission guaranteed
//     the floors fit);
//  2. demand phase — strict priority tiers, highest first: within a tier,
//     tokens go one at a time to the member with the smallest grant/weight
//     ratio (weighted max-min water-filling) until demand or caps are met;
//  3. surplus phase — leftover capacity is spread the same way up to the
//     caps, so idle quota is work-conserving headroom rather than stranded.
//
// Applying the targets is asymmetric. A decrease lands immediately: the
// tenant stops admitting at once and whatever it holds beyond the new quota
// is over-quota debt that drains through its own Releases (enforceLocked
// escalates if it never does). A raise is capped by the machine's actual
// headroom — N minus every tenant's max(quota, used) and the tokens still
// held by drained tenants — so a grant is never backed by tokens another
// tenant still holds. That cap is the isolation invariant: while
// Σ max(quota_i, used_i) + lien <= N, an under-quota Acquire always finds a
// free shared token, so no tenant's Begin fast path can block on another
// tenant's debt. A raise deferred by missing headroom completes over the
// next ticks as the debtor's Releases drain.
func (a *Arbiter) rebalanceLocked() {
	n := a.pool.N()
	var running []*Tenant
	lien := 0
	for _, t := range a.tenants {
		if t.State() == Running {
			running = append(running, t)
		} else {
			lien += t.pool.Busy()
		}
	}
	sort.Slice(running, func(i, j int) bool {
		if running[i].spec.Priority != running[j].spec.Priority {
			return running[i].spec.Priority > running[j].spec.Priority
		}
		return running[i].spec.Name < running[j].spec.Name
	})
	capacity := n - lien
	if capacity < 0 {
		capacity = 0
	}

	grant := make(map[*Tenant]int, len(running))
	demand := make(map[*Tenant]int, len(running))
	for _, t := range running {
		t.mu.Lock()
		d := int(math.Ceil(t.demand))
		t.mu.Unlock()
		if d < t.spec.MinContexts {
			d = t.spec.MinContexts
		}
		if d > t.spec.MaxContexts {
			d = t.spec.MaxContexts
		}
		demand[t] = d
		g := t.spec.MinContexts
		if g > capacity {
			g = capacity
		}
		grant[t] = g
		capacity -= g
	}

	// Demand then surplus phase, tier by tier (running is sorted by
	// priority, so tiers are contiguous).
	for phase := 0; phase < 2 && capacity > 0; phase++ {
		for lo := 0; lo < len(running) && capacity > 0; {
			hi := lo
			for hi < len(running) && running[hi].spec.Priority == running[lo].spec.Priority {
				hi++
			}
			tier := running[lo:hi]
			for capacity > 0 {
				var pick *Tenant
				var pickRatio float64
				for _, t := range tier {
					ceil := demand[t]
					if phase == 1 {
						ceil = t.spec.MaxContexts
					}
					if grant[t] >= ceil {
						continue
					}
					ratio := float64(grant[t]) / t.spec.Weight
					if pick == nil || ratio < pickRatio ||
						(ratio == pickRatio && t.spec.Name < pick.spec.Name) {
						pick, pickRatio = t, ratio
					}
				}
				if pick == nil {
					break
				}
				grant[pick]++
				capacity--
			}
			lo = hi
		}
	}

	// Apply decreases first: admission stops now, the debt drains later.
	for _, t := range running {
		if grant[t] < t.pool.Quota() {
			a.applyGrant(t, grant[t])
		}
	}
	// Raises only into real headroom, priority order (running is sorted):
	// a raise deferred here completes on a later tick once debt drains.
	headroom := n - lien
	for _, t := range running {
		q, u := t.pool.Quota(), t.pool.Busy()
		if u > q {
			headroom -= u
		} else {
			headroom -= q
		}
	}
	for _, t := range running {
		if headroom <= 0 {
			break
		}
		q := t.pool.Quota()
		if grant[t] <= q {
			continue
		}
		raise := grant[t] - q
		if raise > headroom {
			raise = headroom
		}
		a.applyGrant(t, q+raise)
		headroom -= raise
	}

	// Power sub-budgets follow the grants.
	if a.watts > 0 {
		totalGrant := 0
		for _, t := range running {
			totalGrant += grant[t]
		}
		for _, t := range running {
			var w float64
			if totalGrant > 0 {
				w = a.watts * float64(grant[t]) / float64(totalGrant)
			}
			t.mu.Lock()
			changed := math.Abs(w-t.watts) > 1e-9
			t.watts = w
			t.mu.Unlock()
			if changed && t.spec.PowerMechanism != nil {
				t.exec.SetMechanism(t.spec.PowerMechanism(w))
			}
		}
	}
}

func (a *Arbiter) applyGrant(t *Tenant, q int) {
	old := t.pool.Quota()
	t.pool.SetQuota(q)
	t.mu.Lock()
	t.quota = q
	t.mu.Unlock()
	switch {
	case q > old:
		t.grants.Add(1)
		a.recordDecision("grant", t.spec.Name, old, q)
	case q < old:
		t.revokes.Add(1)
		a.recordDecision("revoke", t.spec.Name, old, q)
	}
}

// recordDecision forwards one arbitration action to the attached collector's
// decision log; a no-op when no collector is attached.
func (a *Arbiter) recordDecision(kind, tenant string, from, to int) {
	if c := a.collector.Load(); c != nil {
		c.RecordDecision(metrics.DecisionEntry{
			T: time.Since(a.start).Seconds(), Kind: kind,
			Nest: tenant, From: from, To: to,
		})
	}
}

// AttachCollector streams the arbiter's state into a live-ops collector:
// every interval the per-tenant status sweep lands via ObserveTenants
// (quota/used/watts/shed/rejected series plus the latest arbitration table),
// and every grant, revocation, and eviction is appended to the collector's
// decision log as it happens. The returned release stops the sampling and
// detaches the decision feed; Close releases it implicitly.
func (a *Arbiter) AttachCollector(c *metrics.Collector, interval time.Duration) (release func()) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return func() {}
	}
	a.collector.Store(c)
	a.wg.Add(1)
	a.mu.Unlock()
	stop := make(chan struct{})
	var once sync.Once
	sample := func() {
		statuses := a.Tenants()
		samples := make([]metrics.TenantSample, len(statuses))
		for i, st := range statuses {
			samples[i] = metrics.TenantSample{
				Name: st.Name, State: st.State,
				Priority: st.Priority, Weight: st.Weight,
				Quota: st.Quota, Used: st.Used, Watts: st.Watts,
				Shed: st.Shed, Rejected: st.Rejected,
				Grants: st.Grants, Revokes: st.Revokes,
			}
		}
		c.ObserveTenants(time.Since(a.start).Seconds(), samples)
	}
	go func() {
		defer a.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-stop:
				return
			case <-a.stopCh:
				sample()
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			a.collector.Store(nil)
			close(stop)
		})
	}
}

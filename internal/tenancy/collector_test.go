package tenancy

import (
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/metrics"
	"dope/internal/platform"
	"dope/internal/queue"
)

// TestGrantRevokeCountersAndCollector drives two tenants through quota churn
// under a manual tick and checks that (a) grants/revokes are counted into
// TenantStatus, and (b) an attached collector receives per-tenant series and
// arbitration decisions.
func TestGrantRevokeCountersAndCollector(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithManualTick())
	defer a.Close()

	col := metrics.NewCollector(128)
	defer col.Close()
	release := a.AttachCollector(col, time.Millisecond)
	defer release()

	var done1, done2 atomic.Int64
	q1, q2 := queue.New[int](0), queue.New[int](0)
	fill(q1, 400)
	fill(q2, 400)

	if _, err := a.Register(TenantSpec{Name: "alpha", Root: workSpec("alpha", q1, &done1, 50*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Tick()
		time.Sleep(2 * time.Millisecond)
	}
	// A second tenant arriving forces the arbiter to cut alpha's grant.
	if _, err := a.Register(TenantSpec{Name: "beta", Root: workSpec("beta", q2, &done2, 50*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.Tick()
		time.Sleep(2 * time.Millisecond)
	}

	var alpha TenantStatus
	var found bool
	for _, st := range a.Tenants() {
		if st.Name == "alpha" {
			alpha, found = st, true
		}
	}
	if !found {
		t.Fatal("alpha missing from status sweep")
	}
	if alpha.Grants == 0 {
		t.Error("alpha.Grants = 0; the initial grant was not counted")
	}
	if alpha.Revokes == 0 {
		t.Error("alpha.Revokes = 0; beta's arrival should have cut alpha's quota")
	}

	// The collector saw the same story: quota series + decision entries.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		snap := col.Snapshot(0)
		if len(snap.Series["tenant/alpha/quota"]) > 0 && len(snap.Events) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := col.Snapshot(0)
	if len(snap.Series["tenant/alpha/quota"]) == 0 {
		t.Error("collector has no tenant/alpha/quota series")
	}
	var sawGrant, sawRevoke bool
	for _, d := range snap.Events {
		switch d.Kind {
		case "grant":
			sawGrant = true
		case "revoke":
			sawRevoke = true
		}
	}
	if !sawGrant || !sawRevoke {
		t.Errorf("decision log missing grant/revoke: grant=%v revoke=%v (%d entries)",
			sawGrant, sawRevoke, len(snap.Events))
	}
	if len(snap.Tenants) != 2 {
		t.Errorf("collector tenant table has %d rows, want 2", len(snap.Tenants))
	}
	q1.Close()
	q2.Close()
}

// TestTenantRejectedGaugeInReport pins the WithRejectedGauge wiring: Admit
// refusals show up in the tenant executive's own Report.
func TestTenantRejectedGaugeInReport(t *testing.T) {
	pool := platform.NewContexts(4)
	a := New(pool, WithManualTick())
	defer a.Close()

	var done atomic.Int64
	q := queue.New[int](0)
	tn, err := a.Register(TenantSpec{Name: "solo", Root: workSpec("solo", q, &done, time.Microsecond)})
	if err != nil {
		t.Fatal(err)
	}
	// Force refusals: no quota yet granted beyond the arbiter's initial
	// assignment — cut it to zero so Admit refuses.
	tn.pool.SetQuota(0)
	for i := 0; i < 3; i++ {
		if tn.Admit() {
			t.Fatal("Admit succeeded with zero quota")
		}
	}
	if got := tn.Exec().Report().Rejected; got != 3 {
		t.Fatalf("Report.Rejected = %d, want 3", got)
	}
	q.Close()
}

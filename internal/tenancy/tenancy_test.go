package tenancy

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/core"
	"dope/internal/platform"
	"dope/internal/queue"
)

// spinFor burns CPU for roughly d without sleeping, so Begin/End sections
// hold their context like real work.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// workSpec is a single-PAR-stage nest draining work, spinning spin per item.
func workSpec(name string, work *queue.Queue[int], processed *atomic.Int64, spin time.Duration) *core.NestSpec {
	return &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: "worker", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					_, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					spinFor(spin)
					processed.Add(1)
					w.End()
					return core.Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func fill(q *queue.Queue[int], n int) {
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
}

func extent8() core.Option {
	return core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{8}})
}

func TestTwoTenantsRunToCompletion(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithTickInterval(2*time.Millisecond))
	defer a.Close()

	var doneA, doneB atomic.Int64
	qa, qb := queue.New[int](0), queue.New[int](0)
	fill(qa, 200)
	qa.Close()
	fill(qb, 200)
	qb.Close()

	ta, err := a.Register(TenantSpec{Name: "alpha", Root: workSpec("alpha", qa, &doneA, 20*time.Microsecond), Options: []core.Option{extent8()}})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := a.Register(TenantSpec{Name: "beta", Root: workSpec("beta", qb, &doneB, 20*time.Microsecond), Options: []core.Option{extent8()}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Exec().Wait(); err != nil {
		t.Fatalf("alpha: %v", err)
	}
	if err := tb.Exec().Wait(); err != nil {
		t.Fatalf("beta: %v", err)
	}
	if doneA.Load() != 200 || doneB.Load() != 200 {
		t.Fatalf("processed %d/%d, want 200/200", doneA.Load(), doneB.Load())
	}
	waitFor(t, func() bool { return ta.State() == Finished && tb.State() == Finished })
	if pool.Busy() != 0 {
		t.Fatalf("shared pool busy = %d after both finished", pool.Busy())
	}
}

func TestAdmissionControl(t *testing.T) {
	pool := platform.NewContexts(4)
	a := New(pool, WithManualTick())
	defer a.Close()
	q := queue.New[int](0)
	defer q.Close()
	var n atomic.Int64

	if _, err := a.Register(TenantSpec{Name: "a", MinContexts: 2, Root: workSpec("a", q, &n, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "b", MinContexts: 2, Root: workSpec("b", q, &n, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "c", MinContexts: 1, Root: workSpec("c", q, &n, 0)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third tenant: err = %v, want ErrSaturated", err)
	}
	if got := a.RejectedTenants(); got != 1 {
		t.Fatalf("RejectedTenants = %d, want 1", got)
	}
	if _, err := a.Register(TenantSpec{Name: "a", Root: workSpec("a", q, &n, 0)}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: err = %v, want ErrDuplicate", err)
	}
}

func TestWeightedFairShare(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithManualTick())
	defer a.Close()

	var na, nb atomic.Int64
	qa, qb := queue.New[int](0), queue.New[int](0)
	fill(qa, 100000)
	fill(qb, 100000)
	defer qa.Close()
	defer qb.Close()

	if _, err := a.Register(TenantSpec{Name: "heavy", Weight: 3, Root: workSpec("heavy", qa, &na, 100*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "light", Weight: 1, Root: workSpec("light", qb, &nb, 100*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a.Tick()
		time.Sleep(2 * time.Millisecond)
	}
	heavy, _ := a.Tenant("heavy")
	light, _ := a.Tenant("light")
	qh, ql := heavy.Quota(), light.Quota()
	if qh+ql > 8 {
		t.Fatalf("grants %d+%d exceed the machine", qh, ql)
	}
	// Weighted max-min at weights 3:1 over 8 contexts converges to 6:2.
	if qh < 5 || ql < 1 || qh <= ql {
		t.Fatalf("grants heavy=%d light=%d, want ~6:2", qh, ql)
	}
}

func TestPriorityTiersAndWorkConservation(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithManualTick())
	defer a.Close()

	var nh, nl, ni atomic.Int64
	qh, ql := queue.New[int](0), queue.New[int](0)
	qi := queue.New[int](0) // idle tenant: never gets items
	fill(qh, 100000)
	fill(ql, 100000)
	defer qh.Close()
	defer ql.Close()
	defer qi.Close()

	if _, err := a.Register(TenantSpec{Name: "hi", Priority: 1, Root: workSpec("hi", qh, &nh, 100*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "lo", Priority: 0, Root: workSpec("lo", ql, &nl, 100*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "idle", Priority: 0, Root: workSpec("idle", qi, &ni, 0)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a.Tick()
		time.Sleep(2 * time.Millisecond)
	}
	hi, _ := a.Tenant("hi")
	lo, _ := a.Tenant("lo")
	idle, _ := a.Tenant("idle")
	// The high tier's demand is satisfied first; the idle tenant keeps only
	// its floor (its unused share is redistributed, work-conserving); the
	// low tier gets what is left.
	if hi.Quota() < 6 {
		t.Fatalf("high-priority grant = %d, want the demand-first share (>=6)", hi.Quota())
	}
	if idle.Quota() != 1 {
		t.Fatalf("idle tenant grant = %d, want its floor 1", idle.Quota())
	}
	if lo.Quota() < 1 {
		t.Fatalf("low-priority grant = %d, want at least its floor", lo.Quota())
	}
}

// panicSpec's functor panics on every item: a panic storm under the default
// FailStop policy that errors the tenant's run on the first hit.
func panicSpec(name string, work *queue.Queue[int]) *core.NestSpec {
	return &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name:   "doall",
		Stages: []core.StageSpec{{Name: "worker", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					_, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					panic("tenant meltdown")
				},
			}}}, nil
		},
	}}}
}

func TestFailureContainment(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithTickInterval(2*time.Millisecond))
	defer a.Close()

	qBad, qGood := queue.New[int](0), queue.New[int](0)
	fill(qBad, 100)
	fill(qGood, 300)
	qBad.Close()
	qGood.Close()
	var nGood atomic.Int64

	bad, err := a.Register(TenantSpec{Name: "bad", Root: panicSpec("bad", qBad), Options: []core.Option{extent8()}})
	if err != nil {
		t.Fatal(err)
	}
	good, err := a.Register(TenantSpec{Name: "good", Root: workSpec("good", qGood, &nGood, 50*time.Microsecond), Options: []core.Option{extent8()}})
	if err != nil {
		t.Fatal(err)
	}

	if err := good.Exec().Wait(); err != nil {
		t.Fatalf("good tenant's run errored: %v", err)
	}
	if nGood.Load() != 300 {
		t.Fatalf("good tenant processed %d/300", nGood.Load())
	}
	_ = bad.Exec().Wait()
	waitFor(t, func() bool { return bad.State() == Failed })
	if bad.Err() == nil {
		t.Fatal("failed tenant has no run error")
	}
	// Containment: the meltdown reclaimed only its own tokens.
	waitFor(t, func() bool { return pool.Busy() == 0 })
	if bad.Pool().Busy() != 0 {
		t.Fatalf("failed tenant still holds %d contexts", bad.Pool().Busy())
	}
}

func TestUnregisterReclaimsAndNameIsReusable(t *testing.T) {
	pool := platform.NewContexts(4)
	a := New(pool, WithTickInterval(2*time.Millisecond))
	defer a.Close()

	q := queue.New[int](0)
	fill(q, 100000)
	defer q.Close()
	var n atomic.Int64

	if _, err := a.Register(TenantSpec{Name: "t", Root: workSpec("t", q, &n, 50*time.Microsecond), Options: []core.Option{extent8()}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return n.Load() > 0 })
	if err := a.Unregister("t"); err != nil {
		t.Fatal(err)
	}
	if pool.Busy() != 0 {
		t.Fatalf("pool busy = %d after unregister", pool.Busy())
	}
	if err := a.Unregister("t"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("second unregister: %v, want ErrUnknownTenant", err)
	}
	// The stable name is free again: re-registration succeeds.
	t2, err := a.Register(TenantSpec{Name: "t", Root: workSpec("t", q, &n, 50*time.Microsecond)})
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if t2.State() != Running {
		t.Fatalf("re-registered tenant state = %v", t2.State())
	}
}

// zombieSpec holds its context and blocks forever, ignoring the drain: the
// hostage scenario the revocation protocol must bound.
func zombieSpec(name string, hold chan struct{}, holding *atomic.Int64) *core.NestSpec {
	return &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name:   "wedge",
		Stages: []core.StageSpec{{Name: "wedge", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					holding.Add(1)
					<-hold //dopevet:ignore tokenhold the hostage scenario under test: wedge while holding the context
					w.End()
					return core.Finished
				},
			}}}, nil
		},
	}}}
}

func TestZombieTenantEvictionFreesTheMachine(t *testing.T) {
	pool := platform.NewContexts(4)
	a := New(pool,
		WithManualTick(),
		WithDrainTimeout(50*time.Millisecond),
		WithRevokeGrace(10*time.Millisecond),
		WithEvictAfter(30*time.Millisecond))
	defer a.Close()

	hold := make(chan struct{})
	defer close(hold)
	var holding atomic.Int64
	zt, err := a.Register(TenantSpec{Name: "zombie", Root: zombieSpec("zombie", hold, &holding),
		Options: []core.Option{core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{4}})}})
	if err != nil {
		t.Fatal(err)
	}
	// The zombie wedges all four contexts.
	waitFor(t, func() bool { return holding.Load() == 4 && zt.Pool().Busy() == 4 })

	// A newcomer's floor forces the arbiter to shave the zombie's grant
	// below what it holds: over-quota debt the zombie will never repay.
	q := queue.New[int](0)
	fill(q, 50)
	q.Close()
	var n atomic.Int64
	nt, err := a.Register(TenantSpec{Name: "newcomer", Root: workSpec("newcomer", q, &n, 0)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { a.Tick(); return zt.Pool().OverQuota() > 0 })

	// Escalation: grace passes (clamp is futile against a wedged functor),
	// then the eviction deadline stops the tenant; the bounded drain's
	// watchdog abandons the wedged slots and reclaims their tokens.
	deadline := time.Now().Add(5 * time.Second)
	for zt.State() != Evicted {
		if time.Now().After(deadline) {
			t.Fatalf("zombie never evicted (state %v, over %d)", zt.State(), zt.Pool().OverQuota())
		}
		a.Tick()
		time.Sleep(5 * time.Millisecond)
	}
	_ = zt.Exec().Wait()
	waitFor(t, func() bool { return zt.Pool().Busy() == 0 })

	// The machine is whole again: ticks regrant the freed contexts and the
	// newcomer finishes its work.
	waitFor(t, func() bool { a.Tick(); return n.Load() == 50 })
	if err := nt.Exec().Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerSubBudgetsFollowGrants(t *testing.T) {
	pool := platform.NewContexts(8)
	a := New(pool, WithManualTick(), WithPowerBudget(120))
	defer a.Close()

	var budgets [2]atomic.Value // latest watts handed to each tenant
	mkPower := func(i int) func(float64) core.Mechanism {
		return func(w float64) core.Mechanism {
			budgets[i].Store(w)
			return nil2mech{}
		}
	}
	q := queue.New[int](0)
	defer q.Close()
	var n atomic.Int64
	if _, err := a.Register(TenantSpec{Name: "a", PowerMechanism: mkPower(0), Root: workSpec("a", q, &n, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(TenantSpec{Name: "b", PowerMechanism: mkPower(1), Root: workSpec("b", q, &n, 0)}); err != nil {
		t.Fatal(err)
	}
	a.Tick()
	sts := a.Tenants()
	var sum float64
	for _, st := range sts {
		sum += st.Watts
	}
	if sum < 119.99 || sum > 120.01 {
		t.Fatalf("sub-budgets sum to %v, want the machine budget 120", sum)
	}
	for i := range budgets {
		if budgets[i].Load() == nil {
			t.Fatalf("tenant %d's power mechanism never rebuilt", i)
		}
	}
}

type nil2mech struct{}

func (nil2mech) Name() string                            { return "test-null" }
func (nil2mech) Reconfigure(r *core.Report) *core.Config { return nil }

func TestAdmitShedsWhenGrantGone(t *testing.T) {
	pool := platform.NewContexts(4)
	a := New(pool, WithTickInterval(2*time.Millisecond))
	defer a.Close()
	q := queue.New[int](0)
	fill(q, 10)
	q.Close()
	var n atomic.Int64
	tn, err := a.Register(TenantSpec{Name: "t", Root: workSpec("t", q, &n, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !tn.Admit() {
		t.Fatal("running tenant refused an arrival")
	}
	_ = tn.Exec().Wait()
	waitFor(t, func() bool { return tn.State() == Finished })
	if tn.Admit() {
		t.Fatal("finished tenant admitted an arrival")
	}
	if tn.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", tn.Rejected())
	}
}

// TestChurnRace races tenant register/unregister against the arbiter tick
// and a mid-drain quota revocation; run under -race it pins the locking
// discipline, and the final balance check pins the Σfree invariant (no
// token leaks through any register/drain/revoke interleaving).
func TestChurnRace(t *testing.T) {
	const n = 8
	pool := platform.NewContexts(n)
	a := New(pool, WithTickInterval(time.Millisecond), WithDrainTimeout(20*time.Millisecond))

	var wg_done atomic.Int32
	stop := make(chan struct{})
	churn := func(id int) {
		defer wg_done.Add(1)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn-%d-%d", id, i)
			q := queue.New[int](0)
			fill(q, 50)
			q.Close()
			var cnt atomic.Int64
			tn, err := a.Register(TenantSpec{Name: name, Root: workSpec(name, q, &cnt, 5*time.Microsecond),
				Options: []core.Option{extent8()}})
			if err != nil {
				i++
				continue
			}
			// Mid-drain revocation: yank the quota while the tenant may be
			// draining (Unregister's Stop races the arbiter's own grants).
			go tn.Pool().SetQuota(0)
			_ = a.Unregister(name)
			i++
		}
	}
	for id := 0; id < 3; id++ {
		go churn(id)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	waitFor(t, func() bool { return wg_done.Load() == 3 })
	a.Close()
	if pool.Busy() != 0 {
		t.Fatalf("Σfree invariant violated: %d tokens leaked", pool.Busy())
	}
	if pool.Peak() > n {
		t.Fatalf("peak %d exceeded machine size %d", pool.Peak(), n)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

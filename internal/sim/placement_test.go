package sim

import (
	"testing"

	"dope/internal/platform"
)

func TestHopMultipliersNone(t *testing.T) {
	topo := platform.DefaultTopology()
	m := placementMultipliers(topo, []int{1, 5, 5, 5, 6, 1}, PlaceNone, nil)
	for i, v := range m {
		if v != 1 {
			t.Fatalf("PlaceNone stage %d multiplier = %v", i, v)
		}
	}
}

func TestHopMultipliersScatter(t *testing.T) {
	topo := platform.DefaultTopology()
	m := placementMultipliers(topo, []int{1, 5, 5, 5, 6, 1}, PlaceScatter, nil)
	want := 0.25 + 0.75*CrossSocketFactor
	for i := 1; i < len(m); i++ {
		if diff := m[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("scatter multiplier[%d] = %v, want %v", i, m[i], want)
		}
	}
	if m[0] != 1 {
		t.Fatal("head stage has no in-edge")
	}
}

func TestContiguousTotalCostBeatsScatter(t *testing.T) {
	// With a full machine some edge must cross sockets; the contiguous
	// layout still pays less communication in AGGREGATE than scattering
	// every stage across every socket.
	topo := platform.DefaultTopology()
	extents := []int{1, 5, 5, 5, 6, 1}
	cont := placementMultipliers(topo, extents, PlaceContiguous, nil)
	scat := placementMultipliers(topo, extents, PlaceScatter, nil)
	sum := func(m []float64) float64 {
		s := 0.0
		for _, v := range m[1:] {
			s += v
		}
		return s
	}
	if sum(cont) >= sum(scat) {
		t.Fatalf("contiguous total %v should beat scatter total %v", sum(cont), sum(scat))
	}
}

func TestContiguousFullySharedWithinSocket(t *testing.T) {
	// Two adjacent one-worker stages inside one socket communicate at base
	// cost.
	topo := platform.Topology{Sockets: 4, CoresPerSocket: 6}
	m := placementMultipliers(topo, []int{1, 1}, PlaceContiguous, nil)
	if m[1] != 1 {
		t.Fatalf("same-socket hop multiplier = %v, want 1", m[1])
	}
}

func TestPlacementAffectsThroughput(t *testing.T) {
	model := Ferret()
	base := PipelineConfig{Tasks: 400, Extents: []int{1, 2, 3, 5, 10, 1}}
	cfgC := base
	cfgC.Placement = PlaceContiguous
	cfgS := base
	cfgS.Placement = PlaceScatter

	cont := RunPipeline(model, cfgC)
	scat := RunPipeline(model, cfgS)
	none := RunPipeline(model, base)
	if cont.Throughput <= scat.Throughput {
		t.Fatalf("locality-aware placement %f should beat scatter %f",
			cont.Throughput, scat.Throughput)
	}
	if none.Throughput < cont.Throughput {
		t.Fatalf("PlaceNone (base hop) should be the no-penalty reference: none=%f cont=%f",
			none.Throughput, cont.Throughput)
	}
}

func TestTopologyBasics(t *testing.T) {
	topo := platform.DefaultTopology()
	if topo.Contexts() != 24 {
		t.Fatalf("contexts = %d", topo.Contexts())
	}
	if topo.SocketOf(0) != 0 || topo.SocketOf(5) != 0 || topo.SocketOf(6) != 1 || topo.SocketOf(23) != 3 {
		t.Fatal("socket mapping wrong")
	}
	if topo.SocketOf(-1) != 0 || topo.SocketOf(99) != 3 {
		t.Fatal("socket clamping wrong")
	}
	if topo.SocketSpan(0, 6) != 1 || topo.SocketSpan(5, 2) != 2 || topo.SocketSpan(0, 0) != 0 {
		t.Fatal("socket span wrong")
	}
	if f := topo.SharedFraction(0, 6, 0, 6); f != 1 {
		t.Fatalf("same-block shared fraction = %v", f)
	}
	if f := topo.SharedFraction(0, 6, 6, 6); f != 0 {
		t.Fatalf("disjoint-socket shared fraction = %v", f)
	}
	if f := topo.SharedFraction(0, 0, 0, 6); f != 0 {
		t.Fatalf("empty block shared fraction = %v", f)
	}
	// Half of block B's contexts sit on block A's socket.
	if f := topo.SharedFraction(0, 6, 3, 6); f != 0.5 {
		t.Fatalf("boundary shared fraction = %v", f)
	}
}

package sim

import (
	"testing"

	"dope/internal/mechanism"
)

// --- reconfiguration cost model ---------------------------------------------
//
// The simulator mirrors the executive's two reconfiguration paths: extent-only
// changes resize worker groups in place (Resizes, optional ResizeCost freeze)
// while alternative switches — or every change under RespawnOnResize — pay the
// drain barrier plus DrainCost (Drains).

func TestInPlaceResizeVsRespawn(t *testing.T) {
	model := Ferret()
	run := func(cfg PipelineConfig) PipelineResult {
		cfg.Tasks = 800
		cfg.ControlEvery = 0.02
		cfg.Extents = []int{1, 1, 1, 1, 1, 1}
		return RunPipeline(model, cfg)
	}
	inPlace := run(PipelineConfig{
		Mechanism:  &mechanism.TBF{Threads: 24, DisableFusion: true},
		ResizeCost: 0.002, DrainCost: 0.05,
	})
	if inPlace.Resizes == 0 {
		t.Fatal("extent-only mechanism produced no in-place resizes")
	}
	if inPlace.Drains != 0 {
		t.Fatalf("extent-only changes must not drain, got %d drains", inPlace.Drains)
	}
	respawn := run(PipelineConfig{
		Mechanism:  &mechanism.TBF{Threads: 24, DisableFusion: true},
		ResizeCost: 0.002, DrainCost: 0.05, RespawnOnResize: true,
	})
	if respawn.Reconfigurations == 0 || respawn.Drains == 0 {
		t.Fatalf("RespawnOnResize arm never drained: %+v", respawn)
	}
	if respawn.Resizes != 0 {
		t.Fatalf("RespawnOnResize must route every change through the drain path, got %d resizes", respawn.Resizes)
	}
	if respawn.Throughput >= inPlace.Throughput {
		t.Fatalf("whole-nest respawn should cost throughput: respawn %.1f >= in-place %.1f",
			respawn.Throughput, inPlace.Throughput)
	}
}

func TestResizeCostCharged(t *testing.T) {
	model := Ferret()
	run := func(resizeCost float64) PipelineResult {
		return RunPipeline(model, PipelineConfig{
			Tasks: 600, ControlEvery: 0.02,
			Extents:    []int{1, 1, 1, 1, 1, 1},
			Mechanism:  &mechanism.TBF{Threads: 24, DisableFusion: true},
			ResizeCost: resizeCost,
		})
	}
	free := run(0)
	costly := run(0.05)
	if free.Resizes == 0 || costly.Resizes == 0 {
		t.Fatalf("expected resizes in both arms: free %d, costly %d", free.Resizes, costly.Resizes)
	}
	if costly.Throughput >= free.Throughput {
		t.Fatalf("ResizeCost freeze should lower throughput: costly %.1f >= free %.1f",
			costly.Throughput, free.Throughput)
	}
}

package sim

import (
	"math"
	"testing"

	"dope/internal/mechanism"
)

// --- model calibration against the paper -----------------------------------

func TestTranscodeSpeedupMatchesPaper(t *testing.T) {
	m := Transcode()
	s8 := m.SeqTime / m.ParTime(8)
	if s8 < 6.0 || s8 > 6.5 {
		t.Fatalf("transcode speedup(8) = %.2f, want ≈6.3 (Figure 2a)", s8)
	}
	// Speedup saturates beyond the knee.
	if m.ParTime(16) < m.ParTime(8)-1e-12 {
		t.Fatal("speedup must not grow past the dependency height")
	}
	// Execution time strictly improves from sequential to DoP 8.
	if m.ParTime(8) >= m.SeqTime {
		t.Fatal("parallel must beat sequential")
	}
}

func TestCompressDoPminIsFour(t *testing.T) {
	m := Compress()
	// Table 4: minimum inner extent with speedup over sequential is 4.
	for e := 2; e <= 3; e++ {
		if m.ParTime(e) < m.SeqTime {
			t.Fatalf("extent %d should NOT beat sequential: par=%.4f seq=%.4f",
				e, m.ParTime(e), m.SeqTime)
		}
	}
	if m.ParTime(4) >= m.SeqTime {
		t.Fatalf("extent 4 should beat sequential: par=%.4f seq=%.4f",
			m.ParTime(4), m.SeqTime)
	}
}

func TestServerModelsMonotoneAtModerateExtents(t *testing.T) {
	for _, m := range []*ServerModel{Transcode(), Swaptions(), Oilify()} {
		prev := m.SeqTime
		for e := 2; e <= 8; e *= 2 {
			cur := m.ParTime(e)
			if cur > prev+1e-12 {
				t.Fatalf("%s: ParTime(%d)=%.4f worse than previous %.4f",
					m.Name, e, cur, prev)
			}
			prev = cur
		}
	}
}

func TestMmaxDefinition(t *testing.T) {
	m := Transcode()
	knee := m.Mmax(0.5, 24)
	if knee < 8 || knee > 16 {
		t.Fatalf("transcode efficiency knee = %d, expected in [8,16]", knee)
	}
}

// --- server DES: Figure 2 shapes -------------------------------------------

func TestFig2aExecTimeImprovesWithInnerDoP(t *testing.T) {
	model := Transcode()
	var prev float64 = math.Inf(1)
	for _, m := range []int{1, 2, 4, 8} {
		res := RunServer(model, ServerConfig{
			Tasks: 200, LoadFactor: 0.3, Seed: 1,
			OuterK: 24 / max(1, m), InnerM: m,
		})
		if res.MeanExec >= prev {
			t.Fatalf("exec time should fall with inner DoP: m=%d exec=%.4f prev=%.4f",
				m, res.MeanExec, prev)
		}
		prev = res.MeanExec
	}
}

func TestFig2bThroughputCrossover(t *testing.T) {
	model := Transcode()
	// At light load both configurations keep up; at saturation the
	// sequential-inner configuration sustains higher throughput.
	seqHeavy := RunServer(model, ServerConfig{
		Tasks: 400, LoadFactor: 1.0, Seed: 2, OuterK: 24, InnerM: 1,
	})
	parHeavy := RunServer(model, ServerConfig{
		Tasks: 400, LoadFactor: 1.0, Seed: 2, OuterK: 3, InnerM: 8,
	})
	if parHeavy.Throughput >= seqHeavy.Throughput {
		t.Fatalf("at load 1.0 sequential inner must win: seq=%.1f par=%.1f",
			seqHeavy.Throughput, parHeavy.Throughput)
	}
	ratio := parHeavy.Throughput / seqHeavy.Throughput
	if ratio < 0.6 || ratio > 0.95 {
		t.Fatalf("throughput degradation ratio = %.2f, expected ~0.78 (efficiency at DoP 8)", ratio)
	}
}

func TestFig2cResponseTimeRegimes(t *testing.T) {
	model := Transcode()
	// Light load: inner parallelism (latency mode) must win on response.
	seqLight := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.2, Seed: 3, OuterK: 24, InnerM: 1})
	parLight := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.2, Seed: 3, OuterK: 3, InnerM: 8})
	if parLight.MeanResponse >= seqLight.MeanResponse {
		t.Fatalf("light load: parallel inner should win (par=%.4f seq=%.4f)",
			parLight.MeanResponse, seqLight.MeanResponse)
	}
	// Heavy load: sequential inner (throughput mode) must win.
	seqHeavy := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.95, Seed: 3, OuterK: 24, InnerM: 1})
	parHeavy := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.95, Seed: 3, OuterK: 3, InnerM: 8})
	if seqHeavy.MeanResponse >= parHeavy.MeanResponse {
		t.Fatalf("heavy load: sequential inner should win (seq=%.4f par=%.4f)",
			seqHeavy.MeanResponse, parHeavy.MeanResponse)
	}
}

func TestOracleDominatesStatics(t *testing.T) {
	model := Transcode()
	for _, lf := range []float64{0.2, 0.5, 0.8, 0.95} {
		oracle := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: lf, Seed: 4, Oracle: true})
		seq := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: lf, Seed: 4, OuterK: 24, InnerM: 1})
		par := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: lf, Seed: 4, OuterK: 3, InnerM: 8})
		best := math.Min(seq.MeanResponse, par.MeanResponse)
		if oracle.MeanResponse > best*1.10 {
			t.Fatalf("lf=%.2f: oracle %.4f should dominate best static %.4f",
				lf, oracle.MeanResponse, best)
		}
	}
}

// --- server DES with real mechanisms ----------------------------------------

func TestWQLinearBeatsStaticsAcrossLoads(t *testing.T) {
	model := Transcode()
	worstExcess := 0.0
	for _, lf := range []float64{0.2, 0.5, 0.8, 0.95} {
		m := &mechanism.WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14}
		dyn := RunServer(model, ServerConfig{
			Tasks: 500, LoadFactor: lf, Seed: 5, Mechanism: m,
			ControlEvery: 0.01, OuterK: 3, InnerM: 8,
		})
		seq := RunServer(model, ServerConfig{Tasks: 500, LoadFactor: lf, Seed: 5, OuterK: 24, InnerM: 1})
		par := RunServer(model, ServerConfig{Tasks: 500, LoadFactor: lf, Seed: 5, OuterK: 3, InnerM: 8})
		best := math.Min(seq.MeanResponse, par.MeanResponse)
		worst := math.Max(seq.MeanResponse, par.MeanResponse)
		excess := dyn.MeanResponse/best - 1
		if excess > worstExcess {
			worstExcess = excess
		}
		// At every load the adaptive curve must clearly beat the WRONG
		// static choice — the defining property of Figure 11.
		if dyn.MeanResponse > worst*0.85 {
			t.Fatalf("lf=%.2f: WQ-Linear %.4f does not separate from the worse static %.4f",
				lf, dyn.MeanResponse, worst)
		}
	}
	// And it must track the best static closely across the whole range
	// (the paper shows it dominating; the DES concedes a small margin to
	// control-loop lag).
	if worstExcess > 0.12 {
		t.Fatalf("WQ-Linear falls %.0f%% behind the best static", worstExcess*100)
	}
}

func TestWQTHAdaptsUnderLoad(t *testing.T) {
	model := Transcode()
	m := &mechanism.WQTH{Threads: 24, Mmax: 8, Threshold: 6}
	res := RunServer(model, ServerConfig{
		Tasks: 400, LoadFactor: 0.9, Seed: 6, Mechanism: m,
		OuterK: 3, InnerM: 8, // start in latency mode; heavy load must flip it
	})
	if res.Reconfigurations == 0 {
		t.Fatal("WQT-H never reconfigured under heavy load")
	}
}

// --- pipeline DES: Figures 13–15 shapes -------------------------------------

func TestPipelineBatchBasics(t *testing.T) {
	model := Ferret()
	res := RunPipeline(model, PipelineConfig{Tasks: 300, Extents: []int{1, 1, 1, 1, 1, 1}})
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	balanced := RunPipeline(model, PipelineConfig{Tasks: 300, Extents: []int{1, 2, 4, 6, 8, 1}})
	if balanced.Throughput <= res.Throughput {
		t.Fatalf("balanced extents should beat all-ones: %.1f vs %.1f",
			balanced.Throughput, res.Throughput)
	}
}

// table5 runs the Figure 15 rows for a pipeline model and returns steady
// throughputs keyed by row name. evenExtents is the Pthreads-Baseline
// static distribution.
func table5(model *PipelineModel, evenExtents []int) map[string]float64 {
	const tasks = 3000
	ones := make([]int, len(model.StageTimes))
	for i := range ones {
		ones[i] = 1
	}
	run := func(cfg PipelineConfig) float64 {
		cfg.Tasks = tasks
		return RunPipeline(model, cfg).SteadyThroughput
	}
	return map[string]float64{
		"baseline": run(PipelineConfig{Extents: evenExtents}),
		"os":       run(PipelineConfig{Extents: evenExtents, Oversubscribed: true}),
		"seda": run(PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.SEDA{HighWater: 8, LowWater: 1, PerStageCap: 24}}),
		"fdp": run(PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.FDP{Threads: 24}}),
		"tb": run(PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.TBF{Threads: 24, DisableFusion: true}}),
		"tbf": run(PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.TBF{Threads: 24}}),
	}
}

func TestTable5Ordering(t *testing.T) {
	rows := table5(Ferret(), []int{1, 5, 5, 5, 6, 1})
	base := rows["baseline"]
	// Every DoPE mechanism must improve on the even-static baseline.
	for _, name := range []string{"seda", "fdp", "tb", "tbf"} {
		if rows[name] <= base {
			t.Fatalf("ferret %s %.0f should beat baseline %.0f", name, rows[name], base)
		}
	}
	// TBF outperforms all other mechanisms (§8.2.2), and in particular TB —
	// that gap is the benefit of explicit task fusion.
	for _, name := range []string{"os", "seda", "fdp", "tb"} {
		if rows["tbf"] < rows[name] {
			t.Fatalf("ferret TBF %.0f should outperform %s %.0f", rows["tbf"], name, rows[name])
		}
	}
	// Pthreads-OS improves substantially over the even baseline for ferret
	// (paper: 2.12×).
	if r := rows["os"] / base; r < 1.5 || r > 3.0 {
		t.Fatalf("ferret OS ratio = %.2f, expected ≈2.1", r)
	}

	// dedup: OS oversubscription LOSES to the baseline (paper: 0.89×),
	// while TBF still wins big through fusion.
	drows := table5(Dedup(), []int{1, 10, 11, 1})
	dbase := drows["baseline"]
	if drows["os"] >= dbase {
		t.Fatalf("dedup OS %.0f should lose to baseline %.0f", drows["os"], dbase)
	}
	if drows["tbf"] <= dbase {
		t.Fatalf("dedup TBF %.0f should beat baseline %.0f", drows["tbf"], dbase)
	}
	// Headline claim: DoPE improved the two batch applications' throughput
	// by 136% geomean over their original parallelizations (§1). Accept a
	// generous band around 2.36×.
	geomean := math.Sqrt((rows["tbf"] / base) * (drows["tbf"] / dbase))
	if geomean < 1.8 || geomean > 3.2 {
		t.Fatalf("geomean TBF gain = %.2f×, paper reports 2.36×", geomean)
	}
}

func TestFig13TBFStabilizes(t *testing.T) {
	model := Ferret()
	res := RunPipeline(model, PipelineConfig{
		Tasks: 3000, Mechanism: &mechanism.TBF{Threads: 24},
		Extents: []int{1, 1, 1, 1, 1, 1}, SampleEvery: 0.05,
	})
	if len(res.Samples) < 6 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	// Figure 13's shape: a low initial search phase, then a stable plateau
	// well above it. The final sample may dip (batch drain), so compare
	// the steady-state rate against the first window.
	first := res.Samples[0].Throughput
	if res.SteadyThroughput < 2*first {
		t.Fatalf("no stabilization: first window %.0f, steady %.0f",
			first, res.SteadyThroughput)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("TBF never searched the configuration space")
	}
}

func TestFig14TPCHoldsPowerBudget(t *testing.T) {
	model := Ferret()
	budget := 0.9 * 800.0 // 90% of peak, as in §8.2.3
	res := RunPipeline(model, PipelineConfig{
		Tasks:       800,
		Mechanism:   &mechanism.TPC{Threads: 24, Budget: budget},
		Extents:     []int{1, 1, 1, 1, 1, 1},
		PowerBudget: budget, SampleEvery: 0.1,
	})
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	// After the ramp the controller must keep measured power near or below
	// the budget; allow the transient excursions the paper also shows.
	over := 0
	for _, p := range res.Samples[len(res.Samples)/2:] {
		if p.Power > budget*1.05 {
			over++
		}
	}
	if over > len(res.Samples)/4 {
		t.Fatalf("power budget persistently exceeded (%d late samples over)", over)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput under power cap")
	}
}

func TestFig12LoadProportionalBeatsEvenStatic(t *testing.T) {
	// Figure 12: ferret's even static distribution starves the rank stage;
	// DoPE's load-proportional allocation achieves a much better response
	// time characteristic.
	model := Ferret()
	even := RunPipeline(model, PipelineConfig{
		Tasks: 2000, LoadFactor: 0.6, Seed: 7, Extents: []int{1, 5, 5, 5, 6, 1},
	})
	dope := RunPipeline(model, PipelineConfig{
		Tasks: 2000, LoadFactor: 0.6, Seed: 7, ControlEvery: 0.02,
		Mechanism: &mechanism.LoadProportional{Threads: 24},
		Extents:   []int{1, 5, 5, 5, 6, 1},
	})
	if dope.MeanResponse <= 0 || even.MeanResponse <= 0 {
		t.Fatal("missing response times")
	}
	if dope.MeanResponse >= even.MeanResponse {
		t.Fatalf("load-proportional %.4f should beat even static %.4f",
			dope.MeanResponse, even.MeanResponse)
	}
}

func TestPipelineConservation(t *testing.T) {
	// Every submitted item completes exactly once, whatever the mechanism
	// does, including alternative switches.
	model := Dedup()
	res := RunPipeline(model, PipelineConfig{
		Tasks: 250, Mechanism: &mechanism.TBF{Threads: 24},
		Extents: []int{1, 1, 1, 1},
	})
	if res.Throughput <= 0 {
		t.Fatal("no completions")
	}
	// Throughput = completed/lastAt; completed==Tasks is implied by loop
	// termination, but double-check via response count.
	res2 := RunPipeline(model, PipelineConfig{Tasks: 123, Extents: []int{1, 2, 3, 1}})
	if got := res2.MeanResponse; got <= 0 {
		t.Fatal("response accounting lost items")
	}
}

func TestDeterminism(t *testing.T) {
	model := Transcode()
	a := RunServer(model, ServerConfig{Tasks: 200, LoadFactor: 0.7, Seed: 42, OuterK: 24, InnerM: 1})
	b := RunServer(model, ServerConfig{Tasks: 200, LoadFactor: 0.7, Seed: 42, OuterK: 24, InnerM: 1})
	if a.MeanResponse != b.MeanResponse || a.Throughput != b.Throughput {
		t.Fatal("server sim must be deterministic for equal seeds")
	}
	p := Ferret()
	x := RunPipeline(p, PipelineConfig{Tasks: 200, LoadFactor: 0.5, Seed: 9, Extents: []int{1, 2, 2, 2, 2, 1}})
	y := RunPipeline(p, PipelineConfig{Tasks: 200, LoadFactor: 0.5, Seed: 9, Extents: []int{1, 2, 2, 2, 2, 1}})
	if x.MeanResponse != y.MeanResponse {
		t.Fatal("pipeline sim must be deterministic for equal seeds")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPipelineEnergyAccounting(t *testing.T) {
	model := Ferret()
	res := RunPipeline(model, PipelineConfig{
		Tasks: 300, Extents: []int{1, 2, 3, 5, 10, 1}, PowerBudget: 1,
	})
	if res.EnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
	// Energy is bounded by idle and peak draw over the busy period.
	duration := float64(300) / res.Throughput
	if res.EnergyJ < 0.9*600*duration || res.EnergyJ > 1.1*800*duration {
		t.Fatalf("energy %v J outside [idle, peak] × duration (%v s)", res.EnergyJ, duration)
	}
	// A slower configuration must consume more total energy for the same
	// work (longer at >= idle draw).
	slow := RunPipeline(model, PipelineConfig{
		Tasks: 300, Extents: []int{1, 1, 1, 1, 1, 1}, PowerBudget: 1,
	})
	if slow.EnergyJ <= res.EnergyJ {
		t.Fatalf("all-ones energy %v should exceed balanced %v", slow.EnergyJ, res.EnergyJ)
	}
}

func TestServerSizeJitter(t *testing.T) {
	model := Transcode()
	smooth := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.4, Seed: 9, OuterK: 24, InnerM: 1})
	jittery := RunServer(model, ServerConfig{Tasks: 300, LoadFactor: 0.4, Seed: 9, OuterK: 24, InnerM: 1, SizeJitter: 0.4})
	// Without jitter every execution is identical; with jitter the mean
	// stays near nominal but the P95 spreads upward.
	if smooth.P95Response <= smooth.MeanExec*0.99 {
		t.Fatalf("smooth p95 = %v below exec %v", smooth.P95Response, smooth.MeanExec)
	}
	if jittery.P95Response <= smooth.P95Response {
		t.Fatalf("jitter should widen the tail: %v vs %v", jittery.P95Response, smooth.P95Response)
	}
	if math.Abs(jittery.MeanExec-smooth.MeanExec) > 0.15*smooth.MeanExec {
		t.Fatalf("jitter moved the mean too far: %v vs %v", jittery.MeanExec, smooth.MeanExec)
	}
}

package sim

import (
	"math"
	"testing"

	"dope/internal/core"
	"dope/internal/mechanism"
)

// captureMechanism records the latest observation snapshot without ever
// reconfiguring — a probe for running the what-if profiler against the
// simulator's synthesized reports.
type captureMechanism struct{ last *core.Report }

func (c *captureMechanism) Name() string                        { return "capture" }
func (c *captureMechanism) Reconfigure(r *core.Report) *core.Config { c.last = r; return nil }

// TestGradientBeatsWorkQueueMechanismsOnFerret is the mechanism-level
// acceptance check: on the uneven ferret pipeline the what-if-driven
// Gradient, started from all-ones, must reach a steady-state throughput at
// least as high as WQT-H's and WQ-Linear's. Those two own the server-shaped
// applications and return nil for flat pipelines, so here they hold the
// paper's even static distribution — exactly the configuration whose rank
// starvation Figure 12 documents — while Gradient walks contexts toward the
// profiler's predicted payoff.
func TestGradientBeatsWorkQueueMechanismsOnFerret(t *testing.T) {
	model := Ferret()
	ones := []int{1, 1, 1, 1, 1, 1}
	even := []int{1, 5, 5, 5, 6, 1}
	const tasks = 3000

	grad := RunPipeline(model, PipelineConfig{
		Tasks: tasks, ControlEvery: 0.02,
		Mechanism: &mechanism.Gradient{Threads: 24}, Extents: ones,
	})
	wqth := RunPipeline(model, PipelineConfig{
		Tasks: tasks, ControlEvery: 0.02,
		Mechanism: &mechanism.WQTH{Threads: 24, Mmax: 8, Threshold: 6}, Extents: even,
	})
	wql := RunPipeline(model, PipelineConfig{
		Tasks: tasks, ControlEvery: 0.02,
		Mechanism: &mechanism.WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14}, Extents: even,
	})

	if grad.Reconfigurations == 0 {
		t.Fatal("Gradient never moved a context")
	}
	if grad.SteadyThroughput < wqth.SteadyThroughput {
		t.Fatalf("Gradient steady %.0f below WQT-H %.0f",
			grad.SteadyThroughput, wqth.SteadyThroughput)
	}
	if grad.SteadyThroughput < wql.SteadyThroughput {
		t.Fatalf("Gradient steady %.0f below WQ-Linear %.0f",
			grad.SteadyThroughput, wql.SteadyThroughput)
	}
	// It must also clearly beat the even static baseline it was never given
	// — i.e. the gain comes from the profile, not the starting point.
	static := RunPipeline(model, PipelineConfig{Tasks: tasks, Extents: even})
	if grad.SteadyThroughput < 1.5*static.SteadyThroughput {
		t.Fatalf("Gradient steady %.0f does not separate from even static %.0f",
			grad.SteadyThroughput, static.SteadyThroughput)
	}
}

// TestGradientIgnoresServerShapes pins the division of labor: Gradient must
// decline server-shaped applications (nested loops) so it never fights the
// work-queue mechanisms that own them.
func TestGradientIgnoresServerShapes(t *testing.T) {
	model := Transcode()
	m := &mechanism.Gradient{Threads: 24}
	res := RunServer(model, ServerConfig{
		Tasks: 200, LoadFactor: 0.5, Seed: 11, Mechanism: m,
		OuterK: 24, InnerM: 1,
	})
	if res.Reconfigurations != 0 {
		t.Fatalf("Gradient reconfigured a server-shaped app %d times", res.Reconfigurations)
	}
}

// TestWhatIfRanksSeededBottleneckAcrossSeeds is the profiler-level
// acceptance check: across 10 deterministic seeds of the ferret pipeline
// under its even static distribution, the what-if ranking must place the
// rank stage — the analytic bottleneck (demand 14·base/6 against ≤0.8·base
// elsewhere) — first in at least 9 runs, with finite payoffs throughout.
func TestWhatIfRanksSeededBottleneckAcrossSeeds(t *testing.T) {
	model := Ferret()
	even := []int{1, 5, 5, 5, 6, 1}
	top1 := 0
	for seed := int64(1); seed <= 10; seed++ {
		probe := &captureMechanism{}
		RunPipeline(model, PipelineConfig{
			Tasks: 1500, LoadFactor: 0.5, Seed: seed,
			ControlEvery: 0.02, Mechanism: probe, Extents: even,
		})
		if probe.last == nil {
			t.Fatalf("seed %d: control loop never ticked", seed)
		}
		rep := probe.last.WhatIf()
		if !rep.Valid {
			t.Fatalf("seed %d: profile invalid: %s", seed, rep.Reason)
		}
		for _, st := range rep.Stages {
			if math.IsNaN(st.PayoffDoP) || math.IsInf(st.PayoffDoP, 0) ||
				math.IsNaN(st.PayoffService) || math.IsInf(st.PayoffService, 0) {
				t.Fatalf("seed %d: non-finite payoff for %s", seed, st.Name)
			}
		}
		if rep.Bottleneck == "rank" && rep.Stages[0].Name == "rank" {
			top1++
		}
	}
	if top1 < 9 {
		t.Fatalf("rank ranked first in only %d/10 seeded runs, want >= 9", top1)
	}
}

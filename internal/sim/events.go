// Package sim is a discrete-event simulator of the paper's evaluation
// platform: a 24-context server executing DoPE applications under Poisson
// load. It exists because the quantitative experiments (Figures 2 and
// 11–15) sweep hundreds of operating points over minutes of simulated
// wall-clock time; the simulator reproduces the queueing dynamics, parallel
// efficiency curves, and power behaviour deterministically and in
// milliseconds, while the real runtime (package core + apps) demonstrates
// the same protocol live.
//
// Crucially, mechanisms are not reimplemented: the simulator synthesizes
// core.Report snapshots from its state and drives the very same
// core.Mechanism implementations the real executive uses, then interprets
// the returned core.Config analytically.
package sim

import "container/heap"

// eventKind orders simultaneous events deterministically.
type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evControl
	// evResume ends a reconfiguration freeze window (ResizeCost/DrainCost)
	// and restarts service.
	evResume
	evSample
)

// event is one scheduled simulator occurrence.
type event struct {
	at   float64 // seconds of simulated time
	kind eventKind
	seq  uint64 // tie-breaker for determinism
	// payload fields; which are valid depends on kind.
	stage int
	item  int
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// agenda wraps the heap with a sequence counter.
type agenda struct {
	h   eventHeap
	seq uint64
}

func newAgenda() *agenda {
	a := &agenda{}
	heap.Init(&a.h)
	return a
}

func (a *agenda) schedule(at float64, kind eventKind, stage, item int) {
	a.seq++
	heap.Push(&a.h, event{at: at, kind: kind, seq: a.seq, stage: stage, item: item})
}

func (a *agenda) empty() bool { return len(a.h) == 0 }

func (a *agenda) next() event { return heap.Pop(&a.h).(event) }

package sim

import (
	"math"

	"dope/internal/core"
)

// noopMake satisfies AltSpec.Make for specs the simulator uses only
// structurally (mechanisms read names, types and DoP bounds; nothing is
// ever instantiated).
func noopMake(item any) (*core.AltInstance, error) { return nil, nil }

// ServerModel describes a two-level server application (Figure 1's shape)
// analytically: how long one transaction takes as a function of the inner
// DoP extent. Times are in seconds of simulated wall-clock.
type ServerModel struct {
	// Name labels the application.
	Name string
	// InnerName is the nested nest's name in Spec.
	InnerName string
	// Spec is the structural nest tree handed to mechanisms.
	Spec *core.NestSpec
	// SeqTime is the fused sequential transaction time.
	SeqTime float64
	// ParTime returns the transaction time at inner extent m (m >= 2); the
	// simulator calls SeqTime for m <= 1 or the fused alternative.
	ParTime func(m int) float64
	// InnerStageTimes reports the per-stage service times of the inner
	// parallel alternative for report synthesis, index-aligned with the
	// parallel alternative's stages.
	InnerStageTimes []float64
}

// ExecTime returns the transaction time for inner extent m under the
// chosen inner alternative semantics (extent <= 1 means sequential).
func (m *ServerModel) ExecTime(extent int) float64 {
	if extent <= 1 {
		return m.SeqTime
	}
	return m.ParTime(extent)
}

// Mmax returns the largest inner extent whose parallel efficiency
// SeqTime/(m·ParTime(m)) stays at or above minEff — the paper's Mmax
// definition ("DoP extent above which parallel efficiency drops below
// 0.5").
func (m *ServerModel) Mmax(minEff float64, limit int) int {
	best := 1
	for e := 2; e <= limit; e++ {
		eff := m.SeqTime / (float64(e) * m.ParTime(e))
		if eff >= minEff {
			best = e
		}
	}
	return best
}

// serverSpec builds the structural two-level spec shared by the server
// models: root "serve" PAR stage nesting innerName with a parallel and a
// fused alternative.
func serverSpec(app, innerName string, parStages []core.StageSpec) *core.NestSpec {
	inner := &core.NestSpec{Name: innerName, Alts: []*core.AltSpec{
		{Name: "parallel", Stages: parStages, Make: noopMake},
		{Name: "fused", Stages: []core.StageSpec{{Name: "fused", Type: core.SEQ}}, Make: noopMake},
	}}
	return &core.NestSpec{Name: app, Alts: []*core.AltSpec{{
		Name:   "outer",
		Stages: []core.StageSpec{{Name: "serve", Type: core.PAR, Nest: inner}},
		Make:   noopMake,
	}}}
}

// pipeStages is shorthand for building stage specs.
func pipeStages(names []string, types []core.TaskType, minDoP []int) []core.StageSpec {
	out := make([]core.StageSpec, len(names))
	for i := range names {
		out[i] = core.StageSpec{Name: names[i], Type: types[i]}
		if minDoP != nil {
			out[i].MinDoP = minDoP[i]
		}
	}
	return out
}

// --- The four server applications, calibrated to the paper -----------------

// Transcode models x264 video transcoding: 24 frames per video, pipeline
// read|transform|write with σ = 0.04 so speedup(8) ≈ 6.3× (Figure 2(a))
// and efficiency(8) ≈ 0.79, dropping below 0.5 past m ≈ 26 — the knee is
// therefore imposed by the evaluation machine's 24 contexts, matching the
// paper's use of 8 as the practical Mmax for <N/Mmax, Mmax> configurations.
func Transcode() *ServerModel {
	const (
		frames = 24
		unit   = 1.5e-3 // transform seconds per frame
		sigma  = 0.04
	)
	seq := frames * unit * 1.25
	// Speedup follows m/(1+σ(m-1)) up to the frame-dependency height of 8
	// (x264's motion-compensation chains), then saturates: extra workers
	// cost contexts without transcoding faster. s(8) = 8/1.28 ≈ 6.25,
	// matching Figure 2(a)'s 6.3× maximum, and efficiency collapses past
	// the knee exactly as the paper's Mmax definition requires.
	par := func(m int) float64 {
		eff := m
		if eff > 8 {
			eff = 8
		}
		s := float64(eff) / (1 + sigma*float64(eff-1))
		return seq / s
	}
	return &ServerModel{
		Name:      "x264",
		InnerName: "video",
		Spec: serverSpec("x264", "video", pipeStages(
			[]string{"read", "transform", "write"},
			[]core.TaskType{core.SEQ, core.PAR, core.SEQ},
			[]int{0, 2, 0})),
		SeqTime:         seq,
		ParTime:         par,
		InnerStageTimes: []float64{unit / 8, unit, unit / 8},
	}
}

// Swaptions models Monte Carlo option pricing: 32 chunks per request,
// DOALL with σ = 0.05.
func Swaptions() *ServerModel {
	const (
		chunks = 32
		unit   = 1.2e-3
		sigma  = 0.05
	)
	seq := chunks * unit
	par := func(m int) float64 {
		waves := math.Ceil(float64(chunks) / float64(m))
		return waves * unit * (1 + sigma*float64(m-1))
	}
	return &ServerModel{
		Name:      "swaptions",
		InnerName: "price",
		Spec: serverSpec("swaptions", "price", pipeStages(
			[]string{"simulate"},
			[]core.TaskType{core.PAR},
			[]int{2})),
		SeqTime:         seq,
		ParTime:         par,
		InnerStageTimes: []float64{unit},
	}
}

// Compress models bzip block compression: 16 blocks per file, a fixed
// parallel startup of 2 block-times plus σ = 0.10 coordination, so the
// minimum extent with any speedup is 4 (Table 4's DoPmin) — below that the
// parallel path is slower than the fused compressor — and the parallel
// efficiency stays low enough that WQ-Linear's intermediate configurations
// are unhelpful (§8.2.1's observation for bzip).
func Compress() *ServerModel {
	const (
		blocks  = 16
		unit    = 1.6e-3
		sigma   = 0.10
		startup = 2
	)
	seq := blocks * unit * 1.125
	par := func(m int) float64 {
		e := m - 2
		if e < 1 {
			e = 1
		}
		waves := math.Ceil(float64(blocks) / float64(e))
		return float64(startup)*unit + waves*unit*(1+sigma*float64(e-1)) + 2*unit/16
	}
	return &ServerModel{
		Name:      "bzip",
		InnerName: "file",
		Spec: serverSpec("bzip", "file", pipeStages(
			[]string{"split", "compress", "concat"},
			[]core.TaskType{core.SEQ, core.PAR, core.SEQ},
			[]int{0, 4, 0})),
		SeqTime:         seq,
		ParTime:         par,
		InnerStageTimes: []float64{unit / 16, unit, unit / 16},
	}
}

// Oilify models the gimp oilify plugin: 24 tile rows per image, DOALL with
// σ = 0.06 (neighborhood filters share tile edges).
func Oilify() *ServerModel {
	const (
		rows  = 24
		unit  = 1.8e-3
		sigma = 0.06
	)
	seq := rows * unit
	par := func(m int) float64 {
		waves := math.Ceil(float64(rows) / float64(m))
		return waves * unit * (1 + sigma*float64(m-1))
	}
	return &ServerModel{
		Name:      "gimp",
		InnerName: "image",
		Spec: serverSpec("gimp", "image", pipeStages(
			[]string{"filter"},
			[]core.TaskType{core.PAR},
			[]int{2})),
		SeqTime:         seq,
		ParTime:         par,
		InnerStageTimes: []float64{unit},
	}
}

// PipelineModel describes a single-level pipeline application (ferret,
// dedup) analytically.
type PipelineModel struct {
	// Name labels the application.
	Name string
	// Spec is the structural nest handed to mechanisms: alternative 0 is
	// the pipeline, alternative 1 the fused task.
	Spec *core.NestSpec
	// StageTimes is the base per-item service time of each pipeline stage.
	StageTimes []float64
	// StageTypes marks SEQ/PAR per stage.
	StageTypes []core.TaskType
	// HopTime is the per-item inter-stage forwarding cost paid by every
	// pipeline stage after the first; the fused task avoids it.
	HopTime float64
	// Sigma is the per-worker coordination overhead of pipeline stages.
	Sigma float64
	// FusedSigma is the (lower) coordination overhead of the fused task:
	// fused workers process whole items independently, so they synchronize
	// far less than pipeline stages trading items through queues. This is
	// the second half of why explicit fusion beats FDP's time-multiplexed
	// emulation (§8.2.2).
	FusedSigma float64
	// OSPenalty scales the extra slowdown when the OS time-slices an
	// oversubscribed machine (context switching, cache pollution); dedup's
	// is higher, making Pthreads-OS a loss there (Figure 15).
	OSPenalty float64
	// OSBaseOverhead is a flat service-time tax paid whenever the machine
	// runs with oversubscribed pools, even before demand exceeds supply:
	// larger working sets and thread state pollute caches. This is what
	// drags dedup's Pthreads-OS row below its baseline (0.89×).
	OSBaseOverhead float64
}

// FusedTime is the per-item service time of the fused task at extent 1.
func (m *PipelineModel) FusedTime() float64 {
	t := 0.0
	for _, s := range m.StageTimes {
		t += s
	}
	return t
}

// StageService returns stage i's per-item service time at the given extent
// (coordination overhead included, hop cost for stages after the first).
func (m *PipelineModel) StageService(i, extent int) float64 {
	t := m.StageTimes[i]
	if i > 0 {
		t += m.HopTime
	}
	if m.StageTypes[i] == core.PAR && extent > 1 {
		t *= 1 + m.Sigma*float64(extent-1)
	}
	return t
}

// Ferret models the 6-stage image-search engine. The rank stage dominates
// (similarity search against the whole index), so a static even thread
// distribution starves it badly — which is why the paper's Pthreads-OS row
// improves 2.12× over the even baseline and DoPE does better still.
func Ferret() *PipelineModel {
	base := 0.4e-3
	return &PipelineModel{
		Name: "ferret",
		Spec: &core.NestSpec{Name: "ferret", Alts: []*core.AltSpec{
			{Name: "pipeline", Make: noopMake, Stages: pipeStages(
				[]string{"load", "segment", "extract", "index", "rank", "out"},
				[]core.TaskType{core.SEQ, core.PAR, core.PAR, core.PAR, core.PAR, core.SEQ},
				nil)},
			{Name: "fused", Make: noopMake, Stages: pipeStages(
				[]string{"query"},
				[]core.TaskType{core.PAR},
				nil)},
		}},
		StageTimes:     []float64{0.5 * base, 1 * base, 2 * base, 4 * base, 14 * base, 0.5 * base},
		StageTypes:     []core.TaskType{core.SEQ, core.PAR, core.PAR, core.PAR, core.PAR, core.SEQ},
		HopTime:        base / 4,
		Sigma:          0.03,
		FusedSigma:     0.01,
		OSPenalty:      0.08,
		OSBaseOverhead: 0.25,
	}
}

// Dedup models the deduplication pipeline. Its stages are cheaper and more
// memory-bound (hash-table traffic), so OS oversubscription pays cache
// pollution without buying balance: the paper measures 0.89× for its
// Pthreads-OS row.
func Dedup() *PipelineModel {
	base := 3.2e-3
	return &PipelineModel{
		Name: "dedup",
		Spec: &core.NestSpec{Name: "dedup", Alts: []*core.AltSpec{
			{Name: "pipeline", Make: noopMake, Stages: pipeStages(
				[]string{"chunk", "hash", "compress", "write"},
				[]core.TaskType{core.SEQ, core.PAR, core.PAR, core.SEQ},
				nil)},
			{Name: "fused", Make: noopMake, Stages: pipeStages(
				[]string{"dedup"},
				[]core.TaskType{core.PAR},
				nil)},
		}},
		StageTimes:     []float64{base / 4, base / 2, base, base / 16},
		StageTypes:     []core.TaskType{core.SEQ, core.PAR, core.PAR, core.SEQ},
		HopTime:        base / 6,
		Sigma:          0.15,
		FusedSigma:     0.02,
		OSPenalty:      1.0,
		OSBaseOverhead: 0.12,
	}
}

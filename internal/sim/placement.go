package sim

import (
	"math"

	"dope/internal/platform"
)

// Placement selects how pipeline stages are mapped onto hardware contexts
// — the paper's third orchestration decision (§1): tasks placed so that
// communicating stages share sockets pay the base forwarding cost; stages
// split across sockets pay CrossSocketFactor times more per transfer.
type Placement int

const (
	// PlaceNone ignores topology: every hop costs the base HopTime (the
	// model used by the paper's headline experiments, where placement is
	// folded into HopTime).
	PlaceNone Placement = iota
	// PlaceContiguous assigns contexts to stages in pipeline order and
	// lets the executive choose the alignment: in a full machine some
	// producer→consumer edge must cross a socket boundary, so the
	// scheduler slides the layout to keep the bottleneck stage's in-edge
	// local — the locality-maximizing schedule of §1.
	PlaceContiguous
	// PlaceScatter round-robins each stage's workers across all sockets —
	// the locality-oblivious schedule of a naive thread pool.
	PlaceScatter
)

// CrossSocketFactor scales the forwarding cost of an off-socket transfer
// (last-level-cache miss plus interconnect) relative to an on-socket one.
const CrossSocketFactor = 3.0

// contiguousMultipliers computes per-stage forwarding multipliers for a
// contiguous stage layout starting at context offset.
func contiguousMultipliers(topo platform.Topology, extents []int, offset int) []float64 {
	n := len(extents)
	out := make([]float64, n)
	out[0] = 1
	starts := make([]int, n)
	acc := offset
	for i, e := range extents {
		starts[i] = acc
		acc += e
	}
	for i := 1; i < n; i++ {
		shared := topo.SharedFraction(starts[i-1], extents[i-1], starts[i], extents[i])
		out[i] = shared*1 + (1-shared)*CrossSocketFactor
	}
	return out
}

// scatterMultipliers computes the multipliers when every stage spreads over
// all sockets: the chance a transfer stays on-socket is 1/sockets.
func scatterMultipliers(topo platform.Topology, n int) []float64 {
	out := make([]float64, n)
	out[0] = 1
	local := 1.0 / float64(topo.Sockets)
	for i := 1; i < n; i++ {
		out[i] = local*1 + (1-local)*CrossSocketFactor
	}
	return out
}

// placementMultipliers computes each stage's forwarding-cost multiplier
// under the policy. service estimates a stage's per-item time given its
// multiplier (used by PlaceContiguous to keep the bottleneck's in-edge
// local); it may be nil, in which case the first alignment is used.
func placementMultipliers(topo platform.Topology, extents []int, p Placement,
	service func(stage int, mult float64) float64) []float64 {
	n := len(extents)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	if n == 0 || p == PlaceNone {
		return ones
	}
	switch p {
	case PlaceScatter:
		return scatterMultipliers(topo, n)
	case PlaceContiguous:
		if service == nil {
			return contiguousMultipliers(topo, extents, 0)
		}
		// The executive slides the layout within one socket's worth of
		// offsets (the pattern repeats every CoresPerSocket) and keeps the
		// alignment whose slowest stage is fastest.
		var best []float64
		bestPeriod := math.Inf(1)
		for off := 0; off < topo.CoresPerSocket; off++ {
			m := contiguousMultipliers(topo, extents, off)
			period := 0.0
			for i := range extents {
				p := service(i, m[i]) / float64(maxOfInt(1, extents[i]))
				if p > period {
					period = p
				}
			}
			if period < bestPeriod {
				bestPeriod = period
				best = m
			}
		}
		return best
	default:
		return ones
	}
}

func maxOfInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

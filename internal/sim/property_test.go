package sim

import (
	"testing"
	"testing/quick"

	"dope/internal/core"
	"dope/internal/mechanism"
)

// Property: the server simulator conserves work and respects Equation 1's
// decomposition: response = wait + exec, exec within the model's range,
// and throughput bounded by the calibrated maximum, for any seed, load,
// and static configuration.
func TestServerInvariantsProperty(t *testing.T) {
	model := Transcode()
	f := func(seed int64, lfRaw, mRaw uint8) bool {
		lf := 0.1 + float64(lfRaw%10)*0.1
		m := []int{1, 2, 4, 8, 16}[mRaw%5]
		res := RunServer(model, ServerConfig{
			Tasks: 120, LoadFactor: lf, Seed: seed,
			OuterK: 24 / maxOf(1, m), InnerM: m,
		})
		if res.MeanResponse+1e-12 < res.MeanExec {
			return false // response must include execution
		}
		wantExec := model.ExecTime(m)
		if diff := res.MeanExec - wantExec; diff > 1e-9 || diff < -1e-9 {
			return false // static config's exec time is deterministic
		}
		// Throughput can transiently exceed the calibrated maximum at
		// light loads (idle gaps shrink the busy window) but not absurdly.
		return res.Throughput > 0 && res.Throughput < 4*res.MaxThroughput
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// Property: pipeline simulation conserves items (throughput > 0 implies
// all items completed — the run loop only terminates when the agenda is
// empty, which requires every item to have left the last stage) and the
// steady-state rate is positive, for any extents and seeds.
func TestPipelineInvariantsProperty(t *testing.T) {
	model := Ferret()
	f := func(seed int64, e1, e2, e3, e4 uint8) bool {
		extents := []int{1, int(e1)%6 + 1, int(e2)%6 + 1, int(e3)%6 + 1, int(e4)%6 + 1, 1}
		res := RunPipeline(model, PipelineConfig{
			Tasks: 150, Seed: seed, Extents: extents,
		})
		if res.Throughput <= 0 || res.SteadyThroughput <= 0 {
			return false
		}
		// Final extents echo the clamped configuration (SEQ stages 1).
		return res.FinalExtents[0] == 1 && res.FinalExtents[5] == 1
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// Property: under any mechanism the pipeline still completes every item
// and ends on a legal alternative.
func TestPipelineMechanismSafetyProperty(t *testing.T) {
	model := Dedup()
	f := func(seed int64, pick uint8) bool {
		// Build mechanisms inline: each run needs fresh state.
		var m core.Mechanism
		switch pick % 4 {
		case 0:
			m = &mechanism.TBF{Threads: 24}
		case 1:
			m = &mechanism.FDP{Threads: 24}
		case 2:
			m = &mechanism.SEDA{HighWater: 6, LowWater: 1, PerStageCap: 24}
		case 3:
			m = &mechanism.LoadProportional{Threads: 24}
		}
		res := RunPipeline(model, PipelineConfig{
			Tasks: 200, Seed: seed, Extents: []int{1, 1, 1, 1},
			Mechanism: m, ControlEvery: 0.03,
		})
		if res.Throughput <= 0 {
			return false
		}
		return res.FinalAlt == 0 || res.FinalAlt == 1
	}
	if err := quick.Check(f, quickCfg(20)); err != nil {
		t.Error(err)
	}
}

// quickCfg bounds the number of property iterations (each runs a whole
// simulation).
func quickCfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

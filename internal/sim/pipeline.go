package sim

import (
	"math"
	"time"

	"dope/internal/core"
	"dope/internal/platform"
	"dope/internal/power"
	"dope/internal/stats"
	"dope/internal/workload"
)

// PipelineConfig parameterizes one pipeline-simulation run (ferret/dedup).
type PipelineConfig struct {
	// Contexts is the platform size (default 24).
	Contexts int
	// Tasks is how many items to push through (default 500).
	Tasks int
	// LoadFactor > 0 runs the open-loop server mode with Poisson arrivals
	// at that fraction of max throughput; 0 runs batch mode (all items
	// enqueued at time zero), which is how the paper measures throughput.
	LoadFactor float64
	// Seed drives the arrival stream.
	Seed int64
	// Extents is the static/initial per-stage extent vector for
	// alternative 0 (defaults to all ones).
	Extents []int
	// Alt selects the initial alternative (0 pipeline, 1 fused).
	Alt int
	// Mechanism adapts the configuration each ControlEvery seconds.
	Mechanism core.Mechanism
	// ControlEvery is the control period in seconds (default 0.05).
	ControlEvery float64
	// Oversubscribed enables the Pthreads-OS baseline: every stage gets a
	// Contexts-sized pool and the OS time-slices, with the model's
	// OSPenalty slowdown when demand exceeds supply.
	Oversubscribed bool
	// Placement maps stages onto the machine topology (§1's locality
	// decision); PlaceNone folds placement into the base HopTime.
	Placement Placement
	// Topology describes the socket structure when Placement is used
	// (defaults to the 4×6 evaluation machine).
	Topology platform.Topology
	// PowerBudget > 0 registers the power model + PDU as the SystemPower
	// feature for TPC.
	PowerBudget float64
	// PDUPeriod is the PDU sampling period in simulated seconds; 0 uses
	// the paper's AP7892 limit (13 samples/minute). The simulator's
	// timescale is compressed relative to the paper's testbed, so
	// experiments typically scale this down proportionally to preserve the
	// sampling-lag-vs-control-period ratio.
	PDUPeriod float64
	// SampleEvery > 0 records (time, throughput, power, totalExtent) series
	// points at that period, for the Figure 13/14 traces.
	SampleEvery float64
	// ResizeCost is the simulated seconds service is frozen after an
	// extent-only reconfiguration — the real executive's in-place
	// worker-group resize, which costs roughly a slot spawn/retire. Default
	// 0 (free).
	ResizeCost float64
	// DrainCost is the simulated seconds service stays frozen after an
	// alternative switch finishes draining, modelling the teardown/respawn
	// of every stage that the suspend→drain→respawn protocol pays on top of
	// the drain barrier itself. Default 0.
	DrainCost float64
	// RespawnOnResize makes extent-only changes pay the drain barrier and
	// DrainCost too, mirroring core.WithWholeNestRespawn — the A/B baseline
	// for what in-place resizing saves.
	RespawnOnResize bool
}

func (c *PipelineConfig) defaults(nStages int) {
	if c.Contexts <= 0 {
		c.Contexts = 24
	}
	if c.Tasks <= 0 {
		c.Tasks = workload.CalibrationTasks
	}
	if c.ControlEvery <= 0 {
		c.ControlEvery = 0.05
	}
	if len(c.Extents) == 0 {
		c.Extents = make([]int, nStages)
		for i := range c.Extents {
			c.Extents[i] = 1
		}
	}
}

// SamplePoint is one record of the Figure 13/14 time traces.
type SamplePoint struct {
	// Time is simulated seconds since start.
	Time float64
	// Throughput is the completion rate over the last sample window.
	Throughput float64
	// Power is the PDU reading in watts (0 when no power model).
	Power float64
	// TotalExtent is the summed DoP extent of the active alternative.
	TotalExtent int
}

// PipelineResult is the outcome of one pipeline run.
type PipelineResult struct {
	// Throughput is items/second over the whole run.
	Throughput float64
	// SteadyThroughput is items/second over the second half of the run,
	// excluding an adaptive mechanism's search transient (the paper
	// reports stabilized throughput; Figure 13 shows the transient
	// separately).
	SteadyThroughput float64
	// MeanResponse and P95Response are per-item seconds (server mode).
	MeanResponse float64
	P95Response  float64
	// Reconfigurations counts applied configuration changes; Resizes the
	// subset realized as in-place extent changes and Drains the subset that
	// paid the full drain barrier (alternative switches, or every root
	// change when RespawnOnResize is set).
	Reconfigurations int
	Resizes          int
	Drains           int
	// FinalExtents is the extent vector at completion; FinalAlt the
	// alternative.
	FinalExtents []int
	FinalAlt     int
	// Samples is the recorded time series (empty unless SampleEvery set).
	Samples []SamplePoint
	// MeanPower averages the instantaneous model power over completions.
	MeanPower float64
	// EnergyJ is the integrated system energy over the run (0 when no
	// power model is registered).
	EnergyJ float64
}

// pipeSim is the stage-level pipeline DES.
type pipeSim struct {
	cfg    PipelineConfig
	model  *PipelineModel
	agenda *agenda
	now    float64

	queues  [][]float64 // arrival-at-queue times per stage in-queue; queues[0] is the work queue
	itemAt  [][]float64 // original arrival times, parallel to queues
	busy    []int
	extents []int
	hopMult []float64 // per-stage forwarding multiplier under the placement
	alt     int
	// pending holds a requested alternative switch; it is applied only
	// after all in-flight services drain, mirroring the real executive's
	// suspend → drain → reconfigure protocol.
	pending *pendingSwitch

	arrivals  *workload.Arrivals
	arrived   int
	completed int
	reconfs   int
	resizes   int
	drains    int
	// frozenUntil blocks new service starts until the given time: the
	// ResizeCost/DrainCost window after a reconfiguration. Completions
	// already in flight still land during the freeze.
	frozenUntil float64

	resp    stats.Welford
	respAll []float64
	lastAt  float64
	halfAt  float64   // completion time of the run's midpoint item
	stashed []float64 // original arrival stamps addressed by event item id

	clock     *platform.VirtualClock
	features  *platform.Features
	pmodel    *power.Model
	pdu       *power.PDU
	powerSum  float64
	powerObs  int
	energyJ   float64
	energyAt  float64
	samples   []SamplePoint
	lastSampT float64
	lastSampN int
}

// pendingSwitch is a deferred alternative change.
type pendingSwitch struct {
	alt     int
	extents []int
}

// nStages returns the stage count of the active alternative.
func (s *pipeSim) nStages() int {
	if s.alt == 1 {
		return 1
	}
	return len(s.model.StageTimes)
}

// RunPipeline simulates one pipeline run.
func RunPipeline(model *PipelineModel, cfg PipelineConfig) PipelineResult {
	cfg.defaults(len(model.StageTimes))
	if cfg.Topology.Sockets == 0 {
		cfg.Topology = platform.DefaultTopology()
	}
	s := &pipeSim{
		cfg:    cfg,
		model:  model,
		agenda: newAgenda(),
		alt:    cfg.Alt,
		clock:  platform.NewVirtualClock(time.Unix(0, 0)),
	}
	s.features = platform.NewFeatures()
	if cfg.PowerBudget > 0 || cfg.SampleEvery > 0 {
		s.pmodel = power.NewDefaultModel(cfg.Contexts)
		period := power.DefaultSamplePeriod
		if cfg.PDUPeriod > 0 {
			period = time.Duration(cfg.PDUPeriod * float64(time.Second))
		}
		s.pdu = power.NewPDU(func() float64 {
			return s.pmodel.Watts(s.totalBusy())
		}, period, s.clock)
		s.features.Register(platform.FeatureSystemPower, s.pdu.FeatureCB())
	}
	s.setExtents(cfg.Alt, cfg.Extents)
	maxQ := len(model.StageTimes)
	s.queues = make([][]float64, maxQ+1)
	s.itemAt = make([][]float64, maxQ+1)

	if cfg.LoadFactor > 0 {
		// Open-loop server mode: calibrate against batch throughput of the
		// sequential-ish reference (paper's N/T definition with each task
		// itself sequential → fused alternative at extent = contexts).
		ref := RunPipeline(model, PipelineConfig{
			Contexts: cfg.Contexts, Tasks: cfg.Tasks, Alt: 1,
			Extents: []int{cfg.Contexts},
		})
		rate := workload.LoadFactor(cfg.LoadFactor).RateFor(ref.Throughput)
		s.arrivals = workload.NewArrivals(rate, cfg.Seed)
		s.agenda.schedule(s.arrivals.Next().Seconds(), evArrival, 0, 0)
	} else {
		// Batch mode: everything arrives at time zero.
		for i := 0; i < cfg.Tasks; i++ {
			s.queues[0] = append(s.queues[0], 0)
			s.itemAt[0] = append(s.itemAt[0], 0)
		}
		s.arrived = cfg.Tasks
	}
	if cfg.Mechanism != nil {
		s.agenda.schedule(cfg.ControlEvery, evControl, 0, 0)
	}
	if cfg.SampleEvery > 0 {
		s.agenda.schedule(cfg.SampleEvery, evSample, 0, 0)
	}
	s.pump()
	s.loop()

	res := PipelineResult{
		Throughput:       float64(s.completed) / math.Max(s.lastAt, 1e-9),
		SteadyThroughput: float64(s.completed-cfg.Tasks/2) / math.Max(s.lastAt-s.halfAt, 1e-9),
		MeanResponse:     s.resp.Mean(),
		Reconfigurations: s.reconfs,
		Resizes:          s.resizes,
		Drains:           s.drains,
		FinalExtents:     append([]int(nil), s.extents...),
		FinalAlt:         s.alt,
		Samples:          s.samples,
	}
	if p95, err := stats.Percentile(s.respAll, 95); err == nil {
		res.P95Response = p95
	}
	if s.powerObs > 0 {
		res.MeanPower = s.powerSum / float64(s.powerObs)
	}
	res.EnergyJ = s.energyJ
	return res
}

func (s *pipeSim) loop() {
	for !s.agenda.empty() {
		ev := s.agenda.next()
		if s.pmodel != nil && ev.at > s.energyAt {
			// Charge the interval since the last event at the draw that
			// held across it (busy only changes at events).
			s.energyJ += s.pmodel.Watts(s.totalBusy()) * (ev.at - s.energyAt)
			s.energyAt = ev.at
		}
		s.now = ev.at
		s.clock.Set(time.Unix(0, 0).Add(time.Duration(s.now * float64(time.Second))))
		switch ev.kind {
		case evArrival:
			s.arrived++
			s.queues[0] = append(s.queues[0], s.now)
			s.itemAt[0] = append(s.itemAt[0], s.now)
			if s.arrived < s.cfg.Tasks {
				s.agenda.schedule(s.now+s.arrivals.Next().Seconds(), evArrival, 0, 0)
			}
			s.pump()
		case evCompletion:
			s.finishService(ev.stage, ev.item)
			s.pump()
		case evControl:
			s.control()
			if s.completed < s.cfg.Tasks {
				s.agenda.schedule(s.now+s.cfg.ControlEvery, evControl, 0, 0)
			}
		case evResume:
			s.pump()
		case evSample:
			s.sample()
			if s.completed < s.cfg.Tasks {
				s.agenda.schedule(s.now+s.cfg.SampleEvery, evSample, 0, 0)
			}
		}
	}
}

// totalExtent sums the configured pool sizes of the active alternative.
func (s *pipeSim) totalExtent() int {
	t := 0
	for _, e := range s.extents {
		t += e
	}
	return t
}

func (s *pipeSim) totalBusy() int {
	t := 0
	for _, b := range s.busy {
		t += b
	}
	return t
}

// capacityOf returns the concurrent-server cap of stage i, honoring
// physical contexts and oversubscription semantics. In the Pthreads-OS
// baseline "each parallel task is initialized with a thread pool containing
// as many threads as the number of available hardware threads" (§8.2.2);
// sequential tasks keep their single thread.
func (s *pipeSim) capacityOf(i int) int {
	e := s.extents[i]
	if s.cfg.Oversubscribed && (s.alt == 1 || s.model.StageTypes[i] == core.PAR) {
		e = s.cfg.Contexts
	}
	return e
}

// contention returns the service-time multiplier under the current context
// demand: 1.0 while demand fits; when the OS time-slices D workers onto C
// contexts the effective rate drops by D/C plus the model's switching
// penalty.
func (s *pipeSim) contention(busyAfter int) float64 {
	base := 1.0
	if s.cfg.Oversubscribed || s.totalExtent() > s.cfg.Contexts {
		// Oversubscribed pools pollute caches and grow working sets even
		// before every thread is runnable — the Pthreads-OS tax, also paid
		// by uncoordinated mechanisms (SEDA) whose per-stage pools sum past
		// the machine.
		base += s.model.OSBaseOverhead
	}
	c := float64(s.cfg.Contexts)
	d := float64(busyAfter)
	if d <= c {
		return base
	}
	over := d/c - 1
	return base * (d / c) * (1 + s.model.OSPenalty*over)
}

// stageService is stage i's per-item time under the current extents and
// placement: base time, forwarding cost scaled by the placement's locality
// multiplier, and coordination inflation.
func (s *pipeSim) stageService(i int) float64 {
	t := s.model.StageTimes[i]
	if i > 0 {
		m := 1.0
		if i < len(s.hopMult) {
			m = s.hopMult[i]
		}
		t += s.model.HopTime * m
	}
	if s.model.StageTypes[i] == core.PAR && s.extents[i] > 1 {
		t *= 1 + s.model.Sigma*float64(s.extents[i]-1)
	}
	return t
}

// fusedService is the fused task's per-item time at the given extent.
func (s *pipeSim) fusedService(extent int) float64 {
	t := s.model.FusedTime()
	if extent > 1 {
		t *= 1 + s.model.FusedSigma*float64(extent-1)
	}
	return t
}

// pump starts service wherever a stage has capacity and input; while an
// alternative switch is pending it instead waits for the drain barrier, and
// while a freeze window (ResizeCost/DrainCost) is open it waits for the
// evResume that closes it.
func (s *pipeSim) pump() {
	if s.pending != nil {
		if s.totalBusy() > 0 {
			return // drain barrier: let in-flight services finish
		}
		s.migrateQueues()
		s.setExtents(s.pending.alt, s.pending.extents)
		s.pending = nil
		s.drains++
		s.freeze(s.cfg.DrainCost)
	}
	if s.now < s.frozenUntil {
		return
	}
	for i := 0; i < s.nStages(); i++ {
		for s.busy[i] < s.capacityOf(i) && len(s.queues[i]) > 0 {
			s.queues[i] = s.queues[i][1:]
			arrival := s.itemAt[i][0]
			s.itemAt[i] = s.itemAt[i][1:]
			s.busy[i]++
			var t float64
			if s.alt == 1 {
				t = s.fusedService(s.extents[0])
			} else {
				t = s.stageService(i)
			}
			t *= s.contention(s.totalBusy())
			// The item's original arrival rides in the event's item field
			// as an index into the stash.
			id := s.stash(arrival)
			s.agenda.schedule(s.now+t, evCompletion, i, id)
		}
	}
}

// stash carries an item's original-arrival stamp through its service
// event; the returned id rides in the event's item field.
func (s *pipeSim) stash(arrival float64) int {
	s.stashed = append(s.stashed, arrival)
	return len(s.stashed) - 1
}

func (s *pipeSim) finishService(stage, id int) {
	arrival := s.stashed[id]
	s.busy[stage]--
	last := s.nStages() - 1
	if stage >= last {
		s.completed++
		s.lastAt = s.now
		if s.completed == s.cfg.Tasks/2 {
			s.halfAt = s.now
		}
		s.resp.Observe(s.now - arrival)
		s.respAll = append(s.respAll, s.now-arrival)
		if s.pmodel != nil {
			s.powerSum += s.pmodel.Watts(s.totalBusy())
			s.powerObs++
		}
		return
	}
	s.queues[stage+1] = append(s.queues[stage+1], s.now)
	s.itemAt[stage+1] = append(s.itemAt[stage+1], arrival)
}

// setExtents installs a configuration, resizing the busy bookkeeping.
func (s *pipeSim) setExtents(alt int, extents []int) {
	n := len(s.model.StageTimes)
	if alt == 1 {
		n = 1
	}
	e := make([]int, n)
	for i := range e {
		e[i] = 1
		if i < len(extents) && extents[i] > 0 {
			e[i] = extents[i]
		}
		if alt == 0 && s.model.StageTypes[i] == core.SEQ {
			e[i] = 1
		}
	}
	s.alt = alt
	s.extents = e
	s.hopMult = placementMultipliers(s.cfg.Topology, e, s.cfg.Placement,
		func(stage int, mult float64) float64 {
			if alt == 1 {
				return s.fusedService(e[0])
			}
			t := s.model.StageTimes[stage]
			if stage > 0 {
				t += s.model.HopTime * mult
			}
			if s.model.StageTypes[stage] == core.PAR && e[stage] > 1 {
				t *= 1 + s.model.Sigma*float64(e[stage]-1)
			}
			return t
		})
	if len(s.busy) < n {
		nb := make([]int, n)
		copy(nb, s.busy)
		s.busy = nb
	}
}

// freeze blocks new service starts for d simulated seconds and schedules
// the evResume that reopens the pumps. Overlapping freezes extend, never
// shorten, the window.
func (s *pipeSim) freeze(d float64) {
	if d <= 0 {
		return
	}
	until := s.now + d
	if until > s.frozenUntil {
		s.frozenUntil = until
	}
	s.agenda.schedule(until, evResume, 0, 0)
}

// control synthesizes a report and applies the mechanism's decision with
// the real executive's cost structure: extent-only changes resize in place
// (service keeps flowing, modulo ResizeCost) while alternative switches —
// and, under RespawnOnResize, every root change — pay the drain barrier in
// pump plus DrainCost.
func (s *pipeSim) control() {
	rep := s.report()
	newCfg := s.cfg.Mechanism.Reconfigure(rep)
	if newCfg == nil {
		return
	}
	newCfg.Normalize(s.model.Spec)
	switch {
	case s.pending != nil:
		// A switch is already in flight; update its target.
		if newCfg.Alt == s.alt && s.pending.alt == s.alt && !s.cfg.RespawnOnResize {
			s.pending = nil
			s.setExtents(newCfg.Alt, newCfg.Extents)
			s.resizes++
			s.freeze(s.cfg.ResizeCost)
		} else {
			s.pending = &pendingSwitch{alt: newCfg.Alt, extents: newCfg.Extents}
		}
		s.reconfs++
	case newCfg.Alt != s.alt:
		s.pending = &pendingSwitch{alt: newCfg.Alt, extents: newCfg.Extents}
		s.reconfs++
		s.pump()
	case !equalInts(newCfg.Extents, s.extents) && s.cfg.RespawnOnResize:
		// Legacy whole-nest respawn: even an extent change drains first.
		s.pending = &pendingSwitch{alt: newCfg.Alt, extents: newCfg.Extents}
		s.reconfs++
		s.pump()
	case !equalInts(newCfg.Extents, s.extents):
		s.setExtents(newCfg.Alt, newCfg.Extents)
		s.reconfs++
		s.resizes++
		s.freeze(s.cfg.ResizeCost)
		s.pump()
	}
}

// migrateQueues hands items stranded in intermediate queues to the new
// alternative's input — the explicit drain the real applications perform
// in their fused Make (work conservation across fusion switches).
func (s *pipeSim) migrateQueues() {
	for i := len(s.queues) - 1; i >= 1; i-- {
		if len(s.queues[i]) > 0 {
			s.queues[0] = append(s.queues[0], s.queues[i]...)
			s.itemAt[0] = append(s.itemAt[0], s.itemAt[i]...)
			s.queues[i] = nil
			s.itemAt[i] = nil
		}
	}
}

func (s *pipeSim) sample() {
	n := s.completed - s.lastSampN
	dt := s.now - s.lastSampT
	tp := 0.0
	if dt > 0 {
		tp = float64(n) / dt
	}
	pw := 0.0
	if s.pdu != nil {
		pw = s.pdu.Read()
	}
	te := 0
	for _, e := range s.extents {
		te += e
	}
	s.samples = append(s.samples, SamplePoint{Time: s.now, Throughput: tp, Power: pw, TotalExtent: te})
	s.lastSampN = s.completed
	s.lastSampT = s.now
}

// report synthesizes the core.Report for the active alternative.
func (s *pipeSim) report() *core.Report {
	spec := s.model.Spec
	cfg := &core.Config{Alt: s.alt, Extents: append([]int(nil), s.extents...)}
	cfg.Normalize(spec)
	alt := spec.Alt(s.alt)
	iters := uint64(s.completed + 100)
	stages := make([]core.StageReport, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		var t float64
		if s.alt == 1 {
			t = s.fusedService(s.extents[0])
		} else {
			t = s.stageService(i)
		}
		stages[i] = core.StageReport{
			Name: st.Name, Type: st.Type,
			Extent: s.extents[i], ExecTime: t, MeanExecTime: t,
			Load: float64(len(s.queues[i])), LoadInstances: 1,
			Iterations: iters,
			Rate:       float64(s.extents[i]) / t,
			Observed:   true,
		}
	}
	return &core.Report{
		Contexts:     s.cfg.Contexts,
		BusyContexts: s.totalBusy(),
		Features:     s.features,
		Config:       cfg,
		Root: &core.NestReport{
			Name: spec.Name, Path: spec.Name, Spec: spec,
			AltIndex: s.alt, AltName: alt.Name, Stages: stages,
		},
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

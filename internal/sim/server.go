package sim

import (
	"math"

	"dope/internal/core"
	"dope/internal/platform"
	"dope/internal/stats"
	"dope/internal/workload"
)

// ServerConfig parameterizes one server-simulation run.
type ServerConfig struct {
	// Contexts is the platform size (default 24).
	Contexts int
	// Tasks is how many transactions to run (the paper uses 500).
	Tasks int
	// LoadFactor is arrival rate / max throughput.
	LoadFactor float64
	// Seed drives the Poisson arrival stream.
	Seed int64
	// SizeJitter adds bounded multiplicative noise to per-task work (the
	// paper's workloads are roughly homogeneous; real video/file sizes
	// vary). 0 disables.
	SizeJitter float64
	// Mechanism adapts the configuration each ControlEvery seconds; nil
	// keeps the static configuration.
	Mechanism core.Mechanism
	// ControlEvery is the control-loop period in seconds (default 0.05).
	ControlEvery float64
	// OuterK and InnerM set the static/initial configuration: OuterK
	// concurrent transactions, each on InnerM contexts. InnerM <= 1 means
	// the fused sequential inner loop.
	OuterK, InnerM int
	// Oracle, when true, overrides the mechanism with clairvoyant per-job
	// DoP selection (Figure 2(c)'s oracle): at each job start the
	// simulator picks the inner extent minimizing that job's predicted
	// response time given the instantaneous queue.
	Oracle bool
	// OracleExtents are the inner extents the oracle chooses among
	// (default 1, 2, 4, 8, 16).
	OracleExtents []int
}

func (c *ServerConfig) defaults() {
	if c.Contexts <= 0 {
		c.Contexts = 24
	}
	if c.Tasks <= 0 {
		c.Tasks = workload.CalibrationTasks
	}
	if c.ControlEvery <= 0 {
		c.ControlEvery = 0.05
	}
	if c.OuterK <= 0 {
		c.OuterK = c.Contexts
	}
	if c.InnerM <= 0 {
		c.InnerM = 1
	}
	if len(c.OracleExtents) == 0 {
		c.OracleExtents = []int{1, 2, 4, 8, 16}
	}
}

// ServerResult is the outcome of one run.
type ServerResult struct {
	// MeanResponse, MeanWait, MeanExec are per-transaction seconds.
	MeanResponse float64
	MeanWait     float64
	MeanExec     float64
	// P95Response is the 95th percentile response time.
	P95Response float64
	// Throughput is completions per second over the busy period.
	Throughput float64
	// MaxThroughput is the calibration N/T with the current configuration
	// under saturation (all arrivals at time zero).
	MaxThroughput float64
	// Reconfigurations counts applied configuration changes.
	Reconfigurations int
}

// MaxThroughputOf calibrates the system's maximum sustainable throughput
// for a model at a given static configuration, following §8.2: N tasks
// enqueued at once, executed "in parallel (but executing each task itself
// sequentially)" for the load-factor definition (outerK = contexts,
// innerM = 1).
func MaxThroughputOf(m *ServerModel, contexts, tasks int) float64 {
	jobs := contexts // K concurrent sequential jobs
	if tasks < jobs {
		jobs = tasks
	}
	t := m.SeqTime * math.Ceil(float64(tasks)/float64(jobs))
	return float64(tasks) / t
}

// serverSim is the two-level server DES.
type serverSim struct {
	cfg    ServerConfig
	model  *ServerModel
	agenda *agenda
	now    float64

	queue     []float64 // arrival times of queued jobs
	running   int
	busyCtx   int
	sizes     *workload.Sizes
	arrivals  *workload.Arrivals
	arrived   int
	completed int

	outerK   int
	innerM   int
	innerAlt int // 0 = parallel, 1 = fused
	reconfs  int

	respWait stats.Welford
	respExec stats.Welford
	resp     stats.Welford
	respAll  []float64
	firstAt  float64
	lastAt   float64
	nextItem int
}

// RunServer simulates one operating point of a server application and
// returns its aggregate metrics.
func RunServer(model *ServerModel, cfg ServerConfig) ServerResult {
	cfg.defaults()
	maxTp := MaxThroughputOf(model, cfg.Contexts, cfg.Tasks)
	rate := workload.LoadFactor(cfg.LoadFactor).RateFor(maxTp)
	s := &serverSim{
		cfg:      cfg,
		model:    model,
		agenda:   newAgenda(),
		arrivals: workload.NewArrivals(rate, cfg.Seed),
		sizes:    workload.NewSizes(1.0, cfg.SizeJitter, cfg.Seed+1),
		outerK:   cfg.OuterK,
		innerM:   cfg.InnerM,
	}
	if cfg.InnerM <= 1 {
		s.innerAlt = 1
	}
	s.agenda.schedule(s.arrivals.Next().Seconds(), evArrival, 0, 0)
	if cfg.Mechanism != nil && !cfg.Oracle {
		s.agenda.schedule(cfg.ControlEvery, evControl, 0, 0)
	}
	s.loop()
	res := ServerResult{
		MeanResponse:     s.resp.Mean(),
		MeanWait:         s.respWait.Mean(),
		MeanExec:         s.respExec.Mean(),
		Throughput:       float64(s.completed) / math.Max(s.lastAt-s.firstAt, 1e-9),
		MaxThroughput:    maxTp,
		Reconfigurations: s.reconfs,
	}
	if p95, err := stats.Percentile(s.respAll, 95); err == nil {
		res.P95Response = p95
	}
	return res
}

func (s *serverSim) loop() {
	for !s.agenda.empty() {
		ev := s.agenda.next()
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			s.arrived++
			s.queue = append(s.queue, s.now)
			if s.arrived < s.cfg.Tasks {
				s.agenda.schedule(s.now+s.arrivals.Next().Seconds(), evArrival, 0, 0)
			}
			s.tryStart()
		case evCompletion:
			s.running--
			s.busyCtx -= ev.stage // stage field carries the job's context count
			s.completed++
			s.lastAt = s.now
			s.tryStart()
		case evControl:
			s.control()
			if s.completed < s.cfg.Tasks {
				s.agenda.schedule(s.now+s.cfg.ControlEvery, evControl, 0, 0)
			}
		}
	}
}

// effectiveK caps concurrency by context feasibility.
func (s *serverSim) effectiveK(m int) int {
	k := s.outerK
	if m < 1 {
		m = 1
	}
	if byCtx := s.cfg.Contexts / m; k > byCtx {
		k = byCtx
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (s *serverSim) tryStart() {
	for len(s.queue) > 0 {
		m := s.innerM
		if s.innerAlt == 1 {
			m = 1
		}
		if s.cfg.Oracle {
			m = s.oracleChoice()
		}
		if s.running >= s.effectiveK(m) {
			return
		}
		arrival := s.queue[0]
		s.queue = s.queue[1:]
		exec := s.model.ExecTime(m) * s.sizes.Next()
		wait := s.now - arrival
		s.respWait.Observe(wait)
		s.respExec.Observe(exec)
		s.resp.Observe(wait + exec)
		s.respAll = append(s.respAll, wait+exec)
		if s.completed == 0 && s.running == 0 && s.firstAt == 0 {
			s.firstAt = arrival
		}
		s.running++
		s.busyCtx += m
		s.nextItem++
		s.agenda.schedule(s.now+exec, evCompletion, m, s.nextItem)
	}
}

// oracleChoice picks the inner extent minimizing this job's predicted
// response time given the queue it would leave behind — the clairvoyant
// policy of Figure 2(c): light queue → latency-optimal wide DoP, heavy
// queue → throughput-optimal sequential DoP. Being an oracle, it knows the
// arrival rate: configurations that cannot sustain the offered load are
// only allowed while the system is effectively idle, because choosing them
// under pressure trades away capacity the arrivals will reclaim with
// interest.
func (s *serverSim) oracleChoice() int {
	q := float64(len(s.queue))
	lambda := s.arrivals.Rate()
	best, bestCost := 1, math.Inf(1)
	for _, m := range s.cfg.OracleExtents {
		if m > s.cfg.Contexts {
			continue
		}
		exec := s.model.ExecTime(m)
		k := float64(s.effectiveK(m))
		tput := k / exec
		if tput < lambda && q >= 2 {
			continue // unsustainable and the backlog is already visible
		}
		// Predicted response: own execution plus the queue draining ahead
		// at the configuration's throughput (Equation 1).
		cost := exec + q/tput
		if cost < bestCost {
			best, bestCost = m, cost
		}
	}
	return best
}

// control synthesizes a report, consults the mechanism, and applies the
// returned configuration.
func (s *serverSim) control() {
	rep := s.report()
	newCfg := s.cfg.Mechanism.Reconfigure(rep)
	if newCfg == nil {
		return
	}
	newCfg.Normalize(s.model.Spec)
	k := newCfg.Extents[0]
	inner := newCfg.Child(s.model.InnerName)
	alt := 0
	m := 1
	if inner != nil {
		alt = inner.Alt
		m = 0
		for _, e := range inner.Extents {
			m += e
		}
	}
	if k != s.outerK || m != s.innerM || alt != s.innerAlt {
		s.outerK, s.innerM, s.innerAlt = k, m, alt
		s.reconfs++
	}
}

// report synthesizes the core.Report a real executive would produce.
func (s *serverSim) report() *core.Report {
	spec := s.model.Spec
	innerSpec := spec.Alts[0].Stages[0].Nest
	cfg := core.DefaultConfig(spec)
	cfg.Extents[0] = s.outerK
	innerCfg := cfg.Child(s.model.InnerName)
	innerCfg.Alt = s.innerAlt

	iters := uint64(s.completed + 100)
	exec := s.model.ExecTime(s.innerM)

	var innerStages []core.StageReport
	alt := innerSpec.Alt(s.innerAlt)
	innerCfg.Extents = make([]int, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		t := s.model.SeqTime
		if s.innerAlt == 0 && i < len(s.model.InnerStageTimes) {
			t = s.model.InnerStageTimes[i]
		}
		extent := 1
		if st.Type == core.PAR && s.innerAlt == 0 {
			extent = s.innerM - (len(alt.Stages) - 1)
			if extent < 1 {
				extent = 1
			}
		}
		innerCfg.Extents[i] = extent
		innerStages = append(innerStages, core.StageReport{
			Name: st.Name, Type: st.Type, MinDoP: st.MinDoP, MaxDoP: st.MaxDoP,
			Extent: extent, ExecTime: t, MeanExecTime: t, Iterations: iters,
		})
	}
	return &core.Report{
		Contexts:     s.cfg.Contexts,
		BusyContexts: s.busyCtx,
		Features:     platform.NewFeatures(),
		Config:       cfg,
		Root: &core.NestReport{
			Name: spec.Name, Path: spec.Name, Spec: spec,
			AltIndex: 0, AltName: "outer",
			Stages: []core.StageReport{{
				Name: "serve", Type: core.PAR, HasNest: true,
				Extent: s.outerK, ExecTime: exec, MeanExecTime: exec,
				Load: float64(len(s.queue)), LoadInstances: 1, Iterations: iters,
			}},
			Children: map[string]*core.NestReport{
				s.model.InnerName: {
					Name: s.model.InnerName, Path: spec.Name + "/" + s.model.InnerName,
					Spec: innerSpec, AltIndex: s.innerAlt, AltName: alt.Name,
					Stages: innerStages,
				},
			},
		},
	}
}

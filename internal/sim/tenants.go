package sim

import (
	"math"
	"math/rand"

	"dope/internal/stats"
	"dope/internal/workload"
)

// TenantClass describes one tenant of a multi-tenant sweep: its share of
// the machine and its (possibly misbehaving) workload.
type TenantClass struct {
	// Name identifies the tenant; Goal is a display label for the
	// tenant's objective ("latency", "batch", ...).
	Name string
	Goal string
	// Weight is the tenant's fair-share weight and Min its guaranteed
	// context floor; Max caps its grant (0 = the whole pool).
	Weight int
	Min    int
	Max    int
	// Rate is the offered arrival rate in jobs/second. Callers size it
	// against Min/Exec so the same stream means the same pressure whether
	// the tenant runs solo or shares the machine.
	Rate float64
	// Exec is the sequential per-job service time in seconds (each job
	// occupies one context).
	Exec float64
	// PanicRate is the fraction of started jobs that abort mid-service
	// and retry (the injected misbehavior); the aborted attempt's context
	// time is wasted, the job keeps its arrival stamp.
	PanicRate float64
	// QueueCap bounds the tenant's arrival queue: arrivals beyond it are
	// shed (drop-newest). 0 = unbounded.
	QueueCap int
}

// TenantsConfig parameterizes one multi-tenant run.
type TenantsConfig struct {
	// Contexts is the shared pool size (default 24).
	Contexts int
	// Tasks is how many jobs arrive per tenant (default 500).
	Tasks int
	// Seed drives the Poisson arrival streams and panic coins.
	Seed int64
	// ControlEvery is the arbiter tick period in seconds (default 0.05).
	ControlEvery float64
	// Arbitrated selects quota arbitration (weighted fair share with
	// work-conserving redistribution, mirroring tenancy.Arbiter). False
	// simulates a free-for-all: every tenant races for the shared pool
	// FIFO by arrival time, with no quotas.
	Arbitrated bool
	// Classes are the tenants.
	Classes []TenantClass
}

func (c *TenantsConfig) defaults() {
	if c.Contexts <= 0 {
		c.Contexts = 24
	}
	if c.Tasks <= 0 {
		c.Tasks = 500
	}
	if c.ControlEvery <= 0 {
		c.ControlEvery = 0.05
	}
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	Name      string
	Goal      string
	Completed int
	Shed      int
	Panics    int
	// MeanResp and P99 are response times (arrival to successful
	// completion, retries included) in seconds.
	MeanResp float64
	P99      float64
	// Throughput is completions/second over the tenant's busy period.
	Throughput float64
	// MeanQuota is the tenant's mean granted quota across arbiter ticks
	// (= Contexts when unarbitrated).
	MeanQuota float64
}

// simTenant is one tenant's live state.
type simTenant struct {
	class    TenantClass
	arrivals *workload.Arrivals
	coin     *rand.Rand
	queue    []float64 // arrival times of queued jobs
	retries  []float64 // arrival stamps of in-flight aborted attempts (FIFO: abort delay is constant per tenant)
	running  int
	quota    int
	arrived  int
	complete int
	shed     int
	panics   int
	respAll  []float64
	firstAt  float64
	lastAt   float64
	quotaSum float64
	quotaN   int
}

// demand mirrors the real arbiter's signal: work in flight plus backlog.
func (t *simTenant) demand() int { return t.running + len(t.queue) }

// tenantsSim is the multi-tenant DES.
type tenantsSim struct {
	cfg    TenantsConfig
	agenda *agenda
	now    float64
	tens   []*simTenant
	busy   int
}

// RunTenants simulates N tenants sharing one context pool and returns
// per-tenant outcomes in class order. With Arbitrated set it reproduces the
// tenancy arbiter's quota lattice (floors, weighted water-fill of demand,
// work-conserving surplus); without it the tenants race FIFO for the bare
// pool, which is the baseline the isolation figure is measured against.
func RunTenants(cfg TenantsConfig) []TenantResult {
	cfg.defaults()
	s := &tenantsSim{cfg: cfg, agenda: newAgenda()}
	for i, cl := range cfg.Classes {
		if cl.Max <= 0 {
			cl.Max = cfg.Contexts
		}
		t := &simTenant{
			class:    cl,
			arrivals: workload.NewArrivals(cl.Rate, cfg.Seed+int64(i)*101),
			coin:     rand.New(rand.NewSource(cfg.Seed + int64(i)*977 + 13)),
			quota:    cfg.Contexts,
		}
		s.tens = append(s.tens, t)
		s.agenda.schedule(t.arrivals.Next().Seconds(), evArrival, i, 0)
	}
	if cfg.Arbitrated {
		s.rebalance()
		s.agenda.schedule(cfg.ControlEvery, evControl, 0, 0)
	}
	s.loop()
	out := make([]TenantResult, len(s.tens))
	for i, t := range s.tens {
		r := TenantResult{
			Name: t.class.Name, Goal: t.class.Goal,
			Completed: t.complete, Shed: t.shed, Panics: t.panics,
			MeanQuota: float64(s.cfg.Contexts),
		}
		if n := len(t.respAll); n > 0 {
			sum := 0.0
			for _, v := range t.respAll {
				sum += v
			}
			r.MeanResp = sum / float64(n)
			if p99, err := stats.Percentile(t.respAll, 99); err == nil {
				r.P99 = p99
			}
			r.Throughput = float64(t.complete) / math.Max(t.lastAt-t.firstAt, 1e-9)
		}
		if t.quotaN > 0 {
			r.MeanQuota = t.quotaSum / float64(t.quotaN)
		}
		out[i] = r
	}
	return out
}

func (s *tenantsSim) loop() {
	for !s.agenda.empty() {
		ev := s.agenda.next()
		s.now = ev.at
		switch ev.kind {
		case evArrival:
			t := s.tens[ev.stage]
			t.arrived++
			if t.class.QueueCap > 0 && len(t.queue) >= t.class.QueueCap {
				t.shed++
			} else {
				if t.firstAt == 0 && t.complete == 0 {
					t.firstAt = s.now
				}
				t.queue = append(t.queue, s.now)
			}
			if t.arrived < s.cfg.Tasks {
				s.agenda.schedule(s.now+t.arrivals.Next().Seconds(), evArrival, ev.stage, 0)
			}
			s.tryStart()
		case evCompletion:
			t := s.tens[ev.stage]
			t.running--
			s.busy--
			if ev.item == 1 { // aborted attempt: retry with the original stamp
				t.panics++
				stamp := t.retries[0]
				t.retries = t.retries[1:]
				t.queue = append([]float64{stamp}, t.queue...)
			}
			s.tryStart()
		case evControl:
			s.rebalance()
			if !s.done() {
				s.agenda.schedule(s.now+s.cfg.ControlEvery, evControl, 0, 0)
			}
		}
	}
}

func (s *tenantsSim) done() bool {
	for _, t := range s.tens {
		if t.arrived < s.cfg.Tasks || t.complete+t.shed < t.arrived {
			return false
		}
	}
	return true
}

// mayStart applies the admission rule of the selected regime.
func (s *tenantsSim) mayStart(t *simTenant) bool {
	if len(t.queue) == 0 || s.busy >= s.cfg.Contexts {
		return false
	}
	if s.cfg.Arbitrated {
		return t.running < t.quota
	}
	return true
}

// tryStart drains every runnable queue. Under the free-for-all the next job
// is the globally oldest arrival (FIFO over the bare pool); under
// arbitration each tenant runs against its own quota, so the pick order
// does not matter.
func (s *tenantsSim) tryStart() {
	for {
		var pick *simTenant
		pickIdx := -1
		for i, t := range s.tens {
			if !s.mayStart(t) {
				continue
			}
			if pick == nil || t.queue[0] < pick.queue[0] {
				pick, pickIdx = t, i
			}
		}
		if pick == nil {
			return
		}
		arrival := pick.queue[0]
		pick.queue = pick.queue[1:]
		pick.running++
		s.busy++
		if pick.class.PanicRate > 0 && pick.coin.Float64() < pick.class.PanicRate {
			// The attempt panics halfway through: the context time is
			// burned, the item retries with its original arrival stamp.
			pick.retries = append(pick.retries, arrival)
			s.agenda.schedule(s.now+pick.class.Exec*0.5, evCompletion, pickIdx, 1)
			continue
		}
		resp := s.now + pick.class.Exec - arrival
		s.agenda.schedule(s.now+pick.class.Exec, evCompletion, pickIdx, 0)
		pick.respAll = append(pick.respAll, resp)
		pick.complete++
		pick.lastAt = s.now + pick.class.Exec
	}
}

// rebalance mirrors tenancy.Arbiter's quota lattice: guaranteed floors,
// then a weighted max-min water-fill of demand, then work-conserving
// redistribution of whatever is left to any tenant below its cap.
func (s *tenantsSim) rebalance() {
	n := s.cfg.Contexts
	grants := make([]int, len(s.tens))
	left := n
	for i, t := range s.tens {
		g := t.class.Min
		if g > n {
			g = n
		}
		grants[i] = g
		left -= g
	}
	fill := func(eligible func(i int) bool) {
		for left > 0 {
			best := -1
			var bestKey float64
			for i, t := range s.tens {
				if !eligible(i) {
					continue
				}
				key := float64(grants[i]) / float64(t.class.Weight)
				if best == -1 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best == -1 {
				return
			}
			grants[best]++
			left--
		}
	}
	// Demand phase: only tenants whose demand exceeds their grant.
	fill(func(i int) bool {
		t := s.tens[i]
		return grants[i] < t.class.Max && grants[i] < t.demand()
	})
	// Surplus phase: park the rest under the caps, weight-proportionally.
	fill(func(i int) bool { return grants[i] < s.tens[i].class.Max })
	for i, t := range s.tens {
		t.quota = grants[i]
		t.quotaSum += float64(grants[i])
		t.quotaN++
	}
}

// Package queue provides the concurrent FIFO queues that connect DoPE tasks.
//
// In the paper, adjacent pipeline stages communicate through work queues and
// each task's LoadCB reports the occupancy of its in-queue (Figure 7,
// TranscodeLoadCB et al.). Reconfiguration drains pipelines by propagating a
// sentinel through these queues (the ReadFiniCB/TransformFiniCB pattern).
// This package reproduces those semantics:
//
//   - blocking Enqueue/Dequeue with optional capacity bound,
//   - O(1) Len usable as a LoadCB without taking the queue lock contended by
//     producers and consumers (an atomic occupancy counter),
//   - Close, which wakes all blocked consumers — the moral equivalent of the
//     sentinel NULL token, but race-free for multi-consumer stages,
//   - occupancy statistics (peak, enqueue/dequeue counts) for the monitors.
package queue

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/stats"
)

// sojournAlpha smooths the queue-sojourn EWMA. Sojourn is a per-item signal
// read at control-tick granularity, so it smooths a little harder than the
// monitor's default.
const sojournAlpha = 0.2

// ErrClosed is returned by Enqueue on a closed queue and by Dequeue once a
// closed queue is fully drained.
var ErrClosed = errors.New("queue: closed")

// ErrShed is returned by Enqueue on a full ShedNewest queue: the offered
// item was dropped (and counted) instead of blocking the producer. It is an
// overload signal, not a failure; producers typically keep going.
var ErrShed = errors.New("queue: item shed")

// OverloadPolicy selects what a bounded queue does when an enqueue arrives
// while it is full. Block is the paper's behavior — backpressure propagates
// upstream through the blocked producer. The shed policies trade work for
// latency: the queue never blocks a producer, so under sustained overload
// the stage's sojourn time stays bounded by capacity/service-rate while the
// shed counter records the deficit.
type OverloadPolicy int

const (
	// Block makes Enqueue wait for space (the default; backpressure).
	Block OverloadPolicy = iota
	// ShedOldest drops the queue head to admit the new item — freshest-work
	// wins, fitting servers where stale requests have already timed out
	// upstream.
	ShedOldest
	// ShedNewest drops the offered item — admitted work is never wasted,
	// fitting pipelines where upstream stages have already invested in the
	// queued items.
	ShedNewest
)

// String returns the policy's conventional name.
func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case ShedOldest:
		return "shed-oldest"
	case ShedNewest:
		return "shed-newest"
	default:
		return "invalid"
	}
}

// Queue is a FIFO of items of type T, safe for any number of concurrent
// producers and consumers. A capacity of 0 means unbounded.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	items    []T
	capacity int
	policy   OverloadPolicy
	closed   bool
	// wakeCh, when non-nil, is closed to wake DequeueWhile waiters on
	// enqueue/close. It is created lazily by the first waiter so queues
	// without DequeueWhile consumers pay nothing per enqueue.
	//
	// Wakeup audit: every path that makes an item (or closure) observable —
	// Enqueue, TryEnqueue, the shed-oldest swap, and Close — must call
	// wakeLocked before releasing q.mu, or a DequeueWhile waiter sleeps a
	// full poll period on work that is already there. Dequeue-side
	// transitions (occupancy dropping) deliberately do not wake: waiters
	// wait for items, and predicates that watch occupancy fall are served
	// by the poll timeout. TestBoundedEnqueueWakesDequeueWhile is the
	// regression test for the enqueue side.
	wakeCh chan struct{}

	// Sojourn tracking: stamps mirrors items (each element's enqueue time in
	// UnixNano) and every dequeue folds the item's wait into the EWMA.
	// Shed items — the head dropped by ShedOldest, the newcomer refused by
	// ShedNewest — are deliberately NOT folded: they never received service,
	// and counting their waits would let survivorship skew the estimate the
	// what-if profiler reads (under shed-oldest the longest waiters are
	// exactly the ones dropped, so folding them would overstate the sojourn
	// of the work that actually flowed — and folding the refused newcomers'
	// zero waits would understate it). nowFn is the injectable clock for
	// tests and simulations.
	stamps     []int64
	nowFn      func() int64
	sojourn    *stats.EWMA
	sojournObs uint64

	occupancy atomic.Int64 // mirrors len(items) for lock-free Len
	enqueued  atomic.Uint64
	dequeued  atomic.Uint64
	shed      atomic.Uint64
	peak      atomic.Int64
}

// New returns an empty queue. capacity <= 0 means unbounded.
func New[T any](capacity int) *Queue[T] {
	return NewWithPolicy[T](capacity, Block)
}

// NewWithPolicy returns an empty queue with the given overload policy. The
// policy only matters for bounded queues; an unbounded queue never sheds.
func NewWithPolicy[T any](capacity int, policy OverloadPolicy) *Queue[T] {
	q := &Queue[T]{capacity: capacity, policy: policy}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Policy returns the queue's overload policy.
func (q *Queue[T]) Policy() OverloadPolicy {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy
}

// Enqueue appends item. On a full bounded queue the overload policy
// decides: Block waits for space (returning ErrClosed if the queue closes
// while waiting), ShedOldest drops the queue head to admit the item, and
// ShedNewest drops the offered item and returns ErrShed.
func (q *Queue[T]) Enqueue(item T) error {
	q.mu.Lock()
	if q.policy == Block {
		for q.capacity > 0 && len(q.items) >= q.capacity && !q.closed {
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.capacity > 0 && len(q.items) >= q.capacity {
		switch q.policy {
		case ShedNewest:
			q.shed.Add(1)
			q.mu.Unlock()
			return ErrShed
		case ShedOldest:
			var zero T
			q.items[0] = zero
			q.items = q.items[1:]
			// Drop the head's stamp without folding it into the sojourn
			// EWMA: a shed item was never served, and its (maximal) wait
			// would skew the survivor estimate. See the stamps field doc.
			q.stamps = q.stamps[1:]
			q.shed.Add(1)
		}
	}
	q.items = append(q.items, item)
	q.stamps = append(q.stamps, q.nowNanosLocked())
	n := int64(len(q.items))
	q.occupancy.Store(n)
	for {
		p := q.peak.Load()
		if n <= p || q.peak.CompareAndSwap(p, n) {
			break
		}
	}
	q.enqueued.Add(1)
	q.notEmpty.Signal()
	q.wakeLocked()
	q.mu.Unlock()
	return nil
}

// wakeLocked wakes all DequeueWhile waiters. Called with q.mu held.
func (q *Queue[T]) wakeLocked() {
	if q.wakeCh != nil {
		close(q.wakeCh)
		q.wakeCh = nil
	}
}

// TryEnqueue appends item without blocking. It reports false when the queue
// is full, and ErrClosed when closed.
func (q *Queue[T]) TryEnqueue(item T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.capacity > 0 && len(q.items) >= q.capacity {
		return false, nil
	}
	q.items = append(q.items, item)
	q.stamps = append(q.stamps, q.nowNanosLocked())
	n := int64(len(q.items))
	q.occupancy.Store(n)
	for {
		p := q.peak.Load()
		if n <= p || q.peak.CompareAndSwap(p, n) {
			break
		}
	}
	q.enqueued.Add(1)
	q.notEmpty.Signal()
	q.wakeLocked()
	return true, nil
}

// Dequeue removes and returns the oldest item, blocking while the queue is
// empty. Once the queue is closed and drained it returns ErrClosed.
func (q *Queue[T]) Dequeue() (T, error) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if len(q.items) == 0 { // closed and drained
		q.mu.Unlock()
		return zero, ErrClosed
	}
	item := q.items[0]
	q.items[0] = zero // allow GC of the element
	q.items = q.items[1:]
	q.observeSojournLocked(q.stamps[0])
	q.stamps = q.stamps[1:]
	q.occupancy.Store(int64(len(q.items)))
	q.dequeued.Add(1)
	q.notFull.Signal()
	q.mu.Unlock()
	return item, nil
}

// TryDequeue removes and returns the oldest item without blocking. The bool
// reports whether an item was returned; err is ErrClosed only when the queue
// is closed and drained.
func (q *Queue[T]) TryDequeue() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.items) == 0 {
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	item := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	q.observeSojournLocked(q.stamps[0])
	q.stamps = q.stamps[1:]
	q.occupancy.Store(int64(len(q.items)))
	q.dequeued.Add(1)
	q.notFull.Signal()
	return item, true, nil
}

// DequeueWhile dequeues like Dequeue but gives up when keepWaiting returns
// false. While the queue is empty it blocks on an enqueue/close wakeup
// channel rather than busy-polling; poll is only the re-check period for
// keepWaiting (the executive's suspension/retirement flag is not wired to
// the queue, so it must be observed by timeout). The bool reports whether
// an item was returned; err is ErrClosed when the queue is closed and
// drained. DoPE task functors use this to block for work while remaining
// responsive to the executive's reconfiguration requests.
func (q *Queue[T]) DequeueWhile(keepWaiting func() bool, poll time.Duration) (T, bool, error) {
	if poll <= 0 {
		poll = time.Millisecond
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		item, ok, err := q.TryDequeue()
		if ok || err != nil {
			return item, ok, err
		}
		if !keepWaiting() {
			var zero T
			return zero, false, nil
		}
		wake := q.dequeueWait()
		if wake == nil { // item or closure appeared since TryDequeue
			continue
		}
		if timer == nil {
			timer = time.NewTimer(poll)
		} else {
			timer.Reset(poll)
		}
		select {
		case <-wake:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
	}
}

// dequeueWait returns a channel closed at the next enqueue or Close, or nil
// when the queue already has items (or is closed) and the caller should
// retry immediately.
func (q *Queue[T]) dequeueWait() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) > 0 || q.closed {
		return nil
	}
	if q.wakeCh == nil {
		q.wakeCh = make(chan struct{})
	}
	return q.wakeCh
}

// Close marks the queue closed. Blocked producers fail with ErrClosed;
// consumers drain remaining items and then receive ErrClosed. Closing twice
// is harmless.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.wakeLocked()
	q.mu.Unlock()
}

// Reopen clears the closed flag so the queue can be reused after a DoPE
// reconfiguration (the InitCB path). Items still in the queue are preserved.
func (q *Queue[T]) Reopen() {
	q.mu.Lock()
	q.closed = false
	q.mu.Unlock()
}

// Closed reports whether Close has been called (and not undone by Reopen).
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Len returns the instantaneous occupancy without locking; it is the
// intended implementation for a task's LoadCB.
func (q *Queue[T]) Len() int { return int(q.occupancy.Load()) }

// Peak returns the highest occupancy ever observed.
func (q *Queue[T]) Peak() int { return int(q.peak.Load()) }

// Enqueued returns the total number of successful Enqueue operations.
func (q *Queue[T]) Enqueued() uint64 { return q.enqueued.Load() }

// Dequeued returns the total number of successful Dequeue operations.
func (q *Queue[T]) Dequeued() uint64 { return q.dequeued.Load() }

// Shed returns the total number of items dropped by the overload policy.
func (q *Queue[T]) Shed() uint64 { return q.shed.Load() }

// nowNanosLocked reads the queue's clock. Callers hold q.mu (nowFn is written by
// SetNowFunc before the queue is shared).
func (q *Queue[T]) nowNanosLocked() int64 {
	if q.nowFn != nil {
		return q.nowFn()
	}
	return time.Now().UnixNano()
}

// observeSojournLocked folds one dequeued item's wait into the sojourn EWMA.
// Callers hold q.mu. Only served items reach here; the shed paths bypass it
// by construction (see the stamps field doc).
func (q *Queue[T]) observeSojournLocked(enqueuedAt int64) {
	d := q.nowNanosLocked() - enqueuedAt
	if d < 0 {
		d = 0
	}
	if q.sojourn == nil {
		q.sojourn = stats.NewEWMA(sojournAlpha)
	}
	q.sojourn.Observe(float64(d) / 1e9)
	q.sojournObs++
}

// SetNowFunc installs a clock for sojourn stamps (UnixNano). Pass nil to
// restore the wall clock. Intended for tests and virtual-time simulations;
// call before the queue is shared between goroutines.
func (q *Queue[T]) SetNowFunc(now func() int64) {
	q.mu.Lock()
	q.nowFn = now
	q.mu.Unlock()
}

// MeanSojourn returns the smoothed queue wait in seconds of items that were
// actually dequeued for service. Items dropped by a shed policy do not
// contribute: under shed-oldest the longest waiters are exactly the dropped
// ones, and folding them in would overstate the sojourn of the surviving
// flow (and hence the apparent payoff of speeding up an overloaded stage).
// Returns 0 before the first dequeue; check SojournSamples to distinguish
// "fast" from "no data".
func (q *Queue[T]) MeanSojourn() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.sojourn == nil {
		return 0
	}
	return q.sojourn.Value()
}

// SojournSamples returns how many dequeued items have contributed to
// MeanSojourn.
func (q *Queue[T]) SojournSamples() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sojournObs
}

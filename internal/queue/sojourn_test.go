package queue

import (
	"math"
	"testing"
	"time"
)

// TestSojournBasic pins the plain sojourn estimate: with a virtual clock and
// constant waits the EWMA is exact.
func TestSojournBasic(t *testing.T) {
	q := New[int](0)
	var now int64
	q.SetNowFunc(func() int64 { return now })

	if q.MeanSojourn() != 0 || q.SojournSamples() != 0 {
		t.Fatal("fresh queue must report no sojourn data")
	}
	for i := 0; i < 5; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
		now += int64(7 * time.Millisecond)
		if _, err := q.Dequeue(); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.MeanSojourn(); math.Abs(got-0.007) > 1e-9 {
		t.Fatalf("mean sojourn = %v, want 0.007", got)
	}
	if q.SojournSamples() != 5 {
		t.Fatalf("samples = %d, want 5", q.SojournSamples())
	}
}

// TestSojournTryPathsKeepStampsAligned drives the Try* paths and mixed
// successes/refusals to check the stamp slice never desynchronizes from the
// items.
func TestSojournTryPathsKeepStampsAligned(t *testing.T) {
	q := New[int64](2)
	var now int64
	q.SetNowFunc(func() int64 { return now })

	for round := 0; round < 50; round++ {
		now += int64(time.Millisecond)
		if ok, _ := q.TryEnqueue(now); !ok && q.Len() < 2 {
			t.Fatal("try-enqueue refused a non-full queue")
		}
		if round%3 == 2 {
			now += int64(time.Millisecond)
			v, ok, _ := q.TryDequeue()
			if !ok {
				t.Fatal("try-dequeue found empty queue mid-stream")
			}
			if now-v <= 0 {
				t.Fatalf("non-positive wait for item stamped %d at %d", v, now)
			}
		}
	}
	// Drain: every remaining item's stamp must match its value.
	for {
		v, ok, _ := q.TryDequeue()
		if !ok {
			break
		}
		if v <= 0 || v > now {
			t.Fatalf("desynchronized stamp %d", v)
		}
	}
}

// TestSojournExcludesShedOldest is the 2×-overload regression test for the
// survivorship bugfix. Arrivals at twice the service rate into a shed-oldest
// queue of capacity 4 reach a deterministic steady state where survivors
// wait exactly 15 ms and the dropped heads 20 ms. The estimate must track
// the survivors (~15 ms); an implementation that folds shed items into the
// sojourn would settle near the interleaved mix (~17.5 ms) and overstate the
// overloaded stage's queueing — exactly the skew the what-if profiler must
// not see.
func TestSojournExcludesShedOldest(t *testing.T) {
	q := NewWithPolicy[int64](4, ShedOldest)
	var now int64
	q.SetNowFunc(func() int64 { return now })

	shadow := make([]int64, 0, 4)
	var servedTail, droppedTail float64
	step := int64(5 * time.Millisecond)
	for i := 0; i < 400; i++ {
		now += step
		if len(shadow) == 4 { // the enqueue below will shed the head
			droppedTail = float64(now-shadow[0]) / 1e9
			shadow = shadow[1:]
		}
		if err := q.Enqueue(now); err != nil {
			t.Fatal(err)
		}
		shadow = append(shadow, now)
		if i%2 == 1 { // service at half the arrival rate
			v, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if v != shadow[0] {
				t.Fatalf("queue served %d, shadow expected %d", v, shadow[0])
			}
			servedTail = float64(now-v) / 1e9
			shadow = shadow[1:]
		}
	}
	if q.Shed() == 0 {
		t.Fatal("2x overload on a shed-oldest queue must shed")
	}
	if math.Abs(servedTail-0.015) > 1e-9 || math.Abs(droppedTail-0.020) > 1e-9 {
		t.Fatalf("steady state drifted: served %v dropped %v", servedTail, droppedTail)
	}
	got := q.MeanSojourn()
	if math.Abs(got-servedTail) > 0.002 {
		t.Fatalf("sojourn = %v, want ~%v (survivors only)", got, servedTail)
	}
	if got >= droppedTail {
		t.Fatalf("sojourn %v reached the shed items' wait %v: survivorship skew", got, droppedTail)
	}
}

// TestSojournExcludesShedNewest: same 2× overload against shed-newest. The
// refused newcomers never enter the queue, so their zero waits must not drag
// the estimate down; survivors wait a full queue of service slots.
func TestSojournExcludesShedNewest(t *testing.T) {
	q := NewWithPolicy[int64](4, ShedNewest)
	var now int64
	q.SetNowFunc(func() int64 { return now })

	shadow := make([]int64, 0, 4)
	var servedTail float64
	shed := 0
	step := int64(5 * time.Millisecond)
	for i := 0; i < 400; i++ {
		now += step
		err := q.Enqueue(now)
		switch err {
		case nil:
			shadow = append(shadow, now)
		case ErrShed:
			shed++
		default:
			t.Fatal(err)
		}
		if i%2 == 1 {
			v, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if v != shadow[0] {
				t.Fatalf("queue served %d, shadow expected %d", v, shadow[0])
			}
			servedTail = float64(now-v) / 1e9
			shadow = shadow[1:]
		}
	}
	if shed == 0 || q.Shed() != uint64(shed) {
		t.Fatalf("shed accounting: test saw %d, queue says %d", shed, q.Shed())
	}
	got := q.MeanSojourn()
	if math.Abs(got-servedTail) > 0.004 {
		t.Fatalf("sojourn = %v, want ~%v (served items only)", got, servedTail)
	}
	if got < servedTail/2 {
		t.Fatalf("sojourn %v collapsed below the served wait %v: refused items leaked in", got, servedTail)
	}
}

package queue

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](0)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		v, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("got %d, want %d", v, i)
		}
	}
}

func TestLenTracksOccupancy(t *testing.T) {
	q := New[string](0)
	if q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Dequeue()
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Peak() != 2 {
		t.Fatalf("peak = %d", q.Peak())
	}
}

func TestCloseWakesConsumers(t *testing.T) {
	q := New[int](0)
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := q.Dequeue()
			done <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("consumer not woken by Close")
		}
	}
}

func TestCloseDrainsBeforeErr(t *testing.T) {
	q := New[int](0)
	q.Enqueue(1)
	q.Enqueue(2)
	q.Close()
	if v, err := q.Dequeue(); err != nil || v != 1 {
		t.Fatalf("got %v, %v", v, err)
	}
	if v, err := q.Dequeue(); err != nil || v != 2 {
		t.Fatalf("got %v, %v", v, err)
	}
	if _, err := q.Dequeue(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnqueueAfterCloseFails(t *testing.T) {
	q := New[int](0)
	q.Close()
	if err := q.Enqueue(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := q.TryEnqueue(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoundedBlocksProducer(t *testing.T) {
	q := New[int](1)
	q.Enqueue(1)
	ok, err := q.TryEnqueue(2)
	if err != nil || ok {
		t.Fatalf("TryEnqueue on full queue: ok=%v err=%v", ok, err)
	}
	released := make(chan struct{})
	go func() {
		q.Enqueue(2) // blocks until a slot frees
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("producer should be blocked")
	case <-time.After(10 * time.Millisecond):
	}
	q.Dequeue()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("producer never released")
	}
}

func TestCloseWakesBlockedProducer(t *testing.T) {
	q := New[int](1)
	q.Enqueue(1)
	errc := make(chan error, 1)
	go func() {
		errc <- q.Enqueue(2)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("producer not woken")
	}
}

func TestTryDequeue(t *testing.T) {
	q := New[int](0)
	if _, ok, err := q.TryDequeue(); ok || err != nil {
		t.Fatal("empty open queue should return (zero,false,nil)")
	}
	q.Enqueue(7)
	v, ok, err := q.TryDequeue()
	if !ok || err != nil || v != 7 {
		t.Fatalf("got %v %v %v", v, ok, err)
	}
	q.Close()
	if _, ok, err := q.TryDequeue(); ok || !errors.Is(err, ErrClosed) {
		t.Fatal("drained closed queue should return ErrClosed")
	}
}

func TestReopen(t *testing.T) {
	q := New[int](0)
	q.Close()
	if !q.Closed() {
		t.Fatal("should be closed")
	}
	q.Reopen()
	if q.Closed() {
		t.Fatal("should be open")
	}
	if err := q.Enqueue(1); err != nil {
		t.Fatalf("enqueue after reopen: %v", err)
	}
	if v, err := q.Dequeue(); err != nil || v != 1 {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 8, 200, 8
	q := New[int](16)
	var got sync.Map
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(p*perProducer + i); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, err := q.Dequeue()
				if err != nil {
					return
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("duplicate value %d", v)
				}
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if count != producers*perProducer {
		t.Fatalf("received %d items, want %d", count, producers*perProducer)
	}
	if q.Enqueued() != producers*perProducer || q.Dequeued() != producers*perProducer {
		t.Fatalf("counters: enq=%d deq=%d", q.Enqueued(), q.Dequeued())
	}
}

// Property: after any sequence of enqueues and dequeues,
// enqueued - dequeued == occupancy, and peak >= occupancy at all times.
func TestConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := New[int](0)
		for i, enq := range ops {
			if enq {
				q.Enqueue(i)
			} else {
				q.TryDequeue()
			}
			if int(q.Enqueued()-q.Dequeued()) != q.Len() {
				return false
			}
			if q.Peak() < q.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FIFO order holds for any prefix of enqueues followed by dequeues.
func TestFIFOProperty(t *testing.T) {
	f := func(n uint8) bool {
		q := New[int](0)
		for i := 0; i < int(n); i++ {
			q.Enqueue(i)
		}
		for i := 0; i < int(n); i++ {
			v, ok, err := q.TryDequeue()
			if !ok || err != nil || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDequeueWhileReturnsItemImmediately(t *testing.T) {
	q := New[int](0)
	q.Enqueue(7)
	v, ok, err := q.DequeueWhile(func() bool { return false }, time.Millisecond)
	if !ok || err != nil || v != 7 {
		t.Fatalf("got %v %v %v", v, ok, err)
	}
}

func TestDequeueWhileGivesUpWhenPredicateFalse(t *testing.T) {
	q := New[int](0)
	start := time.Now()
	_, ok, err := q.DequeueWhile(func() bool { return false }, time.Millisecond)
	if ok || err != nil {
		t.Fatalf("expected (zero,false,nil), got ok=%v err=%v", ok, err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("gave up too slowly")
	}
}

func TestDequeueWhileSeesLateItem(t *testing.T) {
	q := New[int](0)
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Enqueue(42)
	}()
	v, ok, err := q.DequeueWhile(func() bool { return true }, 500*time.Microsecond)
	if !ok || err != nil || v != 42 {
		t.Fatalf("got %v %v %v", v, ok, err)
	}
}

func TestDequeueWhileClosedQueue(t *testing.T) {
	q := New[int](0)
	q.Enqueue(1)
	q.Close()
	if v, ok, err := q.DequeueWhile(func() bool { return true }, 0); !ok || err != nil || v != 1 {
		t.Fatalf("drain failed: %v %v %v", v, ok, err)
	}
	if _, ok, err := q.DequeueWhile(func() bool { return true }, 0); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("closed+drained should return ErrClosed, got ok=%v err=%v", ok, err)
	}
}

func TestDequeueWhileWakesOnEnqueueWithSlowPoll(t *testing.T) {
	// With an event-driven wakeup, a consumer blocked with a long
	// keepWaiting poll must still receive an item promptly.
	q := New[int](0)
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Enqueue(9)
	}()
	start := time.Now()
	v, ok, err := q.DequeueWhile(func() bool { return true }, time.Second)
	if !ok || err != nil || v != 9 {
		t.Fatalf("got %v %v %v", v, ok, err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("enqueue did not wake the waiter; it slept the full poll")
	}
}

func TestDequeueWhileWakesOnCloseWithSlowPoll(t *testing.T) {
	q := New[int](0)
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Close()
	}()
	start := time.Now()
	_, ok, err := q.DequeueWhile(func() bool { return true }, time.Second)
	if ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("got ok=%v err=%v", ok, err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("close did not wake the waiter")
	}
}

func TestDequeueWhileManyWaitersAllDrain(t *testing.T) {
	q := New[int](0)
	const workers, items = 8, 200
	var got atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, ok, err := q.DequeueWhile(func() bool { return true }, time.Millisecond)
				if err != nil {
					return
				}
				if ok {
					got.Add(1)
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
	if got.Load() != items {
		t.Fatalf("drained %d of %d across concurrent DequeueWhile waiters", got.Load(), items)
	}
}

// Regression test for the enqueue-side wakeup audit: an enqueue into a
// *bounded* queue — including one by a producer that had been blocked on a
// full queue — must wake DequeueWhile waiters. The poll is deliberately
// huge so a missed wakeup hangs until the test timeout instead of being
// papered over by the periodic re-check.
func TestBoundedEnqueueWakesDequeueWhile(t *testing.T) {
	q := New[int](1)
	if err := q.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	produced := make(chan error, 1)
	go func() {
		produced <- q.Enqueue(2) // blocks: queue is full
	}()
	time.Sleep(5 * time.Millisecond) // let the producer block

	// Drain item 1; this frees the producer, whose enqueue of item 2 must
	// wake the next DequeueWhile even with a 10s poll.
	if v, ok, err := q.DequeueWhile(func() bool { return true }, 10*time.Second); !ok || err != nil || v != 1 {
		t.Fatalf("first item: got %v %v %v", v, ok, err)
	}
	start := time.Now()
	v, ok, err := q.DequeueWhile(func() bool { return true }, 10*time.Second)
	if !ok || err != nil || v != 2 {
		t.Fatalf("second item: got %v %v %v", v, ok, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("unblocked producer's enqueue did not wake the waiter (took %v)", elapsed)
	}
	if err := <-produced; err != nil {
		t.Fatalf("producer: %v", err)
	}
}

func TestShedNewestDropsOffered(t *testing.T) {
	q := NewWithPolicy[int](2, ShedNewest)
	q.Enqueue(1)
	q.Enqueue(2)
	start := time.Now()
	if err := q.Enqueue(3); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("shed-newest enqueue blocked")
	}
	if q.Shed() != 1 {
		t.Fatalf("shed = %d", q.Shed())
	}
	// Queue contents untouched: oldest work survives.
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatalf("head = %d", v)
	}
	if v, _ := q.Dequeue(); v != 2 {
		t.Fatalf("next = %d", v)
	}
	if q.Enqueued() != 2 {
		t.Fatalf("enqueued = %d (shed items must not count)", q.Enqueued())
	}
}

func TestShedOldestAdmitsFreshest(t *testing.T) {
	q := NewWithPolicy[int](2, ShedOldest)
	q.Enqueue(1)
	q.Enqueue(2)
	if err := q.Enqueue(3); err != nil {
		t.Fatalf("err = %v", err)
	}
	if q.Shed() != 1 {
		t.Fatalf("shed = %d", q.Shed())
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d (occupancy must stay at capacity)", q.Len())
	}
	if v, _ := q.Dequeue(); v != 2 {
		t.Fatalf("head = %d, want 2 (1 was shed)", v)
	}
	if v, _ := q.Dequeue(); v != 3 {
		t.Fatalf("next = %d", v)
	}
}

func TestShedPoliciesNeverBlockProducer(t *testing.T) {
	for _, p := range []OverloadPolicy{ShedOldest, ShedNewest} {
		q := NewWithPolicy[int](1, p)
		done := make(chan struct{})
		go func() {
			for i := 0; i < 1000; i++ {
				q.Enqueue(i)
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%v producer blocked", p)
		}
	}
}

func TestUnboundedNeverSheds(t *testing.T) {
	q := NewWithPolicy[int](0, ShedNewest)
	for i := 0; i < 100; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatalf("err = %v", err)
		}
	}
	if q.Shed() != 0 {
		t.Fatalf("shed = %d", q.Shed())
	}
}

func TestShedAfterCloseStillErrClosed(t *testing.T) {
	q := NewWithPolicy[int](1, ShedNewest)
	q.Enqueue(1)
	q.Close()
	if err := q.Enqueue(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if q.Shed() != 0 {
		t.Fatalf("shed = %d, closed enqueue must not count as shed", q.Shed())
	}
}

func TestOverloadPolicyString(t *testing.T) {
	cases := map[OverloadPolicy]string{
		Block: "block", ShedOldest: "shed-oldest", ShedNewest: "shed-newest",
		OverloadPolicy(42): "invalid",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestDequeueWhileStopsPredicateChange(t *testing.T) {
	q := New[int](0)
	stop := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(stop)
	}()
	_, ok, err := q.DequeueWhile(func() bool {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}, 500*time.Microsecond)
	if ok || err != nil {
		t.Fatalf("expected give-up after predicate flips, got ok=%v err=%v", ok, err)
	}
}

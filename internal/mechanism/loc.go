package mechanism

import (
	"embed"
	"sort"
	"strings"
)

//go:embed *.go
var sources embed.FS

// LinesOfCode reports the implementation size of each mechanism source
// file, reproducing the paper's Table 3 measurement for this codebase.
// Helper and test files are excluded; counts include comments and blank
// lines, as the paper's do.
func LinesOfCode() map[string]int {
	skip := map[string]bool{
		"helpers.go": true, // shared plumbing, not a mechanism
		"loc.go":     true,
	}
	out := make(map[string]int)
	entries, err := sources.ReadDir(".")
	if err != nil {
		return out
	}
	for _, e := range entries {
		name := e.Name()
		if skip[name] || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := sources.ReadFile(name)
		if err != nil {
			continue
		}
		out[strings.TrimSuffix(name, ".go")] = strings.Count(string(data), "\n")
	}
	return out
}

// MechanismNames returns the measured mechanism file stems, sorted.
func MechanismNames() []string {
	loc := LinesOfCode()
	names := make([]string, 0, len(loc))
	for n := range loc {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package mechanism implements the parallelism-adaptation mechanisms of the
// paper's §7, each as a core.Mechanism the executive (or the discrete-event
// simulator) consults on every control tick:
//
//   - Proportional — Figure 10's example mechanism: DoP proportional to
//     task execution time, recursing into nested loops.
//   - WQTH — Work Queue Threshold with Hysteresis (§7.1), a two-state
//     latency-mode/throughput-mode machine for "min response time".
//   - WQLinear — Work Queue Linear (§7.1), continuous DoP degradation with
//     queue occupancy (Equation 2).
//   - TB / TBF — Throughput Balance (with Fusion) (§7.2) for
//     "max throughput": DoP inversely proportional to task throughput, with
//     task fusion when stage imbalance exceeds a threshold.
//   - FDP — Feedback-Directed Pipelining (Suleman et al.), hill climbing on
//     measured throughput.
//   - SEDA — the Staged Event-Driven Architecture controller (Welsh et
//     al.): each stage resizes its pool from local load, uncoordinated.
//   - TPC — Throughput under a Power budget (§7.3): closed-loop controller
//     that ramps DoP until the watt budget binds, then explores
//     configurations of equal extent and settles on the best.
package mechanism

import (
	"dope/internal/core"
)

// distribute splits a thread budget over the stages of one alternative:
// every stage gets at least one worker, SEQ stages get exactly one, and the
// remaining budget is shared among PAR stages proportionally to the given
// weights (largest-remainder rounding), respecting MaxDoP. A nil or
// all-zero weights slice means equal weights.
func distribute(budget int, stages []core.StageReport, weights []float64) []int {
	n := len(stages)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	parIdx := make([]int, 0, n)
	for i, st := range stages {
		out[i] = 1
		if st.Type == core.PAR {
			parIdx = append(parIdx, i)
		}
	}
	remaining := budget - n
	if remaining <= 0 || len(parIdx) == 0 {
		return clampToSpec(out, stages)
	}
	w := make([]float64, len(parIdx))
	var sum float64
	for j, i := range parIdx {
		var v float64
		if weights != nil && i < len(weights) {
			v = weights[i]
		}
		if v <= 0 {
			v = 0
		}
		w[j] = v
		sum += v
	}
	if sum <= 0 {
		for j := range w {
			w[j] = 1
		}
		sum = float64(len(w))
	}
	// Largest-remainder apportionment of `remaining` extra workers.
	shares := make([]float64, len(parIdx))
	floors := make([]int, len(parIdx))
	used := 0
	for j := range parIdx {
		shares[j] = float64(remaining) * w[j] / sum
		floors[j] = int(shares[j])
		used += floors[j]
	}
	for used < remaining {
		best, bestFrac := -1, -1.0
		for j := range parIdx {
			frac := shares[j] - float64(floors[j])
			if frac > bestFrac {
				best, bestFrac = j, frac
			}
		}
		floors[best]++
		shares[best] = float64(floors[best]) // consume its remainder
		used++
	}
	for j, i := range parIdx {
		out[i] += floors[j]
	}
	return clampToSpec(out, stages)
}

// clampToSpec applies stage type and MaxDoP bounds to an extent vector.
func clampToSpec(extents []int, stages []core.StageReport) []int {
	for i, st := range stages {
		if st.Type == core.SEQ {
			extents[i] = 1
			continue
		}
		if extents[i] < 1 {
			extents[i] = 1
		}
		if st.MaxDoP > 0 && extents[i] > st.MaxDoP {
			extents[i] = st.MaxDoP
		}
	}
	return extents
}

// execWeights extracts per-stage execution-time weights from a nest report,
// preferring the smoothed estimate and falling back to the lifetime mean.
func execWeights(stages []core.StageReport) []float64 {
	w := make([]float64, len(stages))
	for i, st := range stages {
		w[i] = st.ExecTime
		if w[i] <= 0 {
			w[i] = st.MeanExecTime
		}
	}
	return w
}

// seqAltIndex returns the index of the "most sequential" alternative of a
// nest: the one with the fewest stages (ties to the lower index). For the
// canonical pipeline/fused pair this is the fused alternative.
func seqAltIndex(spec *core.NestSpec) int {
	best, bestN := 0, len(spec.Alts[0].Stages)
	for i, alt := range spec.Alts[1:] {
		if len(alt.Stages) < bestN {
			best, bestN = i+1, len(alt.Stages)
		}
	}
	return best
}

// parAltIndex returns the index of the "most parallel" alternative: the one
// with the most stages (ties to the lower index).
func parAltIndex(spec *core.NestSpec) int {
	best, bestN := 0, len(spec.Alts[0].Stages)
	for i, alt := range spec.Alts[1:] {
		if len(alt.Stages) > bestN {
			best, bestN = i+1, len(alt.Stages)
		}
	}
	return best
}

// serverShape locates the canonical server structure in a report: the first
// root stage that delegates to a nested loop, together with the nested
// nest's report. ok is false when the application has no nested loop.
func serverShape(r *core.Report) (outerStage int, inner *core.NestReport, ok bool) {
	if r.Root == nil {
		return 0, nil, false
	}
	for i := range r.Root.Stages {
		if r.Root.Stages[i].HasNest {
			for _, child := range r.Root.Children {
				return i, child, true
			}
		}
	}
	return 0, nil, false
}

// stageReportsFor synthesizes StageReports for an alternative that is not
// currently active (so the monitor has no data keyed to it yet), carrying
// the static spec fields mechanisms need for distribution.
func stageReportsFor(alt *core.AltSpec) []core.StageReport {
	out := make([]core.StageReport, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		out[i] = core.StageReport{
			Name:    st.Name,
			Type:    st.Type,
			MinDoP:  st.MinDoP,
			MaxDoP:  st.MaxDoP,
			HasNest: st.Nest != nil,
		}
	}
	return out
}

// sumExtents returns the total of an extent vector.
func sumExtents(e []int) int {
	s := 0
	for _, v := range e {
		s += v
	}
	return s
}

package mechanism

import (
	"fmt"

	"dope/internal/core"
	"dope/internal/platform"
)

// TPC is the Throughput-Power Controller (§7.3) for the goal "maximize
// throughput with N threads and P watts". It is a closed-loop controller
// over the SystemPower platform feature (sampled through the rate-limited
// PDU):
//
//  1. Ramp: start every task at extent 1 and repeatedly grant one worker to
//     the least-throughput task while the power budget holds and throughput
//     improves — the ramp phase visible in Figure 14.
//  2. On overshoot: retreat to the previous extent total and explore
//     alternative configurations with the same total extent, consulting the
//     recorded history of configuration → throughput.
//  3. Stable: hold the best configuration found, monitoring continuously;
//     a power or throughput transient re-triggers exploration.
type TPC struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Budget is the power target in watts.
	Budget float64
	// Path selects the nest to control; empty means the root nest.
	Path string
	// MinSamples gates acting before monitors have signal (default 8).
	MinSamples uint64
	// ExploreSteps is how many same-total permutations to try after the
	// budget first binds (default 4).
	ExploreSteps int
	// SettleTicks is how many control ticks to wait after each change
	// before judging its effect, letting the monitors' moving averages
	// catch up with the new configuration (default 3).
	SettleTicks int
	// RateTolerance is the relative throughput drop treated as noise when
	// deciding whether a ramp step helped (default 0.02).
	RateTolerance float64

	phase        tpcPhase
	history      map[string]float64 // config signature -> observed rate
	lastSig      string
	lastExtents  []int
	bestSig      string
	bestRate     float64
	bestExtents  []int
	explored     int
	rampPending  bool
	rampLastRate float64
	rampFlats    int
	settle       int
}

type tpcPhase int

const (
	tpcRamp tpcPhase = iota
	tpcExplore
	tpcStable
)

// Name implements core.Mechanism.
func (m *TPC) Name() string { return "TPC" }

// Phase returns a human-readable controller phase for traces.
func (m *TPC) Phase() string {
	switch m.phase {
	case tpcRamp:
		return "ramp"
	case tpcExplore:
		return "explore"
	default:
		return "stable"
	}
}

// Reconfigure implements core.Mechanism.
func (m *TPC) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	minSamples := m.MinSamples
	if minSamples == 0 {
		minSamples = 8
	}
	for _, st := range nest.Stages {
		if st.Iterations < minSamples {
			return nil
		}
	}
	if m.settle > 0 {
		// A change was just applied; let the monitors settle before
		// judging it or proposing another.
		m.settle--
		return nil
	}
	if m.history == nil {
		m.history = make(map[string]float64)
	}
	power, err := r.Features.Value(platform.FeatureSystemPower)
	if err != nil {
		power = 0 // no power feature registered: behave as unconstrained
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	rate := pipelineRate(nest.Stages)
	cur := currentExtents(nest)
	sig := extentSig(cur)
	m.history[sig] = rate
	if rate > m.bestRate && (m.Budget <= 0 || power <= m.Budget) {
		m.bestRate = rate
		m.bestSig = sig
		m.bestExtents = append([]int(nil), cur...)
	}

	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}

	overBudget := m.Budget > 0 && power > m.Budget
	var next []int
	switch m.phase {
	case tpcRamp:
		switch {
		case overBudget:
			// Retreat one step and start exploring at the reduced total.
			next = m.retreat(nest.Stages, cur)
			m.phase = tpcExplore
			m.explored = 0
		case m.rampPending && rate < m.rampLastRate*(1-m.rateTolerance()):
			// The last grant regressed throughput (§7.3: increment "if
			// throughput improves"): stop ramping, start exploring.
			m.rampPending = false
			m.phase = tpcExplore
			m.explored = 0
		case m.rampPending && rate < m.rampLastRate*(1+m.rateTolerance()) && m.rampFlats >= 1:
			// Two consecutive grants bought nothing beyond noise: the ramp
			// has topped out.
			m.rampPending = false
			m.phase = tpcExplore
			m.explored = 0
		default:
			if m.rampPending && rate < m.rampLastRate*(1+m.rateTolerance()) {
				m.rampFlats++
			} else {
				m.rampFlats = 0
			}
			fdp := &FDP{Threads: threads}
			next = fdp.step(nest.Stages, cur, threads)
			if next == nil {
				m.phase = tpcExplore
				m.explored = 0
			} else {
				m.rampPending = true
				m.rampLastRate = rate
			}
		}
	case tpcExplore:
		steps := m.ExploreSteps
		if steps <= 0 {
			steps = 4
		}
		if overBudget {
			next = m.retreat(nest.Stages, cur)
		} else if m.explored < steps {
			m.explored++
			next = m.permute(nest.Stages, cur)
		} else {
			m.phase = tpcStable
			if m.bestExtents != nil && extentSig(m.bestExtents) != sig {
				next = append([]int(nil), m.bestExtents...)
			}
		}
	case tpcStable:
		if overBudget {
			next = m.retreat(nest.Stages, cur)
			m.phase = tpcExplore
			m.explored = 0
		}
	}
	if next == nil {
		return nil
	}
	m.lastSig = sig
	m.lastExtents = cur
	m.settle = m.settleTicks()
	target.Alt = nest.AltIndex
	target.Extents = clampToSpec(next, nest.Stages)
	return cfg
}

func (m *TPC) settleTicks() int {
	if m.SettleTicks > 0 {
		return m.SettleTicks
	}
	return 3
}

func (m *TPC) rateTolerance() float64 {
	if m.RateTolerance > 0 {
		return m.RateTolerance
	}
	return 0.02
}

// retreat removes one worker from the most over-provisioned PAR stage.
func (m *TPC) retreat(stages []core.StageReport, cur []int) []int {
	weights := execWeights(stages)
	fast, bestC := -1, -1.0
	for i, st := range stages {
		if st.Type != core.PAR || cur[i] <= 1 {
			continue
		}
		c := float64(cur[i])
		if weights[i] > 0 {
			c = float64(cur[i]) / weights[i]
		}
		if c > bestC {
			fast, bestC = i, c
		}
	}
	if fast < 0 {
		return nil
	}
	next := append([]int(nil), cur...)
	next[fast]--
	return next
}

// permute proposes an unexplored configuration with the same total extent
// by moving one worker from the fastest to the slowest stage; falls back to
// nil when every neighbor is already in the history.
func (m *TPC) permute(stages []core.StageReport, cur []int) []int {
	weights := execWeights(stages)
	slow := bottleneck(stages, cur, weights)
	if slow < 0 {
		return nil
	}
	for i, st := range stages {
		if i == slow || st.Type != core.PAR || cur[i] <= 1 {
			continue
		}
		next := append([]int(nil), cur...)
		next[i]--
		next[slow]++
		if _, seen := m.history[extentSig(next)]; !seen {
			return next
		}
	}
	return nil
}

func extentSig(e []int) string { return fmt.Sprint(e) }

package mechanism

import (
	"dope/internal/core"
)

// FDP is Feedback-Directed Pipelining (Suleman et al., PACT 2010), one of
// the two prior-work mechanisms the paper reimplements on top of DoPE's
// interface (§7.2). FDP hill-climbs on measured throughput: each epoch it
// grants one more worker to the current bottleneck stage (the stage with
// the lowest capacity = extent/execTime); when the thread budget is
// exhausted it instead moves a worker from the most over-provisioned stage
// to the bottleneck; any step that fails to improve the smoothed pipeline
// throughput is reverted and the climb pauses until the landscape changes.
type FDP struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Path selects the nest to tune; empty means the root nest.
	Path string
	// MinSamples gates acting before the monitors have signal (default 8).
	MinSamples uint64

	lastExtents []int
	lastRate    float64
	pending     bool // a step was taken and awaits evaluation
	stalled     bool // last step regressed; hold until rate changes materially
	stallRate   float64
}

// Name implements core.Mechanism.
func (m *FDP) Name() string { return "FDP" }

// Reconfigure implements core.Mechanism.
func (m *FDP) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	minSamples := m.MinSamples
	if minSamples == 0 {
		minSamples = 8
	}
	for _, st := range nest.Stages {
		if st.Iterations < minSamples {
			return nil
		}
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	rate := pipelineRate(nest.Stages)

	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}
	cur := currentExtents(nest)

	if m.pending {
		m.pending = false
		if rate+1e-12 < m.lastRate && m.lastExtents != nil {
			// The step regressed: revert and stall. The stall baseline is
			// captured on the next observation of the reverted
			// configuration, not now, because the current rate still
			// reflects the regressed configuration.
			m.stalled = true
			m.stallRate = -1
			target.Alt = nest.AltIndex
			target.Extents = append([]int(nil), m.lastExtents...)
			return cfg
		}
		m.lastRate = rate
	}
	if m.stalled {
		if m.stallRate < 0 {
			m.stallRate = rate
			return nil
		}
		// Resume climbing only when the workload has visibly shifted.
		if relDiff(rate, m.stallRate) < 0.15 {
			return nil
		}
		m.stalled = false
		m.lastRate = rate
	}
	if m.lastRate == 0 {
		m.lastRate = rate
	}

	next := m.step(nest.Stages, cur, threads)
	if next == nil {
		return nil
	}
	m.lastExtents = cur
	m.pending = true
	target.Alt = nest.AltIndex
	target.Extents = next
	return cfg
}

// step proposes the next hill-climbing move, or nil when no move exists.
func (m *FDP) step(stages []core.StageReport, cur []int, budget int) []int {
	weights := execWeights(stages)
	slow := bottleneck(stages, cur, weights)
	if slow < 0 {
		return nil
	}
	next := append([]int(nil), cur...)
	if stages[slow].MaxDoP > 0 && cur[slow] >= stages[slow].MaxDoP {
		return nil
	}
	if sumExtents(cur) < budget {
		next[slow]++
		return clampToSpec(next, stages)
	}
	// Budget exhausted: move one worker from the fastest PAR stage.
	fast, bestC := -1, -1.0
	for i, st := range stages {
		if st.Type != core.PAR || cur[i] <= 1 || i == slow {
			continue
		}
		if weights[i] <= 0 {
			continue
		}
		c := float64(cur[i]) / weights[i]
		if c > bestC {
			fast, bestC = i, c
		}
	}
	if fast < 0 {
		return nil
	}
	next[fast]--
	next[slow]++
	return clampToSpec(next, stages)
}

// bottleneck returns the index of the PAR-growable stage with the lowest
// capacity, or -1.
func bottleneck(stages []core.StageReport, extents []int, weights []float64) int {
	best, bestC := -1, 0.0
	for i, st := range stages {
		if st.Type != core.PAR || weights[i] <= 0 {
			continue
		}
		c := float64(extents[i]) / weights[i]
		if best < 0 || c < bestC {
			best, bestC = i, c
		}
	}
	return best
}

// pipelineRate estimates pipeline throughput as the minimum stage capacity.
func pipelineRate(stages []core.StageReport) float64 {
	minC := -1.0
	for _, st := range stages {
		t := st.ExecTime
		if t <= 0 {
			t = st.MeanExecTime
		}
		if t <= 0 {
			continue
		}
		c := float64(st.Extent) / t
		if minC < 0 || c < minC {
			minC = c
		}
	}
	if minC < 0 {
		return 0
	}
	return minC
}

// currentExtents reads the active extent vector from a nest report.
func currentExtents(nest *core.NestReport) []int {
	out := make([]int, len(nest.Stages))
	for i := range nest.Stages {
		out[i] = nest.Stages[i].Extent
	}
	return out
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}

package mechanism

import (
	"dope/internal/core"
)

// TBF is the Throughput Balance with Fusion mechanism (§7.2) for the goal
// "maximize throughput with N threads". It records a moving average of each
// task's throughput (the monitor's smoothed execution time is its inverse)
// and assigns each task a DoP extent inversely proportional to that
// throughput — i.e. proportional to its execution time — so slow stages get
// more workers.
//
// If the imbalance across stage capacities remains above FusionThreshold
// even under the balanced assignment, the pipeline is too skewed for
// pipeline parallelism to pay off, and TBF switches the nest to its fused
// alternative (the developer-registered fused task, chosen through the
// TaskDescriptor's choice of ParDescriptors).
type TBF struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Path selects the nest to balance ("app" or "app/video"); empty means
	// the root nest.
	Path string
	// FusionThreshold is the capacity imbalance beyond which the fused
	// alternative is selected; the paper sets 0.5. Zero defaults to 0.5.
	FusionThreshold float64
	// DisableFusion turns TBF into the paper's DoPE-TB baseline.
	DisableFusion bool
	// MinSamples is how many iterations each stage must have before the
	// mechanism acts (defaults to 8); acting on noise destabilizes the
	// pipeline.
	MinSamples uint64
}

// Name implements core.Mechanism.
func (m *TBF) Name() string {
	if m.DisableFusion {
		return "TB"
	}
	return "TBF"
}

// Reconfigure implements core.Mechanism.
func (m *TBF) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	minSamples := m.MinSamples
	if minSamples == 0 {
		minSamples = 8
	}
	for _, st := range nest.Stages {
		if st.Iterations < minSamples {
			return nil // not enough signal yet
		}
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}

	weights := execWeights(nest.Stages)
	extents := distribute(threads, nest.Stages, weights)

	if !m.DisableFusion && len(nest.Spec.Alts) > 1 {
		if m.imbalance(nest.Stages, extents, weights) > m.threshold() {
			fused := seqAltIndex(nest.Spec)
			if fused != nest.AltIndex {
				target.Alt = fused
				fstages := stageReportsFor(nest.Spec.Alts[fused])
				target.Extents = distribute(threads, fstages, nil)
				return cfg
			}
		}
	}
	// Damping: measured execution times feed back through the assignment
	// (wider stages report more coordination overhead), so proposals can
	// flap by one worker between adjacent balances. Suspending the
	// top-level tasks for a ±1 shuffle costs more than it buys; only act
	// on a materially different assignment.
	if maxAbsDiff(extents, currentExtents(nest)) < 2 {
		return nil
	}
	target.Alt = nest.AltIndex
	target.Extents = extents
	return cfg
}

// maxAbsDiff returns the largest per-index absolute difference; length
// mismatches count as a material change.
func maxAbsDiff(a, b []int) int {
	if len(a) != len(b) {
		return 1 << 30
	}
	m := 0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func (m *TBF) threshold() float64 {
	if m.FusionThreshold > 0 {
		return m.FusionThreshold
	}
	return 0.5
}

// imbalance measures how uneven the per-stage capacities remain after the
// proposed assignment: 1 - min(capacity)/max(capacity), where capacity is
// extent/execTime. A perfectly balanced pipeline scores 0; a pipeline whose
// slowest stage cannot be helped (e.g. a SEQ bottleneck) scores near 1.
func (m *TBF) imbalance(stages []core.StageReport, extents []int, weights []float64) float64 {
	minC, maxC := -1.0, -1.0
	for i := range stages {
		t := weights[i]
		if t <= 0 {
			continue
		}
		c := float64(extents[i]) / t
		if minC < 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC <= 0 {
		return 0
	}
	return 1 - minC/maxC
}

// childConfigAt walks the config tree along the report path from root to
// nest, materializing nodes as needed, and returns the config node for
// nest.
func childConfigAt(cfg *core.Config, root, nest *core.NestReport) *core.Config {
	// Paths are slash-joined with the root name first.
	if len(nest.Path) <= len(root.Path) {
		return cfg
	}
	rel := nest.Path[len(root.Path)+1:]
	cur := cfg
	for {
		i := 0
		for i < len(rel) && rel[i] != '/' {
			i++
		}
		name := rel[:i]
		next := cur.Child(name)
		if next == nil {
			next = &core.Config{}
			cur.SetChild(name, next)
		}
		cur = next
		if i == len(rel) {
			return cur
		}
		rel = rel[i+1:]
	}
}

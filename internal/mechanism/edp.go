package mechanism

import (
	"dope/internal/core"
	"dope/internal/platform"
)

// EDP pursues "minimize the energy-delay product", the example of an
// administrator-invented goal in the paper's §4. For a throughput-oriented
// loop, energy per item is Power/throughput and delay per item is
// 1/throughput, so EDP per item ∝ Power/throughput²; EDP hill-climbs the
// inverse objective throughput²/Power. Unlike pure throughput
// maximization, the optimum can sit below the machine's full width: the
// last few workers buy little rate but full power.
//
// Without a SystemPower feature the objective degenerates to throughput²
// and EDP behaves like a damped FDP.
type EDP struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Path selects the nest to tune; empty means the root nest.
	Path string
	// MinSamples gates acting before the monitors have signal (default 8).
	MinSamples uint64
	// SettleTicks is how many control ticks to wait after a change before
	// judging it (default 3).
	SettleTicks int
	// Tolerance is the relative objective change treated as noise
	// (default 0.02).
	Tolerance float64

	growing     bool // current hill-climb direction (start growing)
	started     bool
	pending     bool
	lastObj     float64
	lastExtents []int
	settle      int
	stalls      int
}

// Name implements core.Mechanism.
func (m *EDP) Name() string { return "EDP" }

// Reconfigure implements core.Mechanism.
func (m *EDP) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	minSamples := m.MinSamples
	if minSamples == 0 {
		minSamples = 8
	}
	for _, st := range nest.Stages {
		if st.Iterations < minSamples {
			return nil
		}
	}
	if m.settle > 0 {
		m.settle--
		return nil
	}
	if !m.started {
		m.started = true
		m.growing = true
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	obj := m.objective(r, nest)
	cur := currentExtents(nest)

	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}

	if m.pending {
		m.pending = false
		if obj < m.lastObj*(1-m.tolerance()) && m.lastExtents != nil {
			// The step hurt the energy-delay product: revert and flip the
			// climb direction. Two consecutive failed directions mean the
			// optimum is here; hold.
			m.growing = !m.growing
			m.stalls++
			next := append([]int(nil), m.lastExtents...)
			m.lastExtents = nil
			m.settle = m.settleTicks()
			target.Alt = nest.AltIndex
			target.Extents = next
			return cfg
		}
		m.lastObj = obj
		m.stalls = 0
	}
	if m.stalls >= 2 {
		return nil // converged: both directions regress
	}
	if m.lastObj == 0 {
		m.lastObj = obj
	}

	var next []int
	if m.growing {
		fdp := &FDP{Threads: threads}
		next = fdp.step(nest.Stages, cur, threads)
		if next == nil {
			m.growing = false
		}
	}
	if next == nil {
		next = m.shrink(nest.Stages, cur)
	}
	if next == nil {
		return nil
	}
	m.pending = true
	m.lastExtents = cur
	m.settle = m.settleTicks()
	target.Alt = nest.AltIndex
	target.Extents = clampToSpec(next, nest.Stages)
	return cfg
}

// objective returns throughput²/power (or throughput² without a power
// feature) — the inverse of the per-item energy-delay product.
func (m *EDP) objective(r *core.Report, nest *core.NestReport) float64 {
	rate := pipelineRate(nest.Stages)
	power, err := r.Features.Value(platform.FeatureSystemPower)
	if err != nil || power <= 0 {
		return rate * rate
	}
	return rate * rate / power
}

// shrink removes one worker from the most over-provisioned PAR stage.
func (m *EDP) shrink(stages []core.StageReport, cur []int) []int {
	weights := execWeights(stages)
	fast, bestC := -1, -1.0
	for i, st := range stages {
		if st.Type != core.PAR || cur[i] <= 1 {
			continue
		}
		c := float64(cur[i])
		if weights[i] > 0 {
			c = float64(cur[i]) / weights[i]
		}
		if c > bestC {
			fast, bestC = i, c
		}
	}
	if fast < 0 {
		return nil
	}
	next := append([]int(nil), cur...)
	next[fast]--
	return next
}

func (m *EDP) settleTicks() int {
	if m.SettleTicks > 0 {
		return m.SettleTicks
	}
	return 3
}

func (m *EDP) tolerance() float64 {
	if m.Tolerance > 0 {
		return m.Tolerance
	}
	return 0.02
}

package mechanism

import (
	"dope/internal/core"
)

// SEDA reimplements the Staged Event-Driven Architecture thread-pool
// controller (Welsh, Culler, Brewer; SOSP 2001) as a DoPE mechanism, the
// second prior-work mechanism of §7.2. Each stage resizes its own pool from
// its local input-queue occupancy — adding a worker when the queue exceeds
// the high-water mark, removing one when it falls below the low-water mark
// — with no global coordination of the thread budget across stages. That
// lack of a global view is exactly the weakness the paper's evaluation
// exposes (Figure 15): SEDA oversubscribes some stages while starving
// others.
type SEDA struct {
	// Path selects the nest to control; empty means the root nest.
	Path string
	// HighWater adds a worker when a stage's load exceeds it (default 4).
	HighWater float64
	// LowWater removes a worker when a stage's load falls below it
	// (default 1).
	LowWater float64
	// PerStageCap bounds each stage's pool (default: the machine size).
	PerStageCap int
}

// Name implements core.Mechanism.
func (m *SEDA) Name() string { return "SEDA" }

// Reconfigure implements core.Mechanism.
func (m *SEDA) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	high := m.HighWater
	if high <= 0 {
		high = 4
	}
	low := m.LowWater
	if low < 0 {
		low = 1
	}
	poolCap := m.PerStageCap
	if poolCap <= 0 {
		poolCap = r.Contexts
	}

	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}
	cur := currentExtents(nest)
	changed := false
	for i, st := range nest.Stages {
		if st.Type != core.PAR {
			continue
		}
		switch {
		case st.Load > high && cur[i] < poolCap:
			cur[i]++
			changed = true
		case st.Load < low && cur[i] > 1:
			cur[i]--
			changed = true
		}
	}
	if !changed {
		return nil
	}
	target.Alt = nest.AltIndex
	target.Extents = clampToSpec(cur, nest.Stages)
	return cfg
}

package mechanism

import (
	"math"

	"dope/internal/core"
)

// WQLinear is the Work Queue Linear mechanism (§7.1): instead of toggling
// between two states like WQTH, it degrades the inner-loop DoP extent
// continuously with the instantaneous work-queue occupancy WQo:
//
//	DoP_extent = max(Mmin, Mmax - k × WQo)      (Equation 2)
//	k          = (Mmax - Mmin) / Qmax            (Equation 3)
//
// Qmax is derived from the maximum response-time degradation acceptable to
// the end user (the administrator's SLA knob). The outer loop receives
// Threads / DoP_extent workers so the machine stays fully subscribed.
type WQLinear struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Mmax and Mmin bound the inner extent; Mmin defaults to 1.
	Mmax int
	Mmin int
	// Qmax is the queue occupancy at which the extent reaches Mmin.
	Qmax float64
}

// Name implements core.Mechanism.
func (m *WQLinear) Name() string { return "WQ-Linear" }

// Extent returns Equation 2's inner DoP extent for a given occupancy;
// exported for the ablation benchmarks.
func (m *WQLinear) Extent(occupancy float64) int {
	mmin := m.Mmin
	if mmin < 1 {
		mmin = 1
	}
	mmax := m.Mmax
	if mmax < mmin {
		mmax = mmin
	}
	qmax := m.Qmax
	if qmax <= 0 {
		qmax = 1
	}
	k := float64(mmax-mmin) / qmax
	e := int(math.Round(float64(mmax) - k*occupancy))
	if e < mmin {
		e = mmin
	}
	if e > mmax {
		e = mmax
	}
	return e
}

// Reconfigure implements core.Mechanism.
func (m *WQLinear) Reconfigure(r *core.Report) *core.Config {
	outerIdx, inner, ok := serverShape(r)
	if !ok {
		return nil
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	extent := m.Extent(r.Root.Stages[outerIdx].Load)

	cfg := r.Config
	innerCfg := cfg.Child(inner.Name)
	if innerCfg == nil {
		innerCfg = &core.Config{}
		cfg.SetChild(inner.Name, innerCfg)
	}
	outer := threads / extent
	if outer < 1 {
		outer = 1
	}
	cfg.Alt = 0
	cfg.Extents = make([]int, len(r.Root.Stages))
	for i := range cfg.Extents {
		cfg.Extents[i] = 1
	}
	cfg.Extents[outerIdx] = outer

	if extent <= 1 {
		seq := seqAltIndex(inner.Spec)
		innerCfg.Alt = seq
		innerCfg.Extents = distribute(1, stageReportsFor(inner.Spec.Alts[seq]), nil)
		return cfg
	}
	par := parAltIndex(inner.Spec)
	innerCfg.Alt = par
	stages := inner.Stages
	if inner.AltIndex != par {
		stages = stageReportsFor(inner.Spec.Alts[par])
	}
	innerCfg.Extents = distribute(extent, stages, execWeights(stages))
	return cfg
}

package mechanism

import (
	"dope/internal/core"
	"dope/internal/monitor"
)

// Gradient is a causal-profile-driven mechanism for pipeline applications:
// on each control tick it consults the what-if profiler's virtual-speedup
// model (monitor.WhatIf) and moves a single hardware context from the stage
// where it contributes least to the stage where the model predicts the
// largest throughput gain. It is the "act on the profile" counterpart of the
// -whatif report: where TASKPROF-style causal profiling tells a programmer
// which region to optimize, Gradient tells the executive which stage to
// grow, one context per decision, and verifies each prediction against the
// next tick's measurements simply by re-deriving the profile from them.
//
// Compared to TB/TBF (§7.2), which re-balance the whole extent vector from
// measured stage throughputs every tick, Gradient makes minimal moves scored
// by the closed queueing-network model, so it converges without the
// oscillation that whole-vector rebalancing shows when service-time
// estimates are noisy. It only manages flat pipelines: like TBF it returns
// nil for server-shaped applications (nested loops), which WQT-H and
// WQ-Linear own.
type Gradient struct {
	// Threads is the hardware-context budget; zero means the executive's
	// context count.
	Threads int
	// MinGain is the minimum relative model-predicted throughput gain that
	// justifies moving a context (default 0.01 = 1%). Moves predicted below
	// it are noise; standing still is free.
	MinGain float64
	// Cooldown is how many control ticks to sit out after installing a
	// move, letting the smoothed estimates absorb it before the next
	// decision (default 2).
	Cooldown int

	cool     int
	lastFrom int // donor of the last move, for anti-ping-pong
	lastTo   int
	warm     bool
}

// Name implements core.Mechanism.
func (m *Gradient) Name() string { return "Gradient" }

// Reconfigure implements core.Mechanism.
func (m *Gradient) Reconfigure(r *core.Report) *core.Config {
	if _, _, ok := serverShape(r); ok {
		return nil // server-shaped: not this mechanism's problem
	}
	if r.Root == nil || len(r.Root.Stages) == 0 {
		return nil
	}
	stages := r.Root.Stages
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	extents := make([]int, len(stages))
	for i := range stages {
		extents[i] = stages[i].Extent
	}

	// Warm start: while the pipeline is under budget there is nothing to
	// trade off — hand out the spare contexts in proportion to measured
	// execution time (equal shares before any stage has been observed) and
	// let the profiler take over once every context is placed.
	if !m.warm {
		m.lastFrom, m.lastTo = -1, -1
		if sumExtents(extents) < threads {
			m.warm = true
			m.cool = m.cooldown()
			return m.install(r, distribute(threads, stages, execWeights(stages)))
		}
		m.warm = true
	}

	if m.cool > 0 {
		m.cool--
		return nil
	}

	in := core.WhatIfInputs(stages, extents)
	base := monitor.WhatIfThroughput(in, extents)
	if base <= 0 {
		return nil // not enough observation to score moves yet
	}
	minGain := m.MinGain
	if minGain <= 0 {
		minGain = 0.01
	}

	// Score every single-context move donor→recipient. SEQ stages and
	// stages at MinDoP-floor 1 cannot donate; SEQ stages and stages at
	// MaxDoP cannot receive.
	bestFrom, bestTo, bestX := -1, -1, base
	cand := make([]int, len(extents))
	for from := range stages {
		if stages[from].Type != core.PAR || extents[from] <= 1 {
			continue
		}
		for to := range stages {
			if to == from || stages[to].Type != core.PAR {
				continue
			}
			if stages[to].MaxDoP > 0 && extents[to] >= stages[to].MaxDoP {
				continue
			}
			copy(cand, extents)
			cand[from]--
			cand[to]++
			if x := monitor.WhatIfThroughput(in, cand); x > bestX {
				bestFrom, bestTo, bestX = from, to, x
			}
		}
	}
	if bestFrom < 0 {
		return nil
	}
	// A move must clear the gain threshold; reversing the previous move
	// must clear twice the threshold, so measurement jitter cannot walk a
	// context back and forth between two near-balanced stages.
	need := 1 + minGain
	if bestFrom == m.lastTo && bestTo == m.lastFrom {
		need = 1 + 2*minGain
	}
	if bestX < base*need {
		return nil
	}
	extents[bestFrom]--
	extents[bestTo]++
	m.lastFrom, m.lastTo = bestFrom, bestTo
	m.cool = m.cooldown()
	return m.install(r, extents)
}

func (m *Gradient) cooldown() int {
	if m.Cooldown > 0 {
		return m.Cooldown
	}
	return 2
}

// install writes the extent vector into the report's configuration copy.
func (m *Gradient) install(r *core.Report, extents []int) *core.Config {
	cfg := r.Config
	if cfg == nil {
		cfg = &core.Config{}
	}
	cfg.Extents = clampToSpec(extents, r.Root.Stages)
	return cfg
}

package mechanism

import (
	"testing"

	"dope/internal/core"
	"dope/internal/platform"
)

// edpReport fabricates a report whose power grows with total extent, so
// the energy-delay optimum sits strictly inside the extent range.
func edpReport(extents []int, exec []float64, watts func(total int) float64) *core.Report {
	rep := pipelineReport(24, exec, extents, nil)
	total := 0
	for _, e := range extents {
		total += e
	}
	feat := platform.NewFeatures()
	feat.Register(platform.FeatureSystemPower, func() float64 { return watts(total) })
	rep.Features = feat
	return rep
}

func TestEDPGrowsWhileObjectiveImproves(t *testing.T) {
	m := &EDP{Threads: 24, SettleTicks: 1}
	exec := []float64{0.0001, 0.004, 0.004, 0.004, 0.004, 0.0001}
	watts := func(total int) float64 { return 600 + 8*float64(total) }
	extents := []int{1, 1, 1, 1, 1, 1}
	grew := false
	for step := 0; step < 30; step++ {
		cfg := m.Reconfigure(edpReport(extents, exec, watts))
		if cfg != nil {
			if sumExtents(cfg.Extents) > sumExtents(extents) {
				grew = true
			}
			copy(extents, cfg.Extents)
		}
	}
	if !grew {
		t.Fatal("EDP never grew from all-ones")
	}
}

func TestEDPStopsBelowFullWidthWhenPowerIsSteep(t *testing.T) {
	m := &EDP{Threads: 24, SettleTicks: 0}
	// Strongly saturating throughput (per-stage exec inflated as extents
	// grow is not modeled here, so emulate via steep superlinear power).
	exec := []float64{0.0001, 0.004, 0.004, 0.004, 0.004, 0.0001}
	watts := func(total int) float64 {
		f := float64(total)
		return 100 + f*f*f // cubic: rate² (~total²) / power (~total³) falls
	}
	extents := []int{1, 2, 2, 2, 2, 1}
	for step := 0; step < 60; step++ {
		cfg := m.Reconfigure(edpReport(extents, exec, watts))
		if cfg != nil {
			copy(extents, cfg.Extents)
		}
	}
	if sumExtents(extents) >= 24 {
		t.Fatalf("EDP should not run to full width under cubic power: %v", extents)
	}
}

func TestEDPWithoutPowerBehavesLikeThroughput(t *testing.T) {
	m := &EDP{Threads: 12, SettleTicks: 0}
	exec := []float64{0.0001, 0.004, 0.004, 0.004, 0.004, 0.0001}
	extents := []int{1, 1, 1, 1, 1, 1}
	for step := 0; step < 60; step++ {
		rep := pipelineReport(12, exec, extents, nil)
		cfg := m.Reconfigure(rep)
		if cfg != nil {
			copy(extents, cfg.Extents)
		}
	}
	if sumExtents(extents) < 10 {
		t.Fatalf("without power EDP should approach the budget: %v", extents)
	}
}

func TestEDPHoldsWithFewSamples(t *testing.T) {
	m := &EDP{Threads: 24}
	rep := pipelineReport(24, []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001},
		[]int{1, 1, 1, 1, 1, 1}, nil)
	for i := range rep.Root.Stages {
		rep.Root.Stages[i].Iterations = 2
	}
	if m.Reconfigure(rep) != nil {
		t.Fatal("should wait for MinSamples")
	}
}

func TestEDPName(t *testing.T) {
	if (&EDP{}).Name() != "EDP" {
		t.Fatal("name wrong")
	}
}

package mechanism

import (
	"testing"

	"dope/internal/core"
)

// nestedPipelineReport wraps pipelineReport's ferret-like pipeline one
// level down: root "app" has a single PAR stage delegating to the pipeline,
// so Path-scoped mechanisms must navigate "app/ferret".
func nestedPipelineReport(exec []float64, extents []int) *core.Report {
	inner := pipelineReport(24, exec, extents, nil)
	innerSpec := inner.Root.Spec
	root := &core.NestSpec{Name: "app", Alts: []*core.AltSpec{{
		Name:   "outer",
		Stages: []core.StageSpec{{Name: "serve", Type: core.PAR, Nest: innerSpec}},
		Make:   noopMake,
	}}}
	cfg := core.DefaultConfig(root)
	innerCfg := cfg.Child("ferret")
	innerCfg.Alt = 0
	copy(innerCfg.Extents, extents)
	inner.Root.Path = "app/ferret"
	return &core.Report{
		Contexts: 24,
		Features: inner.Features,
		Config:   cfg,
		Root: &core.NestReport{
			Name: "app", Path: "app", Spec: root, AltIndex: 0, AltName: "outer",
			Stages: []core.StageReport{{
				Name: "serve", Type: core.PAR, HasNest: true, Extent: 1,
				Iterations: 100, ExecTime: 0.01, MeanExecTime: 0.01,
			}},
			Children: map[string]*core.NestReport{"ferret": inner.Root},
		},
	}
}

func TestTBFPathScopedTargetsInnerNest(t *testing.T) {
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	rep := nestedPipelineReport(exec, []int{1, 1, 1, 1, 1, 1})
	m := &TBF{Threads: 16, Path: "app/ferret", DisableFusion: true}
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	// The ROOT extents must be untouched; the child must be rebalanced.
	if cfg.Extents[0] != 1 {
		t.Fatalf("root touched: %v", cfg.Extents)
	}
	child := cfg.Child("ferret")
	if child == nil || sumExtents(child.Extents) <= 6 {
		t.Fatalf("inner nest not rebalanced: %v", child)
	}
}

func TestFDPPathScoped(t *testing.T) {
	exec := []float64{0.001, 0.008, 0.002, 0.002, 0.002, 0.001}
	rep := nestedPipelineReport(exec, []int{1, 1, 1, 1, 1, 1})
	m := &FDP{Threads: 12, Path: "app/ferret"}
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	child := cfg.Child("ferret")
	if child == nil || child.Extents[1] != 2 {
		t.Fatalf("bottleneck of inner nest not grown: %v", child)
	}
}

func TestPathScopedUnknownPathHolds(t *testing.T) {
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	rep := nestedPipelineReport(exec, []int{1, 1, 1, 1, 1, 1})
	for _, m := range []core.Mechanism{
		&TBF{Threads: 16, Path: "app/zzz"},
		&FDP{Threads: 16, Path: "zzz"},
		&SEDA{Path: "app/zzz"},
		&LoadProportional{Threads: 16, Path: "nope/nope"},
		&TPC{Threads: 16, Path: "app/zzz"},
		&EDP{Threads: 16, Path: "app/zzz"},
	} {
		if cfg := m.Reconfigure(rep); cfg != nil {
			t.Fatalf("%s acted on a bogus path: %v", m.Name(), cfg)
		}
	}
}

func TestChildConfigAtMaterializesNodes(t *testing.T) {
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	rep := nestedPipelineReport(exec, []int{1, 1, 1, 1, 1, 1})
	// Strip the child config so the walker must materialize it.
	rep.Config.Children = nil
	target := childConfigAt(rep.Config, rep.Root, rep.Root.Children["ferret"])
	if target == nil {
		t.Fatal("nil target")
	}
	target.Extents = []int{9}
	if rep.Config.Child("ferret") == nil || rep.Config.Child("ferret").Extents[0] != 9 {
		t.Fatal("materialized node not linked into the tree")
	}
}

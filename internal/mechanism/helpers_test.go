package mechanism

import (
	"testing"
	"testing/quick"

	"dope/internal/core"
)

// randomStages builds a stage list from fuzz bytes: even bytes SEQ, odd PAR.
func randomStages(kinds []byte) []core.StageReport {
	if len(kinds) == 0 {
		kinds = []byte{1}
	}
	if len(kinds) > 12 {
		kinds = kinds[:12]
	}
	out := make([]core.StageReport, len(kinds))
	for i, k := range kinds {
		t := core.SEQ
		if k%2 == 1 {
			t = core.PAR
		}
		out[i] = core.StageReport{Name: string(rune('a' + i)), Type: t}
	}
	return out
}

// Property: distribute gives every stage at least one worker, pins SEQ
// stages to one, and never exceeds max(budget, #stages).
func TestDistributeInvariantsProperty(t *testing.T) {
	f := func(budgetRaw uint8, kinds []byte, weightsRaw []uint8) bool {
		stages := randomStages(kinds)
		budget := int(budgetRaw) % 64
		weights := make([]float64, len(weightsRaw))
		for i, w := range weightsRaw {
			weights[i] = float64(w)
		}
		got := distribute(budget, stages, weights)
		if len(got) != len(stages) {
			return false
		}
		total := 0
		for i, e := range got {
			if e < 1 {
				return false
			}
			if stages[i].Type == core.SEQ && e != 1 {
				return false
			}
			total += e
		}
		limit := budget
		if len(stages) > limit {
			limit = len(stages)
		}
		return total <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: when the budget covers every stage, distribute uses it exactly
// (no workers silently dropped) unless MaxDoP caps bind.
func TestDistributeExactUseProperty(t *testing.T) {
	f := func(extraRaw uint8, kinds []byte) bool {
		stages := randomStages(kinds)
		hasPar := false
		for _, st := range stages {
			if st.Type == core.PAR {
				hasPar = true
			}
		}
		budget := len(stages) + int(extraRaw)%32
		got := distribute(budget, stages, nil)
		total := 0
		for _, e := range got {
			total += e
		}
		if !hasPar {
			return total == len(stages)
		}
		return total == budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clampToSpec is idempotent and respects MaxDoP.
func TestClampIdempotentProperty(t *testing.T) {
	f := func(kinds []byte, extentsRaw []int8, maxRaw uint8) bool {
		stages := randomStages(kinds)
		maxDoP := int(maxRaw)%8 + 1
		for i := range stages {
			if stages[i].Type == core.PAR {
				stages[i].MaxDoP = maxDoP
			}
		}
		extents := make([]int, len(stages))
		for i := range extents {
			if i < len(extentsRaw) {
				extents[i] = int(extentsRaw[i])
			}
		}
		once := clampToSpec(append([]int(nil), extents...), stages)
		twice := clampToSpec(append([]int(nil), once...), stages)
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
			if once[i] < 1 {
				return false
			}
			if stages[i].Type == core.PAR && once[i] > maxDoP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: maxAbsDiff is symmetric and zero only for equal vectors.
func TestMaxAbsDiffProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		ai := make([]int, len(a))
		bi := make([]int, len(b))
		for i, v := range a {
			ai[i] = int(v)
		}
		for i, v := range b {
			bi[i] = int(v)
		}
		d1, d2 := maxAbsDiff(ai, bi), maxAbsDiff(bi, ai)
		if d1 != d2 {
			return false
		}
		if len(ai) == len(bi) {
			equal := true
			for i := range ai {
				if ai[i] != bi[i] {
					equal = false
				}
			}
			if equal != (d1 == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LoadProportional never exceeds its budget and keeps SEQ
// stages at one worker, whatever the loads.
func TestLoadProportionalBudgetProperty(t *testing.T) {
	f := func(loadsRaw []uint8) bool {
		exec := []float64{0.001, 0.002, 0.002, 0.002, 0.002, 0.001}
		loads := make([]float64, 6)
		for i := 0; i < 6 && i < len(loadsRaw); i++ {
			loads[i] = float64(loadsRaw[i])
		}
		rep := pipelineReport(24, exec, []int{1, 1, 1, 1, 1, 1}, loads)
		m := &LoadProportional{Threads: 24}
		cfg := m.Reconfigure(rep)
		if cfg == nil {
			return true
		}
		total := 0
		for _, e := range cfg.Extents {
			total += e
		}
		return total <= 24 && cfg.Extents[0] == 1 && cfg.Extents[5] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package mechanism

import (
	"dope/internal/core"
)

// WQTH is the Work Queue Threshold with Hysteresis mechanism (§7.1) for the
// goal "minimize response time with N threads". It is a two-state machine:
//
//   - SEQ state (throughput mode): inner loops run sequentially and the
//     outer loop gets all N threads — the configuration that maximizes
//     throughput under heavy load.
//   - PAR state (latency mode): inner loops run with extent Mmax (the
//     largest extent whose parallel efficiency is still acceptable) and the
//     outer loop gets N/Mmax threads — the configuration that minimizes
//     per-transaction execution time under light load.
//
// It transitions SEQ→PAR after the work-queue occupancy has stayed below
// Threshold for NOff consecutive observations, and PAR→SEQ after the
// occupancy has stayed at or above Threshold for NOn consecutive
// observations. The hysteresis infers a load pattern and avoids toggling.
//
// Note the paper's naming: the machine starts in SEQ; NOff gates leaving it
// (turning inner parallelism on requires a consistently light queue) and
// NOn gates returning (turning it off requires a consistently heavy queue).
type WQTH struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Mmax is the inner-loop extent above which parallel efficiency drops
	// below 0.5 (per the paper's definition).
	Mmax int
	// Threshold is the work-queue occupancy threshold T, back-calculated
	// by the administrator from the acceptable response-time degradation.
	Threshold float64
	// NOff and NOn are the hysteresis lengths (consecutive observations).
	// Zero values default to 3.
	NOff, NOn int

	inPar      bool
	below      int
	atOrAbove  int
	haveTarget bool
}

// Name implements core.Mechanism.
func (m *WQTH) Name() string { return "WQT-H" }

// InPar reports whether the machine is currently in the PAR (latency-mode)
// state; exported for traces and tests.
func (m *WQTH) InPar() bool { return m.inPar }

// Reconfigure implements core.Mechanism.
func (m *WQTH) Reconfigure(r *core.Report) *core.Config {
	outerIdx, inner, ok := serverShape(r)
	if !ok {
		return nil
	}
	nOff, nOn := m.NOff, m.NOn
	if nOff <= 0 {
		nOff = 3
	}
	if nOn <= 0 {
		nOn = 3
	}
	occupancy := r.Root.Stages[outerIdx].Load

	if occupancy < m.Threshold {
		m.below++
		m.atOrAbove = 0
	} else {
		m.atOrAbove++
		m.below = 0
	}
	prev := m.inPar
	if !m.inPar && m.below > nOff {
		m.inPar = true
	} else if m.inPar && m.atOrAbove > nOn {
		m.inPar = false
	}
	if m.inPar == prev && m.haveTarget {
		return nil // no state change: keep the configuration
	}
	m.haveTarget = true
	return m.target(r, outerIdx, inner)
}

// target builds the configuration for the current state.
func (m *WQTH) target(r *core.Report, outerIdx int, inner *core.NestReport) *core.Config {
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	cfg := r.Config
	innerCfg := cfg.Child(inner.Name)
	if innerCfg == nil {
		innerCfg = &core.Config{}
		cfg.SetChild(inner.Name, innerCfg)
	}
	if !m.inPar {
		// Throughput mode: outer gets everything, inner sequential.
		cfg.Alt = 0
		cfg.Extents = make([]int, len(r.Root.Stages))
		for i := range cfg.Extents {
			cfg.Extents[i] = 1
		}
		cfg.Extents[outerIdx] = threads
		seq := seqAltIndex(inner.Spec)
		innerCfg.Alt = seq
		innerCfg.Extents = distribute(1, stageReportsFor(inner.Spec.Alts[seq]), nil)
		return cfg
	}
	// Latency mode: inner gets Mmax, outer gets N/Mmax.
	mmax := m.Mmax
	if mmax <= 0 {
		mmax = threads
	}
	outer := threads / mmax
	if outer < 1 {
		outer = 1
	}
	cfg.Alt = 0
	cfg.Extents = make([]int, len(r.Root.Stages))
	for i := range cfg.Extents {
		cfg.Extents[i] = 1
	}
	cfg.Extents[outerIdx] = outer
	par := parAltIndex(inner.Spec)
	innerCfg.Alt = par
	stages := inner.Stages
	if inner.AltIndex != par {
		stages = stageReportsFor(inner.Spec.Alts[par])
	}
	innerCfg.Extents = distribute(mmax, stages, execWeights(stages))
	return cfg
}

package mechanism

import (
	"dope/internal/core"
)

// Proportional is the example mechanism of the paper's Figure 10: it
// assigns each task a DoP extent proportional to the task's (normalized)
// execution time, recursing into nested loops with the share of the budget
// given to the delegating task. Tasks that take longer to execute get more
// resources.
type Proportional struct {
	// Threads is the hardware-thread budget (the administrator's N).
	Threads int
}

// Name implements core.Mechanism.
func (p *Proportional) Name() string { return "proportional" }

// Reconfigure implements core.Mechanism.
func (p *Proportional) Reconfigure(r *core.Report) *core.Config {
	if r.Root == nil {
		return nil
	}
	budget := p.Threads
	if budget <= 0 {
		budget = r.Contexts
	}
	cfg := r.Config
	p.assign(r.Root, cfg, budget)
	return cfg
}

// assign implements the recursive step of Figure 10: compute total
// execution time, give each task a share of the budget proportional to its
// time, and recurse into nested loops with the task's share.
func (p *Proportional) assign(nr *core.NestReport, cfg *core.Config, budget int) {
	if budget < 1 {
		budget = 1
	}
	weights := execWeights(nr.Stages)
	extents := distribute(budget, nr.Stages, weights)
	cfg.Alt = nr.AltIndex
	cfg.Extents = extents
	for i, st := range nr.Stages {
		if !st.HasNest {
			continue
		}
		// The delegating stage's workers each drive a private nested
		// instance, so the nested loop receives the per-worker share.
		share := budget / max(1, sumExtents(extents)) * extents[i]
		perWorker := share / max(1, extents[i])
		for name, child := range nr.Children {
			ccfg := cfg.Child(name)
			if ccfg == nil {
				ccfg = &core.Config{}
				cfg.SetChild(name, ccfg)
			}
			p.assign(child, ccfg, perWorker)
		}
	}
}

package mechanism

import (
	"testing"

	"dope/internal/core"
	"dope/internal/platform"
)

// --- report fixtures -------------------------------------------------------

// noopMake satisfies AltSpec.Make for specs used only structurally in tests.
func noopMake(item any) (*core.AltInstance, error) { return nil, nil }

// serverSpec builds the canonical two-level server shape: outer PAR stage
// "outer" nesting "inner" with a pipeline and a fused alternative.
func serverSpec() *core.NestSpec {
	inner := &core.NestSpec{Name: "inner", Alts: []*core.AltSpec{
		{Name: "pipeline", Make: noopMake, Stages: []core.StageSpec{
			{Name: "read", Type: core.SEQ},
			{Name: "work", Type: core.PAR},
			{Name: "write", Type: core.SEQ},
		}},
		{Name: "fused", Make: noopMake, Stages: []core.StageSpec{
			{Name: "all", Type: core.SEQ},
		}},
	}}
	root := &core.NestSpec{Name: "app", Alts: []*core.AltSpec{
		{Name: "outer", Make: noopMake, Stages: []core.StageSpec{
			{Name: "serve", Type: core.PAR, Nest: inner},
		}},
	}}
	return root
}

// serverReport fabricates a Report for serverSpec with the given work-queue
// occupancy and inner stage exec times.
func serverReport(contexts int, occupancy float64, innerAlt int, innerExec []float64) *core.Report {
	spec := serverSpec()
	innerSpec := spec.Alts[0].Stages[0].Nest
	cfg := core.DefaultConfig(spec)
	cfg.Child("inner").Alt = innerAlt

	alt := innerSpec.Alts[innerAlt]
	innerStages := make([]core.StageReport, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		exec := 0.001
		if i < len(innerExec) {
			exec = innerExec[i]
		}
		innerStages[i] = core.StageReport{
			Name: st.Name, Type: st.Type, Extent: 1,
			ExecTime: exec, MeanExecTime: exec, Iterations: 100, Rate: 10,
		}
	}
	rep := &core.Report{
		Contexts: contexts,
		Features: platform.NewFeatures(),
		Config:   cfg,
		Root: &core.NestReport{
			Name: "app", Path: "app", Spec: spec, AltIndex: 0, AltName: "outer",
			Stages: []core.StageReport{{
				Name: "serve", Type: core.PAR, HasNest: true, Extent: 1,
				Load: occupancy, Iterations: 100, ExecTime: 0.01, MeanExecTime: 0.01,
			}},
			Children: map[string]*core.NestReport{
				"inner": {
					Name: "inner", Path: "app/inner", Spec: innerSpec,
					AltIndex: innerAlt, AltName: alt.Name,
					Stages: innerStages,
				},
			},
		},
	}
	return rep
}

// pipelineSpec builds a single-level 6-stage ferret-like pipeline with a
// fused alternative.
func pipelineSpec() *core.NestSpec {
	return &core.NestSpec{Name: "ferret", Alts: []*core.AltSpec{
		{Name: "pipeline", Make: noopMake, Stages: []core.StageSpec{
			{Name: "load", Type: core.SEQ},
			{Name: "seg", Type: core.PAR},
			{Name: "extract", Type: core.PAR},
			{Name: "index", Type: core.PAR},
			{Name: "rank", Type: core.PAR},
			{Name: "out", Type: core.SEQ},
		}},
		{Name: "fused", Make: noopMake, Stages: []core.StageSpec{
			{Name: "in", Type: core.SEQ},
			{Name: "work", Type: core.PAR},
			{Name: "out", Type: core.SEQ},
		}},
	}}
}

// pipelineReport fabricates a Report for pipelineSpec (alternative 0) with
// the given exec times, extents and loads.
func pipelineReport(contexts int, exec []float64, extents []int, loads []float64) *core.Report {
	spec := pipelineSpec()
	cfg := core.DefaultConfig(spec)
	copy(cfg.Extents, extents)
	alt := spec.Alts[0]
	stages := make([]core.StageReport, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		e := 1
		if i < len(extents) {
			e = extents[i]
		}
		var load float64
		if i < len(loads) {
			load = loads[i]
		}
		stages[i] = core.StageReport{
			Name: st.Name, Type: st.Type, Extent: e,
			ExecTime: exec[i], MeanExecTime: exec[i],
			Iterations: 100, Load: load,
		}
	}
	return &core.Report{
		Contexts: contexts,
		Features: platform.NewFeatures(),
		Config:   cfg,
		Root: &core.NestReport{
			Name: "ferret", Path: "ferret", Spec: spec,
			AltIndex: 0, AltName: "pipeline", Stages: stages,
		},
	}
}

// --- distribute ------------------------------------------------------------

func TestDistributeRespectsBudgetAndSEQ(t *testing.T) {
	stages := []core.StageReport{
		{Name: "a", Type: core.SEQ},
		{Name: "b", Type: core.PAR},
		{Name: "c", Type: core.PAR},
	}
	got := distribute(10, stages, []float64{5, 1, 3})
	if got[0] != 1 {
		t.Fatalf("SEQ stage extent = %d", got[0])
	}
	if got[1]+got[2] != 9 {
		t.Fatalf("PAR total = %d, want 9", got[1]+got[2])
	}
	if got[2] <= got[1] {
		t.Fatalf("heavier stage should get more: %v", got)
	}
}

func TestDistributeSmallBudget(t *testing.T) {
	stages := []core.StageReport{
		{Name: "a", Type: core.PAR},
		{Name: "b", Type: core.PAR},
	}
	got := distribute(0, stages, nil)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("everyone gets at least 1: %v", got)
	}
}

func TestDistributeEqualWeightsWhenNil(t *testing.T) {
	stages := []core.StageReport{
		{Name: "a", Type: core.PAR},
		{Name: "b", Type: core.PAR},
	}
	got := distribute(8, stages, nil)
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("equal split expected: %v", got)
	}
}

func TestDistributeHonorsMaxDoP(t *testing.T) {
	stages := []core.StageReport{
		{Name: "a", Type: core.PAR, MaxDoP: 2},
		{Name: "b", Type: core.PAR},
	}
	got := distribute(10, stages, []float64{100, 1})
	if got[0] > 2 {
		t.Fatalf("MaxDoP violated: %v", got)
	}
}

func TestDistributeExactApportionment(t *testing.T) {
	stages := []core.StageReport{
		{Name: "a", Type: core.PAR},
		{Name: "b", Type: core.PAR},
		{Name: "c", Type: core.PAR},
	}
	got := distribute(24, stages, []float64{1, 1, 1})
	if got[0]+got[1]+got[2] != 24 {
		t.Fatalf("total = %d, want 24: %v", got[0]+got[1]+got[2], got)
	}
}

// --- alternative selection ---------------------------------------------------

func TestAltSelectionHelpers(t *testing.T) {
	spec := pipelineSpec()
	if got := seqAltIndex(spec); got != 1 {
		t.Fatalf("seqAltIndex = %d", got)
	}
	if got := parAltIndex(spec); got != 0 {
		t.Fatalf("parAltIndex = %d", got)
	}
}

// --- Proportional ------------------------------------------------------------

func TestProportionalMatchesFigure10(t *testing.T) {
	// Inner pipeline with exec times 1:6:1 on an 8-thread budget should
	// give the transform-like stage most of the workers.
	rep := pipelineReport(8, []float64{0.001, 0.006, 0.001, 0.001, 0.001, 0.001},
		[]int{1, 1, 1, 1, 1, 1}, nil)
	p := &Proportional{Threads: 8}
	cfg := p.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if cfg.Extents[1] < cfg.Extents[2] || cfg.Extents[1] < 2 {
		t.Fatalf("heaviest stage underprovisioned: %v", cfg.Extents)
	}
	if sumExtents(cfg.Extents) > 8 {
		t.Fatalf("budget exceeded: %v", cfg.Extents)
	}
	if cfg.Extents[0] != 1 || cfg.Extents[5] != 1 {
		t.Fatalf("SEQ stages must stay 1: %v", cfg.Extents)
	}
}

func TestProportionalRecursesIntoNests(t *testing.T) {
	rep := serverReport(24, 0, 0, []float64{0.001, 0.008, 0.001})
	p := &Proportional{Threads: 24}
	cfg := p.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	inner := cfg.Child("inner")
	if inner == nil {
		t.Fatal("inner config missing")
	}
	if len(inner.Extents) != 3 {
		t.Fatalf("inner extents = %v", inner.Extents)
	}
}

// --- WQT-H -------------------------------------------------------------------

func TestWQTHStartsInSeqState(t *testing.T) {
	m := &WQTH{Threads: 24, Mmax: 8, Threshold: 5, NOff: 2, NOn: 2}
	rep := serverReport(24, 10 /* heavy */, 1, []float64{0.001})
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("first call should emit the SEQ-state config")
	}
	if m.InPar() {
		t.Fatal("must start in SEQ state")
	}
	if cfg.Extents[0] != 24 {
		t.Fatalf("outer extent = %d, want 24", cfg.Extents[0])
	}
	inner := cfg.Child("inner")
	if inner.Alt != 1 {
		t.Fatalf("inner alt = %d, want fused", inner.Alt)
	}
}

func TestWQTHTransitionsWithHysteresis(t *testing.T) {
	m := &WQTH{Threads: 24, Mmax: 8, Threshold: 5, NOff: 3, NOn: 3}
	light := func() *core.Report { return serverReport(24, 1, 1, []float64{0.001}) }
	heavy := func() *core.Report { return serverReport(24, 50, 0, []float64{0.001, 0.006, 0.001}) }

	m.Reconfigure(light()) // seeds SEQ config, below=1
	for i := 0; i < 2; i++ {
		m.Reconfigure(light())
	}
	if m.InPar() {
		t.Fatal("should not flip before hysteresis expires")
	}
	cfg := m.Reconfigure(light()) // 4th consecutive light: below > 3
	if !m.InPar() {
		t.Fatal("should be in PAR after hysteresis")
	}
	if cfg == nil {
		t.Fatal("state flip must emit a config")
	}
	if cfg.Extents[0] != 3 {
		t.Fatalf("outer extent = %d, want 24/8 = 3", cfg.Extents[0])
	}
	inner := cfg.Child("inner")
	if inner.Alt != 0 {
		t.Fatalf("inner alt = %d, want pipeline", inner.Alt)
	}
	if sumExtents(inner.Extents) != 8 {
		t.Fatalf("inner total = %d, want Mmax=8", sumExtents(inner.Extents))
	}

	// Flip back under sustained heavy load.
	for i := 0; i < 3; i++ {
		if m.Reconfigure(heavy()) != nil && i < 3 {
			// mid-hysteresis emissions are allowed to be nil only
		}
	}
	cfg = m.Reconfigure(heavy())
	if m.InPar() {
		t.Fatal("should return to SEQ after sustained heavy load")
	}
	if cfg == nil || cfg.Extents[0] != 24 {
		t.Fatalf("SEQ config = %v", cfg)
	}
}

func TestWQTHNoServerShape(t *testing.T) {
	m := &WQTH{Threads: 8, Mmax: 4, Threshold: 2}
	rep := pipelineReport(8, []float64{0.001, 0.002, 0.001, 0.001, 0.001, 0.001},
		[]int{1, 1, 1, 1, 1, 1}, nil)
	if m.Reconfigure(rep) != nil {
		t.Fatal("flat pipeline has no server shape; expected nil")
	}
}

// --- WQ-Linear -----------------------------------------------------------------

func TestWQLinearExtentFormula(t *testing.T) {
	m := &WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14}
	// k = (8-1)/14 = 0.5; extent = 8 - 0.5*WQo.
	cases := []struct {
		occ  float64
		want int
	}{
		{0, 8}, {2, 7}, {8, 4}, {14, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := m.Extent(c.occ); got != c.want {
			t.Errorf("Extent(%v) = %d, want %d", c.occ, got, c.want)
		}
	}
}

func TestWQLinearDefaults(t *testing.T) {
	m := &WQLinear{Threads: 24, Mmax: 8} // Mmin, Qmax default
	if got := m.Extent(0); got != 8 {
		t.Fatalf("Extent(0) = %d", got)
	}
	if got := m.Extent(1e9); got != 1 {
		t.Fatalf("Extent(inf) = %d", got)
	}
}

func TestWQLinearReconfigure(t *testing.T) {
	m := &WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14}
	rep := serverReport(24, 2, 0, []float64{0.001, 0.006, 0.001})
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	// occupancy 2 -> extent 7 -> outer 24/7 = 3.
	if cfg.Extents[0] != 3 {
		t.Fatalf("outer = %d", cfg.Extents[0])
	}
	inner := cfg.Child("inner")
	if inner.Alt != 0 || sumExtents(inner.Extents) != 7 {
		t.Fatalf("inner = %+v", inner)
	}

	// Saturated queue: inner sequential, outer 24.
	rep = serverReport(24, 100, 0, []float64{0.001, 0.006, 0.001})
	cfg = m.Reconfigure(rep)
	if cfg.Extents[0] != 24 || cfg.Child("inner").Alt != 1 {
		t.Fatalf("saturated config = %v", cfg)
	}
}

// --- TB / TBF -------------------------------------------------------------------

func TestTBFBalancesByExecTime(t *testing.T) {
	m := &TBF{Threads: 24, DisableFusion: true}
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	rep := pipelineReport(24, exec, []int{1, 1, 1, 1, 1, 1}, nil)
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if cfg.Alt != 0 {
		t.Fatalf("TB must not fuse; alt = %d", cfg.Alt)
	}
	for i := 1; i <= 4; i++ {
		if cfg.Extents[i] < 4 {
			t.Fatalf("parallel stages underprovisioned: %v", cfg.Extents)
		}
	}
	if cfg.Extents[0] != 1 || cfg.Extents[5] != 1 {
		t.Fatalf("SEQ stages must stay 1: %v", cfg.Extents)
	}
}

func TestTBFFusesOnImbalance(t *testing.T) {
	m := &TBF{Threads: 24}
	// A SEQ stage dominates: no assignment can balance the pipeline, so
	// capacity imbalance stays > 0.5 and TBF must fuse.
	exec := []float64{0.100, 0.001, 0.001, 0.001, 0.001, 0.001}
	rep := pipelineReport(24, exec, []int{1, 1, 1, 1, 1, 1}, nil)
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if cfg.Alt != 1 {
		t.Fatalf("expected fusion (alt 1), got alt %d", cfg.Alt)
	}
}

func TestTBFHoldsWithFewSamples(t *testing.T) {
	m := &TBF{Threads: 24}
	rep := pipelineReport(24, []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001},
		[]int{1, 1, 1, 1, 1, 1}, nil)
	for i := range rep.Root.Stages {
		rep.Root.Stages[i].Iterations = 2
	}
	if m.Reconfigure(rep) != nil {
		t.Fatal("should wait for MinSamples")
	}
}

func TestTBNameAndTBFName(t *testing.T) {
	if (&TBF{}).Name() != "TBF" || (&TBF{DisableFusion: true}).Name() != "TB" {
		t.Fatal("names wrong")
	}
}

// --- FDP ------------------------------------------------------------------------

func TestFDPClimbsTowardBottleneck(t *testing.T) {
	m := &FDP{Threads: 12}
	exec := []float64{0.001, 0.008, 0.002, 0.002, 0.002, 0.001}
	extents := []int{1, 1, 1, 1, 1, 1}
	rep := pipelineReport(12, exec, extents, nil)
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if cfg.Extents[1] != 2 {
		t.Fatalf("bottleneck stage should grow first: %v", cfg.Extents)
	}
}

func TestFDPRevertsOnRegression(t *testing.T) {
	m := &FDP{Threads: 12}
	exec := []float64{0.001, 0.008, 0.002, 0.002, 0.002, 0.001}
	rep := pipelineReport(12, exec, []int{1, 1, 1, 1, 1, 1}, nil)
	cfg := m.Reconfigure(rep) // proposes [1,2,1,1,1,1]
	if cfg == nil {
		t.Fatal("no first step")
	}
	// Next report: throughput got WORSE (exec times inflated).
	worse := []float64{0.001, 0.030, 0.002, 0.002, 0.002, 0.001}
	rep2 := pipelineReport(12, worse, []int{1, 2, 1, 1, 1, 1}, nil)
	cfg2 := m.Reconfigure(rep2)
	if cfg2 == nil {
		t.Fatal("regression must revert")
	}
	if cfg2.Extents[1] != 1 {
		t.Fatalf("expected revert to extent 1: %v", cfg2.Extents)
	}
	// Stalled: the first post-revert observation seeds the stall baseline,
	// and identical conditions thereafter produce no further moves.
	rep3 := pipelineReport(12, worse, []int{1, 1, 1, 1, 1, 1}, nil)
	if m.Reconfigure(rep3) != nil {
		t.Fatal("stalled FDP should hold while seeding its baseline")
	}
	rep4 := pipelineReport(12, worse, []int{1, 1, 1, 1, 1, 1}, nil)
	if m.Reconfigure(rep4) != nil {
		t.Fatal("stalled FDP should hold under identical conditions")
	}
}

func TestFDPMovesWorkerWhenBudgetExhausted(t *testing.T) {
	// Budget of 9 fully used (1+3+2+1+1+1); stage 1 is the bottleneck and
	// stage 2 is fast and over-provisioned, so FDP moves a worker 2 -> 1.
	m := &FDP{Threads: 9}
	exec := []float64{0.001, 0.010, 0.001, 0.001, 0.001, 0.001}
	rep := pipelineReport(9, exec, []int{1, 3, 2, 1, 1, 1}, nil)
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if sumExtents(cfg.Extents) > 9 {
		t.Fatalf("budget exceeded: %v", cfg.Extents)
	}
	if cfg.Extents[1] != 4 || cfg.Extents[2] != 1 {
		t.Fatalf("expected a worker moved from stage 2 to stage 1: %v", cfg.Extents)
	}
}

// --- SEDA ------------------------------------------------------------------------

func TestSEDAGrowsLoadedStages(t *testing.T) {
	m := &SEDA{HighWater: 4, LowWater: 1}
	exec := []float64{0.001, 0.002, 0.002, 0.002, 0.002, 0.001}
	loads := []float64{0, 10, 0.5, 10, 0, 0}
	rep := pipelineReport(24, exec, []int{1, 2, 2, 2, 2, 1}, loads)
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("nil config")
	}
	if cfg.Extents[1] != 3 || cfg.Extents[3] != 3 {
		t.Fatalf("loaded stages should grow: %v", cfg.Extents)
	}
	if cfg.Extents[2] != 1 {
		t.Fatalf("idle stage should shrink: %v", cfg.Extents)
	}
	// SEDA is uncoordinated: total may exceed any global budget.
}

func TestSEDANoChangeReturnsNil(t *testing.T) {
	m := &SEDA{HighWater: 4, LowWater: 1}
	exec := []float64{0.001, 0.002, 0.002, 0.002, 0.002, 0.001}
	loads := []float64{2, 2, 2, 2, 2, 2}
	rep := pipelineReport(24, exec, []int{1, 2, 2, 2, 2, 1}, loads)
	if m.Reconfigure(rep) != nil {
		t.Fatal("in-band loads should change nothing")
	}
}

// --- TPC ------------------------------------------------------------------------

func TestTPCRampsUntilPowerBinds(t *testing.T) {
	m := &TPC{Threads: 24, Budget: 720}
	feat := platform.NewFeatures()
	power := 620.0
	feat.Register(platform.FeatureSystemPower, func() float64 { return power })

	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	extents := []int{1, 1, 1, 1, 1, 1}
	for step := 0; step < 6; step++ {
		rep := pipelineReport(24, exec, extents, nil)
		rep.Features = feat
		cfg := m.Reconfigure(rep)
		if cfg == nil {
			break
		}
		copy(extents, cfg.Extents)
		power += 8 // each worker adds draw
	}
	if sumExtents(extents) <= 6 {
		t.Fatalf("TPC never ramped: %v", extents)
	}
	if m.Phase() != "ramp" && m.Phase() != "explore" {
		t.Fatalf("phase = %s", m.Phase())
	}
}

func TestTPCRetreatsOnOvershoot(t *testing.T) {
	m := &TPC{Threads: 24, Budget: 700}
	feat := platform.NewFeatures()
	feat.Register(platform.FeatureSystemPower, func() float64 { return 750 }) // over budget

	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	extents := []int{1, 4, 4, 4, 4, 1}
	rep := pipelineReport(24, exec, extents, nil)
	rep.Features = feat
	cfg := m.Reconfigure(rep)
	if cfg == nil {
		t.Fatal("overshoot must trigger a retreat")
	}
	if sumExtents(cfg.Extents) >= sumExtents(extents) {
		t.Fatalf("retreat did not shrink: %v -> %v", extents, cfg.Extents)
	}
}

func TestTPCStabilizes(t *testing.T) {
	m := &TPC{Threads: 8, Budget: 0 /* unconstrained */, ExploreSteps: 2}
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	extents := []int{1, 1, 1, 1, 1, 1}
	for step := 0; step < 40 && m.Phase() != "stable"; step++ {
		rep := pipelineReport(8, exec, extents, nil)
		cfg := m.Reconfigure(rep)
		if cfg != nil {
			copy(extents, cfg.Extents)
		}
	}
	if m.Phase() != "stable" {
		t.Fatalf("TPC never stabilized, phase = %s", m.Phase())
	}
	if sumExtents(extents) > 8 {
		t.Fatalf("budget exceeded: %v", extents)
	}
}

func TestTPCWithoutPowerFeature(t *testing.T) {
	m := &TPC{Threads: 8}
	exec := []float64{0.001, 0.004, 0.004, 0.004, 0.004, 0.001}
	rep := pipelineReport(8, exec, []int{1, 1, 1, 1, 1, 1}, nil)
	if cfg := m.Reconfigure(rep); cfg == nil {
		t.Fatal("no power feature should still allow ramping")
	}
}

package mechanism

import (
	"dope/internal/core"
)

// LoadProportional allocates the thread budget across a pipeline's stages
// proportionally to each task's current load (its in-queue occupancy),
// with every stage keeping at least one worker. This is the policy behind
// the paper's Figure 12 result: "DoPE achieves a much better [response
// time] characteristic by allocating threads proportional to load on each
// task." Unlike SEDA it respects a global budget.
type LoadProportional struct {
	// Threads is the hardware-thread budget N.
	Threads int
	// Path selects the nest to balance; empty means the root nest.
	Path string
	// MinSamples gates acting before the monitors have signal (default 4).
	MinSamples uint64
}

// Name implements core.Mechanism.
func (m *LoadProportional) Name() string { return "load-proportional" }

// Reconfigure implements core.Mechanism.
func (m *LoadProportional) Reconfigure(r *core.Report) *core.Config {
	nest := r.Root
	if m.Path != "" {
		nest = r.Nest(m.Path)
	}
	if nest == nil {
		return nil
	}
	minSamples := m.MinSamples
	if minSamples == 0 {
		minSamples = 4
	}
	for _, st := range nest.Stages {
		if st.Iterations < minSamples {
			return nil
		}
	}
	threads := m.Threads
	if threads <= 0 {
		threads = r.Contexts
	}
	// Additive smoothing: an instantaneously empty queue must not starve
	// its stage to a single worker (queue occupancies swing on the control
	// period), so every stage keeps a baseline share.
	weights := make([]float64, len(nest.Stages))
	for i, st := range nest.Stages {
		weights[i] = st.Load + 1
	}
	cfg := r.Config
	target := cfg
	if m.Path != "" && nest != r.Root {
		target = childConfigAt(cfg, r.Root, nest)
		if target == nil {
			return nil
		}
	}
	target.Alt = nest.AltIndex
	target.Extents = distribute(threads, nest.Stages, weights)
	return cfg
}

package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dope/internal/platform"
)

func TestModelLinearRange(t *testing.T) {
	m := NewModel(24, 600, 800)
	if m.Watts(0) != 600 {
		t.Errorf("idle watts = %v", m.Watts(0))
	}
	if m.Watts(24) != 800 {
		t.Errorf("peak watts = %v", m.Watts(24))
	}
	if got := m.Watts(12); math.Abs(got-700) > 1e-9 {
		t.Errorf("midpoint watts = %v", got)
	}
}

func TestModelClamps(t *testing.T) {
	m := NewModel(4, 100, 200)
	if m.Watts(-3) != 100 {
		t.Errorf("negative busy: %v", m.Watts(-3))
	}
	if m.Watts(99) != 200 {
		t.Errorf("over-busy: %v", m.Watts(99))
	}
}

func TestDefaultModelMatchesPaperCalibration(t *testing.T) {
	// §8.2.3: 90% of peak total power == 60% of the dynamic CPU range.
	m := NewDefaultModel(24)
	target := 0.9 * m.Peak()
	frac := (target - m.Idle()) / (m.Peak() - m.Idle())
	if math.Abs(frac-0.6) > 1e-9 {
		t.Fatalf("90%% of peak sits at %.2f of dynamic range, want 0.60", frac)
	}
}

func TestBudgetToContexts(t *testing.T) {
	m := NewModel(24, 600, 800)
	cases := []struct {
		budget float64
		want   int
	}{
		{599, 0},   // below idle: nothing runs
		{600, 0},   // exactly idle: no dynamic headroom
		{700, 12},  // halfway up the range
		{800, 24},  // full budget
		{1000, 24}, // clamped at machine size
	}
	for _, c := range cases {
		if got := m.BudgetToContexts(c.budget); got != c.want {
			t.Errorf("BudgetToContexts(%v) = %d, want %d", c.budget, got, c.want)
		}
	}
}

func TestModelPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero contexts", func() { NewModel(0, 1, 2) })
	mustPanic("peak<idle", func() { NewModel(4, 5, 2) })
	mustPanic("negative idle", func() { NewModel(4, -1, 2) })
}

func TestPDURateLimit(t *testing.T) {
	clock := platform.NewVirtualClock(time.Unix(0, 0))
	val := 100.0
	pdu := NewPDU(func() float64 { return val }, DefaultSamplePeriod, clock)

	if got := pdu.Read(); got != 100 {
		t.Fatalf("first read = %v", got)
	}
	val = 200
	if got := pdu.Read(); got != 100 {
		t.Fatalf("read within period should be stale, got %v", got)
	}
	clock.Advance(DefaultSamplePeriod)
	if got := pdu.Read(); got != 200 {
		t.Fatalf("read after period = %v", got)
	}
	if pdu.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", pdu.Samples())
	}
}

func TestPDUSamplingRateMatchesPaper(t *testing.T) {
	// 13 samples per minute: over one simulated minute of 1 Hz polling we
	// must collect at most 13+1 fresh samples.
	clock := platform.NewVirtualClock(time.Unix(0, 0))
	pdu := NewPDU(func() float64 { return 1 }, DefaultSamplePeriod, clock)
	for i := 0; i < 60; i++ {
		pdu.Read()
		clock.Advance(time.Second)
	}
	if pdu.Samples() > 14 {
		t.Fatalf("samples = %d, want <= 14 per minute", pdu.Samples())
	}
	if pdu.Samples() < 12 {
		t.Fatalf("samples = %d, want >= 12 per minute", pdu.Samples())
	}
}

func TestPDUUnlimited(t *testing.T) {
	n := 0
	pdu := NewPDU(func() float64 { n++; return float64(n) }, 0, platform.WallClock{})
	pdu.Read()
	pdu.Read()
	if pdu.Samples() != 2 {
		t.Fatalf("unlimited PDU should sample every read, got %d", pdu.Samples())
	}
}

func TestPDUFeatureCB(t *testing.T) {
	f := platform.NewFeatures()
	pdu := NewPDU(func() float64 { return 42 }, 0, nil)
	f.Register(platform.FeatureSystemPower, pdu.FeatureCB())
	v, err := f.Value(platform.FeatureSystemPower)
	if err != nil || v != 42 {
		t.Fatalf("feature = %v, %v", v, err)
	}
}

// Property: Watts is monotone nondecreasing in busy and always within
// [idle, peak].
func TestModelMonotoneProperty(t *testing.T) {
	f := func(nRaw uint8, idleRaw, spanRaw uint16) bool {
		n := int(nRaw)%32 + 1
		idle := float64(idleRaw)
		peak := idle + float64(spanRaw)
		m := NewModel(n, idle, peak)
		prev := math.Inf(-1)
		for b := -1; b <= n+1; b++ {
			w := m.Watts(b)
			if w < idle-1e-9 || w > peak+1e-9 || w < prev-1e-9 {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BudgetToContexts never returns a context count whose draw
// exceeds the budget (when any count is feasible).
func TestBudgetSafetyProperty(t *testing.T) {
	f := func(nRaw uint8, budgetRaw uint16) bool {
		n := int(nRaw)%32 + 1
		m := NewModel(n, 600, 800)
		budget := float64(budgetRaw)
		k := m.BudgetToContexts(budget)
		if k == 0 {
			return true
		}
		return m.Watts(k) <= budget+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyMeterIntegration(t *testing.T) {
	clock := platform.NewVirtualClock(time.Unix(0, 0))
	m := NewEnergyMeter(clock)
	m.Observe(100) // 100 W from t=0
	clock.Advance(10 * time.Second)
	m.Observe(200) // charged 100 W × 10 s = 1000 J; now 200 W
	clock.Advance(5 * time.Second)
	m.Observe(0) // charged 200 W × 5 s = 1000 J
	if got := m.Joules(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("joules = %v, want 2000", got)
	}
	clock.Advance(time.Hour) // zero draw accrues nothing
	m.Observe(0)
	if got := m.Joules(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("joules after idle = %v", got)
	}
}

func TestEnergyMeterDefaults(t *testing.T) {
	m := NewEnergyMeter(nil)
	if m.Joules() != 0 {
		t.Fatal("fresh meter should be zero")
	}
	m.Observe(500)
	if m.Joules() != 0 {
		t.Fatal("first observation charges nothing")
	}
}

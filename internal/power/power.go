// Package power simulates the power-measurement substrate of the paper's
// testbed: a full-system power model driven by how many hardware contexts
// are active, observed through a power distribution unit (PDU) with a
// limited sampling rate.
//
// The paper measured full-system power with an APC AP7892 PDU at its maximum
// rate of 13 samples per minute, and notes that "90% of peak total power
// corresponds to 60% of peak power in the dynamic CPU range (all cores idle
// to all cores active)". Model reproduces both facts:
//
//   - Power(busy) = Idle + (Peak-Idle) * busy/nContexts  (linear CPU range)
//   - With default calibration, Idle = 0.75*Peak so that the 90%-of-peak
//     target sits at 60% of the dynamic range, matching §8.2.3.
//   - The PDU wrapper only refreshes its reading every SamplePeriod; between
//     samples callers see the stale value, which is precisely the controller
//     lag the paper discusses.
package power

import (
	"math"
	"sync"
	"time"

	"dope/internal/platform"
)

// Model converts context occupancy into full-system watts. Safe for
// concurrent use (it is stateless after construction).
type Model struct {
	idleW    float64
	peakW    float64
	contexts int
}

// DefaultPeakWatts matches the evaluation platform's scale: the paper's
// power plot (Figure 14) tops out near 800 W for the 24-core machine.
const DefaultPeakWatts = 800.0

// NewModel returns a power model for a machine with n contexts, idle draw
// idleW and all-cores-active draw peakW. It panics on non-physical
// parameters (peak below idle, or n < 1): these are construction-time
// programming errors.
func NewModel(n int, idleW, peakW float64) *Model {
	if n < 1 {
		panic("power: need at least one context")
	}
	if peakW < idleW || idleW < 0 {
		panic("power: peak watts must be >= idle watts >= 0")
	}
	return &Model{idleW: idleW, peakW: peakW, contexts: n}
}

// NewDefaultModel returns the calibration used throughout the experiments:
// idle = 75% of peak, so 90% of peak power equals 60% of the dynamic range,
// as reported in §8.2.3 of the paper.
func NewDefaultModel(n int) *Model {
	return NewModel(n, 0.75*DefaultPeakWatts, DefaultPeakWatts)
}

// Watts returns the instantaneous system draw with busy active contexts.
// busy is clamped to [0, n].
func (m *Model) Watts(busy int) float64 {
	if busy < 0 {
		busy = 0
	}
	if busy > m.contexts {
		busy = m.contexts
	}
	return m.idleW + (m.peakW-m.idleW)*float64(busy)/float64(m.contexts)
}

// Idle returns the all-idle draw in watts.
func (m *Model) Idle() float64 { return m.idleW }

// Peak returns the all-active draw in watts.
func (m *Model) Peak() float64 { return m.peakW }

// Contexts returns the number of contexts the model was built for.
func (m *Model) Contexts() int { return m.contexts }

// BudgetToContexts returns the largest number of busy contexts whose draw
// does not exceed budget watts. Returns 0 when even idle exceeds the budget.
func (m *Model) BudgetToContexts(budget float64) int {
	if budget < m.idleW {
		return 0
	}
	frac := (budget - m.idleW) / (m.peakW - m.idleW)
	n := int(math.Floor(frac*float64(m.contexts) + 1e-9))
	if n > m.contexts {
		n = m.contexts
	}
	return n
}

// EnergyMeter integrates a power signal over time into joules. Drive it by
// calling Observe with the instantaneous draw whenever the draw changes (or
// periodically); the meter charges the previous draw for the elapsed
// interval. Safe for concurrent use.
type EnergyMeter struct {
	clock platform.Clock

	mu      sync.Mutex
	joules  float64
	lastW   float64
	lastAt  time.Time
	started bool
}

// NewEnergyMeter returns a meter using clock (nil = wall clock).
func NewEnergyMeter(clock platform.Clock) *EnergyMeter {
	if clock == nil {
		clock = platform.WallClock{}
	}
	return &EnergyMeter{clock: clock}
}

// Observe charges the previously observed draw for the time since the last
// observation, then records watts as the current draw.
func (m *EnergyMeter) Observe(watts float64) {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		m.joules += m.lastW * now.Sub(m.lastAt).Seconds()
	}
	m.lastW = watts
	m.lastAt = now
	m.started = true
}

// Joules returns the energy consumed up to the last observation.
func (m *EnergyMeter) Joules() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joules
}

// PDU wraps a power source with the sampling-rate limit of a real power
// distribution unit. Reads between samples return the last sampled value.
// Safe for concurrent use.
type PDU struct {
	source func() float64
	period time.Duration
	clock  platform.Clock

	mu       sync.Mutex
	last     float64
	lastAt   time.Time
	hasRead  bool
	nSamples uint64
}

// DefaultSamplePeriod is the paper's AP7892 limit: 13 samples per minute.
const DefaultSamplePeriod = time.Minute / 13

// NewPDU returns a PDU that samples source at most once per period using
// clock for time. A period of 0 or less disables rate limiting.
func NewPDU(source func() float64, period time.Duration, clock platform.Clock) *PDU {
	if clock == nil {
		clock = platform.WallClock{}
	}
	return &PDU{source: source, period: period, clock: clock}
}

// Read returns the PDU's current reading, refreshing from the source only if
// the sampling period has elapsed since the previous refresh.
func (p *PDU) Read() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	if !p.hasRead || p.period <= 0 || now.Sub(p.lastAt) >= p.period {
		p.last = p.source()
		p.lastAt = now
		p.hasRead = true
		p.nSamples++
	}
	return p.last
}

// Samples returns how many times the underlying source was actually sampled.
func (p *PDU) Samples() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nSamples
}

// FeatureCB adapts the PDU into a platform feature callback suitable for
// Features.Register(platform.FeatureSystemPower, ...).
func (p *PDU) FeatureCB() platform.FeatureCB {
	return func() float64 { return p.Read() }
}

package padcheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/padcheck"
)

func TestPadcheck(t *testing.T) {
	analysistest.Run(t, "../testdata", padcheck.Analyzer, "padcheck")
}

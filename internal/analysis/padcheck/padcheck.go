// Package padcheck verifies that cache-line padding does what its author
// believed. A struct that carries a blank `_ [N]byte` padding array has
// opted into manual 64-byte layout, and the analyzer holds it to three
// rules, computed under 64-bit gc struct layout:
//
//  1. every padding array must end exactly on a 64-byte boundary — a pad
//     sized against a stale field list leaves the "isolated" fields
//     sharing their line with whatever follows;
//  2. a padded struct used as an array or slice element must have a total
//     size that is a multiple of 64, or consecutive elements shift against
//     line boundaries and the padding isolates nothing;
//  3. in a padded array/slice element type — the sharded/per-slot shape —
//     two sync/atomic fields inside one 64-byte line ping-pong the line
//     between the cores that own neighboring slots: a false-sharing
//     finding, reported once per overcrowded line.
//
// Unpadded structs are never checked: the opt-in is the padding array
// itself, so ordinary structs that happen to hold atomics stay silent.
package padcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "padcheck",
	Doc: "verify cache-line padding arrays: pads must end on 64-byte " +
		"boundaries, padded array/slice element structs must be 64-byte " +
		"multiples, and one line of a padded element type must not hold two " +
		"sync/atomic fields (false sharing)",
	Run: run,
}

const lineSize = 64

// sizes64 is the layout the padding was written for: 64-bit gc targets.
var sizes64 = types.SizesFor("gc", "amd64")

func run(pass *framework.Pass) error {
	// Everything named-or-anonymous that is the element type of some array
	// or slice mentioned in this package. Named elements are collected as
	// their TypeName; anonymous ones as the syntactic StructType node.
	elemNames := make(map[*types.TypeName]bool)
	elemNodes := make(map[*ast.StructType]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok {
				return true
			}
			elt := ast.Unparen(at.Elt)
			if st, ok := elt.(*ast.StructType); ok {
				elemNodes[st] = true
				return true
			}
			if t := pass.TypesInfo.TypeOf(elt); t != nil {
				if named, ok := t.(*types.Named); ok {
					elemNames[named.Obj()] = true
				}
			}
			return true
		})
	}

	seen := make(map[*types.Struct]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var node *ast.StructType
			var name string
			isElem := false
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				node = st
				name = n.Name.Name
				if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.TypeName); ok {
					isElem = elemNames[obj]
				}
			case *ast.StructType:
				node = n
				name = "anonymous struct"
				isElem = elemNodes[n]
			default:
				return true
			}
			tv, ok := pass.TypesInfo.Types[node]
			if !ok {
				return true
			}
			st, ok := tv.Type.Underlying().(*types.Struct)
			if !ok || seen[st] {
				return true
			}
			seen[st] = true
			check(pass, name, st, isElem)
			return true
		})
	}
	return nil
}

// check applies the three rules to one struct layout.
func check(pass *framework.Pass, name string, st *types.Struct, isElem bool) {
	fields := make([]*types.Var, st.NumFields())
	padded := false
	for i := range fields {
		fields[i] = st.Field(i)
		if isPadField(fields[i]) {
			padded = true
		}
	}
	if !padded || len(fields) == 0 {
		return
	}
	offsets := sizes64.Offsetsof(fields)
	size := sizes64.Sizeof(st)

	// Rule 1: pads end on line boundaries.
	for i, f := range fields {
		if !isPadField(f) {
			continue
		}
		end := offsets[i] + sizes64.Sizeof(f.Type())
		if end%lineSize != 0 {
			pass.Reportf(f.Pos(),
				"padding array of %s ends at offset %d, not a 64-byte boundary; the fields it should isolate share their cache line",
				name, end)
		}
	}

	if !isElem {
		return
	}

	// Rule 2: element structs tile cache lines exactly.
	if size%lineSize != 0 {
		pass.Reportf(st.Field(0).Pos(),
			"padded struct %s is %d bytes but is used as an array/slice element; size must be a multiple of 64 or elements shift across cache lines",
			name, size)
	}

	// Rule 3: one line of an element struct holds at most one atomic field.
	byLine := make(map[int64][]int)
	for i, f := range fields {
		if lockstate.IsAtomicType(f.Type()) {
			line := offsets[i] / lineSize
			byLine[line] = append(byLine[line], i)
		}
	}
	for line, idxs := range byLine {
		if len(idxs) < 2 {
			continue
		}
		names := make([]string, len(idxs))
		for j, i := range idxs {
			names[j] = fields[i].Name()
		}
		pass.Report(framework.Diagnostic{
			Pos: fields[idxs[0]].Pos(),
			Message: fmt.Sprintf(
				"atomic fields %s of %s share 64-byte line %d of an array/slice element struct (false sharing between slots)",
				strings.Join(names, ", "), name, line),
		})
	}
}

// isPadField reports whether f is a blank [N]byte padding array.
func isPadField(f *types.Var) bool {
	if f.Name() != "_" {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

package atomiccheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, "../testdata", atomiccheck.Analyzer, "atomiccheck")
}

// Package atomiccheck flags struct fields accessed both through sync/atomic
// and as plain loads/stores in the same package — the mixed-access pattern
// where the plain side silently tears or reads stale values the atomic side
// published. Both atomic shapes count: atomic.* package functions taking
// &field, and method calls on atomic.T-typed fields (Load/Store/Add/...).
//
// One plain-access class is allowed by design: a plain access while a mutex
// of the owning struct is held (or inside a *Locked-convention function).
// That is the documented fold idiom — hot paths publish through atomics,
// and the control tick folds them under the stage mutex, where the lock
// orders the fold against every other locked reader. Construction-phase
// writes (base freshly built in the same function) are likewise exempt.
//
// A second rule targets 32-bit deployments: a plain int64/uint64 field used
// with atomic.* functions must sit at an 8-byte-aligned struct offset under
// 32-bit layout (GOARCH=386), or the atomic ops fault at runtime. Typed
// atomics (atomic.Int64 etc.) embed their own alignment and are exempt.
package atomiccheck

import (
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "atomiccheck",
	Doc: "flag struct fields accessed both via sync/atomic and as plain " +
		"loads/stores (lock-held plain access is the allowed fold idiom), and " +
		"64-bit atomic fields not 8-byte-aligned under 32-bit struct layout",
	Run: run,
}

// sizes32 computes struct layout as the gc compiler does on a 32-bit
// target, where int64 fields land on 4-byte boundaries.
var sizes32 = types.SizesFor("gc", "386")

func run(pass *framework.Pass) error {
	var accesses []lockstate.Access
	lockstate.Collect(pass.Files, pass.TypesInfo, func(a lockstate.Access) {
		accesses = append(accesses, a)
	})

	type fieldKey struct {
		owner *types.TypeName
		field *types.Var
	}
	atomicAt := make(map[fieldKey][]lockstate.Access)
	plainAt := make(map[fieldKey][]lockstate.Access)
	for _, a := range accesses {
		if a.Owner == nil {
			continue
		}
		k := fieldKey{a.Owner, a.Field}
		if a.Atomic {
			atomicAt[k] = append(atomicAt[k], a)
		} else {
			plainAt[k] = append(plainAt[k], a)
		}
	}

	for k, plains := range plainAt {
		atomics := atomicAt[k]
		if len(atomics) == 0 {
			continue
		}
		ownerMus := lockstate.MutexFields(k.owner.Type())
		witness := pass.Fset.Position(atomics[0].Pos)
		for _, a := range plains {
			if a.CreationLocal {
				continue
			}
			// The fold allowance: any owner mutex held (or the *Locked
			// convention) orders this access against other locked readers.
			if a.InLockedFunc || (len(ownerMus) > 0 && a.HeldAny(ownerMus)) {
				continue
			}
			kind := "read"
			if a.Write {
				kind = "write"
			}
			pass.Reportf(a.Pos,
				"plain %s of %s.%s which is also accessed atomically (e.g. %s); use sync/atomic or hold the struct's mutex",
				kind, k.owner.Name(), k.field.Name(), witness)
		}
	}

	// Alignment rule: plain 64-bit fields driven through atomic.* functions
	// must be 8-byte aligned under 32-bit layout. Only this package's types
	// are checked — the offset belongs to the declaring package.
	checked := make(map[fieldKey]bool)
	for k, atomics := range atomicAt {
		if checked[k] || k.owner.Pkg() != pass.Pkg {
			continue
		}
		checked[k] = true
		if !is64BitPlain(k.field.Type()) {
			continue
		}
		// Only the &field/atomic.* shape implies a plain 64-bit word; typed
		// atomics never classify as is64BitPlain, so no shape test needed.
		_ = atomics
		off, ok := offset32(k.owner, k.field)
		if !ok || off%8 == 0 {
			continue
		}
		pass.Reportf(k.field.Pos(),
			"64-bit atomic field %s.%s is at offset %d under 32-bit layout; move it first or pad to 8-byte alignment",
			k.owner.Name(), k.field.Name(), off)
	}
	return nil
}

// is64BitPlain reports whether t is a plain 64-bit integer type (int64,
// uint64, or a named type over them, e.g. time.Duration).
func is64BitPlain(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}

// offset32 computes field's byte offset inside owner's struct under 32-bit
// gc layout.
func offset32(owner *types.TypeName, field *types.Var) (int64, bool) {
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return 0, false
	}
	fields := make([]*types.Var, st.NumFields())
	idx := -1
	for i := 0; i < st.NumFields(); i++ {
		fields[i] = st.Field(i)
		if st.Field(i) == field {
			idx = i
		}
	}
	if idx < 0 {
		return 0, false
	}
	return sizes32.Offsetsof(fields)[idx], true
}

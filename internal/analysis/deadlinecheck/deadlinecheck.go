// Package deadlinecheck checks that a stage declaring an invocation
// Deadline has a functor prepared for cooperative cancellation. The
// executive's stall watchdog (core/stall.go) answers a deadline overrun by
// abandoning the slot: the platform token is reclaimed and the slot's Done
// channel closes, but in Go the goroutine itself cannot be killed — it
// leaks unless the functor notices. A functor that loops without ever
// consulting Worker.Done (or Context().Done(), or polling Worker.Suspending
// — which also observes the abandonment's retire flag) turns every stall
// into a permanent zombie goroutine.
//
// The check is structural: for each core.AltSpec composite literal whose
// Stages set a non-zero Deadline, the corresponding Fn of the AltInstance
// built by Make is resolved (function literal, or a same-package function
// named directly), and each of its outermost loops must reference one of
// the cooperation signals — Worker.Done, Worker.Context, Worker.Suspending,
// TaskContext.Done, or Worker.RunNest (which observes suspension
// internally) — anywhere in the loop, including inside predicate function
// literals (the DequeueWhile idiom). Loops nested inside a cooperating loop
// are not re-checked: the outer loop bounds how long the slot ignores the
// signal. Genuinely bounded spin loops can suppress the diagnostic with
// `//dopevet:ignore deadlinecheck <reason>`.
//
// Cooperation is recognized through helper functions via object facts: a
// function whose body consults one of the signals is summarized as
// cooperating, and a loop that calls it — from any package, via the
// driver's vetx fact files — counts as watching the signal itself.
package deadlinecheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "deadlinecheck",
	Doc: "check that functors of stages declaring a Deadline watch " +
		"Worker.Done (or Suspending) in their loops, so a stalled invocation " +
		"can stop cooperatively instead of leaking its goroutine when abandoned",
	Run: run,
}

// coopFact marks a function whose body consults a cancellation signal the
// watchdog raises; calling it from a loop makes the loop cooperative.
type coopFact struct {
	Cooperates bool `json:"cooperates,omitempty"`
}

func run(pass *framework.Pass) error {
	decls := collectFuncDecls(pass)
	coop := summarizeCooperation(pass, decls)
	for fn := range coop {
		pass.ExportObjectFact(fn, coopFact{Cooperates: true})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[lit]; !ok || !protocol.IsCoreType(tv.Type, "AltSpec") {
				return true
			}
			checkAlt(pass, lit, decls, coop)
			return true
		})
	}
	return nil
}

// summarizeCooperation computes, to a fixpoint, which declared functions
// consult a cooperation signal (directly or through another cooperating
// function, same-package or imported).
func summarizeCooperation(pass *framework.Pass, decls map[types.Object]*ast.FuncDecl) map[*types.Func]bool {
	coop := make(map[*types.Func]bool)
	for round := 0; round <= len(decls); round++ {
		changed := false
		for obj, fd := range decls {
			fn, ok := obj.(*types.Func)
			if !ok || coop[fn] {
				continue
			}
			if cooperates(pass, fd.Body, coop) {
				coop[fn] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return coop
}

// deadlined is one stage of an alternative that sets a Deadline.
type deadlined struct {
	idx  int
	name string
}

// checkAlt inspects one core.AltSpec literal: stages with a non-zero
// Deadline are matched by index against the StageFns the Make callback
// builds, and each resolvable functor is checked.
func checkAlt(pass *framework.Pass, alt *ast.CompositeLit, decls map[types.Object]*ast.FuncDecl, coop map[*types.Func]bool) {
	stagesLit, _ := fieldValue(alt, "Stages").(*ast.CompositeLit)
	if stagesLit == nil {
		return
	}
	var stages []deadlined
	for i, el := range stagesLit.Elts {
		sl, ok := el.(*ast.CompositeLit)
		if !ok {
			continue
		}
		dl := fieldValue(sl, "Deadline")
		if dl == nil || isZero(pass.TypesInfo, dl) {
			continue
		}
		name := stringConst(pass.TypesInfo, fieldValue(sl, "Name"))
		stages = append(stages, deadlined{idx: i, name: name})
	}
	if len(stages) == 0 {
		return
	}
	makeBody := funcBody(pass, fieldValue(alt, "Make"), decls)
	if makeBody == nil {
		return
	}
	// The AltInstance literal Make returns carries the index-aligned Fns.
	var instLit *ast.CompositeLit
	ast.Inspect(makeBody, func(n ast.Node) bool {
		if instLit != nil {
			return false
		}
		if cl, ok := n.(*ast.CompositeLit); ok {
			if tv, ok := pass.TypesInfo.Types[cl]; ok && protocol.IsCoreType(tv.Type, "AltInstance") {
				instLit = cl
				return false
			}
		}
		return true
	})
	if instLit == nil {
		return
	}
	fnsLit, _ := fieldValue(instLit, "Stages").(*ast.CompositeLit)
	if fnsLit == nil {
		return
	}
	for _, st := range stages {
		if st.idx >= len(fnsLit.Elts) {
			continue
		}
		sf, ok := fnsLit.Elts[st.idx].(*ast.CompositeLit)
		if !ok {
			continue
		}
		body := funcBody(pass, fieldValue(sf, "Fn"), decls)
		if body == nil {
			continue
		}
		checkFunctor(pass, st, body, coop)
	}
}

// checkFunctor reports each outermost loop of a deadlined stage's functor
// that never references a cooperation signal.
func checkFunctor(pass *framework.Pass, st deadlined, body *ast.BlockStmt, coop map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !cooperates(pass, n, coop) {
				pass.Reportf(n.Pos(),
					"stage %q sets Deadline but this loop never checks Worker.Done, Context().Done, or Suspending; a stalled invocation cannot stop cooperatively and leaks its goroutine when abandoned",
					st.name)
			}
			return false // outermost loops only; an outer check bounds the inner
		case *ast.FuncLit:
			return false // nested literals are their own functors
		}
		return true
	})
}

// cooperates reports whether the node (a loop, or a whole function body
// during summarization — including conditions, post statements, and nested
// function literals, the DequeueWhile-predicate idiom) references a
// cancellation signal the watchdog raises, directly or through a call to a
// function summarized as cooperating (coop for this package, object facts
// for imported ones).
func cooperates(pass *framework.Pass, node ast.Node, coop map[*types.Func]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch protocol.WorkerMethod(pass.TypesInfo, call) {
		case "Done", "Context", "Suspending", "RunNest":
			found = true
		}
		if protocol.TaskContextMethod(pass.TypesInfo, call) == "Done" {
			found = true
		}
		if !found {
			if fn := protocol.CalleeFunc(pass.TypesInfo, call); fn != nil {
				if coop[fn] {
					found = true
				} else {
					var f coopFact
					if pass.ImportObjectFact(fn, &f) && f.Cooperates {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// fieldValue returns the value of the named field in a keyed composite
// literal, or nil.
func fieldValue(lit *ast.CompositeLit, name string) ast.Expr {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return kv.Value
		}
	}
	return nil
}

// isZero reports whether e is the constant zero (an explicit Deadline: 0).
func isZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// stringConst returns e's constant string value, or "" when unavailable.
func stringConst(info *types.Info, e ast.Expr) string {
	if e == nil {
		return ""
	}
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// funcBody resolves a function-valued expression to its body: a function
// literal directly, or an identifier naming a same-package function
// declaration. Anything else (a field, a call result, a cross-package
// function) is unresolvable and skipped rather than guessed at.
func funcBody(pass *framework.Pass, e ast.Expr, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return e.Body
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			if d := decls[obj]; d != nil {
				return d.Body
			}
		}
	case nil:
	}
	return nil
}

// collectFuncDecls indexes the package's function declarations by their
// type object, so Fn: someFunc resolves to someFunc's body.
func collectFuncDecls(pass *framework.Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

package deadlinecheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/deadlinecheck"
)

func TestDeadlineCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", deadlinecheck.Analyzer, "deadlinecheck", "deadlinecheckfacts")
}

// Package goalcheck flags goal/mechanism misconfiguration at dope.Create,
// DoPE.SetGoal, and dope.CustomGoal sites — the static half of the paper's
// goal/mechanism contract (§4): a mechanism only reads the features its
// goal provisions.
//
// Three rules, all on statically-decidable expressions only (a mechanism
// held in a variable or returned by an application helper is never
// guessed at):
//
//   - A power-steered mechanism (TPC, EDP) installed under a goal that
//     provisions no power budget — a MaxThroughput/MinResponseTime-family,
//     Static, or Custom goal — steers on a feature its goal never set up:
//     TPC controls toward a zero watt budget and pins the DoP to the floor,
//     EDP degenerates to throughput maximization. Construct the goal with
//     MaxThroughputUnderPower or MinEnergyDelay instead.
//
//   - The reverse: MaxThroughputUnderPower sets a watt budget, but a
//     WithMechanism override replaces its TPC controller with a mechanism
//     that never reads power (TBF, WQ-Linear, ...) — the budget is silently
//     ignored.
//
//   - WithControlInterval shorter than the monitor's EWMA window: the
//     executive consults the mechanism before the rate/time features have
//     absorbed one window of samples, so the mechanism steers on noise.
//     The window is estimated as span(α)·100µs, where span(α) = (2−α)/α is
//     the EWMA's effective sample count (7 at the default α = 0.25 → a
//     700µs floor) and 100µs is the platform's shortest feature-refresh
//     period (the stall watchdog's clamp floor). α is taken from a constant
//     WithMonitorAlpha in the same option list when present.
package goalcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"time"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/load"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "goalcheck",
	Doc: "check goal/mechanism pairings at Create/SetGoal/CustomGoal sites: " +
		"power-steered mechanisms (TPC, EDP) need a power-provisioning goal, " +
		"power budgets need a power-reading mechanism, and the control " +
		"interval must not undercut the monitor EWMA window",
	Run: run,
}

// dopePath is the import path of the public API package whose goal
// constructors and option vars the checks anchor on.
const dopePath = "dope"

// budgetlessGoals are the goal constructors that provision no power budget.
var budgetlessGoals = map[string]bool{
	"MinResponseTime":     true,
	"MinResponseTimeWQTH": true,
	"MaxThroughput":       true,
	"StaticGoal":          true,
	"CustomGoal":          true,
}

// powerMechs maps mechanism type names (and Mechanisms catalog field names)
// that read the SystemPower feature.
var powerMechs = map[string]bool{"TPC": true, "EDP": true}

// plainMechs are mechanisms that never read power; overriding a
// power-budgeted goal with one of these discards the budget.
var plainMechs = map[string]bool{
	"Proportional":     true,
	"WQTH":             true,
	"WQLinear":         true,
	"TB":               true,
	"TBF":              true,
	"FDP":              true,
	"SEDA":             true,
	"LoadProp":         true,
	"LoadProportional": true,
}

// defaultAlpha mirrors the monitor registry default (core.WithMonitorAlpha
// doc); span(0.25) = 7 samples.
const defaultAlpha = 0.25

// featurePeriod is the fastest feature-refresh period the platform
// sustains: the stall watchdog's clamp floor (core/stall.go).
const featurePeriod = 100 * time.Microsecond

func run(pass *framework.Pass) error {
	// Interval options that appear inside a Create call are checked there,
	// against the WithMonitorAlpha sited alongside them; sited marks them so
	// the generic walk below does not re-check them at the default alpha.
	sited := make(map[*ast.CallExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch dopeFuncName(pass.TypesInfo, call) {
			case "Create", "New":
				checkCreate(pass, call, sited)
			case "CustomGoal":
				if len(call.Args) == 3 {
					if name, power := mechName(pass.TypesInfo, call.Args[2]); power {
						reportPowerUnderBudgetless(pass, call.Args[2].Pos(), name, "CustomGoal")
					}
				}
			case "WithControlInterval":
				if !sited[call] {
					checkInterval(pass, call, defaultAlpha)
				}
			}
			return true
		})
	}
	return nil
}

// checkCreate inspects one dope.Create(root, goal, opts...) or
// core.New(root, opts...) site: the goal constructor (Create only), any
// WithMechanism override among the options, and any WithControlInterval
// against the WithMonitorAlpha sited in the same option list.
func checkCreate(pass *framework.Pass, call *ast.CallExpr, sited map[*ast.CallExpr]bool) {
	goalCtor := ""
	opts := call.Args
	if len(opts) > 0 {
		opts = opts[1:] // skip the root NestSpec
	}
	if dopeFuncName(pass.TypesInfo, call) == "Create" {
		if len(call.Args) < 2 {
			return
		}
		goalCtor = goalCtorName(pass, call.Args[1])
		opts = call.Args[2:]
	}

	alpha := defaultAlpha
	for _, opt := range opts {
		oc, ok := ast.Unparen(opt).(*ast.CallExpr)
		if !ok {
			continue
		}
		if dopeFuncName(pass.TypesInfo, oc) == "WithMonitorAlpha" && len(oc.Args) == 1 {
			if v, ok := floatConst(pass.TypesInfo, oc.Args[0]); ok && v > 0 && v <= 1 {
				alpha = v
			}
		}
	}
	for _, opt := range opts {
		oc, ok := ast.Unparen(opt).(*ast.CallExpr)
		if !ok {
			continue
		}
		switch dopeFuncName(pass.TypesInfo, oc) {
		case "WithMechanism":
			if len(oc.Args) != 1 {
				continue
			}
			name, power := mechName(pass.TypesInfo, oc.Args[0])
			if name == "" {
				continue
			}
			if power && budgetlessGoals[goalCtor] {
				reportPowerUnderBudgetless(pass, oc.Pos(), name, goalCtor)
			}
			if plainMechs[name] && goalCtor == "MaxThroughputUnderPower" {
				pass.Reportf(oc.Pos(),
					"goal MaxThroughputUnderPower sets a power budget, but WithMechanism overrides its controller with %s, which never reads power: the budget is silently ignored", name)
			}
		case "WithControlInterval":
			sited[oc] = true
			checkInterval(pass, oc, alpha)
		}
	}
}

// goalCtorName resolves which dope goal constructor built the expression,
// or "" when it is not a recognizable constructor call.
func goalCtorName(pass *framework.Pass, e ast.Expr) string {
	gc, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	ctor := dopeFuncName(pass.TypesInfo, gc)
	if budgetlessGoals[ctor] || ctor == "MaxThroughputUnderPower" || ctor == "MinEnergyDelay" {
		return ctor
	}
	return ""
}

func reportPowerUnderBudgetless(pass *framework.Pass, pos token.Pos, mech, goal string) {
	pass.Reportf(pos,
		"mechanism %s steers on the SystemPower feature, but goal %s provisions no power budget; construct the goal with MaxThroughputUnderPower (TPC) or MinEnergyDelay (EDP) instead", mech, goal)
}

// checkInterval flags a constant WithControlInterval shorter than the EWMA
// window span(alpha)·featurePeriod. Non-constant and non-positive intervals
// (the runtime ignores d <= 0) are skipped.
func checkInterval(pass *framework.Pass, call *ast.CallExpr, alpha float64) {
	if len(call.Args) != 1 {
		return
	}
	d, ok := foldDuration(pass, call.Args[0])
	if !ok || d <= 0 {
		return
	}
	span := (2 - alpha) / alpha
	window := time.Duration(span * float64(featurePeriod))
	if d < window {
		pass.Reportf(call.Pos(),
			"control interval %v is shorter than the monitor EWMA window (~%v at α=%.3g): the mechanism is consulted before the features absorb one window of samples and steers on noise", d, window, alpha)
	}
}

// dopeFuncName resolves a call to a function, method, or option variable of
// the dope package (or its core implementation package) and returns its
// name. The With* options are package-level vars aliasing core functions,
// so both the var and the underlying function match.
func dopeFuncName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return ""
	}
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if p := obj.Pkg().Path(); p != dopePath && p != protocol.CorePath {
		return ""
	}
	switch obj.(type) {
	case *types.Func, *types.Var:
		return obj.Name()
	}
	return ""
}

// mechName statically classifies a mechanism expression: a composite
// literal (&mechanism.TPC{...}) or a Mechanisms catalog call
// (dope.Mechanisms.TPC(n, w)). Returns the mechanism name and whether it is
// power-steered. Unknown shapes (variables, helper results) return "".
func mechName(info *types.Info, e ast.Expr) (name string, power bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok {
			return "", false
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil ||
			named.Obj().Pkg().Path() != "dope/internal/mechanism" {
			return "", false
		}
		n := named.Obj().Name()
		return n, powerMechs[n]
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		// The catalog is the struct var dope.Mechanisms; its fields are
		// constructors.
		field, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return "", false
		}
		if !isMechanismsVar(info, sel.X) {
			return "", false
		}
		n := sel.Sel.Name
		return n, powerMechs[n]
	}
	return "", false
}

// isMechanismsVar reports whether e denotes the dope.Mechanisms catalog var.
func isMechanismsVar(info *types.Info, e ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	return ok && v.Name() == "Mechanisms" && v.Pkg() != nil && v.Pkg().Path() == dopePath
}

// foldDuration evaluates the interval argument to a time.Duration when that
// is statically sound: any expression load.FoldConst can fold — constant
// arithmetic the type checker already collapsed, plus arithmetic over
// single-assignment locals whose initializers fold recursively
// (`base := 50 * time.Millisecond; iv := base / 2`). The resolver admits
// only function-scope locals of this package that singleInit proves
// single-valued and unescaped; each variable is resolved at most once,
// which also breaks reference cycles.
func foldDuration(pass *framework.Pass, e ast.Expr) (time.Duration, bool) {
	seen := make(map[*types.Var]bool)
	resolve := func(v *types.Var) ast.Expr {
		if seen[v] || v.IsField() || v.Pkg() != pass.Pkg ||
			v.Parent() == pass.Pkg.Scope() {
			return nil
		}
		seen[v] = true
		return singleInit(pass, v)
	}
	val, ok := load.FoldConst(pass.TypesInfo, e, resolve)
	if !ok {
		return 0, false
	}
	i, ok := constant.Int64Val(constant.ToInt(val))
	if !ok {
		return 0, false
	}
	return time.Duration(i), true
}

// singleInit returns the sole expression ever assigned to the local v, or
// nil when v is reassigned, incremented, or has its address taken anywhere
// in its file.
func singleInit(pass *framework.Pass, v *types.Var) ast.Expr {
	var file *ast.File
	for _, f := range pass.Files {
		if f.FileStart <= v.Pos() && v.Pos() < f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	var init ast.Expr
	sound := true
	usesV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !usesV(lhs) {
					continue
				}
				if n.Tok != token.DEFINE || init != nil || i >= len(n.Rhs) ||
					len(n.Lhs) != len(n.Rhs) {
					sound = false
					return false
				}
				init = n.Rhs[i]
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] != v {
					continue
				}
				if init != nil || i >= len(n.Values) {
					sound = false
					return false
				}
				init = n.Values[i]
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN &&
				((n.Key != nil && usesV(n.Key)) || (n.Value != nil && usesV(n.Value))) {
				sound = false
				return false
			}
		case *ast.IncDecStmt:
			if usesV(n.X) {
				sound = false
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesV(n.X) {
				sound = false
				return false
			}
		}
		return true
	})
	if !sound {
		return nil
	}
	return init
}

// floatConst evaluates a constant float expression.
func floatConst(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Float64Val(tv.Value)
	return v, ok
}

package goalcheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/goalcheck"
)

func TestGoalCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", goalcheck.Analyzer, "goalcheck")
}

package stagealias_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/stagealias"
)

func TestStageAlias(t *testing.T) {
	analysistest.Run(t, "../testdata", stagealias.Analyzer, "stagealias")
}

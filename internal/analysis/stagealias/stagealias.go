// Package stagealias flags state that leaks between sibling stage functors
// of one nest alternative. The drain protocol's no-migration guarantee
// (DESIGN.md) rests on each in-flight item being owned by exactly one stage
// at a time, with ownership handed off through the inter-stage queues. A
// functor that mutates a variable its sibling also captures, or that sends
// the same captured reference down the queue on every iteration, aliases
// state across stages: after a reconfiguration drain the "drained" item is
// still reachable — and mutable — from a stage that was supposed to have
// given it up.
//
// Two rules, both scoped to the functors of one alternative — the FuncLits
// and method values installed as the Fn of core.StageFns or dope.PipeStage
// values inside one enclosing function body:
//
//   - shared written capture: a variable declared outside the functors,
//     captured by two or more of them, and written by at least one. Channels,
//     queue.Queues, and sync and sync/atomic types are exempt — those are
//     the sanctioned coordination points.
//
//   - captured-reference send: a functor sends (ch <- x) or enqueues
//     (q.Enqueue(x)) a captured pointer-, slice-, or map-typed variable on a
//     conduit a sibling functor receives from. Every iteration forwards the
//     same reference, so the stages alias one object instead of handing off
//     per-item values. Values produced inside the functor (dequeued,
//     received, or allocated locally) are the sanctioned handoff and are
//     never flagged.
//
// A pointer-receiver method value (Fn: r.produce) is a capture of r in
// disguise: the bound method aliases the receiver, so its receiver-field
// accesses count as captures of the site variable at the same field
// granularity as literal functors. Sibling methods on one receiver that
// touch disjoint fields keep disjoint state and are not flagged; a
// value-receiver method value copies the receiver when it is bound and
// shares nothing.
//
// Helper-method calls keep that granularity instead of widening it: a
// functor calling c.bump() on a captured receiver folds bump's
// receiver-field reads and writes at the call site — when the callee is a
// pointer-receiver method whose body is in the package — so the write to
// c.n inside the helper conflicts with a sibling's read of c.n, while a
// helper touching a disjoint field stays quiet. A value-receiver call or a
// body out of reach falls back to a whole-variable (read-only) capture.
package stagealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "stagealias",
	Doc: "check that sibling stage functors share no written captures and " +
		"hand items off by value: aliased state defeats the drain " +
		"protocol's no-migration guarantee",
	Run: run,
}

// queuePath is the import path of the sanctioned inter-stage queue.
const queuePath = "dope/internal/queue"

// access identifies what a functor touched at field granularity: a whole
// captured variable (field == nil), or one direct field of it (v.field and
// deeper paths rooted there). Two siblings sharing one receiver-like struct
// but touching distinct fields do not alias each other's state, so the
// shared-write rule compares accesses, not just root variables.
type access struct {
	v     *types.Var
	field *types.Var // nil: the variable as a whole
}

// conflicts reports whether the two accesses can alias: same root variable
// and overlapping field paths (a whole-variable access overlaps every
// field).
func (a access) conflicts(b access) bool {
	return a.v == b.v &&
		(a.field == nil || b.field == nil || a.field == b.field)
}

// name renders the access for diagnostics: "v" or "v.field".
func (a access) name() string {
	if a.field == nil {
		return a.v.Name()
	}
	return a.v.Name() + "." + a.field.Name()
}

// functor is one stage closure of an alternative, with the capture facts
// the two rules consume.
type functor struct {
	lit *ast.FuncLit
	// caps maps each captured access to its first use position.
	caps map[access]token.Pos
	// writes maps each captured access written (assigned, inc/dec'd, or
	// stored through) to the first write position.
	writes map[access]token.Pos
	// sends are the channel sends and queue enqueues whose payload root is
	// a variable.
	sends []send
	// recvs are the conduit variables this functor receives or dequeues
	// from.
	recvs map[*types.Var]bool
}

type send struct {
	conduit *types.Var
	value   *types.Var
	pos     token.Pos
}

// fnSite is one expression installed as a stage Fn: either a functor
// literal or a method value whose bound receiver lives at the site.
type fnSite struct {
	lit *ast.FuncLit      // literal functor, or
	sel *ast.SelectorExpr // method value (r.produce) installed as Fn
}

func (s fnSite) pos() token.Pos {
	if s.lit != nil {
		return s.lit.Pos()
	}
	return s.sel.Pos()
}

func (s fnSite) end() token.Pos {
	if s.lit != nil {
		return s.lit.End()
	}
	return s.sel.End()
}

func run(pass *framework.Pass) error {
	decls := methodDecls(pass)
	effects := make(map[*types.Func]*recvEffects)
	for _, f := range pass.Files {
		checkFile(pass, f, decls, effects)
	}
	return nil
}

func checkFile(pass *framework.Pass, f *ast.File, decls map[*types.Func]*ast.FuncDecl, effects map[*types.Func]*recvEffects) {
	sites := functorSites(pass.TypesInfo, f)
	if len(sites) < 2 {
		return
	}

	// Group the functors by their innermost enclosing function: the
	// literals and method values installed inside one Make (or one builder
	// body) are the sibling stages of one alternative.
	var encl []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				encl = append(encl, n.Body)
			}
		case *ast.FuncLit:
			encl = append(encl, n.Body)
		}
		return true
	})
	groups := make(map[*ast.BlockStmt][]fnSite)
	for _, s := range sites {
		b := innermost(encl, s.pos(), s.end())
		groups[b] = append(groups[b], s)
	}

	for _, group := range groups {
		if len(group) < 2 {
			continue
		}
		fs := make([]*functor, len(group))
		for i, s := range group {
			if s.lit != nil {
				fs[i] = analyze(pass, s.lit, decls, effects)
			} else {
				fs[i] = analyzeMethod(pass, s.sel, decls, effects)
			}
		}
		checkSharedWrites(pass, fs)
		checkCapturedSends(pass, fs)
	}
}

// checkSharedWrites is the shared-written-capture rule: an access captured
// by two or more sibling functors and written by at least one. The
// comparison is field-granular — two functors that share a captured struct
// but write disjoint fields of it keep disjoint state and are not flagged.
func checkSharedWrites(pass *framework.Pass, fs []*functor) {
	reported := make(map[access]bool)
	for _, fn := range fs {
		for a, pos := range fn.writes {
			if reported[a] || isSanctionedShared(a.v.Type()) ||
				(a.field != nil && isSanctionedShared(a.field.Type())) {
				continue
			}
			shared := 0
			for _, other := range fs {
				if capturesConflicting(other, a) {
					shared++
				}
			}
			if shared < 2 {
				continue
			}
			reported[a] = true
			pass.Reportf(pos,
				"stage functor writes %q, which a sibling stage functor also captures: stages may share state only through channels, queues, or sync primitives, or the drain protocol cannot guarantee items never migrate between stages", a.name())
		}
	}
}

// capturesVar reports whether fn captured v at all, whole or by field.
func capturesVar(fn *functor, v *types.Var) bool {
	for b := range fn.caps {
		if b.v == v {
			return true
		}
	}
	return false
}

// capturesConflicting reports whether fn captured any access that can alias
// a.
func capturesConflicting(fn *functor, a access) bool {
	for b := range fn.caps {
		if a.conflicts(b) {
			return true
		}
	}
	return false
}

// checkCapturedSends is the captured-reference-send rule: a functor
// forwarding a captured reference on a conduit a sibling consumes.
func checkCapturedSends(pass *framework.Pass, fs []*functor) {
	for _, fn := range fs {
		for _, s := range fn.sends {
			if s.value == nil || s.conduit == nil {
				continue
			}
			if !capturesVar(fn, s.value) || !isRefType(s.value.Type()) {
				continue
			}
			consumed := false
			for _, other := range fs {
				if other != fn && other.recvs[s.conduit] {
					consumed = true
					break
				}
			}
			if !consumed {
				continue
			}
			pass.Reportf(s.pos,
				"stage functor forwards the captured reference %q to a sibling stage: every iteration sends the same object, so both stages alias it; hand off a value produced inside the functor so each item has one owner at a time", s.value.Name())
		}
	}
}

// functorSites collects the expressions installed as stage functors: the Fn
// field of a core.StageFns or dope.PipeStage composite literal, or the
// right-hand side of an assignment to such a value's Fn field. A site is a
// functor literal or a method value.
func functorSites(info *types.Info, f *ast.File) []fnSite {
	seenLit := make(map[*ast.FuncLit]bool)
	seenSel := make(map[*ast.SelectorExpr]bool)
	var sites []fnSite
	add := func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.FuncLit:
			if !seenLit[x] {
				seenLit[x] = true
				sites = append(sites, fnSite{lit: x})
			}
		case *ast.SelectorExpr:
			s, ok := info.Selections[x]
			if ok && s.Kind() == types.MethodVal && !seenSel[x] {
				seenSel[x] = true
				sites = append(sites, fnSite{sel: x})
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isStageType(typeOf(info, n)) {
				return true
			}
			if fn := fieldValue(info, n, "Fn"); fn != nil {
				add(fn)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Fn" || i >= len(n.Rhs) {
					continue
				}
				if isStageType(typeOf(info, sel.X)) {
					add(n.Rhs[i])
				}
			}
		}
		return true
	})
	return sites
}

// innermost returns the smallest enclosing function body that properly
// contains the [pos, end) span, or nil for a package-level site.
func innermost(bodies []*ast.BlockStmt, pos, end token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() > pos || end > b.End() {
			continue
		}
		if best == nil || b.Pos() > best.Pos() {
			best = b
		}
	}
	return best
}

// analyze walks one functor body and records its captured variables,
// writes, sends, and receives.
func analyze(pass *framework.Pass, lit *ast.FuncLit, decls map[*types.Func]*ast.FuncDecl, effects map[*types.Func]*recvEffects) *functor {
	info := pass.TypesInfo
	fn := &functor{
		lit:    lit,
		caps:   make(map[access]token.Pos),
		writes: make(map[access]token.Pos),
		recvs:  make(map[*types.Var]bool),
	}
	// fieldOf keeps the Ident walk below field-granular: an identifier used
	// bare — passed along, aliased, method receiver — stays a whole-variable
	// access. folded narrows helper-method calls the same way: the base of
	// c.bump() contributes bump's receiver-field effects at the call site
	// instead of a whole-variable capture of c.
	fieldOf := fieldSelections(info, lit.Body)
	folded := foldableCalls(pass, lit.Body, decls, effects)
	capture := func(a access, pos token.Pos) bool {
		if a.v == nil || !captured(pass, a.v, lit) {
			return false
		}
		if _, ok := fn.caps[a]; !ok {
			fn.caps[a] = pos
		}
		return true
	}
	write := func(e ast.Expr) {
		if a := rootAccess(info, e); capture(a, e.Pos()) {
			if _, ok := fn.writes[a]; !ok {
				fn.writes[a] = e.Pos()
			}
		}
	}
	// fold records one access of a helper-method summary against the call's
	// receiver variable, at the call site's position.
	fold := func(a access, isWrite bool, pos token.Pos) {
		if !capture(a, pos) {
			return
		}
		if isWrite {
			if _, ok := fn.writes[a]; !ok {
				fn.writes[a] = pos
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := info.Uses[n]
			if v, ok := obj.(*types.Var); ok {
				if ce := folded[n]; ce != nil {
					for f := range ce.reads {
						fold(access{v: v, field: f}, false, n.Pos())
					}
					for f := range ce.writes {
						fold(access{v: v, field: f}, true, n.Pos())
					}
					if ce.whole {
						fold(access{v: v}, false, n.Pos())
					}
					if ce.wholeWrite {
						fold(access{v: v}, true, n.Pos())
					}
					return true
				}
				capture(access{v: v, field: fieldOf[n]}, n.Pos())
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				write(lhs)
			}
		case *ast.IncDecStmt:
			write(n.X)
		case *ast.RangeStmt:
			if isChan(typeOf(info, n.X)) {
				fn.recvs[rootVar(info, n.X)] = true
			}
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					write(n.Key)
				}
				if n.Value != nil {
					write(n.Value)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fn.recvs[rootVar(info, n.X)] = true
			}
		case *ast.SendStmt:
			fn.sends = append(fn.sends, send{
				conduit: rootVar(info, n.Chan),
				value:   rootVar(info, n.Value),
				pos:     n.Pos(),
			})
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !isQueue(typeOf(info, sel.X)) {
				return true
			}
			switch sel.Sel.Name {
			case "Enqueue", "TryEnqueue":
				if len(n.Args) == 1 {
					fn.sends = append(fn.sends, send{
						conduit: rootVar(info, sel.X),
						value:   rootVar(info, n.Args[0]),
						pos:     n.Pos(),
					})
				}
			case "Dequeue", "TryDequeue", "DequeueWhile":
				fn.recvs[rootVar(info, sel.X)] = true
			}
		}
		return true
	})
	return fn
}

// analyzeMethod resolves a method value installed as a stage functor and
// records its receiver-field accesses as captures of the site's receiver
// variable: with Fn: c.head and Fn: c.tail the shared state is the fields
// of c, at the same field granularity as literal functors. Calls the method
// makes to sibling helpers on its own receiver fold the helper's effects at
// the call site. Only a pointer-receiver method aliases the site variable —
// a value-receiver method value copies the receiver when it is bound, so
// whatever its body touches is private to the copy. Sends and receives
// inside the method body are not tracked: the captured-reference-send rule
// stays scoped to literal functors, where the captured variable and the
// send share one body.
func analyzeMethod(pass *framework.Pass, site *ast.SelectorExpr, decls map[*types.Func]*ast.FuncDecl, effects map[*types.Func]*recvEffects) *functor {
	info := pass.TypesInfo
	fn := &functor{
		caps:   make(map[access]token.Pos),
		writes: make(map[access]token.Pos),
		recvs:  make(map[*types.Var]bool),
	}
	s, ok := info.Selections[site]
	if !ok || s.Kind() != types.MethodVal {
		return fn
	}
	m, _ := s.Obj().(*types.Func)
	siteRecv := rootVar(info, site.X)
	if m == nil || siteRecv == nil {
		return fn
	}
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn
	}
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		return fn
	}
	decl := decls[m.Origin()]
	if decl == nil || decl.Body == nil || decl.Recv == nil ||
		len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		// The body is out of reach (other package) or the receiver is
		// anonymous: assume the method can touch the whole receiver.
		fn.caps[access{v: siteRecv}] = site.Pos()
		return fn
	}
	recvVar, _ := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	if recvVar == nil {
		fn.caps[access{v: siteRecv}] = site.Pos()
		return fn
	}

	// Same field-granularity walk as analyze, but only receiver-rooted
	// accesses count, remapped onto the site variable so identity lines up
	// across sibling methods and literals sharing the same receiver.
	fieldOf := fieldSelections(info, decl.Body)
	folded := foldableCalls(pass, decl.Body, decls, effects)
	remap := func(a access) (access, bool) {
		if a.v != recvVar {
			return access{}, false
		}
		a.v = siteRecv
		return a, true
	}
	write := func(e ast.Expr) {
		a, ok := remap(rootAccess(info, e))
		if !ok {
			return
		}
		if _, seen := fn.caps[a]; !seen {
			fn.caps[a] = e.Pos()
		}
		if _, seen := fn.writes[a]; !seen {
			fn.writes[a] = e.Pos()
		}
	}
	fold := func(a access, isWrite bool, pos token.Pos) {
		if _, seen := fn.caps[a]; !seen {
			fn.caps[a] = pos
		}
		if isWrite {
			if _, seen := fn.writes[a]; !seen {
				fn.writes[a] = pos
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && v == recvVar {
				if ce := folded[n]; ce != nil {
					for f := range ce.reads {
						fold(access{v: siteRecv, field: f}, false, n.Pos())
					}
					for f := range ce.writes {
						fold(access{v: siteRecv, field: f}, true, n.Pos())
					}
					if ce.whole {
						fold(access{v: siteRecv}, false, n.Pos())
					}
					if ce.wholeWrite {
						fold(access{v: siteRecv}, true, n.Pos())
					}
					return true
				}
				if a, ok := remap(access{v: v, field: fieldOf[n]}); ok {
					if _, seen := fn.caps[a]; !seen {
						fn.caps[a] = n.Pos()
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				write(lhs)
			}
		case *ast.IncDecStmt:
			write(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					write(n.Key)
				}
				if n.Value != nil {
					write(n.Value)
				}
			}
		}
		return true
	})
	return fn
}

// recvEffects summarizes what a pointer-receiver method does to its
// receiver, position-free so one summary serves every call site: the direct
// fields it reads and writes, and whether it touches the receiver as a
// whole (aliased, passed along, read through a promoted field — whole; the
// target of a store — wholeWrite).
type recvEffects struct {
	reads      map[*types.Var]bool
	writes     map[*types.Var]bool
	whole      bool
	wholeWrite bool
}

// methodEffects computes m's receiver effects, folding calls it makes to
// sibling methods on its own receiver, memoized in cache. It returns nil —
// fold nothing, fall back to a whole-variable capture — for a
// value-receiver method (the call acts on a copy) or a body out of reach
// (another package, anonymous receiver). The summary is installed in cache
// before the walk, so a recursive call chain folds the partial summary
// instead of looping; the fixed point is under-approximated, which only
// narrows the folded access set back toward the direct accesses.
func methodEffects(pass *framework.Pass, m *types.Func, decls map[*types.Func]*ast.FuncDecl, cache map[*types.Func]*recvEffects) *recvEffects {
	if m == nil {
		return nil
	}
	m = m.Origin()
	if eff, ok := cache[m]; ok {
		return eff
	}
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		return nil
	}
	decl := decls[m]
	if decl == nil || decl.Body == nil || decl.Recv == nil ||
		len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	info := pass.TypesInfo
	recvVar, _ := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	if recvVar == nil {
		return nil
	}
	eff := &recvEffects{
		reads:  make(map[*types.Var]bool),
		writes: make(map[*types.Var]bool),
	}
	cache[m] = eff

	fieldOf := fieldSelections(info, decl.Body)
	folded := foldableCalls(pass, decl.Body, decls, cache)
	write := func(e ast.Expr) {
		a := rootAccess(info, e)
		if a.v != recvVar {
			return
		}
		if a.field != nil {
			eff.writes[a.field] = true
		} else {
			eff.wholeWrite = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, _ := info.Uses[n].(*types.Var); v == recvVar && v != nil {
				switch {
				case folded[n] != nil:
					ce := folded[n]
					for f := range ce.reads {
						eff.reads[f] = true
					}
					for f := range ce.writes {
						eff.writes[f] = true
					}
					eff.whole = eff.whole || ce.whole
					eff.wholeWrite = eff.wholeWrite || ce.wholeWrite
				case fieldOf[n] != nil:
					eff.reads[fieldOf[n]] = true
				default:
					eff.whole = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				write(lhs)
			}
		case *ast.IncDecStmt:
			write(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					write(n.Key)
				}
				if n.Value != nil {
					write(n.Value)
				}
			}
		}
		return true
	})
	return eff
}

// fieldSelections maps each base identifier in body to the field directly
// selected from it (s in s.f, including through an auto-deref), so an Ident
// walk records field-granular accesses instead of whole variables.
func fieldSelections(info *types.Info, body *ast.BlockStmt) map[*ast.Ident]*types.Var {
	fieldOf := make(map[*ast.Ident]*types.Var)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if f := directField(info, sel); f != nil {
			fieldOf[id] = f
		}
		return true
	})
	return fieldOf
}

// foldableCalls maps the base identifier of each method call in body whose
// receiver effects are computable (c in c.bump()) to the callee's summary.
// The caller folds the summary at the call site and skips the whole-variable
// capture the bare identifier would otherwise record.
func foldableCalls(pass *framework.Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, cache map[*types.Func]*recvEffects) map[*ast.Ident]*recvEffects {
	info := pass.TypesInfo
	folded := make(map[*ast.Ident]*recvEffects)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.MethodVal {
			return true
		}
		callee, _ := s.Obj().(*types.Func)
		if ce := methodEffects(pass, callee, decls, cache); ce != nil {
			folded[id] = ce
		}
		return true
	})
	return folded
}

// methodDecls indexes the package's method declarations by their type
// object, so analyzeMethod can walk the body behind a method value.
func methodDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[obj] = fd
			}
		}
	}
	return m
}

// captured reports whether v is a function-scoped variable declared outside
// lit: a closure capture. Package-level variables, fields, and lit's own
// locals and parameters are not captures.
func captured(pass *framework.Pass, v *types.Var, lit *ast.FuncLit) bool {
	if v.IsField() || v.Pkg() != pass.Pkg || !v.Pos().IsValid() {
		return false
	}
	if v.Parent() == pass.Pkg.Scope() {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}

// rootAccess resolves an lvalue or payload expression to its field-granular
// access: x.f, x.f.g, x.f[i] all root in the access (x, f); x, *x, x[i]
// root in x as a whole. Promoted (embedded) fields fall back to the whole
// variable — their storage overlaps other promotion paths.
func rootAccess(info *types.Info, e ast.Expr) access {
	for {
		x := ast.Unparen(e)
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
				if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
					v, _ := info.Uses[id].(*types.Var)
					return access{v: v, field: directField(info, sel)}
				}
			}
		}
		switch x := x.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return access{v: rootVar(info, e)}
		}
	}
}

// directField returns the field selected by sel when it is a plain
// single-step field selection (no embedded-field promotion), else nil.
func directField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || len(s.Index()) != 1 {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// rootVar resolves the variable an lvalue or payload expression is rooted
// in: x, x.f, x[i], *x, and chains thereof all root in x. A qualified
// package reference roots in the named package variable.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return nil
	}
	return tv.Type
}

// isStageType reports whether t (or *t) is core.StageFns or dope.PipeStage.
func isStageType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case protocol.CorePath:
		return named.Obj().Name() == "StageFns"
	case "dope":
		return named.Obj().Name() == "PipeStage"
	}
	return false
}

// isSanctionedShared reports whether t is a type siblings may share: a
// channel, a queue.Queue, or a sync or sync/atomic primitive (all after
// stripping one pointer).
func isSanctionedShared(t types.Type) bool {
	if t == nil {
		return false
	}
	if isChan(t) || isQueue(t) {
		return true
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isQueue(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Queue" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == queuePath
}

// isRefType reports whether a value of type t aliases backing storage when
// copied: pointers, slices, and maps.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// namedOf strips one pointer and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldValue returns the expression bound to the named field of a struct
// composite literal, keyed or positional.
func fieldValue(info *types.Info, lit *ast.CompositeLit, name string) ast.Expr {
	t := typeOf(info, lit)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i, el := range lit.Elts {
		if kv, keyed := el.(*ast.KeyValueExpr); keyed {
			if id, isID := kv.Key.(*ast.Ident); isID && id.Name == name {
				return kv.Value
			}
			continue
		}
		if i < st.NumFields() && st.Field(i).Name() == name {
			return el
		}
	}
	return nil
}

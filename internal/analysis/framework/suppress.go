package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments let a call site opt out of one or more analyzers
// where the protocol genuinely permits what the analyzer would flag (e.g. a
// drain stage that deliberately ignores the Begin/End statuses because its
// exit is driven by the upstream queue closing). Two spellings are honored,
// on the flagged line or on the line immediately above it:
//
//	//dopevet:ignore name1,name2 reason...
//	//lint:ignore name1,name2 reason...
//
// The analyzer-name list is mandatory — a bare ignore suppresses nothing —
// and a reason is strongly encouraged.
const (
	ignorePrefix     = "dopevet:ignore"
	lintIgnorePrefix = "lint:ignore"
)

// suppressions maps file name → line → analyzer names suppressed there.
type suppressions map[string]map[int][]string

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var rest string
				switch {
				case strings.HasPrefix(text, ignorePrefix):
					rest = text[len(ignorePrefix):]
				case strings.HasPrefix(text, lintIgnorePrefix):
					rest = text[len(lintIgnorePrefix):]
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := sup[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					sup[pos.Filename] = m
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						m[pos.Line] = append(m[pos.Line], name)
					}
				}
			}
		}
	}
	return sup
}

// suppressed reports whether analyzer name is ignored at pos: a matching
// ignore comment sits on the same line or the line directly above.
func (s suppressions) suppressed(name string, pos token.Position) bool {
	m := s[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, n := range m[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

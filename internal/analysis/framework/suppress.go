package framework

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Suppression comments let a call site opt out of one or more analyzers
// where the protocol genuinely permits what the analyzer would flag (e.g. a
// drain stage that deliberately ignores the Begin/End statuses because its
// exit is driven by the upstream queue closing). Two spellings are honored,
// on the flagged line or on the line immediately above it:
//
//	//dopevet:ignore name1,name2 reason...
//	//lint:ignore name1,name2 reason...
//
// The analyzer-name list is mandatory — a bare ignore suppresses nothing —
// and a reason is strongly encouraged.
const (
	ignorePrefix     = "dopevet:ignore"
	lintIgnorePrefix = "lint:ignore"
)

// suppressions maps full (cleaned) file path → line → analyzer names
// suppressed there. Keying by the full path, not the base name, keeps two
// same-named files in different directories from sharing suppressions.
type suppressions map[string]map[int][]string

// supKey normalizes a position's file path for use as a suppression key, so
// a comment and a diagnostic in the same file always collide even if the
// driver registered the file with a differently-spelled path.
func supKey(filename string) string { return filepath.Clean(filename) }

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var rest string
				switch {
				case strings.HasPrefix(text, ignorePrefix):
					rest = text[len(ignorePrefix):]
				case strings.HasPrefix(text, lintIgnorePrefix):
					rest = text[len(lintIgnorePrefix):]
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := supKey(pos.Filename)
				m := sup[key]
				if m == nil {
					m = make(map[int][]string)
					sup[key] = m
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						m[pos.Line] = append(m[pos.Line], name)
					}
				}
			}
		}
	}
	return sup
}

// SuppressionIndex is a queryable view of one package's ignore comments,
// for analyzers whose cross-package summaries must honor blessed sites: a
// blocking call suppressed where it happens must not summarize its
// enclosing helper as blocking, or the suppression would merely move the
// diagnostic to every caller instead of retiring it.
type SuppressionIndex struct {
	fset *token.FileSet
	sup  suppressions
}

// NewSuppressionIndex collects the ignore comments of files.
func NewSuppressionIndex(fset *token.FileSet, files []*ast.File) *SuppressionIndex {
	return &SuppressionIndex{fset, collectSuppressions(fset, files)}
}

// Suppressed reports whether the named analyzer is ignored at pos.
func (ix *SuppressionIndex) Suppressed(analyzer string, pos token.Pos) bool {
	return ix.sup.suppressed(analyzer, ix.fset.Position(pos))
}

// suppressed reports whether analyzer name is ignored at pos: a matching
// ignore comment sits on the same line or the line directly above.
func (s suppressions) suppressed(name string, pos token.Position) bool {
	m := s[supKey(pos.Filename)]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, n := range m[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

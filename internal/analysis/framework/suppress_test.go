package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestSuppressionKeyedByFullPath pins the suppression key: two files with
// the same base name in different directories must not share suppressions.
// An //dopevet:ignore in a/conflict.go must silence a diagnostic at that
// line in a/conflict.go and leave the same line in b/conflict.go flagged.
func TestSuppressionKeyedByFullPath(t *testing.T) {
	const srcA = `package p

//dopevet:ignore demo deliberate in this file only
var A = 1
`
	const srcB = `package p

var B = 2
`
	fset := token.NewFileSet()
	fa, err := parser.ParseFile(fset, "/work/a/conflict.go", srcA, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := parser.ParseFile(fset, "/work/b/conflict.go", srcB, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{fa, fb})

	posA := token.Position{Filename: "/work/a/conflict.go", Line: 4}
	posB := token.Position{Filename: "/work/b/conflict.go", Line: 4}
	if !sup.suppressed("demo", posA) {
		t.Errorf("diagnostic in a/conflict.go below its ignore comment should be suppressed")
	}
	if sup.suppressed("demo", posB) {
		t.Errorf("suppression in a/conflict.go leaked to b/conflict.go (same base name)")
	}
}

// TestSuppressionPathNormalized pins that a differently-spelled path for the
// same file (./a/conflict.go vs a/conflict.go) still matches.
func TestSuppressionPathNormalized(t *testing.T) {
	const src = `package p

//dopevet:ignore demo reason
var A = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "./a/conflict.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{f})
	if !sup.suppressed("demo", token.Position{Filename: "a/conflict.go", Line: 4}) {
		t.Errorf("cleaned path should match the uncleaned registration")
	}
}

// TestSuppressionSameLineAndAbove pins the two accepted comment placements.
func TestSuppressionSameLineAndAbove(t *testing.T) {
	const src = `package p

var A = 1 //dopevet:ignore demo same line
var B = 2
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{f})
	if !sup.suppressed("demo", token.Position{Filename: "p.go", Line: 3}) {
		t.Errorf("same-line ignore should suppress")
	}
	if !sup.suppressed("demo", token.Position{Filename: "p.go", Line: 4}) {
		t.Errorf("line-above ignore should suppress the next line")
	}
	if sup.suppressed("other", token.Position{Filename: "p.go", Line: 3}) {
		t.Errorf("ignore list is per-analyzer; unrelated name must not be suppressed")
	}
}

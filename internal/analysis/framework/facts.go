package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"os"
	"strings"
	"sync"
)

// A FactStore carries analyzer facts across package boundaries — the stdlib
// stand-in for go/analysis object facts plus the unitchecker's vetx files.
//
// A fact is any JSON-serializable value an analyzer attaches to a
// package-level function or method while analyzing the defining package;
// when a later pass analyzes a package that calls that function, the fact is
// recovered by object identity-independent key (package path, receiver,
// name), so it survives both the standalone loader (one shared FileSet,
// source-typechecked dependencies) and the unitchecker protocol (per-package
// processes, export-data-typechecked dependencies).
//
// Facts are namespaced by analyzer name, mirroring go/analysis: one
// analyzer cannot observe another's facts. The store is safe for concurrent
// readers and writers so a future parallel driver does not corrupt it.
type FactStore struct {
	mu sync.RWMutex
	m  map[string]json.RawMessage // "analyzer\x00objkey" -> payload
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]json.RawMessage)}
}

// ObjKey builds the cross-package identity of a package-level function or
// method: "pkgpath.Name" for functions, "pkgpath.(Recv).Name" for methods.
// Objects without a package (builtins) and nil objects key to "".
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	recv := ""
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				recv = "(" + named.Obj().Name() + ")."
			}
		}
	}
	return obj.Pkg().Path() + "." + recv + obj.Name()
}

func factKey(analyzer, objKey string) string { return analyzer + "\x00" + objKey }

// export records fact for (analyzer, obj). Unkeyable objects are ignored.
func (s *FactStore) export(analyzer string, obj types.Object, fact any) error {
	key := ObjKey(obj)
	if key == "" {
		return nil
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("facts: encoding %T for %s: %w", fact, key, err)
	}
	s.mu.Lock()
	s.m[factKey(analyzer, key)] = data
	s.mu.Unlock()
	return nil
}

// importInto decodes the fact for (analyzer, obj) into ptr and reports
// whether one was present.
func (s *FactStore) importInto(analyzer string, obj types.Object, ptr any) bool {
	key := ObjKey(obj)
	if key == "" {
		return false
	}
	s.mu.RLock()
	data, ok := s.m[factKey(analyzer, key)]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, ptr) == nil
}

// Len returns how many facts the store holds.
func (s *FactStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Merge unions every fact of other into s. When both stores carry a fact
// for the same (analyzer, object) key with different payloads — two
// dependencies each re-exported a summary for a shared import — the
// lexicographically smaller payload wins. The rule is arbitrary but
// commutative and associative, so the union is deterministic no matter the
// order dependencies are merged in (the unitchecker iterates PackageVetx in
// map order).
func (s *FactStore) Merge(other *FactStore) {
	if other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range other.m {
		mergeFact(s.m, k, v)
	}
}

// mergeFact installs payload under key, resolving conflicts by the
// smaller-payload rule shared by Merge and DecodeVetx. Callers hold s.mu.
func mergeFact(m map[string]json.RawMessage, key string, payload json.RawMessage) {
	if old, ok := m[key]; ok && string(old) <= string(payload) {
		return
	}
	m[key] = payload
}

// vetxFile is the serialized form of a store: the format written to the
// unitchecker's VetxOutput and read back from dependencies' PackageVetx
// files. Deterministically ordered so the go command's content-based build
// cache is stable.
type vetxFile struct {
	Version int               `json:"version"`
	Facts   map[string]string `json:"facts,omitempty"`
}

const vetxVersion = 1

// EncodeVetx serializes the store.
func (s *FactStore) EncodeVetx() ([]byte, error) {
	s.mu.RLock()
	f := vetxFile{Version: vetxVersion, Facts: make(map[string]string, len(s.m))}
	for k, v := range s.m {
		f.Facts[strings.ReplaceAll(k, "\x00", "|")] = string(v)
	}
	s.mu.RUnlock()
	// encoding/json marshals map keys in sorted order, so the output is
	// deterministic and the go command's content-based build cache is stable.
	return json.Marshal(f)
}

// DecodeVetx merges a serialized store into s, with the same deterministic
// smaller-payload conflict rule as Merge. Empty input is accepted and
// contributes nothing: older drivers wrote zero-byte vetx files
// unconditionally, and a fact-free dependency is not an error.
func (s *FactStore) DecodeVetx(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var f vetxFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("facts: decoding vetx: %w", err)
	}
	if f.Version != vetxVersion {
		return fmt.Errorf("facts: unsupported vetx version %d", f.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range f.Facts {
		i := strings.Index(k, "|")
		if i < 0 {
			continue
		}
		mergeFact(s.m, factKey(k[:i], k[i+1:]), json.RawMessage(v))
	}
	return nil
}

// ReadVetxFile loads one vetx file into a fresh store. A missing file is an
// error; an empty file yields an empty store.
func ReadVetxFile(path string) (*FactStore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := NewFactStore()
	if err := s.DecodeVetx(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteVetxFile serializes the store to path.
func (s *FactStore) WriteVetxFile(path string) error {
	data, err := s.EncodeVetx()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0666)
}

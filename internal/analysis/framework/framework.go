// Package framework is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer couples a name and a Run
// function over a type-checked package (a Pass), and reports Diagnostics.
//
// The repository cannot vendor x/tools, so dope-vet's analyzers are written
// against this package instead. The shapes are kept deliberately identical
// to go/analysis (Analyzer.Name/Doc/Run, Pass.Fset/Files/Pkg/TypesInfo,
// Pass.Reportf) so the suite can be rebased onto the real framework by
// changing imports only.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// comments; lowercase, no spaces.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package: the syntax,
// the type information, the Report sink, and the fact store shared across
// packages.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; installed by the driver.
	Report func(Diagnostic)

	// facts is the cross-package store, namespaced per analyzer; may be nil
	// when the driver runs without facts.
	facts *FactStore
}

// ExportObjectFact attaches fact (any JSON-serializable value) to obj under
// this analyzer's namespace, making it visible to later passes over
// packages that import obj's package. A nil store or unkeyable object is a
// no-op.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.facts == nil {
		return
	}
	if err := p.facts.export(p.Analyzer.Name, obj, fact); err != nil {
		// A non-serializable fact is an analyzer bug; surface it loudly at
		// the first diagnostic position available.
		p.Report(Diagnostic{Pos: token.NoPos, Message: err.Error()})
	}
}

// ImportObjectFact decodes the fact attached to obj by this analyzer in an
// earlier pass into ptr and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr any) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importInto(p.Analyzer.Name, obj, ptr)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a positioned, analyzer-attributed diagnostic, the driver's
// output unit.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding silenced by a //dopevet:ignore comment;
	// only RunPackageFactsAll returns such findings (for reporting modes
	// that show blessed sites), the plain runners drop them.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies every analyzer to one type-checked package and returns
// the surviving findings: suppression comments (see suppress.go) are
// honored, and duplicate findings at the same position are dropped. Analyzer
// run errors are returned as an error after all analyzers executed.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackageFacts(fset, files, pkg, info, analyzers, nil)
}

// RunPackageFacts is RunPackage with a cross-package fact store: analyzers
// import facts that earlier passes (over this package's dependencies)
// exported into facts, and export their own for packages analyzed later. A
// nil store degrades to intra-package analysis.
func RunPackageFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Finding, error) {
	all, err := RunPackageFactsAll(fset, files, pkg, info, analyzers, facts)
	findings := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			findings = append(findings, f)
		}
	}
	return findings, err
}

// RunPackageFactsAll is RunPackageFacts without the suppression filter:
// findings silenced by //dopevet:ignore comments are returned too, marked
// Suppressed, so reporting modes (dope-vet -json) can show blessed sites
// alongside live ones.
func RunPackageFactsAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Finding, error) {
	sup := collectSuppressions(fset, files)
	var findings []Finding
	seen := make(map[string]bool)
	var firstErr error
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			key := fmt.Sprintf("%s|%s|%s", a.Name, pos, d.Message)
			if seen[key] {
				return
			}
			seen[key] = true
			findings = append(findings, Finding{
				Analyzer:   a.Name,
				Pos:        pos,
				Message:    d.Message,
				Suppressed: sup.suppressed(a.Name, pos),
			})
		}
		if err := a.Run(pass); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, firstErr
}

// ExportFacts runs every analyzer over the package purely for its fact
// exports: diagnostics are discarded. Drivers use this on dependency
// packages so that facts about their functions are available when the
// package under analysis is checked.
func ExportFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) error {
	var firstErr error
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     facts,
			Report:    func(Diagnostic) {},
		}
		if err := a.Run(pass); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return firstErr
}

package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"testing"
)

type windowish struct {
	Opens  bool `json:"opens"`
	Closes bool `json:"closes"`
}

func typecheck(t *testing.T, fset *token.FileSet, path, src string) (*types.Package, *types.Info, []*ast.File) {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, info, []*ast.File{f}
}

// TestFactExportImportAcrossPasses pins the core flow: a pass over the
// defining package exports a fact on a function; a later pass (any package
// referencing the same object key) imports it.
func TestFactExportImportAcrossPasses(t *testing.T) {
	fset := token.NewFileSet()
	pkg, info, files := typecheck(t, fset, "example.com/helper", `package helper

func Open() {}

type T struct{}

func (t *T) Close() {}
`)
	facts := NewFactStore()

	exporter := &Analyzer{
		Name: "demo",
		Run: func(p *Pass) error {
			p.ExportObjectFact(p.Pkg.Scope().Lookup("Open"), windowish{Opens: true})
			tObj := p.Pkg.Scope().Lookup("T").Type()
			m, _, _ := types.LookupFieldOrMethod(tObj, true, p.Pkg, "Close")
			p.ExportObjectFact(m, windowish{Closes: true})
			return nil
		},
	}
	if err := ExportFacts(fset, files, pkg, info, []*Analyzer{exporter}, facts); err != nil {
		t.Fatal(err)
	}
	if facts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", facts.Len())
	}

	var got windowish
	importer := &Analyzer{
		Name: "demo",
		Run: func(p *Pass) error {
			if !p.ImportObjectFact(p.Pkg.Scope().Lookup("Open"), &got) {
				t.Errorf("fact on Open not found")
			}
			var other windowish
			tObj := p.Pkg.Scope().Lookup("T").Type()
			m, _, _ := types.LookupFieldOrMethod(tObj, true, p.Pkg, "Close")
			if !p.ImportObjectFact(m, &other) || !other.Closes {
				t.Errorf("fact on (*T).Close not found or wrong: %+v", other)
			}
			return nil
		},
	}
	if _, err := RunPackageFacts(fset, files, pkg, info, []*Analyzer{importer}, facts); err != nil {
		t.Fatal(err)
	}
	if !got.Opens {
		t.Errorf("imported fact = %+v, want Opens=true", got)
	}

	// Namespacing: a different analyzer name must not see demo's facts.
	stranger := &Analyzer{
		Name: "other",
		Run: func(p *Pass) error {
			var w windowish
			if p.ImportObjectFact(p.Pkg.Scope().Lookup("Open"), &w) {
				t.Errorf("analyzer %q observed a fact exported by %q", "other", "demo")
			}
			return nil
		},
	}
	if _, err := RunPackageFacts(fset, files, pkg, info, []*Analyzer{stranger}, facts); err != nil {
		t.Fatal(err)
	}
}

// TestVetxRoundTrip pins the on-disk format: encode → decode recovers every
// fact, empty input decodes to nothing, and encoding is deterministic.
func TestVetxRoundTrip(t *testing.T) {
	fset := token.NewFileSet()
	pkg, _, _ := typecheck(t, fset, "example.com/helper", `package helper

func Open()  {}
func Close() {}
`)
	open := pkg.Scope().Lookup("Open")
	closeFn := pkg.Scope().Lookup("Close")

	s := NewFactStore()
	if err := s.export("beginend", open, windowish{Opens: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.export("beginend", closeFn, windowish{Closes: true}); err != nil {
		t.Fatal(err)
	}

	data, err := s.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := s.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("EncodeVetx is not deterministic")
	}

	path := filepath.Join(t.TempDir(), "helper.vetx")
	if err := s.WriteVetxFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVetxFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-tripped Len = %d, want 2", back.Len())
	}
	var w windowish
	if !back.importInto("beginend", open, &w) || !w.Opens {
		t.Errorf("fact on Open lost in round trip: %+v", w)
	}

	// Legacy empty vetx files (the old driver wrote zero bytes) decode to an
	// empty store, not an error.
	empty := NewFactStore()
	if err := empty.DecodeVetx(nil); err != nil {
		t.Fatalf("empty vetx: %v", err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty vetx produced %d facts", empty.Len())
	}
}

// TestObjKey pins the cross-package identity format.
func TestObjKey(t *testing.T) {
	fset := token.NewFileSet()
	pkg, _, _ := typecheck(t, fset, "example.com/helper", `package helper

func Open() {}

type T struct{}

func (t *T) Close() {}
func (t T) Peek()   {}
`)
	if got, want := ObjKey(pkg.Scope().Lookup("Open")), "example.com/helper.Open"; got != want {
		t.Errorf("ObjKey(Open) = %q, want %q", got, want)
	}
	tType := pkg.Scope().Lookup("T").Type()
	m, _, _ := types.LookupFieldOrMethod(tType, true, pkg, "Close")
	if got, want := ObjKey(m), "example.com/helper.(T).Close"; got != want {
		t.Errorf("ObjKey((*T).Close) = %q, want %q", got, want)
	}
	m, _, _ = types.LookupFieldOrMethod(tType, true, pkg, "Peek")
	if got, want := ObjKey(m), "example.com/helper.(T).Peek"; got != want {
		t.Errorf("ObjKey((T).Peek) = %q, want %q", got, want)
	}
	if ObjKey(nil) != "" {
		t.Errorf("ObjKey(nil) should be empty")
	}
}

// TestMergeConflictDeterministic pins the union rule: when two stores carry
// different payloads for the same (analyzer, object) key — two dependencies
// each summarized a shared import — the merge picks the lexicographically
// smaller payload, so the result is identical no matter which dependency is
// merged first.
func TestMergeConflictDeterministic(t *testing.T) {
	fset := token.NewFileSet()
	pkg, _, _ := typecheck(t, fset, "example.com/helper", `package helper

func Open() {}
`)
	open := pkg.Scope().Lookup("Open")

	mk := func(w windowish) *FactStore {
		s := NewFactStore()
		if err := s.export("demo", open, w); err != nil {
			t.Fatal(err)
		}
		return s
	}
	depA := mk(windowish{Opens: true})
	depB := mk(windowish{Closes: true})

	ab := NewFactStore()
	ab.Merge(depA)
	ab.Merge(depB)
	ba := NewFactStore()
	ba.Merge(depB)
	ba.Merge(depA)

	var fromAB, fromBA windowish
	if !ab.importInto("demo", open, &fromAB) || !ba.importInto("demo", open, &fromBA) {
		t.Fatal("merged fact lost")
	}
	if fromAB != fromBA {
		t.Fatalf("merge order changed the union: A→B gave %+v, B→A gave %+v", fromAB, fromBA)
	}
	if ab.Len() != 1 || ba.Len() != 1 {
		t.Fatalf("union Len = %d/%d, want 1/1", ab.Len(), ba.Len())
	}

	// The same rule must govern the vetx decode path the unitchecker uses
	// when it folds dependencies' files in map order.
	encA, err := depA.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}
	encB, err := depB.EncodeVetx()
	if err != nil {
		t.Fatal(err)
	}
	decAB := NewFactStore()
	if err := decAB.DecodeVetx(encA); err != nil {
		t.Fatal(err)
	}
	if err := decAB.DecodeVetx(encB); err != nil {
		t.Fatal(err)
	}
	decBA := NewFactStore()
	if err := decBA.DecodeVetx(encB); err != nil {
		t.Fatal(err)
	}
	if err := decBA.DecodeVetx(encA); err != nil {
		t.Fatal(err)
	}
	var vAB, vBA windowish
	if !decAB.importInto("demo", open, &vAB) || !decBA.importInto("demo", open, &vBA) {
		t.Fatal("decoded fact lost")
	}
	if vAB != vBA {
		t.Fatalf("vetx decode order changed the union: %+v vs %+v", vAB, vBA)
	}
	if vAB != fromAB {
		t.Fatalf("Merge and DecodeVetx disagree on the union: %+v vs %+v", fromAB, vAB)
	}

	// Identical payloads never conflict: merging a store into itself twice
	// is a no-op.
	again := NewFactStore()
	again.Merge(depA)
	again.Merge(depA)
	var w windowish
	if again.Len() != 1 || !again.importInto("demo", open, &w) || !w.Opens {
		t.Fatalf("self-merge corrupted the store: Len=%d fact=%+v", again.Len(), w)
	}

	// Re-export by the same analyzer still overwrites: the conflict rule is
	// for cross-store unions, not for a pass refining its own summary.
	refined := mk(windowish{Opens: true})
	if err := refined.export("demo", open, windowish{Opens: true, Closes: true}); err != nil {
		t.Fatal(err)
	}
	if !refined.importInto("demo", open, &w) || !w.Closes {
		t.Fatalf("re-export did not overwrite: %+v", w)
	}
}

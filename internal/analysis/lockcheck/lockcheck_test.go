package lockcheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "../testdata", lockcheck.Analyzer, "lockcheck", "lockcheckfacts")
}

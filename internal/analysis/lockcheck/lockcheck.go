// Package lockcheck infers which mutex guards each struct field and flags
// accesses that bypass the guard. The discipline is inferred, not declared:
// if any function writes a field while holding a sync.Mutex/sync.RWMutex
// belonging to the same struct, the field is guarded by that mutex, and
// every other plain (non-atomic) access — read or write — must hold it too.
//
// The inference deliberately ignores three access classes, both when
// learning guards and when flagging:
//
//   - sync/atomic accesses (atomic.T method calls, &field passed to
//     atomic.* functions): atomics are their own synchronization, and a
//     lock-held atomic store (common in fold/reset paths) must not teach
//     the analyzer that the field needs the lock elsewhere;
//   - construction-phase writes, where the base is a local freshly built
//     from a composite literal or new() in the same function — the value
//     cannot be shared yet;
//   - functions whose name ends in "Locked", the repo convention for
//     "caller holds the receiver's mutex": their accesses count as held.
//
// Guards are exported as GuardFacts on the struct's *types.TypeName through
// the vetx fact store, so a package that imports a guarded type is checked
// against the discipline its home package established.
package lockcheck

import (
	"go/types"
	"sort"
	"strings"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/lockstate"
)

var Analyzer = &framework.Analyzer{
	Name: "lockcheck",
	Doc: "infer per-field mutex guards (a field written under a struct's mutex " +
		"in any function is guarded) and flag plain accesses that do not hold " +
		"the guard; sync/atomic accesses, construction-phase writes, and " +
		"*Locked-convention functions are exempt",
	Run: run,
}

// GuardFact is lockcheck's per-type summary, exported on the struct's
// *types.TypeName: field name → sorted names of the mutex fields observed
// guarding its writes.
type GuardFact struct {
	Guards map[string][]string `json:"guards"`
}

func run(pass *framework.Pass) error {
	var accesses []lockstate.Access
	lockstate.Collect(pass.Files, pass.TypesInfo, func(a lockstate.Access) {
		accesses = append(accesses, a)
	})

	// Pass 1: learn guards from plain writes of this package's own types. A
	// write observed under several mutexes of the owner struct contributes
	// them all; holding any one of them later satisfies the guard (the
	// lenient rule — multi-mutex structs split their fields, and a stricter
	// intersection would need write-site pairing we cannot prove).
	guards := make(map[*types.TypeName]map[string]map[string]bool)
	for _, a := range accesses {
		if a.Owner == nil || a.Owner.Pkg() != pass.Pkg {
			continue
		}
		if !a.Write || a.Atomic || a.CreationLocal || a.InLockedFunc || len(a.Held) == 0 {
			continue
		}
		byField := guards[a.Owner]
		if byField == nil {
			byField = make(map[string]map[string]bool)
			guards[a.Owner] = byField
		}
		set := byField[a.Field.Name()]
		if set == nil {
			set = make(map[string]bool)
			byField[a.Field.Name()] = set
		}
		for _, m := range a.Held {
			set[m] = true
		}
	}

	// Resolve the guard table for an owner type: local inference for this
	// package's types, imported GuardFacts for everyone else's.
	imported := make(map[*types.TypeName]map[string][]string)
	guardsOf := func(owner *types.TypeName) map[string][]string {
		if owner.Pkg() == pass.Pkg {
			byField := guards[owner]
			if byField == nil {
				return nil
			}
			out := make(map[string][]string, len(byField))
			for f, set := range byField {
				out[f] = sortedKeys(set)
			}
			return out
		}
		if g, ok := imported[owner]; ok {
			return g
		}
		var fact GuardFact
		if pass.ImportObjectFact(owner, &fact) {
			imported[owner] = fact.Guards
		} else {
			imported[owner] = nil
		}
		return imported[owner]
	}

	// Pass 2: flag plain accesses of guarded fields that hold no guard. A
	// base that did not render is skipped — lock matching could not have
	// succeeded, and flagging on ignorance would drown real findings.
	for _, a := range accesses {
		if a.Owner == nil || a.Atomic || a.CreationLocal || a.Base == "" {
			continue
		}
		g := guardsOf(a.Owner)
		names := g[a.Field.Name()]
		if len(names) == 0 || a.HeldAny(names) {
			continue
		}
		kind := "read"
		if a.Write {
			kind = "write"
		}
		pass.Reportf(a.Pos, "%s of %s.%s without holding %s (field is mutex-guarded)",
			kind, a.Owner.Name(), a.Field.Name(), strings.Join(names, "/"))
	}

	// Export facts for this package's guarded types.
	for owner, byField := range guards {
		fact := GuardFact{Guards: make(map[string][]string, len(byField))}
		for f, set := range byField {
			fact.Guards[f] = sortedKeys(set)
		}
		pass.ExportObjectFact(owner, fact)
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

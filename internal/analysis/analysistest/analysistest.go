// Package analysistest runs an analyzer over GOPATH-style fixture packages
// and checks its diagnostics against `// want "regexp"` comments — the
// stdlib mirror of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. Imports resolve against
// <testdata>/src first (so fixtures can stub module packages like
// dope/internal/core), then the standard library. A line expecting
// diagnostics carries one trailing comment with one quoted regular
// expression per expected diagnostic:
//
//	w.Begin() // want `double Begin`
//	w.End()   // want "without a matching" "second message"
//
// Every diagnostic must match a want on its line and every want must be
// matched, or the test fails.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/load"
)

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one pending want at a file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run applies a to each fixture package under testdata/src and reports
// mismatches through t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPackage(t, abs, a, pkg)
		})
	}
}

func runPackage(t *testing.T, testdata string, a *framework.Analyzer, pkg string) {
	t.Helper()
	l, err := load.NewLoader("")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l.SrcDirs = []string{filepath.Join(testdata, "src")}
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
	units, err := l.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pkg, err)
	}
	if len(units) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	// Fact closure: replay the analyzer over every fixture dependency in
	// dependency order, diagnostics discarded, so cross-package facts exist
	// before the unit under test is checked — the same flow the unitchecker
	// driver performs with vetx files.
	facts := framework.NewFactStore()
	for _, dep := range l.ImportClosure() {
		if err := framework.ExportFacts(l.Fset, dep.Files, dep.Types, dep.Info, []*framework.Analyzer{a}, facts); err != nil {
			t.Fatalf("analysistest: exporting facts of %s: %v", dep.ImportPath, err)
		}
	}
	for _, u := range units {
		findings, err := framework.RunPackageFacts(l.Fset, u.Files, u.Types, u.Info, []*framework.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, u.ID, err)
		}
		expects := collectWants(t, l, u.Files)
		for _, f := range findings {
			key := posKey(f.Pos.Filename, f.Pos.Line)
			matched := false
			for _, exp := range expects[key] {
				if !exp.matched && exp.re.MatchString(f.Message) {
					exp.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
			}
		}
		for key, exps := range expects {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s: no diagnostic matching %q", key, exp.re)
				}
			}
		}
	}
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// collectWants extracts the `// want ...` expectations of every file.
func collectWants(t *testing.T, l *load.Loader, files []*ast.File) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := posKey(pos.Filename, pos.Line)
					out[key] = append(out[key], &expectation{re: re})
				}
			}
		}
	}
	return out
}

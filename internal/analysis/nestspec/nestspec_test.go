package nestspec_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/nestspec"
)

func TestNestSpec(t *testing.T) {
	analysistest.Run(t, "../testdata", nestspec.Analyzer, "nestspec")
}

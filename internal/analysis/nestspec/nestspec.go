// Package nestspec statically validates NestSpec/AltSpec/StageSpec/
// StageFns and dope.PipeStage composite literals — the static tree of nest
// specifications the paper's applications register with the executive.
// It mirrors the structural invariants NestSpec.Validate enforces at run
// time (non-empty names, at least one alternative and stage, a functor per
// stage, no alternative or stage declared twice, sane DoP bounds) so a
// malformed spec fails at vet time instead of at Create.
//
// Only statically-decidable facts are flagged: names must be constant to be
// checked, and a missing field is only reported where the literal is
// clearly meant to be complete (other fields are set, or the literal is an
// element of the enclosing slice the executive consumes directly).
package nestspec

import (
	"go/ast"
	"go/constant"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "nestspec",
	Doc: "check statically-constructible NestSpec/PipeStage literals: " +
		"non-empty names, non-nil functors, no alternative or stage " +
		"declared twice, and consistent DoP bounds",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			switch litTypeName(pass.TypesInfo, lit) {
			case "NestSpec":
				checkNest(pass, lit)
			case "AltSpec":
				checkAlt(pass, lit)
			case "StageSpec":
				checkStage(pass, lit)
			case "StageFns":
				checkStageFns(pass, lit)
			case "PipeStage":
				checkPipeStage(pass, lit)
			}
			checkStageFnsSlice(pass, lit)
			return true
		})
	}
	return nil
}

// litTypeName resolves the named type of a composite literal when it is one
// of the spec types (core.NestSpec etc., or dope.PipeStage — generic
// instantiations included).
func litTypeName(info *types.Info, lit *ast.CompositeLit) string {
	tv, ok := info.Types[lit]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case protocol.CorePath:
		switch obj.Name() {
		case "NestSpec", "AltSpec", "StageSpec", "StageFns":
			return obj.Name()
		}
	case "dope":
		if obj.Name() == "PipeStage" {
			return "PipeStage"
		}
	}
	return ""
}

// fields maps a struct literal's element expressions by field name,
// supporting both keyed and positional forms.
func fields(info *types.Info, lit *ast.CompositeLit) map[string]ast.Expr {
	m := make(map[string]ast.Expr)
	tv, ok := info.Types[lit]
	if !ok {
		return m
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return m
	}
	for i, el := range lit.Elts {
		if kv, keyed := el.(*ast.KeyValueExpr); keyed {
			if id, isID := kv.Key.(*ast.Ident); isID {
				m[id.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			m[st.Field(i).Name()] = el
		}
	}
	return m
}

// constString returns the constant string value of e, and whether e is a
// string constant at all.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constInt returns the constant int value of e if there is one.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// checkName flags a constant-empty or missing Name field. kind names the
// literal in the message.
func checkName(pass *framework.Pass, lit *ast.CompositeLit, fs map[string]ast.Expr, kind string) {
	if name, ok := fs["Name"]; ok {
		if s, isConst := constString(pass.TypesInfo, name); isConst && s == "" {
			pass.Reportf(name.Pos(), "%s with empty name", kind)
		}
		return
	}
	if len(fs) > 0 {
		pass.Reportf(lit.Pos(), "%s literal without a Name", kind)
	}
}

func checkNest(pass *framework.Pass, lit *ast.CompositeLit) {
	fs := fields(pass.TypesInfo, lit)
	checkName(pass, lit, fs, "nest")
	alts, ok := fs["Alts"]
	if !ok {
		return
	}
	altsLit, ok := ast.Unparen(alts).(*ast.CompositeLit)
	if !ok {
		return
	}
	if len(altsLit.Elts) == 0 {
		pass.Reportf(altsLit.Pos(), "nest with no alternatives")
		return
	}
	seen := make(map[string]bool)
	for _, el := range altsLit.Elts {
		inner := compositeOf(el)
		if inner == nil {
			continue
		}
		ifs := fields(pass.TypesInfo, inner)
		if nameExpr, has := ifs["Name"]; has {
			if s, isConst := constString(pass.TypesInfo, nameExpr); isConst && s != "" {
				if seen[s] {
					pass.Reportf(nameExpr.Pos(), "alternative %q declared twice in one nest", s)
				}
				seen[s] = true
			}
		}
	}
}

func checkAlt(pass *framework.Pass, lit *ast.CompositeLit) {
	fs := fields(pass.TypesInfo, lit)
	checkName(pass, lit, fs, "alternative")
	if mk, ok := fs["Make"]; ok && isNil(pass.TypesInfo, mk) {
		pass.Reportf(mk.Pos(), "alternative with nil Make factory")
	}
	stages, ok := fs["Stages"]
	if !ok {
		return
	}
	stagesLit, ok := ast.Unparen(stages).(*ast.CompositeLit)
	if !ok {
		return
	}
	if len(stagesLit.Elts) == 0 {
		pass.Reportf(stagesLit.Pos(), "alternative with no stages")
		return
	}
	seen := make(map[string]bool)
	for _, el := range stagesLit.Elts {
		inner := compositeOf(el)
		if inner == nil {
			continue
		}
		ifs := fields(pass.TypesInfo, inner)
		if nameExpr, has := ifs["Name"]; has {
			if s, isConst := constString(pass.TypesInfo, nameExpr); isConst && s != "" {
				if seen[s] {
					pass.Reportf(nameExpr.Pos(), "stage %q declared twice in one alternative", s)
				}
				seen[s] = true
			}
		}
	}
}

func checkStage(pass *framework.Pass, lit *ast.CompositeLit) {
	fs := fields(pass.TypesInfo, lit)
	checkName(pass, lit, fs, "stage")
	var minV, maxV int64
	var hasMin, hasMax bool
	if e, ok := fs["MinDoP"]; ok {
		minV, hasMin = constInt(pass.TypesInfo, e)
		if hasMin && minV < 0 {
			pass.Reportf(e.Pos(), "stage with negative MinDoP")
		}
	}
	if e, ok := fs["MaxDoP"]; ok {
		maxV, hasMax = constInt(pass.TypesInfo, e)
		if hasMax && maxV < 0 {
			pass.Reportf(e.Pos(), "stage with negative MaxDoP")
		}
	}
	if hasMin && hasMax && maxV > 0 && minV > maxV {
		pass.Reportf(lit.Pos(), "stage with MinDoP > MaxDoP")
	}
}

func checkPipeStage(pass *framework.Pass, lit *ast.CompositeLit) {
	fs := fields(pass.TypesInfo, lit)
	checkName(pass, lit, fs, "pipeline stage")
	if fn, ok := fs["Fn"]; ok {
		if isNil(pass.TypesInfo, fn) {
			pass.Reportf(fn.Pos(), "pipeline stage with nil Fn")
		}
	} else if len(fs) > 0 {
		pass.Reportf(lit.Pos(), "pipeline stage literal without an Fn")
	}
}

// checkStageFns flags an explicitly-nil functor in a StageFns literal. A
// missing Fn is only reported by checkStageFnsSlice, where the literal is
// clearly final.
func checkStageFns(pass *framework.Pass, lit *ast.CompositeLit) {
	fs := fields(pass.TypesInfo, lit)
	if fn, ok := fs["Fn"]; ok && isNil(pass.TypesInfo, fn) {
		pass.Reportf(fn.Pos(), "stage with nil functor (Fn)")
	}
}

// checkStageFnsSlice flags elements of a []core.StageFns literal that set
// fields but no functor: these are handed to the executive as-is, so a
// missing Fn fails every run of the alternative.
func checkStageFnsSlice(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "StageFns" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != protocol.CorePath {
		return
	}
	for _, el := range lit.Elts {
		inner := compositeOf(el)
		if inner == nil {
			continue
		}
		if _, has := fields(pass.TypesInfo, inner)["Fn"]; !has {
			pass.Reportf(inner.Pos(), "stage instance without a functor (Fn)")
		}
	}
}

// compositeOf unwraps &X{...} and elided {...} slice elements to the
// composite literal.
func compositeOf(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

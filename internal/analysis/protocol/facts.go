package protocol

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WindowFact is the per-function Begin/End window summary analyzers export
// across package boundaries: whether calling the function opens exactly one
// window for the caller, or closes exactly one. Functions that are balanced,
// conditional, or unanalyzable (goto) get no fact.
type WindowFact struct {
	Opens  bool `json:"opens,omitempty"`
	Closes bool `json:"closes,omitempty"`
}

// Delta converts the fact to the engine's WindowDelta convention.
func (f WindowFact) Delta() int {
	switch {
	case f.Opens:
		return +1
	case f.Closes:
		return -1
	}
	return 0
}

// SummarizeWindows computes the window summary of every function declared in
// the package: +1 if every exit from depth 0 leaves the caller at depth 1
// (the function opens a window), -1 if the function is a no-op from depth 0
// and every exit from depth 1 lands at depth 0 (it closes the caller's
// window). imported supplies summaries of functions from other packages
// (from analyzer facts); may be nil. The computation runs to a fixpoint so
// chains of helpers (open calls openRaw calls Begin) summarize correctly.
//
// The core package itself is skipped: Worker.Begin/End are the primitives,
// recognized structurally by the engine.
func SummarizeWindows(files []*ast.File, pkg *types.Package, info *types.Info, imported func(*types.Func) int) map[*types.Func]int {
	if pkg == nil || pkg.Path() == CorePath {
		return nil
	}
	type cand struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var cands []cand
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				cands = append(cands, cand{fn, fd.Body})
			}
		}
	}
	local := make(map[*types.Func]int)
	delta := func(fn *types.Func) int {
		if d, ok := local[fn]; ok {
			return d
		}
		if imported != nil {
			return imported(fn)
		}
		return 0
	}
	// Fixpoint: each round may propagate a summary one call edge further;
	// the candidate count bounds the longest helper chain.
	for round := 0; round <= len(cands); round++ {
		changed := false
		for _, c := range cands {
			d := summarizeOne(c.body, info, delta)
			if local[c.fn] != d {
				local[c.fn] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, d := range local {
		if d == 0 {
			delete(local, fn)
		}
	}
	return local
}

// summarizeOne classifies one body by running the abstract interpreter from
// depth 0 and depth 1 and inspecting the union of exit depth-sets.
func summarizeOne(body *ast.BlockStmt, info *types.Info, delta func(*types.Func) int) int {
	exitUnion := func(start DepthMask) DepthMask {
		var u DepthMask
		e := &Engine{
			Info:        info,
			WindowDelta: delta,
			Hooks: Hooks{
				Exit: func(_ token.Pos, m DepthMask) { u |= m },
			},
		}
		e.RunFrom(Func{Body: body}, start)
		return u
	}
	switch exitUnion(D0) {
	case D1:
		return +1
	case D0:
		// Neutral from depth 0 (End at depth 0 is a runtime no-op); a closer
		// must take depth 1 to exactly depth 0 on every exit.
		if exitUnion(D1) == D0 {
			return -1
		}
	}
	return 0
}

// Package protocol contains the shared machinery of the dope-vet analyzers:
// recognizing Worker.Begin/End/RunNest calls and core.Status constants in
// typed syntax, enumerating function bodies, and an abstract interpreter
// that tracks the set of possible held-token depths through a function's
// control flow (the stdlib stand-in for the x/tools ctrlflow pass).
package protocol

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CorePath is the import path of the package defining Worker and Status.
// The top-level dope package re-exports them as aliases, so matching on the
// defining package covers both spellings.
const CorePath = "dope/internal/core"

// WorkerMethod returns the method name ("Begin", "End", "RunNest",
// "Suspending", ...) if call is a method call on core.Worker, else "".
func WorkerMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return ""
	}
	if !isCoreNamed(s.Recv(), "Worker") {
		return ""
	}
	return sel.Sel.Name
}

// TaskContextMethod returns the method name ("Done") if call is a method
// call on core.TaskContext, else "".
func TaskContextMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return ""
	}
	if !isCoreNamed(s.Recv(), "TaskContext") {
		return ""
	}
	return sel.Sel.Name
}

// IsCoreType reports whether t (or its pointee) is the named type
// CorePath.name — exported for analyzers that match composite literals
// (StageSpec, AltSpec, ...) rather than method calls.
func IsCoreType(t types.Type, name string) bool { return isCoreNamed(t, name) }

// IsSuspended reports whether e denotes the core.Status constant Suspended
// (including the dope.Suspended re-export).
func IsSuspended(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	if !isCoreNamed(tv.Type, "Status") {
		return false
	}
	// Suspended is the only Status with value 1.
	return tv.Value.ExactString() == "1"
}

// CalleeFunc resolves the function or method object a call statically
// dispatches to, or nil for indirect calls (function values, interface
// methods resolve to the interface's method object, which is fine for fact
// lookup: facts are attached to concrete declarations).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isCoreNamed reports whether t (or its pointee) is the named type
// CorePath.name.
func isCoreNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == CorePath
}

// Func is one function body analyzed as an independent unit.
type Func struct {
	Body *ast.BlockStmt
	// Decl is the enclosing declaration when the unit is a named function,
	// nil for function literals. Lets analyzers look up per-function
	// summaries (window facts) for the body under analysis.
	Decl *ast.FuncDecl
	// Deferred marks a function literal that is the immediate callee of a
	// defer statement: a cleanup body, exempt from End-without-Begin and
	// status-check requirements.
	Deferred bool
}

// Funcs enumerates every function body in the files: declarations and each
// function literal, each as its own unit (the engine does not descend into
// nested literals).
func Funcs(files []*ast.File) []Func {
	var fns []Func
	deferred := make(map[*ast.FuncLit]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					deferred[lit] = true
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					fns = append(fns, Func{Body: n.Body, Decl: n})
				}
			case *ast.FuncLit:
				fns = append(fns, Func{Body: n.Body, Deferred: deferred[n]})
			}
			return true
		})
	}
	return fns
}

// DepthMask is the set of possible held-token depths at a program point:
// bit 0 = not holding, bit 1 = holding one token, bit 2 = two or more
// (already a protocol violation). The zero mask means unreachable.
type DepthMask uint8

const (
	D0 DepthMask = 1 << iota // depth 0
	D1                       // depth 1
	D2                       // depth ≥ 2
)

// CanHold reports whether any path reaches this point holding a token.
func (m DepthMask) CanHold() bool { return m&(D1|D2) != 0 }

// MustHold reports whether every path reaching this point holds a token.
func (m DepthMask) MustHold() bool { return m != 0 && m&D0 == 0 }

// inc is the transfer function of a successful Begin.
func (m DepthMask) inc() DepthMask {
	var r DepthMask
	if m&D0 != 0 {
		r |= D1
	}
	if m&(D1|D2) != 0 {
		r |= D2
	}
	return r
}

// dec is the transfer function of End: a no-op at depth 0 (the runtime
// tolerates an unbalanced End), releasing one token otherwise. Depth "≥2"
// conservatively decrements to "≥1".
func (m DepthMask) dec() DepthMask {
	var r DepthMask
	if m&D0 != 0 {
		r |= D0
	}
	if m&D1 != 0 {
		r |= D0
	}
	if m&D2 != 0 {
		r |= D1 | D2
	}
	return r
}

// Hooks are the engine's callbacks. Any hook may be nil. Loop bodies are
// interpreted twice to expose loop-carried imbalance, so a hook can fire
// more than once for the same syntax node; clients must deduplicate by
// position (the framework driver already drops identical findings).
type Hooks struct {
	// Begin fires at a Worker.Begin call with the depth-set before it.
	Begin func(call *ast.CallExpr, before DepthMask)
	// End fires at a non-deferred Worker.End call with the depth-set
	// before it.
	End func(call *ast.CallExpr, before DepthMask)
	// Exit fires at each function exit — a return statement or falling off
	// the end of the body — with the depth-set after deferred Ends ran.
	// Not fired for exits that became unreachable, nor when the body
	// contains a goto (the engine does not model goto).
	Exit func(pos token.Pos, depth DepthMask)
	// Stmt fires for each reachable simple statement, condition, or select
	// statement with the depth-set in effect while it executes. Used to
	// find work performed inside a Begin/End window.
	Stmt func(n ast.Node, depth DepthMask)
	// OpenCall fires at a call to a function whose WindowDelta is +1 (a
	// helper that opens a Begin/End window for its caller), with the
	// depth-set before it.
	OpenCall func(call *ast.CallExpr, fn *types.Func, before DepthMask)
	// CloseCall fires at a call to a function whose WindowDelta is -1 (a
	// helper that closes the caller's window), with the depth-set before it.
	CloseCall func(call *ast.CallExpr, fn *types.Func, before DepthMask)
}

// Engine interprets one function body over the DepthMask lattice.
type Engine struct {
	Info  *types.Info
	Hooks Hooks
	// WindowDelta, when set, reports the net Begin/End window effect a call
	// to fn has on the caller: +1 opens one window, -1 closes one, 0 is
	// balanced or unknown. Summaries come from this package's fixpoint
	// (SummarizeWindows) and imported analyzer facts; they let the
	// interpreter see through helper functions, including ones in other
	// packages.
	WindowDelta func(fn *types.Func) int
}

// callDelta resolves the window summary of a call's static callee.
func (w *walker) callDelta(call *ast.CallExpr) (int, *types.Func) {
	if w.WindowDelta == nil {
		return 0, nil
	}
	fn := CalleeFunc(w.Info, call)
	if fn == nil {
		return 0, nil
	}
	return w.WindowDelta(fn), fn
}

// state is the abstract state threaded through the walk.
type state struct {
	mask DepthMask
	// deferred counts deferred Worker.End calls registered so far; each
	// one closes a window at function exit.
	deferred int
}

type walker struct {
	*Engine
	// loops is the stack of enclosing breakable statements with the masks
	// collected from their break statements.
	loops   []*loopCtx
	hasGoto bool
	// inComm suppresses the Stmt hook while interpreting a select comm
	// statement: whether it blocks is a property of the whole select (a
	// default clause makes it non-blocking), reported at the SelectStmt.
	inComm bool
}

type loopCtx struct {
	node     ast.Stmt  // *ast.ForStmt, *ast.RangeStmt, switch or select
	breaks   DepthMask // union of masks at break statements
	isLoop   bool      // continue targets this
	contMask DepthMask
}

// Run interprets fn's body from depth 0.
func (e *Engine) Run(fn Func) { e.RunFrom(fn, D0) }

// RunFrom interprets fn's body from an arbitrary entry depth-set — D1 to ask
// "what does this function do to a window its caller already holds", used by
// the window-summary fixpoint.
func (e *Engine) RunFrom(fn Func, start DepthMask) {
	w := &walker{Engine: e}
	// Pre-scan for goto: the engine does not model it, so exit reporting
	// is disabled rather than wrong.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			w.hasGoto = true
		}
		return true
	})
	st := w.block(fn.Body, state{mask: start})
	if st.mask != 0 && !w.hasGoto {
		w.exit(fn.Body.Rbrace, st)
	}
}

func (w *walker) exit(pos token.Pos, st state) {
	if w.Hooks.Exit == nil || w.hasGoto {
		return
	}
	eff := st.mask
	for i := 0; i < st.deferred; i++ {
		eff = eff.dec()
	}
	w.Hooks.Exit(pos, eff)
}

func (w *walker) stmtHook(n ast.Node, m DepthMask) {
	if w.Hooks.Stmt != nil && m != 0 && n != nil && !w.inComm {
		w.Hooks.Stmt(n, m)
	}
}

// block interprets a statement list.
func (w *walker) block(b *ast.BlockStmt, st state) state {
	if b == nil {
		return st
	}
	for _, s := range b.List {
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st state) state {
	if st.mask == 0 {
		return st // unreachable
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.ExprStmt:
		w.stmtHook(s, st.mask)
		st.mask = w.expr(s.X, st.mask)
		if isNoReturnCall(w.Info, s.X) {
			st.mask = 0
		}
		return st

	case *ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.EmptyStmt:
		w.stmtHook(s, st.mask)
		st.mask = w.exprsIn(s, st.mask)
		return st

	case *ast.AssignStmt:
		w.stmtHook(s, st.mask)
		st.mask = w.exprsIn(s, st.mask)
		return st

	case *ast.DeclStmt:
		w.stmtHook(s, st.mask)
		st.mask = w.exprsIn(s, st.mask)
		return st

	case *ast.DeferStmt:
		if w.deferredEnds(s) > 0 {
			st.deferred += w.deferredEnds(s)
			return st
		}
		w.stmtHook(s, st.mask)
		// Argument expressions evaluate now; the call itself runs at exit.
		for _, a := range s.Call.Args {
			st.mask = w.expr(a, st.mask)
		}
		return st

	case *ast.ReturnStmt:
		w.stmtHook(s, st.mask)
		for _, r := range s.Results {
			st.mask = w.expr(r, st.mask)
		}
		w.exit(s.Pos(), st)
		st.mask = 0
		return st

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if lc := w.findBreakable(s.Label); lc != nil {
				lc.breaks |= st.mask
			}
		case token.CONTINUE:
			if lc := w.findLoop(s.Label); lc != nil {
				lc.contMask |= st.mask
			}
		}
		st.mask = 0
		return st

	case *ast.IfStmt:
		return w.ifStmt(s, st)

	case *ast.ForStmt:
		return w.forStmt(s, st)

	case *ast.RangeStmt:
		return w.rangeStmt(s, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.stmtHook(s.Tag, st.mask)
			st.mask = w.expr(s.Tag, st.mask)
		}
		return w.cases(s, s.Body, st, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		return w.cases(s, s.Body, st, true)

	case *ast.SelectStmt:
		w.stmtHook(s, st.mask)
		return w.cases(s, s.Body, st, false)

	default:
		return st
	}
}

// ifStmt models the two branches, with a special case for the protocol
// idiom `if w.Begin() == core.Suspended { ... }`: on the Suspended branch
// Begin did not claim a token, so the depth is unchanged there and
// incremented only on the other branch.
func (w *walker) ifStmt(s *ast.IfStmt, st state) state {
	if s.Init != nil {
		st = w.stmt(s.Init, st)
	}
	thenMask, elseMask, handled := w.condMasks(s.Cond, st.mask)
	if !handled {
		w.stmtHook(s.Cond, st.mask)
		m := w.expr(s.Cond, st.mask)
		thenMask, elseMask = m, m
	}
	thenSt := w.block(s.Body, state{mask: thenMask, deferred: st.deferred})
	elseSt := state{mask: elseMask, deferred: st.deferred}
	if s.Else != nil {
		elseSt = w.stmt(s.Else, elseSt)
	}
	return state{
		mask:     thenSt.mask | elseSt.mask,
		deferred: max(thenSt.deferred, elseSt.deferred),
	}
}

// condMasks recognizes `<window call> ==/!= Suspended` (either operand
// order) and returns the branch-refined masks. A window call is a direct
// Worker.Begin/End, or a call to a helper whose WindowDelta summary says it
// opens or closes a window for the caller — so `if open(w) == Suspended`
// refines the same way `if w.Begin() == Suspended` does, even when open
// lives in another package.
func (w *walker) condMasks(cond ast.Expr, m DepthMask) (thenMask, elseMask DepthMask, ok bool) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return 0, 0, false
	}
	isWindowCall := func(e ast.Expr) (*ast.CallExpr, bool) {
		c, isCall := ast.Unparen(e).(*ast.CallExpr)
		if !isCall {
			return nil, false
		}
		if WorkerMethod(w.Info, c) != "" {
			return c, true
		}
		delta, _ := w.callDelta(c)
		return c, delta != 0
	}
	c, okX := isWindowCall(bin.X)
	susp := bin.Y
	if !okX {
		c2, okY := isWindowCall(bin.Y)
		if !okY {
			return 0, 0, false
		}
		c, susp = c2, bin.X
	}
	if !IsSuspended(w.Info, susp) {
		return 0, 0, false
	}
	opens, closes := false, false
	switch WorkerMethod(w.Info, c) {
	case "Begin":
		if w.Hooks.Begin != nil {
			w.Hooks.Begin(c, m)
		}
		opens = true
	case "End":
		if w.Hooks.End != nil {
			w.Hooks.End(c, m)
		}
		closes = true
	case "":
		switch delta, fn := w.callDelta(c); delta {
		case +1:
			if w.Hooks.OpenCall != nil {
				w.Hooks.OpenCall(c, fn, m)
			}
			opens = true
		case -1:
			if w.Hooks.CloseCall != nil {
				w.Hooks.CloseCall(c, fn, m)
			}
			closes = true
		}
	}
	switch {
	case opens:
		suspMask, execMask := m, m.inc()
		if bin.Op == token.EQL {
			return suspMask, execMask, true
		}
		return execMask, suspMask, true
	case closes:
		after := m.dec()
		return after, after, true
	default:
		return 0, 0, false
	}
}

// forStmt interprets the body twice so loop-carried imbalance (a Begin
// whose End is missing across an iteration) surfaces as a double-Begin on
// the second pass.
func (w *walker) forStmt(s *ast.ForStmt, st state) state {
	if s.Init != nil {
		st = w.stmt(s.Init, st)
	}
	lc := &loopCtx{node: s, isLoop: true}
	w.loops = append(w.loops, lc)
	defer func() { w.loops = w.loops[:len(w.loops)-1] }()

	entry := st.mask
	if s.Cond != nil {
		w.stmtHook(s.Cond, entry)
		entry = w.expr(s.Cond, entry)
	}
	one := w.iterate(s.Body, s.Post, state{mask: entry, deferred: st.deferred}, lc)
	if one.mask|lc.contMask != entry {
		second := state{mask: entry | one.mask | lc.contMask, deferred: st.deferred}
		one = w.iterate(s.Body, s.Post, second, lc)
	}
	after := lc.breaks
	if s.Cond != nil {
		// The condition may fail before the first or after any iteration.
		after |= entry | one.mask | lc.contMask
	}
	return state{mask: after, deferred: max(st.deferred, one.deferred)}
}

func (w *walker) iterate(body *ast.BlockStmt, post ast.Stmt, st state, lc *loopCtx) state {
	st = w.block(body, st)
	st.mask |= lc.contMask
	if post != nil && st.mask != 0 {
		st = w.stmt(post, st)
	}
	return st
}

func (w *walker) rangeStmt(s *ast.RangeStmt, st state) state {
	w.stmtHook(s, st.mask)
	st.mask = w.expr(s.X, st.mask)
	lc := &loopCtx{node: s, isLoop: true}
	w.loops = append(w.loops, lc)
	defer func() { w.loops = w.loops[:len(w.loops)-1] }()

	entry := st.mask
	one := w.iterate(s.Body, nil, state{mask: entry, deferred: st.deferred}, lc)
	if one.mask|lc.contMask != entry {
		one = w.iterate(s.Body, nil,
			state{mask: entry | one.mask | lc.contMask, deferred: st.deferred}, lc)
	}
	after := lc.breaks | entry | one.mask | lc.contMask
	return state{mask: after, deferred: max(st.deferred, one.deferred)}
}

// cases interprets the clause bodies of a switch or select and joins their
// exits. withImplicit adds the entry mask to the join when no default
// clause exists (the whole statement may be skipped).
func (w *walker) cases(node ast.Stmt, body *ast.BlockStmt, st state, withImplicit bool) state {
	lc := &loopCtx{node: node}
	w.loops = append(w.loops, lc)
	defer func() { w.loops = w.loops[:len(w.loops)-1] }()

	var out DepthMask
	hasDefault := false
	maxDef := st.deferred
	for _, clause := range body.List {
		var stmts []ast.Stmt
		cs := state{mask: st.mask, deferred: st.deferred}
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.stmtHook(e, st.mask)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.inComm = true
				cs = w.stmt(c.Comm, cs)
				w.inComm = false
			}
			stmts = c.Body
		}
		for _, s := range stmts {
			cs = w.stmt(s, cs)
		}
		out |= cs.mask
		maxDef = max(maxDef, cs.deferred)
	}
	if withImplicit && !hasDefault {
		out |= st.mask
	}
	out |= lc.breaks
	return state{mask: out, deferred: maxDef}
}

// expr walks an expression in evaluation-ish order applying Begin/End
// transitions, without descending into function literals.
func (w *walker) expr(e ast.Expr, m DepthMask) DepthMask {
	if e == nil || m == 0 {
		return m
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch WorkerMethod(w.Info, call) {
		case "Begin":
			if w.Hooks.Begin != nil {
				w.Hooks.Begin(call, m)
			}
			m = m.inc()
		case "End":
			if w.Hooks.End != nil {
				w.Hooks.End(call, m)
			}
			m = m.dec()
		default:
			switch delta, fn := w.callDelta(call); delta {
			case +1:
				if w.Hooks.OpenCall != nil {
					w.Hooks.OpenCall(call, fn, m)
				}
				m = m.inc()
			case -1:
				if w.Hooks.CloseCall != nil {
					w.Hooks.CloseCall(call, fn, m)
				}
				m = m.dec()
			}
		}
		return true
	})
	return m
}

// exprsIn applies expr to every expression directly under a simple
// statement.
func (w *walker) exprsIn(s ast.Stmt, m DepthMask) DepthMask {
	switch s := s.(type) {
	case *ast.SendStmt:
		m = w.expr(s.Chan, m)
		m = w.expr(s.Value, m)
	case *ast.IncDecStmt:
		m = w.expr(s.X, m)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			m = w.expr(a, m)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			m = w.expr(r, m)
		}
		for _, l := range s.Lhs {
			m = w.expr(l, m)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						m = w.expr(v, m)
					}
				}
			}
		}
	}
	return m
}

// deferredEnds counts window closes a defer statement will run at exit:
// `defer w.End()` or `defer closeHelper(w)` directly, or such calls inside
// a deferred function literal.
func (w *walker) deferredEnds(s *ast.DeferStmt) int {
	if w.closesWindow(s.Call) {
		return 1
	}
	lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return 0
	}
	n := 0
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok && w.closesWindow(call) {
			n++
		}
		return true
	})
	return n
}

// closesWindow reports whether call is Worker.End or a helper summarized as
// closing one window.
func (w *walker) closesWindow(call *ast.CallExpr) bool {
	if WorkerMethod(w.Info, call) == "End" {
		return true
	}
	delta, _ := w.callDelta(call)
	return delta == -1
}

func (w *walker) findBreakable(label *ast.Ident) *loopCtx {
	// Labels are approximated by the nearest enclosing breakable.
	if len(w.loops) == 0 {
		return nil
	}
	return w.loops[len(w.loops)-1]
}

func (w *walker) findLoop(label *ast.Ident) *loopCtx {
	for i := len(w.loops) - 1; i >= 0; i-- {
		if w.loops[i].isLoop {
			return w.loops[i]
		}
	}
	return nil
}

// isNoReturnCall recognizes calls that terminate the path: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and testing's Fatal/Skip family.
func isNoReturnCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		obj := info.Uses[fun.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		case "testing":
			switch name {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true
			}
		}
	}
	return false
}

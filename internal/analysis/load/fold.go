// Const-expression folding over syntax the type checker left unfolded.
//
// The type checker records a constant.Value for every expression built
// purely from constants (2*time.Millisecond, named consts, conversions of
// both), so analyzers get those for free from types.Info. What it cannot
// fold is arithmetic over *variables* whose value is nevertheless statically
// known to the analyzer — `base := 50 * time.Millisecond; iv := base / 2` —
// because variable provenance (single assignment, no escape) is the
// analyzer's knowledge, not the type system's. FoldConst closes that gap:
// it re-folds binary/unary arithmetic and conversions, delegating variable
// references to a caller-supplied resolver that encodes the analyzer's
// soundness rules.
package load

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FoldConst evaluates e to a constant when statically sound. It folds
// everything the type checker already folded (the fast path), plus binary
// arithmetic (including shifts and comparisons), unary +/-/^, parentheses,
// type conversions, references to declared constants, and — through resolve
// — references to variables the caller can prove single-valued. resolve
// receives each variable encountered and returns its sole initializer
// expression, or nil to declare the variable unfoldable; the initializer is
// folded recursively, so resolve must perform its own cycle-breaking (the
// callback observing each variable at most once is sufficient). A nil
// resolve folds pure-constant syntax only.
//
// Integer division folds with Go's truncating semantics; division by zero,
// kind mismatches, and oversized shifts simply fail the fold rather than
// being reported — an unfoldable expression is "not statically decidable",
// never an error.
func FoldConst(info *types.Info, e ast.Expr, resolve func(*types.Var) ast.Expr) (val constant.Value, ok bool) {
	// go/constant panics on mixed kinds and absurd shifts instead of
	// returning Unknown; treat any panic as "does not fold".
	defer func() {
		if recover() != nil || val == nil || val.Kind() == constant.Unknown {
			val, ok = nil, false
		}
	}()

	e = ast.Unparen(e)
	if tv, found := info.Types[e]; found && tv.Value != nil {
		return tv.Value, true
	}

	switch e := e.(type) {
	case *ast.BinaryExpr:
		x, okx := FoldConst(info, e.X, resolve)
		y, oky := FoldConst(info, e.Y, resolve)
		if !okx || !oky {
			return nil, false
		}
		switch e.Op {
		case token.SHL, token.SHR:
			s, exact := constant.Uint64Val(constant.ToInt(y))
			if !exact {
				return nil, false
			}
			return constant.Shift(x, e.Op, uint(s)), true
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return constant.MakeBool(constant.Compare(x, e.Op, y)), true
		case token.QUO:
			if x.Kind() == constant.Int && y.Kind() == constant.Int {
				// Integer operands divide with truncation: the QUO_ASSIGN
				// token is go/constant's spelling of Go's integer division.
				return constant.BinaryOp(x, token.QUO_ASSIGN, y), true
			}
			return constant.BinaryOp(x, token.QUO, y), true
		default:
			return constant.BinaryOp(x, e.Op, y), true
		}
	case *ast.UnaryExpr:
		x, okx := FoldConst(info, e.X, resolve)
		if !okx {
			return nil, false
		}
		switch e.Op {
		case token.ADD, token.SUB, token.XOR, token.NOT:
			return constant.UnaryOp(e.Op, x, 0), true
		}
		return nil, false
	case *ast.Ident:
		return foldObj(info, info.Uses[e], resolve)
	case *ast.SelectorExpr:
		return foldObj(info, info.Uses[e.Sel], resolve)
	case *ast.CallExpr:
		// A conversion T(x): fold the operand. Duration-style integer
		// conversions are value-preserving on already-integral constants;
		// anything that would truncate fails inside go/constant or at the
		// caller's Int64Val.
		if len(e.Args) != 1 {
			return nil, false
		}
		if tv, found := info.Types[e.Fun]; !found || !tv.IsType() {
			return nil, false
		}
		return FoldConst(info, e.Args[0], resolve)
	}
	return nil, false
}

// foldObj folds a named reference: a declared constant directly, a variable
// through the caller's resolver.
func foldObj(info *types.Info, obj types.Object, resolve func(*types.Var) ast.Expr) (constant.Value, bool) {
	switch obj := obj.(type) {
	case *types.Const:
		return obj.Val(), true
	case *types.Var:
		if resolve == nil {
			return nil, false
		}
		init := resolve(obj)
		if init == nil {
			return nil, false
		}
		return FoldConst(info, init, resolve)
	}
	return nil, false
}

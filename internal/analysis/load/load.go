// Package load type-checks packages of this module (and GOPATH-style fixture
// trees) using only the standard library: module-internal imports are
// resolved against the module root, everything else falls back to the
// source importer over GOROOT. It is the package loader behind dope-vet's
// standalone mode and the analysistest fixture runner — the stdlib stand-in
// for golang.org/x/tools/go/packages.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit.
type Package struct {
	// ImportPath is the unit's import path; test variants carry a
	// " [tests]" or "_test" suffix in ID only.
	ImportPath string
	// ID distinguishes the lib, lib+tests, and external-test units of one
	// directory.
	ID    string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages. Not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet
	// ModRoot/ModPath anchor module-internal import resolution; empty when
	// loading a fixture tree only.
	ModRoot string
	ModPath string
	// SrcDirs are GOPATH-style roots (e.g. testdata/src) consulted before
	// the module for import resolution; used by analysistest so fixtures
	// can stub module packages.
	SrcDirs []string

	std     types.Importer
	cache   map[string]*types.Package // import path → lib-only package
	loading map[string]bool

	// imported retains the syntax and type info of every module/fixture
	// package loaded through Import, in completion order (dependencies
	// before dependents). Fact-aware drivers replay analyzers over this
	// closure so cross-package facts exist before the unit under analysis
	// is checked. Standard-library imports are not retained.
	imported      []*Package
	importedByPth map[string]*Package
}

// NewLoader builds a loader rooted at the module containing dir (dir may be
// any path inside the module). With an empty dir the loader resolves only
// SrcDirs and the standard library.
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{
		Fset:          token.NewFileSet(),
		cache:         make(map[string]*types.Package),
		loading:       make(map[string]bool),
		importedByPth: make(map[string]*Package),
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	if dir == "" {
		return l, nil
	}
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l.ModRoot, l.ModPath = root, path
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
	}
}

// Import implements types.Importer: fixture roots first, then the module,
// then the standard library from source. Only non-test files participate,
// matching the compiler's view of an import.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	if dir, ok := l.dirFor(path); ok {
		l.loading[path] = true
		defer delete(l.loading, path)
		names, err := goFilesIn(dir, false)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("load: no Go files in %s for import %q", dir, path)
		}
		files, err := l.parse(dir, names)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		unit := &Package{
			ImportPath: path, ID: path, Dir: dir,
			Files: files, Types: pkg, Info: info,
		}
		l.imported = append(l.imported, unit)
		l.importedByPth[path] = unit
		return pkg, nil
	}
	return l.std.Import(path)
}

// ImportClosure returns every module/fixture package loaded through Import
// so far, dependencies before dependents (Import for a package completes
// only after its own imports have completed). Standard-library packages are
// excluded.
func (l *Loader) ImportClosure() []*Package {
	out := make([]*Package, len(l.imported))
	copy(out, l.imported)
	return out
}

// dirFor resolves an import path against SrcDirs and the module.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, src := range l.SrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModRoot, true
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			dir := filepath.Join(l.ModRoot, filepath.FromSlash(rest))
			if hasGoFiles(dir) {
				return dir, true
			}
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	names, err := goFilesIn(dir, false)
	return err == nil && len(names) > 0
}

// goFilesIn lists buildable .go file names in dir, optionally including
// _test.go files.
func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (GOOS/GOARCH filename suffixes and
		// //go:build lines) for the host platform, as the go tool would:
		// loading both arms of an arch-gated pair (e.g. a _amd64 file and
		// its fallback) redeclares symbols and breaks type-checking.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as import path and returns the package with its
// type info.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := &types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// LoadDir loads the analysis units of one directory: the package including
// its in-package test files, and, when present, the external _test package.
// importPath is the unit's import path; pass "" to derive it from the
// module layout.
func (l *Loader) LoadDir(dir string, importPath string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		importPath, err = l.importPathFor(abs)
		if err != nil {
			return nil, err
		}
	}
	all, err := goFilesIn(abs, true)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Split by package clause: lib+in-package tests vs external tests.
	var libNames, extNames []string
	basePkg := ""
	for _, name := range all {
		pkgName, err := packageClause(filepath.Join(abs, name))
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") && strings.HasSuffix(pkgName, "_test") {
			extNames = append(extNames, name)
			continue
		}
		if basePkg == "" {
			basePkg = pkgName
		}
		libNames = append(libNames, name)
	}
	var units []*Package
	if len(libNames) > 0 {
		files, err := l.parse(abs, libNames)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(importPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			ImportPath: importPath, ID: importPath, Dir: abs,
			Files: files, Types: pkg, Info: info,
		})
	}
	if len(extNames) > 0 {
		files, err := l.parse(abs, extNames)
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(importPath+"_test", files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			ImportPath: importPath, ID: importPath + "_test", Dir: abs,
			Files: files, Types: pkg, Info: info,
		})
	}
	return units, nil
}

// LoadTree loads the units of every package directory under root,
// skipping testdata, vendor, and hidden directories.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var units []*Package
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		us, err := l.LoadDir(path, "")
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		units = append(units, us...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return units, nil
}

// importPathFor maps an absolute directory to its module import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	if l.ModRoot == "" {
		return "", fmt.Errorf("load: no module context for %s", abs)
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", abs, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// packageClause reads just the package name of a file.
func packageClause(path string) (string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

// Package beginend checks that every Worker.Begin is matched by a
// Worker.End on all control-flow paths through a functor (the paper's Task
// interface: Begin/End bracket exactly the CPU-intensive section, so an
// unmatched Begin holds a platform context forever and a double Begin
// claims two). Deferred Ends — `defer w.End()` or an End inside a deferred
// function literal — close the window at every exit and are fully
// supported, as is the suspension idiom
// `if w.Begin() == core.Suspended { return core.Suspended }`, where the
// Suspended branch never claimed a context.
package beginend

import (
	"go/ast"
	"go/token"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "beginend",
	Doc: "check that Worker.Begin and Worker.End are balanced on every path: " +
		"flags double Begin, End without Begin, and paths that leave the " +
		"functor while still holding a platform context",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, fn := range protocol.Funcs(pass.Files) {
		fn := fn
		eng := &protocol.Engine{
			Info: pass.TypesInfo,
			Hooks: protocol.Hooks{
				Begin: func(call *ast.CallExpr, before protocol.DepthMask) {
					if before.MustHold() {
						pass.Reportf(call.Pos(),
							"Worker.Begin while already inside a Begin/End section (double Begin claims a second context)")
					} else if before.CanHold() {
						pass.Reportf(call.Pos(),
							"Worker.Begin may run inside an open Begin/End section on some paths")
					}
				},
				End: func(call *ast.CallExpr, before protocol.DepthMask) {
					if fn.Deferred {
						return // cleanup bodies balance a possibly-open section
					}
					if !before.CanHold() {
						pass.Reportf(call.Pos(),
							"Worker.End without a matching Worker.Begin")
					}
				},
				Exit: func(pos token.Pos, depth protocol.DepthMask) {
					if fn.Deferred {
						return
					}
					if depth.MustHold() {
						pass.Reportf(pos,
							"functor returns while still holding a platform context (Worker.Begin without Worker.End)")
					} else if depth.CanHold() {
						pass.Reportf(pos,
							"functor may return while holding a platform context (Worker.Begin without Worker.End on some path)")
					}
				},
			},
		}
		eng.Run(fn)
	}
	return nil
}

// Package beginend checks that every Worker.Begin is matched by a
// Worker.End on all control-flow paths through a functor (the paper's Task
// interface: Begin/End bracket exactly the CPU-intensive section, so an
// unmatched Begin holds a platform context forever and a double Begin
// claims two). Deferred Ends — `defer w.End()` or an End inside a deferred
// function literal — close the window at every exit and are fully
// supported, as is the suspension idiom
// `if w.Begin() == core.Suspended { return core.Suspended }`, where the
// Suspended branch never claimed a context.
//
// The check is interprocedural through window facts: each function that
// opens or closes exactly one window for its caller is summarized
// (protocol.SummarizeWindows) and the summary exported as an object fact, so
// a helper that wraps Begin is checked at its call sites — including call
// sites in other packages, via the driver's vetx fact files. A deliberate
// opener/closer helper still triggers the intraprocedural imbalance
// diagnostics in its own body; annotate it with
// `//dopevet:ignore beginend <reason>` — the fact is computed and exported
// regardless, so callers remain checked.
package beginend

import (
	"go/ast"
	"go/token"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "beginend",
	Doc: "check that Worker.Begin and Worker.End are balanced on every path: " +
		"flags double Begin, End without Begin, and paths that leave the " +
		"functor while still holding a platform context",
	Run: run,
}

func run(pass *framework.Pass) error {
	// Window summaries: which of this package's functions open or close a
	// Begin/End window for their caller. Summaries of imported packages
	// arrive as facts; this package's are computed here (seeing through
	// imported helpers) and exported for downstream packages, so a helper
	// that opens a window is checked at call sites across package
	// boundaries.
	imported := func(fn *types.Func) int {
		var f protocol.WindowFact
		if pass.ImportObjectFact(fn, &f) {
			return f.Delta()
		}
		return 0
	}
	local := protocol.SummarizeWindows(pass.Files, pass.Pkg, pass.TypesInfo, imported)
	for fn, d := range local {
		pass.ExportObjectFact(fn, protocol.WindowFact{Opens: d > 0, Closes: d < 0})
	}
	delta := func(fn *types.Func) int {
		if d, ok := local[fn]; ok {
			return d
		}
		return imported(fn)
	}
	for _, fn := range protocol.Funcs(pass.Files) {
		fn := fn
		eng := &protocol.Engine{
			Info:        pass.TypesInfo,
			WindowDelta: delta,
			Hooks: protocol.Hooks{
				Begin: func(call *ast.CallExpr, before protocol.DepthMask) {
					if before.MustHold() {
						pass.Reportf(call.Pos(),
							"Worker.Begin while already inside a Begin/End section (double Begin claims a second context)")
					} else if before.CanHold() {
						pass.Reportf(call.Pos(),
							"Worker.Begin may run inside an open Begin/End section on some paths")
					}
				},
				End: func(call *ast.CallExpr, before protocol.DepthMask) {
					if fn.Deferred {
						return // cleanup bodies balance a possibly-open section
					}
					if !before.CanHold() {
						pass.Reportf(call.Pos(),
							"Worker.End without a matching Worker.Begin")
					}
				},
				Exit: func(pos token.Pos, depth protocol.DepthMask) {
					if fn.Deferred {
						return
					}
					if depth.MustHold() {
						pass.Reportf(pos,
							"functor returns while still holding a platform context (Worker.Begin without Worker.End)")
					} else if depth.CanHold() {
						pass.Reportf(pos,
							"functor may return while holding a platform context (Worker.Begin without Worker.End on some path)")
					}
				},
				OpenCall: func(call *ast.CallExpr, callee *types.Func, before protocol.DepthMask) {
					if before.MustHold() {
						pass.Reportf(call.Pos(),
							"call to %s opens a Begin/End window while one is already open (double Begin claims a second context)", callee.Name())
					} else if before.CanHold() {
						pass.Reportf(call.Pos(),
							"call to %s may open a Begin/End window inside an open one on some paths", callee.Name())
					}
				},
				CloseCall: func(call *ast.CallExpr, callee *types.Func, before protocol.DepthMask) {
					if fn.Deferred {
						return // cleanup bodies balance a possibly-open section
					}
					if !before.CanHold() {
						pass.Reportf(call.Pos(),
							"call to %s closes a Begin/End window that is not open (End without Begin)", callee.Name())
					}
				},
			},
		}
		eng.Run(fn)
	}
	return nil
}

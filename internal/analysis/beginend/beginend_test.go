package beginend_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/beginend"
)

func TestBeginEnd(t *testing.T) {
	analysistest.Run(t, "../testdata", beginend.Analyzer, "beginend", "beginendfacts")
}

// Package tokenhold checks that no blocking operation runs between
// Worker.Begin and Worker.End. Begin claims one of the platform's hardware
// contexts and End releases it (the paper's Task interface); blocking while
// holding the token — a channel operation, a mutex, a sleep, file or
// network I/O, or running a nested loop via Worker.RunNest — parks a
// context the executive believes is executing, corrupting the monitors'
// execution-time features and starving other stages of contexts.
//
// The analysis is intraprocedural: work done behind a helper call is not
// inspected (a helper that blocks must be annotated or fixed at its own
// Begin/End window).
package tokenhold

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "tokenhold",
	Doc: "check that no blocking operation (channel send/receive, select, " +
		"mutex lock, sleep, I/O, Worker.RunNest) runs between Worker.Begin " +
		"and Worker.End while a platform context is held",
	Run: run,
}

// blockingFuncs maps package-level functions known to block.
var blockingFuncs = map[[2]string]bool{
	{"time", "Sleep"}:        true,
	{"os", "Open"}:           true,
	{"os", "Create"}:         true,
	{"os", "ReadFile"}:       true,
	{"os", "WriteFile"}:      true,
	{"io", "Copy"}:           true,
	{"io", "ReadAll"}:        true,
	{"net", "Dial"}:          true,
	{"net", "DialTimeout"}:   true,
	{"net", "Listen"}:        true,
	{"net/http", "Get"}:      true,
	{"net/http", "Post"}:     true,
	{"net/http", "Head"}:     true,
	{"net/http", "PostForm"}: true,
}

// blockingMethods maps (package, type, method) for methods known to block.
var blockingMethods = map[[3]string]bool{
	{"sync", "Mutex", "Lock"}:                        true,
	{"sync", "RWMutex", "Lock"}:                      true,
	{"sync", "RWMutex", "RLock"}:                     true,
	{"sync", "WaitGroup", "Wait"}:                    true,
	{"sync", "Cond", "Wait"}:                         true,
	{"sync", "Once", "Do"}:                           true,
	{"os", "File", "Read"}:                           true,
	{"os", "File", "Write"}:                          true,
	{"os", "File", "Sync"}:                           true,
	{"net/http", "Client", "Do"}:                     true,
	{"net/http", "Client", "Get"}:                    true,
	{"net/http", "Client", "Post"}:                   true,
	{"os/exec", "Cmd", "Run"}:                        true,
	{"os/exec", "Cmd", "Wait"}:                       true,
	{"os/exec", "Cmd", "Output"}:                     true,
	{"os/exec", "Cmd", "CombinedOutput"}:             true,
	{"dope/internal/queue", "Queue", "Enqueue"}:      true,
	{"dope/internal/queue", "Queue", "Dequeue"}:      true,
	{"dope/internal/queue", "Queue", "DequeueWhile"}: true,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	for _, fn := range protocol.Funcs(pass.Files) {
		eng := &protocol.Engine{
			Info: info,
			Hooks: protocol.Hooks{
				Stmt: func(n ast.Node, depth protocol.DepthMask) {
					if !depth.CanHold() {
						return
					}
					check(pass, n)
				},
			},
		}
		eng.Run(fn)
	}
	return nil
}

// check inspects one reachable statement or condition executed while a
// token may be held.
func check(pass *framework.Pass, n ast.Node) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return // a default clause makes the select non-blocking
			}
		}
		report(pass, n.Pos(), "select")
		return
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				report(pass, n.Pos(), "range over a channel")
			}
		}
		return
	case *ast.SendStmt:
		report(pass, n.Arrow, "channel send")
		// fall through to inspect value expressions below
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				report(pass, m.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if op := blockingCall(pass.TypesInfo, m); op != "" {
				report(pass, m.Pos(), op)
			}
		}
		return true
	})
}

func report(pass *framework.Pass, pos token.Pos, op string) {
	pass.Reportf(pos, "blocking %s while holding a platform context (move it outside the Begin/End window)", op)
}

// blockingCall classifies a call as a known blocking operation and returns
// a description, or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	if m := protocol.WorkerMethod(info, call); m != "" {
		if m == "RunNest" {
			return "Worker.RunNest (waits for a nested loop)"
		}
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	name := sel.Sel.Name
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed {
			return ""
		}
		tn := named.Obj()
		if tn.Pkg() == nil {
			return ""
		}
		if blockingMethods[[3]string{tn.Pkg().Path(), tn.Name(), name}] {
			return fmt.Sprintf("call to (%s.%s).%s", tn.Pkg().Name(), tn.Name(), name)
		}
		return ""
	}
	if blockingFuncs[[2]string{pkg, name}] {
		return fmt.Sprintf("call to %s.%s", obj.Pkg().Name(), name)
	}
	return ""
}

// Package tokenhold checks that no blocking operation runs between
// Worker.Begin and Worker.End. Begin claims one of the platform's hardware
// contexts and End releases it (the paper's Task interface); blocking while
// holding the token — a channel operation, a mutex, a sleep, file or
// network I/O, or running a nested loop via Worker.RunNest — parks a
// context the executive believes is executing, corrupting the monitors'
// execution-time features and starving other stages of contexts.
//
// The analysis is interprocedural through object facts: every declared
// function is summarized — does it block, does it open or close a Begin/End
// window for its caller — and the summaries are exported, so a call to a
// blocking helper inside a window is flagged even when the helper lives in
// another package. Indirect calls (function values, interface methods) are
// still not inspected.
//
// A blocking site carrying //dopevet:ignore tokenhold is blessed at the
// source: it neither reports nor summarizes its enclosing function as
// blocking, so callers of a deliberately-occupying helper (e.g. a virtual
// CPU-work kernel that sleeps to model context occupancy) stay clean.
package tokenhold

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "tokenhold",
	Doc: "check that no blocking operation (channel send/receive, select, " +
		"mutex lock, sleep, I/O, Worker.RunNest, a summarized blocking helper) " +
		"runs between Worker.Begin and Worker.End while a platform context is held",
	Run: run,
}

// holdFact is tokenhold's per-function summary, exported across packages:
// whether calling the function blocks, and its Begin/End window effect
// (tracked separately from beginend's facts — fact namespaces are
// per-analyzer).
type holdFact struct {
	Opens  bool `json:"opens,omitempty"`
	Closes bool `json:"closes,omitempty"`
	Blocks bool `json:"blocks,omitempty"`
}

// blockingFuncs maps package-level functions known to block.
var blockingFuncs = map[[2]string]bool{
	{"time", "Sleep"}:        true,
	{"os", "Open"}:           true,
	{"os", "Create"}:         true,
	{"os", "ReadFile"}:       true,
	{"os", "WriteFile"}:      true,
	{"io", "Copy"}:           true,
	{"io", "ReadAll"}:        true,
	{"net", "Dial"}:          true,
	{"net", "DialTimeout"}:   true,
	{"net", "Listen"}:        true,
	{"net/http", "Get"}:      true,
	{"net/http", "Post"}:     true,
	{"net/http", "Head"}:     true,
	{"net/http", "PostForm"}: true,
}

// blockingMethods maps (package, type, method) for methods known to block.
var blockingMethods = map[[3]string]bool{
	{"sync", "Mutex", "Lock"}:                        true,
	{"sync", "RWMutex", "Lock"}:                      true,
	{"sync", "RWMutex", "RLock"}:                     true,
	{"sync", "WaitGroup", "Wait"}:                    true,
	{"sync", "Cond", "Wait"}:                         true,
	{"sync", "Once", "Do"}:                           true,
	{"os", "File", "Read"}:                           true,
	{"os", "File", "Write"}:                          true,
	{"os", "File", "Sync"}:                           true,
	{"net/http", "Client", "Do"}:                     true,
	{"net/http", "Client", "Get"}:                    true,
	{"net/http", "Client", "Post"}:                   true,
	{"os/exec", "Cmd", "Run"}:                        true,
	{"os/exec", "Cmd", "Wait"}:                       true,
	{"os/exec", "Cmd", "Output"}:                     true,
	{"os/exec", "Cmd", "CombinedOutput"}:             true,
	{"dope/internal/queue", "Queue", "Enqueue"}:      true,
	{"dope/internal/queue", "Queue", "Dequeue"}:      true,
	{"dope/internal/queue", "Queue", "DequeueWhile"}: true,
}

// checker carries the per-package summaries through one run.
type checker struct {
	pass    *framework.Pass
	sup     *framework.SuppressionIndex
	windows map[*types.Func]int
	blocks  map[*types.Func]bool
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, sup: framework.NewSuppressionIndex(pass.Fset, pass.Files)}
	c.windows = protocol.SummarizeWindows(pass.Files, pass.Pkg, pass.TypesInfo, c.importedWindow)
	c.blocks = c.summarizeBlocks()

	// Export the combined summary of every function that has one.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := holdFact{
				Opens:  c.windows[fn] > 0,
				Closes: c.windows[fn] < 0,
				Blocks: c.blocks[fn],
			}
			if fact != (holdFact{}) {
				pass.ExportObjectFact(fn, fact)
			}
		}
	}

	for _, fn := range protocol.Funcs(pass.Files) {
		eng := &protocol.Engine{
			Info:        pass.TypesInfo,
			WindowDelta: c.windowDelta,
			Hooks: protocol.Hooks{
				Stmt: func(n ast.Node, depth protocol.DepthMask) {
					if !depth.CanHold() {
						return
					}
					c.forEachBlocking(n, func(pos token.Pos, op string) {
						report(pass, pos, op)
					})
				},
			},
		}
		eng.Run(fn)
	}
	return nil
}

// importedWindow resolves the window effect of a function from another
// package via tokenhold's own facts.
func (c *checker) importedWindow(fn *types.Func) int {
	var f holdFact
	if c.pass.ImportObjectFact(fn, &f) {
		switch {
		case f.Opens:
			return +1
		case f.Closes:
			return -1
		}
	}
	return 0
}

// windowDelta combines this package's summaries with imported facts.
func (c *checker) windowDelta(fn *types.Func) int {
	if d, ok := c.windows[fn]; ok {
		return d
	}
	return c.importedWindow(fn)
}

// blocksFn reports whether a call to fn is known to block, from this
// package's summaries or imported facts.
func (c *checker) blocksFn(fn *types.Func) bool {
	if c.blocks[fn] {
		return true
	}
	var f holdFact
	return c.pass.ImportObjectFact(fn, &f) && f.Blocks
}

// summarizeBlocks computes, to a fixpoint, which declared functions perform
// a blocking operation at a point where the caller's window (if any) is
// still open: the body is interpreted from depth 1, so a helper that closes
// the window before blocking is not penalized.
func (c *checker) summarizeBlocks() map[*types.Func]bool {
	type cand struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var cands []cand
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				cands = append(cands, cand{fn, fd.Body})
			}
		}
	}
	c.blocks = make(map[*types.Func]bool)
	for round := 0; round <= len(cands); round++ {
		changed := false
		for _, cd := range cands {
			if c.blocks[cd.fn] {
				continue
			}
			found := false
			eng := &protocol.Engine{
				Info:        c.pass.TypesInfo,
				WindowDelta: c.windowDelta,
				Hooks: protocol.Hooks{
					Stmt: func(n ast.Node, depth protocol.DepthMask) {
						if found || !depth.CanHold() {
							return
						}
						// A site blessed with //dopevet:ignore tokenhold does
						// not taint the enclosing function's summary: the
						// suppression retires the finding for every caller,
						// not just the line it sits on.
						c.forEachBlocking(n, func(pos token.Pos, _ string) {
							if !c.sup.Suppressed(c.pass.Analyzer.Name, pos) {
								found = true
							}
						})
					},
				},
			}
			eng.RunFrom(protocol.Func{Body: cd.body}, protocol.D1)
			if found {
				c.blocks[cd.fn] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return c.blocks
}

// forEachBlocking invokes emit for every blocking operation in one
// reachable statement or condition.
func (c *checker) forEachBlocking(n ast.Node, emit func(token.Pos, string)) {
	info := c.pass.TypesInfo
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				return // a default clause makes the select non-blocking
			}
		}
		emit(n.Pos(), "select")
		return
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				emit(n.Pos(), "range over a channel")
			}
		}
		return
	case *ast.SendStmt:
		emit(n.Arrow, "channel send")
		// fall through to inspect value expressions below
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				emit(m.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if op := c.blockingCall(m); op != "" {
				emit(m.Pos(), op)
			}
		}
		return true
	})
}

func report(pass *framework.Pass, pos token.Pos, op string) {
	pass.Reportf(pos, "blocking %s while holding a platform context (move it outside the Begin/End window)", op)
}

// blockingCall classifies a call as a known blocking operation and returns
// a description, or "".
func (c *checker) blockingCall(call *ast.CallExpr) string {
	info := c.pass.TypesInfo
	if m := protocol.WorkerMethod(info, call); m != "" {
		if m == "RunNest" {
			return "Worker.RunNest (waits for a nested loop)"
		}
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		if fn := protocol.CalleeFunc(info, call); fn != nil && c.blocksFn(fn) {
			return fmt.Sprintf("call to %s (a helper summarized as blocking)", fn.Name())
		}
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	name := sel.Sel.Name
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed {
			return ""
		}
		tn := named.Obj()
		if tn.Pkg() == nil {
			return ""
		}
		if blockingMethods[[3]string{tn.Pkg().Path(), tn.Name(), name}] {
			return fmt.Sprintf("call to (%s.%s).%s", tn.Pkg().Name(), tn.Name(), name)
		}
		if fn, ok := obj.(*types.Func); ok && c.blocksFn(fn) {
			return fmt.Sprintf("call to (%s.%s).%s (a helper summarized as blocking)", tn.Pkg().Name(), tn.Name(), name)
		}
		return ""
	}
	if blockingFuncs[[2]string{pkg, name}] {
		return fmt.Sprintf("call to %s.%s", obj.Pkg().Name(), name)
	}
	if fn, ok := obj.(*types.Func); ok && c.blocksFn(fn) {
		return fmt.Sprintf("call to %s.%s (a helper summarized as blocking)", obj.Pkg().Name(), name)
	}
	return ""
}

package tokenhold_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/tokenhold"
)

func TestTokenHold(t *testing.T) {
	analysistest.Run(t, "../testdata", tokenhold.Analyzer, "tokenhold", "tokenholdfacts")
}

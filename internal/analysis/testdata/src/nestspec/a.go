// Seeded violations for the nestspec analyzer.
package nestspec

import (
	"dope"
	"dope/internal/core"
)

func fn(w *core.Worker) core.Status { return core.Executing }

func mk(item any) (*core.AltInstance, error) { return &core.AltInstance{}, nil }

var emptyNest = &core.NestSpec{
	Name: "",                // want `nest with empty name`
	Alts: []*core.AltSpec{}, // want `nest with no alternatives`
}

var dupAlts = &core.NestSpec{
	Name: "loop",
	Alts: []*core.AltSpec{
		{Name: "pipeline", Make: mk, Stages: []core.StageSpec{{Name: "s0"}}},
		{Name: "pipeline", Make: mk, Stages: []core.StageSpec{{Name: "s0"}}}, // want `alternative "pipeline" declared twice in one nest`
	},
}

var nilMake = core.AltSpec{
	Name: "fused",
	Make: nil, // want `alternative with nil Make factory`
}

var dupStages = core.AltSpec{
	Name: "pipeline",
	Make: mk,
	Stages: []core.StageSpec{
		{Name: "decode"},
		{Name: "decode"}, // want `stage "decode" declared twice in one alternative`
	},
}

var negDoP = core.StageSpec{
	Name:   "encode",
	MinDoP: -1, // want `stage with negative MinDoP`
}

var invertedDoP = core.StageSpec{ // want `stage with MinDoP > MaxDoP`
	Name:   "encode",
	MinDoP: 4,
	MaxDoP: 2,
}

var nilFn = core.StageFns{
	Fn: nil, // want `stage with nil functor \(Fn\)`
}

var missingFn = core.AltInstance{
	Stages: []core.StageFns{
		{Init: func() {}}, // want `stage instance without a functor \(Fn\)`
	},
}

var badPipeStage = dope.PipeStage[int]{
	Name: "",  // want `pipeline stage with empty name`
	Fn:   nil, // want `pipeline stage with nil Fn`
}

var anonPipeStage = dope.PipeStage[int]{ // want `pipeline stage literal without a Name`
	Fn: func(v int, extent int) int { return v },
}

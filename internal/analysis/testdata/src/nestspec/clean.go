// False-positive regression cases for the nestspec analyzer: silent.
package nestspec

import (
	"dope"
	"dope/internal/core"
)

// dynamic builds a spec from runtime values; nothing here is statically
// decidable, so nothing may be flagged.
func dynamic(name string, min, max int) *core.NestSpec {
	return &core.NestSpec{
		Name: name,
		Alts: []*core.AltSpec{
			{
				Name: name + "-pipeline",
				Make: mk,
				Stages: []core.StageSpec{
					{Name: name + "-s0", Type: core.PAR, MinDoP: min, MaxDoP: max},
				},
			},
		},
	}
}

// zeroValue carries no intent (a variable to be filled in later).
var zeroValue = core.StageSpec{}

// positional exercises the unkeyed-literal field mapping.
var positional = core.StageSpec{"s0", core.PAR, 1, 4, nil, 0}

// unboundedMax: MaxDoP 0 means unbounded, so MinDoP 4 is consistent.
var unboundedMax = core.StageSpec{
	Name:   "s0",
	MinDoP: 4,
	MaxDoP: 0,
}

var okPipeStage = dope.PipeStage[int]{
	Name: "double",
	Par:  true,
	Fn:   func(v int, extent int) int { return 2 * v },
}

var okFns = []core.StageFns{
	{Fn: fn, Init: func() {}, Fini: func() {}},
}

// True positives: fields written under the counter's mutex are guarded, so
// every lock-free plain access trips the analyzer.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu    sync.Mutex
	n     int          // guarded: written under mu in add
	peak  int          // guarded: written under mu in add
	hits  atomic.Int64 // lock-free by design
	label string       // never written under mu: unguarded
}

func (c *counter) add(d int) {
	c.mu.Lock()
	c.n += d
	if c.n > c.peak {
		c.peak = c.n
	}
	c.mu.Unlock()
	c.hits.Add(1)
}

func (c *counter) racyRead() int {
	return c.n // want `read of counter\.n without holding mu`
}

func (c *counter) racyWrite() {
	c.peak = 0 // want `write of counter\.peak without holding mu`
}

// lockOnlyInBranch holds the mutex in one arm only; after the join the lock
// is no longer provably held, so the trailing read is flagged.
func (c *counter) lockOnlyInBranch(b bool) int {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `read of counter\.n without holding mu`
}

// earlyUnlock releases before the final touch.
func (c *counter) earlyUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `write of counter\.n without holding mu`
}

// closureEscape: a func literal may run on another goroutine, so the held
// set does not flow into its body.
func (c *counter) closureEscape() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `read of counter\.n without holding mu`
	}
}

// unguardedOK: label is never written under the lock, so no guard is
// inferred and free access stays silent.
func (c *counter) unguardedOK() string {
	return c.label
}

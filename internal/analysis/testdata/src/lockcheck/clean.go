// FP regressions: construction-phase writes, the *Locked calling
// convention, deferred unlocks, atomic traffic on guarded structs, and
// suppressions must all stay silent.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	mu  sync.Mutex
	v   int          // guarded: written under mu in set
	raw atomic.Int64 // atomic fast path; folded under mu in foldLocked
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
	// Lock-held plain read of an atomic field is the documented fold idiom;
	// the atomic method call is its own synchronization and never flagged.
	g.v += int(g.raw.Load())
}

// foldLocked follows the repo convention: the caller holds g.mu, so plain
// access to guarded fields is allowed.
func (g *gauge) foldLocked() int {
	g.v++
	return g.v
}

// newGauge writes guarded fields without the lock, but the receiver is a
// local freshly constructed in this function — the construction phase,
// before the value can be shared.
func newGauge(v int) *gauge {
	g := &gauge{}
	g.v = v
	g.raw.Store(int64(v))
	return g
}

func newGaugeValue(v int) gauge {
	var out gauge
	g := new(gauge)
	g.v = v
	out = *g
	return out
}

// deferredHold keeps the lock to function end through defer, covering every
// statement after the Lock.
func (g *gauge) deferredHold() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v++
	return g.v
}

// suppressed is a deliberate unlocked peek, blessed inline.
func (g *gauge) suppressed() int {
	return g.v //dopevet:ignore lockcheck racy snapshot for logging only
}

// atomicOnly traffic on the atomic field needs no lock anywhere.
func (g *gauge) atomicOnly() int64 {
	g.raw.Add(1)
	return g.raw.Load()
}

// Package dope is the fixture stub of the top-level dope package: the
// re-exported aliases and the PipeStage builder type.
package dope

import "dope/internal/core"

type (
	Worker    = core.Worker
	Status    = core.Status
	NestSpec  = core.NestSpec
	Mechanism = core.Mechanism
	Option    = core.Option
)

const (
	Executing = core.Executing
	Suspended = core.Suspended
	Finished  = core.Finished
)

type PipeStage[T any] struct {
	Name           string
	Par            bool
	MinDoP, MaxDoP int
	Fn             func(item T, extent int) T
}

// Goal API stub: the constructors and option vars goalcheck matches.
type Goal struct {
	Name        string
	Threads     int
	PowerBudget float64
	Mechanism   Mechanism
}

func MinResponseTime(threads, mmax int, qmax float64) Goal          { return Goal{} }
func MinResponseTimeWQTH(threads, mmax int, threshold float64) Goal { return Goal{} }
func MaxThroughput(threads int) Goal                                { return Goal{} }
func MaxThroughputUnderPower(threads int, watts float64) Goal       { return Goal{} }
func MinEnergyDelay(threads int) Goal                               { return Goal{} }
func StaticGoal(threads int) Goal                                   { return Goal{} }
func CustomGoal(name string, threads int, m Mechanism) Goal         { return Goal{} }

type DoPE struct{ *core.Exec }

func Create(root *NestSpec, goal Goal, opts ...Option) (*DoPE, error) { return nil, nil }

func (d *DoPE) SetGoal(g Goal) {}

var (
	WithContexts        = core.WithContexts
	WithMechanism       = core.WithMechanism
	WithControlInterval = core.WithControlInterval
	WithMonitorAlpha    = core.WithMonitorAlpha
)

var Mechanisms = struct {
	Proportional func(threads int) Mechanism
	WQLinear     func(threads, mmax int, qmax float64) Mechanism
	TBF          func(threads int) Mechanism
	TPC          func(threads int, watts float64) Mechanism
	EDP          func(threads int) Mechanism
}{
	Proportional: func(threads int) Mechanism { return nil },
	WQLinear:     func(threads, mmax int, qmax float64) Mechanism { return nil },
	TBF:          func(threads int) Mechanism { return nil },
	TPC:          func(threads int, watts float64) Mechanism { return nil },
	EDP:          func(threads int) Mechanism { return nil },
}

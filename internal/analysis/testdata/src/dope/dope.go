// Package dope is the fixture stub of the top-level dope package: the
// re-exported aliases and the PipeStage builder type.
package dope

import "dope/internal/core"

type (
	Worker   = core.Worker
	Status   = core.Status
	NestSpec = core.NestSpec
)

const (
	Executing = core.Executing
	Suspended = core.Suspended
	Finished  = core.Finished
)

type PipeStage[T any] struct {
	Name           string
	Par            bool
	MinDoP, MaxDoP int
	Fn             func(item T, extent int) T
}

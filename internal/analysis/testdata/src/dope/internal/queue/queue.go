// Package queue is the fixture stub of dope/internal/queue.
package queue

import "time"

type Queue[T any] struct{}

func (q *Queue[T]) Enqueue(item T) error { return nil }

func (q *Queue[T]) Dequeue() (T, error) {
	var zero T
	return zero, nil
}

func (q *Queue[T]) DequeueWhile(keepWaiting func() bool, poll time.Duration) (T, bool, error) {
	var zero T
	return zero, false, nil
}

// Package queue is the fixture stub of dope/internal/queue.
package queue

import "time"

type Queue[T any] struct{}

func (q *Queue[T]) Enqueue(item T) error { return nil }

func (q *Queue[T]) Dequeue() (T, error) {
	var zero T
	return zero, nil
}

func (q *Queue[T]) DequeueWhile(keepWaiting func() bool, poll time.Duration) (T, bool, error) {
	var zero T
	return zero, false, nil
}

func New[T any](capacity int) *Queue[T] { return &Queue[T]{} }

func (q *Queue[T]) TryEnqueue(item T) (bool, error) { return true, nil }

func (q *Queue[T]) TryDequeue() (T, bool, error) {
	var zero T
	return zero, true, nil
}

func (q *Queue[T]) Len() int     { return 0 }
func (q *Queue[T]) Close()       {}
func (q *Queue[T]) Reopen()      {}
func (q *Queue[T]) Shed() uint64 { return 0 }

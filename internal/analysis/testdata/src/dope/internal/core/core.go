// Package core is the fixture stub of dope/internal/core: the same import
// path, type names, and signatures the analyzers match on, with no behavior.
package core

import "time"

// Mechanism and the executive options mirror the real core API surface
// goalcheck anchors on.
type Mechanism interface {
	Propose(r *Report) *Config
}

type Report struct{}
type Config struct{}

type Exec struct{}

type Option func(*Exec)

func WithContexts(n int) Option                  { return nil }
func WithMechanism(m Mechanism) Option           { return nil }
func WithControlInterval(d time.Duration) Option { return nil }
func WithMonitorAlpha(alpha float64) Option      { return nil }

func New(root *NestSpec, opts ...Option) (*Exec, error) { return nil, nil }

type Status int

const (
	Executing Status = iota
	Suspended
	Finished
)

type TaskType int

const (
	SEQ TaskType = iota
	PAR
)

type Worker struct{}

func (w *Worker) Begin() Status    { return Executing }
func (w *Worker) End() Status      { return Executing }
func (w *Worker) Suspending() bool { return false }
func (w *Worker) Extent() int      { return 1 }
func (w *Worker) Item() any        { return nil }

type TaskContext struct{}

func (c *TaskContext) Done() <-chan struct{} { return nil }

func (w *Worker) Done() <-chan struct{} { return nil }
func (w *Worker) Context() *TaskContext { return nil }

func (w *Worker) RunNest(spec *NestSpec, item any) (Status, error) {
	return Executing, nil
}

type Functor func(w *Worker) Status

type StageFns struct {
	Fn   Functor
	Load func() float64
	Shed func() uint64
	Init func()
	Fini func()
}

type AltInstance struct {
	Stages []StageFns
}

type StageSpec struct {
	Name     string
	Type     TaskType
	MinDoP   int
	MaxDoP   int
	Nest     *NestSpec
	Deadline time.Duration
}

type AltSpec struct {
	Name   string
	Stages []StageSpec
	Make   func(item any) (*AltInstance, error)
}

type NestSpec struct {
	Name string
	Alts []*AltSpec
}

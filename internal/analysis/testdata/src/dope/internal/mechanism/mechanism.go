// Package mechanism is the fixture stub of dope/internal/mechanism: the
// catalog type names goalcheck classifies, with no behavior.
package mechanism

import "dope/internal/core"

type Proportional struct{ Threads int }

type WQTH struct {
	Threads, Mmax int
	Threshold     float64
}

type WQLinear struct {
	Threads, Mmax, Mmin int
	Qmax                float64
}

type TBF struct {
	Threads       int
	DisableFusion bool
}

type FDP struct{ Threads int }

type SEDA struct{ HighWater, LowWater float64 }

type TPC struct {
	Threads int
	Budget  float64
}

type EDP struct{ Threads int }

type LoadProportional struct{ Threads int }

func (*Proportional) Propose(r *core.Report) *core.Config     { return nil }
func (*WQTH) Propose(r *core.Report) *core.Config             { return nil }
func (*WQLinear) Propose(r *core.Report) *core.Config         { return nil }
func (*TBF) Propose(r *core.Report) *core.Config              { return nil }
func (*FDP) Propose(r *core.Report) *core.Config              { return nil }
func (*SEDA) Propose(r *core.Report) *core.Config             { return nil }
func (*TPC) Propose(r *core.Report) *core.Config              { return nil }
func (*EDP) Propose(r *core.Report) *core.Config              { return nil }
func (*LoadProportional) Propose(r *core.Report) *core.Config { return nil }

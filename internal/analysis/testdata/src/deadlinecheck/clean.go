// Compliant counterparts: every shape deadlinecheck must stay silent on.
package deadlinecheck

import (
	"time"

	"dope/internal/core"
)

func dequeueWhile(pred func() bool) (int, bool) { return 0, pred() }

// Selecting on Worker.Done inside the loop is the canonical cooperative
// shape.
var okDone = &core.AltSpec{
	Name: "done",
	Stages: []core.StageSpec{
		{Name: "worker", Type: core.PAR, Deadline: 10 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				for {
					select {
					case <-w.Done():
						return w.End()
					default:
						spin()
					}
				}
			},
		}}}, nil
	},
}

// Polling Worker.Suspending also observes the abandonment (the retire flag
// is raised before Done closes), including through a predicate function
// literal — the DequeueWhile idiom.
var okSuspending = &core.AltSpec{
	Name: "suspending",
	Stages: []core.StageSpec{
		{Name: "poll", Type: core.PAR, Deadline: time.Second},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				for {
					if _, ok := dequeueWhile(func() bool { return !w.Suspending() }); !ok {
						return core.Suspended
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					spin()
					if w.End() == core.Suspended {
						return core.Suspended
					}
				}
			},
		}}}, nil
	},
}

// The TaskContext handle works too, and an inner loop under a cooperating
// outer loop is not re-checked: the outer loop bounds the exposure.
var okContext = &core.AltSpec{
	Name: "context",
	Stages: []core.StageSpec{
		{Name: "ctx", Type: core.PAR, Deadline: 10 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				ctx := w.Context()
				for {
					select {
					case <-ctx.Done():
						return core.Suspended
					default:
					}
					for i := 0; i < 64; i++ {
						spin()
					}
				}
			},
		}}}, nil
	},
}

// Stages without a Deadline (absent or explicitly zero) are out of scope no
// matter what their loops do.
var okNoDeadline = &core.AltSpec{
	Name: "nodeadline",
	Stages: []core.StageSpec{
		{Name: "free", Type: core.PAR},
		{Name: "zero", Type: core.PAR, Deadline: 0},
	},
	Make: func(item any) (*core.AltInstance, error) {
		spinner := core.StageFns{
			Fn: func(w *core.Worker) core.Status {
				for {
					spin()
				}
			},
		}
		return &core.AltInstance{Stages: []core.StageFns{spinner, spinner}}, nil
	},
}

// A genuinely bounded loop may suppress the diagnostic with a reason.
var okSuppressed = &core.AltSpec{
	Name: "suppressed",
	Stages: []core.StageSpec{
		{Name: "bounded", Type: core.PAR, Deadline: time.Second},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				//dopevet:ignore deadlinecheck three iterations finish far inside any plausible deadline
				for i := 0; i < 3; i++ {
					spin()
				}
				return w.End()
			},
		}}}, nil
	},
}

// Seeded violations for the deadlinecheck analyzer.
package deadlinecheck

import (
	"time"

	"dope/internal/core"
)

func spin() {}

// A deadlined stage whose functor loops without any cooperation signal.
var bad = &core.AltSpec{
	Name: "loop",
	Stages: []core.StageSpec{
		{Name: "wedge", Type: core.PAR, Deadline: 10 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				for { // want `stage "wedge" sets Deadline but this loop never checks`
					spin()
				}
			},
		}}}, nil
	},
}

// The functor named by Fn resolves through the identifier; the range loop
// inside it is just as stallable as a bare for.
func rangeLoop(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	for i := range [1 << 30]struct{}{} { // want `stage "named" sets Deadline but this loop never checks`
		_ = i
		spin()
	}
	return w.End()
}

var badNamed = &core.AltSpec{
	Name: "named-fn",
	Stages: []core.StageSpec{
		{Name: "named", Type: core.PAR, Deadline: time.Second},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{Fn: rangeLoop}}}, nil
	},
}

// Only the deadlined stage of a mixed alternative is checked: the first
// stage has no deadline, so only the second stage's loop is reported.
var badMixed = &core.AltSpec{
	Name: "mixed",
	Stages: []core.StageSpec{
		{Name: "head", Type: core.SEQ},
		{Name: "slow", Type: core.PAR, Deadline: 50 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{
			{
				Fn: func(w *core.Worker) core.Status {
					for {
						spin()
					}
				},
			},
			{
				Fn: func(w *core.Worker) core.Status {
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					for i := 0; i < 1000000; i++ { // want `stage "slow" sets Deadline but this loop never checks`
						spin()
					}
					return w.End()
				},
			},
		}}, nil
	},
}

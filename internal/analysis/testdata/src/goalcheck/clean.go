// False-positive regressions for the goalcheck analyzer: configurations
// that look adjacent to the flagged shapes but are correct, or are outside
// what the analyzer can decide statically.
package goalcheck

import (
	"time"

	"dope"
	"dope/internal/core"
	"dope/internal/mechanism"
)

func pickMech(powered bool) dope.Mechanism {
	if powered {
		return dope.Mechanisms.TPC(8, 95)
	}
	return dope.Mechanisms.TBF(8)
}

// A mechanism held in a variable is never guessed at: the analyzer only
// classifies composite literals and catalog constructor calls.
func mechanismViaVariable() {
	m := pickMech(true)
	dope.Create(root, dope.MaxThroughput(8), dope.WithMechanism(m))
	dope.Create(root, dope.MaxThroughputUnderPower(8, 90), dope.WithMechanism(pickMech(false)))
	g := dope.CustomGoal("app", 8, m)
	_ = g
}

// Goal helpers choose their own mechanism; no WithMechanism override means
// nothing to cross-check.
func goalHelperDefaults() {
	dope.Create(root, dope.MaxThroughput(8))
	dope.Create(root, dope.MaxThroughputUnderPower(8, 90))
	dope.Create(root, dope.MinEnergyDelay(8))
	dope.Create(root, dope.MinResponseTimeWQTH(8, 4, 0.5))
}

// Power-steered mechanisms under power-provisioning goals are the intended
// pairing.
func powerUnderPowerGoal() {
	dope.Create(root, dope.MaxThroughputUnderPower(8, 90),
		dope.WithMechanism(&mechanism.TPC{Threads: 8, Budget: 90}))
	dope.Create(root, dope.MinEnergyDelay(8),
		dope.WithMechanism(&mechanism.EDP{Threads: 8}))
}

// Plain mechanisms under budget-less goals are fine in both directions.
func plainUnderBudgetless() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithMechanism(dope.Mechanisms.TBF(8)))
	dope.Create(root, dope.StaticGoal(4),
		dope.WithMechanism(&mechanism.WQTH{Threads: 8, Mmax: 4, Threshold: 0.5}))
	g := dope.CustomGoal("app", 8, dope.Mechanisms.Proportional(8))
	_ = g
}

// Intervals at or above the EWMA window pass; the floor is 700µs at the
// default α.
func intervalAboveWindow() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(5*time.Millisecond))
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(700*time.Microsecond))
}

// d <= 0 means "use the default interval" at runtime; it is exempt.
func intervalZero() {
	dope.Create(root, dope.MaxThroughput(8), dope.WithControlInterval(0))
}

// A non-constant interval is outside static reach.
func intervalVariable(d time.Duration) {
	dope.Create(root, dope.MaxThroughput(8), dope.WithControlInterval(d))
}

// A larger α shrinks the window: span(0.9) ≈ 1.22 → ~122µs, so 150µs is
// legal here even though it would undercut the default-α floor.
func intervalUnderDefaultButAlphaShifted() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithMonitorAlpha(0.9),
		dope.WithControlInterval(150*time.Microsecond))
}

// Building the executive directly through core.New names no goal
// constructor, so mechanism pairing is not checked there (the harness
// installs TPC this way on purpose); only the interval rule applies.
func coreNewMechanismUnchecked() {
	core.New(&core.NestSpec{Name: "r"},
		core.WithMechanism(&mechanism.TPC{Threads: 8, Budget: 95}),
		core.WithControlInterval(5*time.Millisecond))
}

// Folded arithmetic lands above the window: 50ms/2 = 25ms is a perfectly
// healthy interval spelled through a local.
func intervalFoldedOK() {
	base := 50 * time.Millisecond
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(base/2))
}

// Genuinely dynamic arithmetic stays outside static reach: one operand is a
// parameter, so the division must not fold no matter how tempting the
// constant half looks.
func intervalDynamicArithmetic(d time.Duration) {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(d/2))
}

// A reassigned local is not a constant: the second store may run first (or
// at all), so the checker must not fold the initializer and cry wolf.
func intervalReassignedLocal(fast bool) {
	tick := 200 * time.Microsecond
	if !fast {
		tick = 5 * time.Millisecond
	}
	dope.Create(root, dope.MaxThroughput(8), dope.WithControlInterval(tick))
}

// A local whose address escapes can be rewritten behind the checker's back.
func intervalEscapedLocal() {
	tick := 200 * time.Microsecond
	tune(&tick)
	dope.Create(root, dope.MaxThroughput(8), dope.WithControlInterval(tick))
}

func tune(d *time.Duration) { *d = 5 * time.Millisecond }

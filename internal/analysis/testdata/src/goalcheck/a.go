// Seeded violations for the goalcheck analyzer.
package goalcheck

import (
	"time"

	"dope"
	"dope/internal/core"
	"dope/internal/mechanism"
)

var root = &dope.NestSpec{Name: "root"}

// Rule A: a power-steered mechanism installed under a goal that provisions
// no power budget. TPC controls toward a zero watt budget.
func powerUnderThroughput() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithMechanism(&mechanism.TPC{Threads: 8, Budget: 95})) // want `mechanism TPC steers on the SystemPower feature, but goal MaxThroughput provisions no power budget`
}

// EDP under a response-time goal degenerates the same way.
func powerUnderResponseTime() {
	dope.Create(root, dope.MinResponseTime(8, 4, 2.0),
		dope.WithMechanism(&mechanism.EDP{Threads: 8})) // want `mechanism EDP steers on the SystemPower feature, but goal MinResponseTime provisions no power budget`
}

// The Mechanisms catalog constructors classify the same as literals.
func powerViaCatalog() {
	dope.Create(root, dope.StaticGoal(4),
		dope.WithMechanism(dope.Mechanisms.TPC(4, 60))) // want `mechanism TPC steers on the SystemPower feature, but goal StaticGoal provisions no power budget`
}

// CustomGoal takes the mechanism directly as its third argument; the goal
// struct it builds carries no budget either.
func powerUnderCustom() {
	g := dope.CustomGoal("power", 8,
		dope.Mechanisms.TPC(8, 95)) // want `mechanism TPC steers on the SystemPower feature, but goal CustomGoal provisions no power budget`
	_ = g
}

// Rule B: the reverse mismatch — a power-budgeted goal whose controller is
// overridden with a mechanism that never reads power.
func budgetIgnored() {
	dope.Create(root, dope.MaxThroughputUnderPower(8, 90),
		dope.WithMechanism(dope.Mechanisms.TBF(8))) // want `goal MaxThroughputUnderPower sets a power budget, but WithMechanism overrides its controller with TBF, which never reads power`
}

func budgetIgnoredLiteral() {
	dope.Create(root, dope.MaxThroughputUnderPower(8, 90),
		dope.WithMechanism(&mechanism.WQLinear{Threads: 8, Mmax: 4, Qmax: 2})) // want `goal MaxThroughputUnderPower sets a power budget, but WithMechanism overrides its controller with WQLinear, which never reads power`
}

// Rule C: a control interval shorter than the monitor EWMA window. At the
// default α = 0.25 the window is span(0.25)·100µs = 700µs.
func intervalUnderWindow() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(200*time.Microsecond)) // want `control interval 200µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// The option is checked even outside a Create call (e.g. built into a
// shared option slice), at the default α.
func intervalStandalone() dope.Option {
	return dope.WithControlInterval(500 * time.Microsecond) // want `control interval 500µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// A WithMonitorAlpha sited in the same option list shifts the floor:
// span(0.5) = 3 → a 300µs window, so 250µs still undercuts it.
func intervalUnderShiftedWindow() {
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithMonitorAlpha(0.5),
		dope.WithControlInterval(250*time.Microsecond)) // want `control interval 250µs is shorter than the monitor EWMA window \(~300µs at α=0\.5\)`
}

// The checks anchor on the underlying core options too, for callers that
// build the executive directly.
func coreNewInterval() {
	core.New(&core.NestSpec{Name: "r"},
		core.WithControlInterval(300*time.Microsecond)) // want `control interval 300µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// A single-assignment local folds to its constant initializer: naming the
// interval does not hide it from the window check.
func intervalThroughLocal() {
	tick := 200 * time.Microsecond
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(tick)) // want `control interval 200µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// var-declared locals and named constants fold the same way.
func intervalThroughVarDecl() {
	const base = 100 * time.Microsecond
	var tick = 3 * base
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(tick)) // want `control interval 300µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// Arithmetic over a folded local folds too: the type checker leaves
// `base / 2` unfolded because base is a variable, but the loader's const
// folder chases the single assignment through the division.
func intervalFoldedArithmetic() {
	base := 400 * time.Microsecond
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(base/2)) // want `control interval 200µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

// Chains of folded locals resolve recursively.
func intervalFoldedChain() {
	base := 50 * time.Millisecond
	tick := base / 100
	dope.Create(root, dope.MaxThroughput(8),
		dope.WithControlInterval(tick)) // want `control interval 500µs is shorter than the monitor EWMA window \(~700µs at α=0\.25\)`
}

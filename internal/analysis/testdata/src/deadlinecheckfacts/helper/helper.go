// Package helper supplies a cross-package cooperation helper: it consults
// Worker.Done, so loops calling it are cooperative.
package helper

import "dope/internal/core"

// Cancelled reports whether the slot was abandoned by the watchdog.
func Cancelled(w *core.Worker) bool {
	select {
	case <-w.Done():
		return true
	default:
		return false
	}
}

// CancelledChained cooperates through Cancelled, exercising summary
// chaining.
func CancelledChained(w *core.Worker) bool {
	return Cancelled(w)
}

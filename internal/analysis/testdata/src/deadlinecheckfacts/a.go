// Cross-package cooperation: the loops consult the watchdog's signals only
// through helpers in another package, so the clean functors depend on
// Cooperates facts flowing across the package boundary.
package deadlinecheckfacts

import (
	"time"

	"dope/internal/core"

	"deadlinecheckfacts/helper"
)

func spin() {}

// good cooperates via the foreign helper: no findings.
var good = &core.AltSpec{
	Name: "helper-coop",
	Stages: []core.StageSpec{
		{Name: "poll", Type: core.PAR, Deadline: 10 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				for !helper.Cancelled(w) {
					spin()
				}
				return core.Finished
			},
		}}}, nil
	},
}

// goodChained cooperates through the two-deep helper chain: no findings.
var goodChained = &core.AltSpec{
	Name: "helper-coop-chain",
	Stages: []core.StageSpec{
		{Name: "poll2", Type: core.PAR, Deadline: 10 * time.Millisecond},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				for {
					if helper.CancelledChained(w) {
						return core.Finished
					}
					spin()
				}
			},
		}}}, nil
	},
}

// bad calls a foreign helper that does NOT consult any signal: still
// flagged.
var bad = &core.AltSpec{
	Name: "no-coop",
	Stages: []core.StageSpec{
		{Name: "wedge", Type: core.PAR, Deadline: time.Second},
	},
	Make: func(item any) (*core.AltInstance, error) {
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				for { // want `stage "wedge" sets Deadline but this loop never checks`
					spin()
				}
			},
		}}}, nil
	},
}

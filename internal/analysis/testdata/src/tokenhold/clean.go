// False-positive regression cases for the tokenhold analyzer: silent.
package tokenhold

import (
	"time"

	"dope/internal/core"
)

// outsideWindow does its channel work strictly outside the Begin/End window.
func outsideWindow(w *core.Worker, in, out chan int) core.Status {
	v, ok := <-in
	if !ok {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	compute()
	st := w.End()
	out <- v
	return st
}

// nonBlockingSelect has a default clause, so it cannot park the context.
func nonBlockingSelect(w *core.Worker, in chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	select {
	case v := <-in:
		_ = v
	default:
	}
	return w.End()
}

// spawns blocks only inside a new goroutine, which does not hold the token.
func spawns(w *core.Worker, done chan struct{}) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	go func() {
		<-done
	}()
	return w.End()
}

// simulatedWork burns CPU time with a sleep on purpose (an example workload)
// and carries the documented suppression.
func simulatedWork(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	time.Sleep(time.Microsecond) //dopevet:ignore tokenhold simulated CPU burn for the example
	return w.End()
}

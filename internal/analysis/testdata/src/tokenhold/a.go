// Seeded violations for the tokenhold analyzer.
package tokenhold

import (
	"sync"
	"time"

	"dope/internal/core"
	"dope/internal/queue"
)

func compute() {}

func sleeps(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while holding a platform context`
	return w.End()
}

func sends(w *core.Worker, out chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	out <- 1 // want `blocking channel send while holding a platform context`
	return w.End()
}

func receives(w *core.Worker, in chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	v := <-in // want `blocking channel receive while holding a platform context`
	_ = v
	return w.End()
}

func selects(w *core.Worker, in chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	select { // want `blocking select while holding a platform context`
	case v := <-in:
		_ = v
	}
	return w.End()
}

func locks(w *core.Worker, mu *sync.Mutex) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	mu.Lock() // want `blocking call to \(sync\.Mutex\)\.Lock while holding a platform context`
	mu.Unlock()
	return w.End()
}

func nests(w *core.Worker, spec *core.NestSpec) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	w.RunNest(spec, nil) // want `blocking Worker\.RunNest \(waits for a nested loop\) while holding`
	return w.End()
}

func dequeues(w *core.Worker, q *queue.Queue[int]) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	v, _ := q.Dequeue() // want `blocking call to \(queue\.Queue\)\.Dequeue while holding`
	_ = v
	return w.End()
}

func rangesChan(w *core.Worker, in chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	for v := range in { // want `blocking range over a channel while holding`
		_ = v
	}
	return w.End()
}

// Cross-package token holding: the blocking work hides behind helper calls
// in another package, so every diagnostic depends on Blocks facts flowing
// across the package boundary.
package tokenholdfacts

import (
	"dope/internal/core"

	"tokenholdfacts/helper"
)

func compute() {}

// blocksViaHelper calls a foreign blocking helper inside its window.
func blocksViaHelper(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	helper.Fetch() // want `blocking call to helper.Fetch \(a helper summarized as blocking\)`
	return w.End()
}

// blocksViaChainedHelper blocks through a two-deep helper chain.
func blocksViaChainedHelper(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	helper.FetchAll() // want `blocking call to helper.FetchAll \(a helper summarized as blocking\)`
	return w.End()
}

// blocksInHelperWindow blocks inside a window a foreign helper opened: both
// the window fact and the Blocks fact must flow.
func blocksInHelperWindow(w *core.Worker) core.Status {
	if helper.Open(w) == core.Suspended {
		return core.Suspended
	}
	helper.Fetch() // want `blocking call to helper.Fetch \(a helper summarized as blocking\)`
	return w.End()
}

// blocksOutside does its slow work before claiming the context: no findings.
func blocksOutside(w *core.Worker) core.Status {
	helper.Fetch()
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	compute()
	return w.End()
}

// localSlow is a same-package blocking helper: the summary mechanism treats
// it exactly like the foreign ones.
func localSlow(c chan int) { <-c }

func blocksViaLocalHelper(w *core.Worker, c chan int) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	localSlow(c) // want `blocking call to localSlow \(a helper summarized as blocking\)`
	return w.End()
}

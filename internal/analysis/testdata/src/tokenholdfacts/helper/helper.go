// Package helper supplies cross-package helpers for the tokenhold facts
// fixture: functions that block, and one that opens a window for the
// caller.
package helper

import (
	"time"

	"dope/internal/core"
)

// Fetch simulates slow I/O.
func Fetch() { time.Sleep(time.Millisecond) }

// FetchAll blocks through Fetch, exercising summary chaining.
func FetchAll() { Fetch() }

// Open claims a platform context for the caller.
func Open(w *core.Worker) core.Status {
	return w.Begin() //dopevet:ignore beginend deliberate opener: the caller closes the window
}

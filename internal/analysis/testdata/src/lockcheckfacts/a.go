// Cross-package check: helper.Counter.N is guarded by Mu in its home
// package; this importer's plain access is caught through the GuardFact.
package lockcheckfacts

import "lockcheckfacts/helper"

func racy(c *helper.Counter) int {
	c.N++      // want `write of Counter\.N without holding Mu`
	return c.N // want `read of Counter\.N without holding Mu`
}

func lockedOK(c *helper.Counter) int {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	return c.N
}

func freshOK() *helper.Counter {
	c := &helper.Counter{}
	c.N = 7
	return c
}

// Package helper establishes the guard discipline that the importing
// fixture package is checked against through vetx GuardFacts.
package helper

import "sync"

// Counter's N is written under Mu in Incr, so the exported GuardFact pins
// N:guarded-by-Mu for every importer.
type Counter struct {
	Mu sync.Mutex
	N  int
}

func (c *Counter) Incr() {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	c.N++
}

// FP regressions: correct sharded layouts, the StageStats shape (padded,
// multi-atomic, but never an array element), anonymous element structs, and
// unpadded structs must all stay silent.
package padcheck

import (
	"sync"
	"sync/atomic"
)

// goodShard tiles exactly: one hot atomic per 64-byte line, pad to 64.
type goodShard struct {
	word atomic.Uint64
	_    [56]byte
}

var shardRing [8]goodShard

// twoLine spreads its two atomics across separate lines of the element.
type twoLine struct {
	word atomic.Uint64
	_    [56]byte
	hits atomic.Int64
	_    [56]byte
}

var twoRing []twoLine

// statsShape mirrors StageStats: hot atomics padded away from the
// mutex-guarded cold half. It is a singleton per stage, never an
// array/slice element, so rules 2 and 3 do not apply — and its pad ends on
// a line boundary, so rule 1 is satisfied.
type statsShape struct {
	open    atomic.Int32
	lastEnd atomic.Int64
	idle    atomic.Int64
	_       [40]byte
	mu      sync.Mutex
	total   int64
}

func (s *statsShape) fold() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total += s.idle.Load()
	return s.total
}

// anonymous element structs are checked too; this one tiles correctly.
var counters = make([]struct {
	n int64
	_ [56]byte
}, 8)

// unpadded structs never opted in: atomics side by side are the author's
// explicit choice and other analyzers' business.
type unpadded struct {
	a atomic.Int64
	b atomic.Int64
}

var unpaddedRing []unpadded

// suppressed: a deliberate two-atomics-per-line layout, blessed with
// justification (e.g. the pair is always written by the same core).
type blessedPair struct {
	//dopevet:ignore padcheck lo/hi halves written by the owning core only
	lo atomic.Uint64
	hi atomic.Uint64
	_  [48]byte
}

var blessedRing []blessedPair

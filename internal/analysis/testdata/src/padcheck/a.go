// True positives: a short pad, a non-tiling element struct, and two hot
// atomics crowded into one line of a sharded element type.
package padcheck

import "sync/atomic"

// shortPad's author padded against a stale field list: 8 (count) + 8 (last)
// + 40 = 56, so the pad ends mid-line and the next struct in memory shares
// the line.
type shortPad struct {
	count int64
	last  int64
	_     [40]byte // want `padding array of shortPad ends at offset 56, not a 64-byte boundary`
}

// oddElem is padded (and its pad ends on a line boundary), but the trailing
// field makes it 72 bytes; as a slice element, element k+1 starts mid-line.
type oddElem struct {
	n    int64 // want `padded struct oddElem is 72 bytes but is used as an array/slice element`
	_    [56]byte
	tail int64
}

var oddRing []oddElem

// crowded is a sharded per-slot type whose two hot atomics land in line 0:
// the CAS on word invalidates every reader of hits on neighboring cores.
type crowded struct {
	word atomic.Uint64 // want `atomic fields word, hits of crowded share 64-byte line 0`
	hits atomic.Int64
	_    [48]byte
}

type table struct {
	shards []crowded
}

func use(t *table) int64 {
	t.shards[0].word.Add(1)
	return t.shards[0].hits.Load()
}

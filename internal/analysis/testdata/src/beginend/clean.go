// False-positive regression cases for the beginend analyzer: every function
// here is protocol-correct and must produce no diagnostics.
package beginend

import "dope/internal/core"

// deferredEnd closes the window with a defer — the canonical cleanup shape.
func deferredEnd(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	defer w.End()
	return core.Executing
}

// deferredFuncLit closes the window inside a deferred function literal; the
// literal itself is a cleanup body and is not flagged either.
func deferredFuncLit(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	defer func() {
		w.End()
	}()
	return core.Executing
}

// suspensionIdiom is the documented head-stage shape: the Suspended branch
// never claimed a context, so returning there is balanced.
func suspensionIdiom(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	return w.End()
}

// balancedLoop opens and closes the window once per iteration.
func balancedLoop(w *core.Worker, items []int) {
	for range items {
		if w.Begin() == core.Suspended {
			return
		}
		w.End()
	}
}

// balancedBranches ends the window on both arms.
func balancedBranches(w *core.Worker, fast bool) core.Status {
	w.Begin()
	if fast {
		return w.End()
	}
	return w.End()
}

// helperWindow is a helper, not a functor: a complete window inside a helper
// the functor calls is fine and must not confuse the caller's analysis.
func helperWindow(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	return w.End()
}

func callsHelper(w *core.Worker) core.Status {
	for i := 0; i < 3; i++ {
		if helperWindow(w) == core.Suspended {
			return core.Suspended
		}
	}
	return core.Finished
}

// panicPath does not need an End on a path that cannot return.
func panicPath(w *core.Worker, ok bool) core.Status {
	w.Begin()
	if !ok {
		panic("invariant violated")
	}
	return w.End()
}

// suppressed carries the escape hatch for a shape the engine cannot prove.
func suppressed(w *core.Worker, done chan struct{}) core.Status {
	w.Begin()
	go func() {
		<-done
	}()
	return core.Executing //dopevet:ignore beginend ownership handed to the monitor goroutine
}

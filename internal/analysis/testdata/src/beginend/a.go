// Seeded violations for the beginend analyzer.
package beginend

import "dope/internal/core"

func doubleBegin(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	w.Begin() // want `Worker.Begin while already inside a Begin/End section`
	w.End()
	// The second context can never be proven released again.
	return w.End() // want `functor may return while holding a platform context`
}

func endWithoutBegin(w *core.Worker) core.Status {
	return w.End() // want `Worker.End without a matching Worker.Begin`
}

func leaks(w *core.Worker) core.Status {
	w.Begin()
	return core.Executing // want `functor returns while still holding a platform context`
}

func leaksAtBrace(w *core.Worker) {
	w.Begin()
} // want `functor returns while still holding a platform context`

func maybeLeaks(w *core.Worker, heavy bool) core.Status {
	if heavy {
		w.Begin()
	}
	return core.Executing // want `functor may return while holding a platform context`
}

func maybeDoubleBegin(w *core.Worker, heavy bool) core.Status {
	if heavy {
		w.Begin()
	}
	w.Begin()      // want `Worker.Begin may run inside an open Begin/End section`
	return w.End() // want `functor may return while holding a platform context`
}

// loopCarried leaves the window open across iterations: the second abstract
// pass over the body sees the leftover token.
func loopCarried(w *core.Worker, items []int) {
	for range items {
		w.Begin() // want `Worker.Begin may run inside an open Begin/End section`
	}
} // want `functor may return while holding a platform context`

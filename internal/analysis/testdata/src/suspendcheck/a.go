// Seeded violations for the suspendcheck analyzer.
package suspendcheck

import "dope/internal/core"

func compute() {}

func discardsBoth(w *core.Worker) core.Status {
	w.Begin() // want `discards every Worker\.Begin status`
	compute()
	w.End()
	return core.Executing
}

func blankDiscard(w *core.Worker) core.Status {
	_ = w.Begin() // want `discards every Worker\.Begin status`
	compute()
	_ = w.End()
	return core.Executing
}

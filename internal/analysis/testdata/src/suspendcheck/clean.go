// False-positive regression cases for the suspendcheck analyzer: silent.
package suspendcheck

import "dope/internal/core"

// checksBegin consults the Begin status; the drained End may be discarded.
func checksBegin(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	compute()
	w.End()
	return core.Executing
}

// checksEnd consults the End status through a variable.
func checksEnd(w *core.Worker) core.Status {
	w.Begin()
	compute()
	st := w.End()
	if st == core.Suspended {
		return core.Suspended
	}
	return core.Executing
}

// returnsStatus propagates the End status to the caller.
func returnsStatus(w *core.Worker) core.Status {
	w.Begin()
	compute()
	return w.End()
}

// deferredEnd: a deferred End's result cannot be consulted and is exempt.
func deferredEnd(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	defer w.End()
	compute()
	return core.Executing
}

// cleanupLit: an End inside a deferred function literal is likewise exempt,
// and the literal itself is not treated as a discarding functor.
func cleanupLit(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	defer func() {
		w.End()
	}()
	compute()
	return core.Executing
}

// drainStage deliberately ignores the statuses: its exit is driven by the
// upstream queue closing, so it carries the documented suppression.
func drainStage(w *core.Worker, in chan int) {
	for v := range in {
		w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream close
		_ = v
		compute()
		w.End()
	}
}

// FP regressions: the lock-held fold idiom, *Locked-convention helpers,
// construction-phase writes, aligned 64-bit atomics, and suppressions must
// stay silent.
package atomiccheck

import (
	"sync"
	"sync/atomic"
)

type folded struct {
	mu    sync.Mutex
	hot   int64 // atomic on the hot path, folded plainly under mu
	total int64 // plain only, touched under mu
}

func (f *folded) hotAdd(d int64) {
	atomic.AddInt64(&f.hot, d)
}

// fold is the documented idiom: the control tick drains the atomic
// accumulator into the locked aggregate; the plain read and reset-write of
// hot are ordered by mu against every other locked fold.
func (f *folded) fold() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total += f.hot
	f.hot = 0
}

// drainLocked follows the *Locked convention: caller holds f.mu.
func (f *folded) drainLocked() int64 {
	v := f.hot
	f.hot = 0
	return v
}

// newFolded writes the atomic-side field plainly during construction, before
// the value can be shared.
func newFolded(seed int64) *folded {
	f := &folded{}
	f.hot = seed
	return f
}

// aligned: the 64-bit atomic word leads the struct, offset 0 on every
// target; and typed atomics align themselves wherever they sit.
type aligned struct {
	n     int64
	ready bool
	typed atomic.Int64
}

func (a *aligned) load() int64 {
	a.typed.Add(1)
	return atomic.LoadInt64(&a.n)
}

// blessed mixes deliberately, with justification at the site.
type blessed struct {
	n int64
}

func (b *blessed) bump() {
	atomic.AddInt64(&b.n, 1)
}

func (b *blessed) peek() int64 {
	return b.n //dopevet:ignore atomiccheck monotonic counter, staleness tolerated
}

// True positives: fields driven through sync/atomic in one place and
// accessed plainly in another, plus a misaligned 64-bit atomic field.
package atomiccheck

import (
	"sync/atomic"
)

type stats struct {
	ops   int64         // mixed: atomic in bump, plain in report
	flag  atomic.Bool   // mixed: method calls in bump, plain store in reset
	clean atomic.Uint64 // atomic-only: silent
}

func (s *stats) bump() {
	atomic.AddInt64(&s.ops, 1)
	s.flag.Store(true)
	s.clean.Add(1)
}

func (s *stats) report() int64 {
	return s.ops // want `plain read of stats\.ops which is also accessed atomically`
}

func (s *stats) reset() {
	s.ops = 0              // want `plain write of stats\.ops which is also accessed atomically`
	s.flag = atomic.Bool{} // want `plain write of stats\.flag which is also accessed atomically`
}

// skewed puts a 64-bit atomic word at offset 4 under 32-bit layout.
type skewed struct {
	ready bool
	n     int64 // want `64-bit atomic field skewed\.n is at offset 4 under 32-bit layout`
}

func (s *skewed) load() int64 {
	return atomic.LoadInt64(&s.n)
}

// Seeded violations for the stagealias analyzer.
package stagealias

import (
	"dope"
	"dope/internal/core"
	"dope/internal/queue"
)

type item struct {
	id      int
	payload []byte
}

func produce(i *item)    {}
func consume(i *item)    {}
func transform(i *item)  {}
func observe(n int)      {}
func sink(v int)         {}
func stamp(b []byte) int { return len(b) }

// Shared written capture: both functors capture cursor, and the head writes
// it — after a drain the tail can still see (and race with) the head's
// bookkeeping for an item it supposedly handed off.
func sharedCursor(q *queue.Queue[int]) *core.AltInstance {
	cursor := 0
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				cursor++ // want `stage functor writes "cursor", which a sibling stage functor also captures`
				q.Enqueue(cursor)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				sink(v + cursor)
				return w.End()
			},
		},
	}}
}

// The write can hide behind a selector or index: storing through a captured
// struct or slice is still a write to shared state. The diagnostic names
// the field, because the sibling touches the same one.
func sharedThroughSelector(q *queue.Queue[int]) *core.AltInstance {
	var last item
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				last.id++ // want `stage functor writes "last.id", which a sibling stage functor also captures`
				q.Enqueue(last.id)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				observe(v + last.id)
				return w.End()
			},
		},
	}}
}

// Assignments to Fn fields after construction form the same sibling group
// as literal fields.
func sharedViaAssignment(q *queue.Queue[int]) *core.AltInstance {
	total := 0
	var head, tail core.StageFns
	head.Fn = func(w *core.Worker) core.Status {
		// The head reads total too, so the capture is genuinely shared.
		if total > 100 {
			return core.Finished
		}
		if w.Begin() == core.Suspended {
			return core.Suspended
		}
		q.Enqueue(1)
		return w.End()
	}
	tail.Fn = func(w *core.Worker) core.Status {
		v, err := q.Dequeue()
		if err != nil {
			observe(total)
			return core.Finished
		}
		if w.Begin() == core.Suspended {
			return core.Suspended
		}
		total += v // want `stage functor writes "total", which a sibling stage functor also captures`
		return w.End()
	}
	return &core.AltInstance{Stages: []core.StageFns{head, tail}}
}

// Captured-reference send: every iteration forwards the same *item, so the
// producer keeps a live alias to what the consumer is working on.
func sameReferenceEachSend(ch chan *item) *core.AltInstance {
	scratch := &item{}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				produce(scratch)
				ch <- scratch // want `stage functor forwards the captured reference "scratch" to a sibling stage`
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				it := <-ch
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				consume(it)
				return w.End()
			},
		},
	}}
}

// The queue variant of the same bug: Enqueue of a captured slice that the
// sibling dequeues.
func sameBufferEachEnqueue(q *queue.Queue[[]byte]) *core.AltInstance {
	buf := make([]byte, 64)
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				q.Enqueue(buf) // want `stage functor forwards the captured reference "buf" to a sibling stage`
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				b, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				observe(stamp(b))
				return w.End()
			},
		},
	}}
}

// PipeStage functors group the same way as StageFns functors.
func pipeStageSiblings() []dope.PipeStage[int] {
	seen := 0
	return []dope.PipeStage[int]{
		{Name: "mark", Fn: func(v, extent int) int {
			seen++ // want `stage functor writes "seen", which a sibling stage functor also captures`
			return v
		}},
		{Name: "check", Fn: func(v, extent int) int {
			return v + seen
		}},
	}
}

// A whole-variable write conflicts with every field a sibling touches: the
// reset clobbers the id field the tail is reading, field granularity or no.
func wholeStructResetVsFieldRead(q *queue.Queue[int]) *core.AltInstance {
	var cur item
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				cur = item{} // want `stage functor writes "cur", which a sibling stage functor also captures`
				q.Enqueue(1)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				observe(v + cur.id)
				return w.End()
			},
		},
	}}
}

// Helper-method calls from stage functors: a call to a pointer-receiver
// method on a captured variable folds the method's receiver-field effects
// at the call site — a helper writing a shared field is the shared-capture
// bug even when the functor body never names the field, and a helper
// touching a disjoint field must stay quiet.
package stagealias

import (
	"dope/internal/core"
	"dope/internal/queue"
)

// hitCounter is mutated only through its methods: the functors below never
// name the n field directly.
type hitCounter struct {
	n int
}

func (h *hitCounter) bump() { h.n++ }

func (h *hitCounter) value() int { return h.n }

// helperWritesSharedField: the head functor writes h.n through h.bump() and
// the tail reads it through h.value() — shared written state laundered
// through helper methods.
func helperWritesSharedField(q *queue.Queue[int]) *core.AltInstance {
	h := &hitCounter{}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				h.bump() // want `stage functor writes "h.n", which a sibling stage functor also captures`
				q.Enqueue(h.value())
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				sink(v + h.value())
				return w.End()
			},
		},
	}}
}

// gaugePair splits its fields between the stages: the helper touches only
// a, the sibling functor only b.
type gaugePair struct {
	a int
	b int
}

func (g *gaugePair) setA(v int) { g.a = v }

func (g *gaugePair) sumA() int { return g.a }

// snapshot takes the receiver by value: the call acts on a copy, so it
// folds to nothing and the capture falls back to the whole variable
// (read-only).
func (g gaugePair) snapshot() int { return g.a + g.b }

// disjointHelperFields is the false-positive regression: before folding,
// the bare g in g.setA(1) was a whole-variable capture that conflicted with
// the sibling's write of g.b. The helper's effects are {g.a}, disjoint from
// g.b — quiet.
func disjointHelperFields(q *queue.Queue[int]) *core.AltInstance {
	g := &gaugePair{}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				g.setA(1)
				q.Enqueue(g.sumA())
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				g.b += v
				sink(g.b)
				return w.End()
			},
		},
	}}
}

// valueHelperStillConflicts pins the conservative fallback: a value-receiver
// helper call captures the whole variable, which overlaps the sibling's
// field write.
func valueHelperStillConflicts(q *queue.Queue[int]) *core.AltInstance {
	g := &gaugePair{}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				g.a++ // want `stage functor writes "g.a", which a sibling stage functor also captures`
				x := g.a
				q.Enqueue(x)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				sink(v + g.snapshot())
				return w.End()
			},
		},
	}}
}

// chainStages writes through a helper called on the stage method's own
// receiver: head -> note -> hits, which tail reads directly.
type chainStages struct {
	q    *queue.Queue[int]
	hits int
}

func (c *chainStages) note() { c.hits++ }

func (c *chainStages) head(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	c.note() // want `stage functor writes "c.hits", which a sibling stage functor also captures`
	c.q.Enqueue(c.hits)
	return w.End()
}

func (c *chainStages) tail(w *core.Worker) core.Status {
	v, err := c.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	observe(v + c.hits)
	return w.End()
}

func methodHelperChain(q *queue.Queue[int]) *core.AltInstance {
	c := &chainStages{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: c.head},
		{Fn: c.tail},
	}}
}

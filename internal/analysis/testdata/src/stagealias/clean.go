// False-positive regressions for the stagealias analyzer: the sanctioned
// sharing shapes — per-item ownership handoff through queues and channels,
// single-stage private state, read-only shared configuration, and
// coordination through sync primitives — none of which may be flagged.
package stagealias

import (
	"sync"
	"sync/atomic"

	"dope/internal/core"
	"dope/internal/queue"
)

// The canonical pipeline shape (the ChannelPipeline builder, the apps
// ports): each stage dequeues an item, owns it, and enqueues it onward.
// The queues are captured and shared, the items are functor-local.
func perItemHandoff(src *queue.Queue[item], q *queue.Queue[item]) *core.AltInstance {
	next := 0
	done := 0
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := src.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				// next is written here and referenced nowhere else: private
				// per-stage bookkeeping is fine.
				v.id = next
				next++
				st := w.End()
				q.Enqueue(v)
				if st == core.Suspended {
					return core.Suspended
				}
				return core.Executing
			},
			Load: func() float64 { return float64(src.Len()) },
			Fini: q.Close,
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				w.Begin()
				observe(v.id)
				done++
				w.End()
				return core.Executing
			},
			Load: func() float64 { return float64(q.Len()) },
		},
	}}
}

// A freshly-allocated item sent each iteration is a handoff, not an alias:
// the sent variable is functor-local.
func freshAllocationPerSend(ch chan *item) *core.AltInstance {
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				it := &item{}
				produce(it)
				st := w.End()
				ch <- it
				if st == core.Suspended {
					return core.Suspended
				}
				return core.Executing
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				it := <-ch
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				consume(it)
				return w.End()
			},
		},
	}}
}

// Read-only shared configuration is not migration: nobody writes it.
func readOnlyConfig(q *queue.Queue[int], scale int) *core.AltInstance {
	limit := scale * 4
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				q.Enqueue(limit)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				sink(v % limit)
				return w.End()
			},
		},
	}}
}

// sync and sync/atomic primitives are the sanctioned shared-state
// coordination points, as are the queues and channels themselves.
func sanctionedPrimitives(q *queue.Queue[int]) *core.AltInstance {
	var remaining atomic.Int64
	var mu sync.Mutex
	notify := make(chan struct{}, 1)
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				mu.Lock()
				remaining.Add(1)
				mu.Unlock()
				q.Enqueue(1)
				notify <- struct{}{}
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				<-notify
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				remaining.Add(int64(-v))
				return w.End()
			},
		},
	}}
}

// Functors in different enclosing bodies are not siblings: two alternatives
// of the same nest each get their own group, so a variable written in one
// alternative's only functor never cross-fires against the other's.
func twoAlternatives(q *queue.Queue[int]) []*core.AltSpec {
	pipelineMake := func(itemArg any) (*core.AltInstance, error) {
		// count is written and read by the tail functor alone: private
		// per-stage state inside one alternative.
		count := 0
		return &core.AltInstance{Stages: []core.StageFns{
			{
				Fn: func(w *core.Worker) core.Status {
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					q.Enqueue(1)
					return w.End()
				},
			},
			{
				Fn: func(w *core.Worker) core.Status {
					v, err := q.Dequeue()
					if err != nil {
						return core.Finished
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					count += v
					sink(count)
					return w.End()
				},
			},
		}}, nil
	}
	fusedMake := func(itemArg any) (*core.AltInstance, error) {
		count := 0
		return &core.AltInstance{Stages: []core.StageFns{{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				count++
				sink(count)
				return w.End()
			},
		}}}, nil
	}
	return []*core.AltSpec{
		{Name: "pipeline", Make: pipelineMake},
		{Name: "fused", Make: fusedMake},
	}
}

// Receiver-field granularity: both functors capture the same stats struct,
// but each writes only its own field — disjoint storage, no migration
// hazard, must not be flagged.
func distinctFieldsOfSharedStruct(q *queue.Queue[int]) *core.AltInstance {
	var stats struct {
		produced int
		consumed int
	}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				stats.produced++
				q.Enqueue(stats.produced)
				return w.End()
			},
		},
		{
			Fn: func(w *core.Worker) core.Status {
				v, err := q.Dequeue()
				if err != nil {
					return core.Finished
				}
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				stats.consumed += v
				sink(stats.consumed)
				return w.End()
			},
		},
	}}
}

// Method-value functors: a pointer-receiver method installed as a stage Fn
// is a capture of its receiver in disguise, at field granularity — plus the
// false-positive regressions (disjoint fields, value receivers) that must
// stay quiet.
package stagealias

import (
	"dope/internal/core"
	"dope/internal/queue"
)

// counterStages carries head/tail bookkeeping in one struct; both stage
// methods touch the same cursor field.
type counterStages struct {
	q      *queue.Queue[int]
	cursor int
}

func (c *counterStages) head(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	c.cursor++ // want `stage functor writes "c.cursor", which a sibling stage functor also captures`
	c.q.Enqueue(c.cursor)
	return w.End()
}

func (c *counterStages) tail(w *core.Worker) core.Status {
	v, err := c.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	sink(v + c.cursor)
	return w.End()
}

// Sibling pointer-receiver methods sharing a written field are the same bug
// as sibling literals sharing a written capture.
func methodSiblingsSharedField(q *queue.Queue[int]) *core.AltInstance {
	c := &counterStages{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: c.head},
		{Fn: c.tail},
	}}
}

// resetStages clobbers the whole receiver in one stage while the other
// reads a field of it: a whole-variable write overlaps every field.
type resetStages struct {
	q  *queue.Queue[int]
	id int
}

func (r *resetStages) emit(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	r.q.Enqueue(r.id)
	*r = resetStages{q: r.q} // want `stage functor writes "r", which a sibling stage functor also captures`
	return w.End()
}

func (r *resetStages) tally(w *core.Worker) core.Status {
	v, err := r.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	observe(v + r.id)
	return w.End()
}

func methodWholeReceiverReset(q *queue.Queue[int]) *core.AltInstance {
	r := &resetStages{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: r.emit},
		{Fn: r.tally},
	}}
}

// A method value and a literal functor sharing the same receiver variable
// form one sibling group: the literal's field write conflicts with the
// method's capture of the same field.
type mixedStages struct {
	q     *queue.Queue[int]
	total int
}

func (m *mixedStages) drainTotal(w *core.Worker) core.Status {
	v, err := m.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	observe(v + m.total)
	return w.End()
}

func methodAndLiteralMixed(q *queue.Queue[int]) *core.AltInstance {
	m := &mixedStages{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{
			Fn: func(w *core.Worker) core.Status {
				if w.Begin() == core.Suspended {
					return core.Suspended
				}
				m.total++ // want `stage functor writes "m.total", which a sibling stage functor also captures`
				m.q.Enqueue(m.total)
				return w.End()
			},
		},
		{Fn: m.drainTotal},
	}}
}

// splitStats gives each stage method its own field: disjoint storage on one
// receiver is private per-stage state and must not be flagged.
type splitStats struct {
	q        *queue.Queue[int]
	produced int
	consumed int
}

func (s *splitStats) produce(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	s.produced++
	s.q.Enqueue(s.produced)
	return w.End()
}

func (s *splitStats) consume(w *core.Worker) core.Status {
	v, err := s.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	s.consumed += v
	sink(s.consumed)
	return w.End()
}

func methodSiblingsDisjointFields(q *queue.Queue[int]) *core.AltInstance {
	s := &splitStats{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: s.produce},
		{Fn: s.consume},
	}}
}

// valueCounter's methods take the receiver by value: binding v.head copies
// the struct, so the field writes land in the bound copy, not in shared
// state — never flagged.
type valueCounter struct {
	q *queue.Queue[int]
	n int
}

func (v valueCounter) head(w *core.Worker) core.Status {
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	v.n++
	v.q.Enqueue(v.n)
	return w.End()
}

func (v valueCounter) tail(w *core.Worker) core.Status {
	x, err := v.q.Dequeue()
	if err != nil {
		return core.Finished
	}
	if w.Begin() == core.Suspended {
		return core.Suspended
	}
	sink(x + v.n)
	return w.End()
}

func valueReceiverMethods(q *queue.Queue[int]) *core.AltInstance {
	v := valueCounter{q: q}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: v.head},
		{Fn: v.tail},
	}}
}

// Two separate receiver variables of one type are two private states: the
// methods overlap in the fields they write, but not in storage.
func methodSiblingsSeparateReceivers(qa, qb *queue.Queue[int]) *core.AltInstance {
	a := &splitStats{q: qa}
	b := &splitStats{q: qb}
	return &core.AltInstance{Stages: []core.StageFns{
		{Fn: a.produce},
		{Fn: b.consume},
	}}
}

// Package helper holds deliberate Begin/End helpers: each opens or closes a
// window on behalf of its caller. The imbalance in their own bodies is
// annotated away; the exported window facts make the callers — in the
// beginendfacts package — the checked party.
package helper

import "dope/internal/core"

// Open claims a platform context for the caller; the caller owns the window
// and must End it (or bail out on Suspended).
func Open(w *core.Worker) core.Status {
	return w.Begin() //dopevet:ignore beginend deliberate opener: the caller closes the window
}

// OpenChecked opens through Open, exercising summary chaining.
func OpenChecked(w *core.Worker) core.Status {
	return Open(w) //dopevet:ignore beginend deliberate opener: the caller closes the window
}

// Close releases the caller's platform context.
func Close(w *core.Worker) core.Status {
	return w.End() //dopevet:ignore beginend deliberate closer: closes the caller's window
}

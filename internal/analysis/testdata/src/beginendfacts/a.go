// Cross-package Begin/End discipline: the helpers live in another package,
// so every diagnostic here depends on window facts flowing across the
// package boundary.
package beginendfacts

import (
	"beginendfacts/helper"

	"dope/internal/core"
)

func work() {}

// dropsStatus is the canonical cross-package violation: the helper opened a
// window, the caller ignores the status and never Ends.
func dropsStatus(w *core.Worker) {
	helper.Open(w)
} // want `functor returns while still holding a platform context`

// dropsStatusChained leaks through the two-deep helper chain.
func dropsStatusChained(w *core.Worker) {
	helper.OpenChecked(w)
} // want `functor returns while still holding a platform context`

// balanced uses the suspension idiom on the helper call: no findings.
func balanced(w *core.Worker) core.Status {
	if helper.Open(w) == core.Suspended {
		return core.Suspended
	}
	work()
	return w.End()
}

// helperBoth opens and closes through helpers: no findings.
func helperBoth(w *core.Worker) core.Status {
	if helper.OpenChecked(w) == core.Suspended {
		return core.Suspended
	}
	work()
	return helper.Close(w)
}

// deferredHelperClose closes via a deferred helper call: no findings.
func deferredHelperClose(w *core.Worker) {
	if helper.Open(w) == core.Suspended {
		return
	}
	defer helper.Close(w)
	work()
}

// doubleOpen claims a second context through the helper.
func doubleOpen(w *core.Worker) {
	if w.Begin() == core.Suspended {
		return
	}
	helper.Open(w) // want `call to Open opens a Begin/End window while one is already open`
	w.End()
	w.End()
} // want `functor may return while holding a platform context`

// closeUnopened releases a window nobody opened.
func closeUnopened(w *core.Worker) {
	helper.Close(w) // want `call to Close closes a Begin/End window that is not open`
}

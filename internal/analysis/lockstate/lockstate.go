// Package lockstate is the shared concurrency-discipline front end for the
// lockcheck and atomiccheck analyzers: it walks every function of a package
// and reports each struct-field access together with the synchronization
// context the access runs under — which mutexes of the field's owner struct
// are held (tracked through Lock/Unlock/RLock/RUnlock calls and deferred
// unlocks), whether the access goes through sync/atomic (an atomic.T method
// call or an &field handed to an atomic.* function), whether the enclosing
// function's name declares a lock-held calling convention (a "...Locked"
// suffix), and whether the base value was just constructed locally (the
// single-goroutine initialization phase before the struct escapes).
//
// The held-lock tracking is a deliberately simple abstract interpretation
// over the statement structure: sequential statements thread the lock set
// through; branches fork it and re-join on the intersection of the arms that
// fall through (a branch ending in return/panic/break does not constrain the
// join); function literals start from an empty lock set, because a closure
// may run on another goroutine or after the region ends. Lock identity is
// the rendered base expression plus the mutex field name ("g.mu",
// "c.shards[i].mu"), so aliases through different spellings are not unified
// — callers should treat a missing Held entry as "not proven held", never
// as "proven unheld with certainty".
package lockstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Access is one read or write of a struct field, with its context.
type Access struct {
	// Field is the accessed field object.
	Field *types.Var
	// Owner is the named type the field was selected from, nil when the
	// receiver type is unnamed or unresolvable.
	Owner *types.TypeName
	// Base is the rendered receiver expression ("g", "c.shards[i]"); empty
	// when the receiver does not render (held-lock matching then fails
	// conservatively).
	Base string
	// Pos is the access position.
	Pos token.Pos
	// Write reports whether the access stores to the field (assignment,
	// ++/--, or taking its address outside an atomic call).
	Write bool
	// Atomic reports whether the access goes through sync/atomic: a method
	// call on an atomic.T-typed field, or &field passed to an atomic.*
	// function.
	Atomic bool
	// Held lists the mutex fields of the owner struct that are held through
	// the same base at this point ("mu", "flushMu").
	Held []string
	// InLockedFunc reports whether the enclosing function's name ends in
	// "Locked" — the repo-wide convention for "caller holds the receiver's
	// mutex"; such accesses count as held under every owner mutex.
	InLockedFunc bool
	// CreationLocal reports whether the base is a local variable that was
	// initialized from a composite literal or new() in the same function:
	// the construction phase, before the value can be shared.
	CreationLocal bool
}

// HeldAny reports whether the access runs under one of the given mutex
// names, counting the ...Locked calling convention as holding all of them.
func (a Access) HeldAny(names []string) bool {
	if a.InLockedFunc {
		return true
	}
	for _, n := range names {
		for _, h := range a.Held {
			if h == n {
				return true
			}
		}
	}
	return false
}

// MutexFields returns the names of t's sync.Mutex / sync.RWMutex fields;
// t may be a pointer. Nil or non-struct types return nothing.
func MutexFields(t types.Type) []string {
	st := structOf(t)
	if st == nil {
		return nil
	}
	var names []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if IsMutexType(f.Type()) {
			names = append(names, f.Name())
		}
	}
	return names
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsAtomicType reports whether t is one of sync/atomic's value types
// (atomic.Bool, atomic.Int64, atomic.Pointer[T], ...).
func IsAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// structOf unwraps pointers and names down to a struct type, or nil.
func structOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// Collect walks every function declaration in files and invokes emit for
// each struct-field access, in source order within each function.
func Collect(files []*ast.File, info *types.Info, emit func(Access)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{
				info:     info,
				emit:     emit,
				inLocked: strings.HasSuffix(fd.Name.Name, "Locked"),
				creation: make(map[types.Object]bool),
			}
			w.findCreations(fd.Body)
			w.stmts(fd.Body.List, make(lockSet))
		}
	}
}

// lockSet maps "base\x00mutexField" → held.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both sets.
func intersect(a, b lockSet) lockSet {
	out := make(lockSet)
	for k, v := range a {
		if v && b[k] {
			out[k] = true
		}
	}
	return out
}

type walker struct {
	info     *types.Info
	emit     func(Access)
	inLocked bool
	// creation marks local variables initialized from a composite literal or
	// new() in this function: accesses through them are construction-phase.
	creation map[types.Object]bool
}

// findCreations records locals assigned a fresh composite literal / new(T)
// anywhere in the body. Assignment position is not checked — a local that
// is fresh anywhere in the function is treated as construction-phase
// throughout, which trades a sliver of soundness for a much simpler rule.
func (w *walker) findCreations(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.info.Defs[id]
			if obj == nil {
				continue
			}
			if isFreshValue(w.info, as.Rhs[i]) {
				w.creation[obj] = true
			}
		}
		return true
	})
}

// isFreshValue reports whether e constructs a brand-new value: a composite
// literal, &literal, or new(T).
func isFreshValue(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

// stmts walks a statement list, threading the lock set through, and returns
// the exit state plus whether control always leaves the list early (return,
// panic, break, continue, goto).
func (w *walker) stmts(list []ast.Stmt, held lockSet) (out lockSet, terminated bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := w.lockEvent(s.X); ok {
			// The Lock()/Unlock() call itself is synchronization, not a
			// guarded-field access; only the state changes.
			held = held.clone()
			held[key] = locks
			return held, false
		}
		w.expr(s.X, held, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, held, false)
		}
		for _, l := range s.Lhs {
			w.exprWrite(l, held)
		}
	case *ast.IncDecStmt:
		w.exprWrite(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock runs at function exit: the lock stays held for
		// the remaining statements. Other deferred calls have their
		// arguments evaluated now; a deferred closure body runs later, with
		// no lock provably held.
		if _, _, ok := w.lockEvent(s.Call); ok {
			return held, false
		}
		for _, a := range s.Call.Args {
			w.expr(a, held, false)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, make(lockSet))
		} else {
			w.expr(s.Call.Fun, held, false)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, held, false)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, make(lockSet))
		} else {
			w.expr(s.Call.Fun, held, false)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, held, false)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the list; their exit state does not
		// constrain the fall-through join.
		return held, true
	case *ast.BlockStmt:
		return w.stmts(s.List, held.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held, false)
		thenOut, thenTerm := w.stmts(s.Body.List, held.clone())
		var arms []lockSet
		if !thenTerm {
			arms = append(arms, thenOut)
		}
		if s.Else != nil {
			elseOut, elseTerm := w.stmt(s.Else, held.clone())
			if !elseTerm {
				arms = append(arms, elseOut)
			}
		} else {
			arms = append(arms, held)
		}
		return joinArms(held, arms), false
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held, false)
		}
		bodyOut, bodyTerm := w.stmts(s.Body.List, held.clone())
		if s.Post != nil {
			w.stmt(s.Post, bodyOut)
		}
		if s.Cond == nil && !bodyTerm {
			// for{} without a reachable exit: the code after is only reached
			// via break paths, whose state we do not track.
			return held, false
		}
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyOut), false
	case *ast.RangeStmt:
		w.expr(s.X, held, false)
		bodyOut, bodyTerm := w.stmts(s.Body.List, held.clone())
		if bodyTerm {
			return held, false
		}
		return intersect(held, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held, false)
		}
		return w.clauses(s.Body.List, held), false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.clauses(s.Body.List, held), false
	case *ast.SelectStmt:
		return w.clauses(s.Body.List, held), false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held, false)
		w.expr(s.Value, held, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held, false)
					}
				}
			}
		}
	}
	return held, false
}

// clauses walks switch/select case bodies and joins their exits.
func (w *walker) clauses(list []ast.Stmt, held lockSet) lockSet {
	var arms []lockSet
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.expr(e, held, false)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				w.stmt(cl.Comm, held.clone())
			}
			body = cl.Body
		}
		out, term := w.stmts(body, held.clone())
		if !term {
			arms = append(arms, out)
		}
	}
	// A switch may match no case; the pre-state always joins.
	arms = append(arms, held)
	return joinArms(held, arms)
}

func joinArms(pre lockSet, arms []lockSet) lockSet {
	if len(arms) == 0 {
		return pre
	}
	out := arms[0]
	for _, a := range arms[1:] {
		out = intersect(out, a)
	}
	return out
}

// lockEvent recognizes base.mu.Lock() / Unlock() / RLock() / RUnlock()
// where mu is a sync.Mutex or sync.RWMutex field; it returns the lock-set
// key and the new held value.
func (w *walker) lockEvent(e ast.Expr) (key string, locked, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locked = true
	case "Unlock", "RUnlock":
		locked = false
	default:
		return "", false, false
	}
	muSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fieldObj := w.fieldOf(muSel)
	if fieldObj == nil || !IsMutexType(fieldObj.Type()) {
		return "", false, false
	}
	base, rok := render(muSel.X)
	if !rok {
		return "", false, false
	}
	return base + "\x00" + fieldObj.Name(), locked, true
}

// expr walks an expression emitting accesses; write marks the outermost
// selector as a store target.
func (w *walker) expr(e ast.Expr, held lockSet, write bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.expr(e.X, held, write)
	case *ast.SelectorExpr:
		w.access(e, held, write, false)
		// Base expressions may themselves contain accesses (x.a.b reads a);
		// handled inside access.
	case *ast.Ident, *ast.BasicLit:
	case *ast.StarExpr:
		w.expr(e.X, held, write)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				// &x.f: address escape — a write-capable access unless it
				// feeds an atomic call, which the CallExpr case intercepts.
				w.access(sel, held, true, false)
				return
			}
		}
		w.expr(e.X, held, write)
	case *ast.CallExpr:
		if w.atomicCall(e, held) {
			return
		}
		w.expr(e.Fun, held, false)
		for _, a := range e.Args {
			w.expr(a, held, false)
		}
	case *ast.FuncLit:
		// A closure may run on another goroutine or after the locked region
		// ends; prove nothing about held locks inside it.
		sub := &walker{info: w.info, emit: w.emit, inLocked: false, creation: w.creation}
		sub.findCreations(e.Body)
		sub.stmts(e.Body.List, make(lockSet))
	case *ast.BinaryExpr:
		w.expr(e.X, held, false)
		w.expr(e.Y, held, false)
	case *ast.IndexExpr:
		w.expr(e.X, held, write)
		w.expr(e.Index, held, false)
	case *ast.IndexListExpr:
		w.expr(e.X, held, write)
	case *ast.SliceExpr:
		w.expr(e.X, held, write)
		w.expr(e.Low, held, false)
		w.expr(e.High, held, false)
		w.expr(e.Max, held, false)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, held, false)
				continue
			}
			w.expr(el, held, false)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, held, false)
	}
}

// exprWrite emits the outermost selector of an assignment target as a write
// and everything below it as reads.
func (w *walker) exprWrite(e ast.Expr, held lockSet) {
	switch t := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		w.access(t, held, true, false)
	case *ast.IndexExpr:
		// x.f[i] = v writes through f; treat the selector as written.
		w.expr(t.Index, held, false)
		if sel, ok := ast.Unparen(t.X).(*ast.SelectorExpr); ok {
			w.access(sel, held, true, false)
			return
		}
		w.expr(t.X, held, false)
	case *ast.StarExpr:
		w.expr(t.X, held, false)
	default:
		w.expr(e, held, false)
	}
}

// atomicCall recognizes the two sync/atomic access shapes and emits their
// field accesses as atomic; it reports whether e was such a call.
func (w *walker) atomicCall(e *ast.CallExpr, held lockSet) bool {
	fun, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Shape 1: x.f.Load()/Store()/Add()/Swap()/CompareAndSwap() on an
	// atomic.T field.
	if recvSel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
		if f := w.fieldOf(recvSel); f != nil && IsAtomicType(f.Type()) {
			w.access(recvSel, held, false, true)
			for _, a := range e.Args {
				w.expr(a, held, false)
			}
			return true
		}
	}
	// Shape 2: atomic.AddInt64(&x.f, 1) and friends.
	if pkgID, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
		if pn, ok := w.info.Uses[pkgID].(*types.PkgName); ok &&
			pn.Imported().Path() == "sync/atomic" {
			for _, a := range e.Args {
				if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
					if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
						if f := w.fieldOf(sel); f != nil {
							w.access(sel, held, false, true)
							continue
						}
					}
				}
				w.expr(a, held, false)
			}
			return true
		}
	}
	return false
}

// access resolves one selector to a struct field and emits it; the base
// expression is then walked for nested accesses.
func (w *walker) access(sel *ast.SelectorExpr, held lockSet, write, atomic bool) {
	f := w.fieldOf(sel)
	if f == nil {
		// Not a field (method value, package member): still walk the base.
		w.expr(sel.X, held, false)
		return
	}
	owner := w.ownerOf(sel)
	base, baseOK := render(sel.X)
	var heldNames []string
	creation := false
	if baseOK {
		var ownerType types.Type
		if s := w.info.Selections[sel]; s != nil {
			ownerType = s.Recv()
		}
		for _, m := range MutexFields(ownerType) {
			if held[base+"\x00"+m] {
				heldNames = append(heldNames, m)
			}
		}
	}
	if root := rootObj(w.info, sel.X); root != nil && w.creation[root] {
		creation = true
	}
	w.emit(Access{
		Field:         f,
		Owner:         owner,
		Base:          base,
		Pos:           sel.Sel.Pos(),
		Write:         write,
		Atomic:        atomic,
		Held:          heldNames,
		InLockedFunc:  w.inLocked,
		CreationLocal: creation,
	})
	w.expr(sel.X, held, false)
}

// fieldOf resolves a selector to the struct-field object it names, or nil.
func (w *walker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s := w.info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// ownerOf resolves the named type a field selector goes through, or nil.
func (w *walker) ownerOf(sel *ast.SelectorExpr) *types.TypeName {
	s := w.info.Selections[sel]
	if s == nil {
		return nil
	}
	if n := namedOf(s.Recv()); n != nil {
		return n.Obj()
	}
	return nil
}

// rootObj returns the object of the leftmost identifier of a selector base.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// render spells a base expression as a canonical string, or fails for
// shapes (calls, complex indexes) whose identity is not stable.
func render(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := render(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		base, ok := render(e.X)
		if !ok {
			return "", false
		}
		return "*" + base, true
	case *ast.IndexExpr:
		base, ok := render(e.X)
		if !ok {
			return "", false
		}
		switch idx := ast.Unparen(e.Index).(type) {
		case *ast.Ident:
			return base + "[" + idx.Name + "]", true
		case *ast.BasicLit:
			return base + "[" + idx.Value + "]", true
		}
		return "", false
	}
	return "", false
}

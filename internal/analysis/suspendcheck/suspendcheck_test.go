package suspendcheck_test

import (
	"testing"

	"dope/internal/analysis/analysistest"
	"dope/internal/analysis/suspendcheck"
)

func TestSuspendCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", suspendcheck.Analyzer, "suspendcheck")
}

// Package suspendcheck checks that a functor which brackets CPU sections
// consults the core.Status returned by Worker.Begin or Worker.End. Begin
// and End report Suspended when the executive needs the worker to stop (a
// whole-run suspension or a slot retired by an in-place shrink, the
// paper's suspend→drain→reconfigure protocol); a functor that discards
// every status never observes the request and stalls reconfiguration.
//
// The check is per function: at least one Begin/End status in the body
// must be used (compared, assigned to a non-blank variable, or returned).
// Deferred Ends are exempt — a deferred call's result cannot be consulted.
// Drain stages whose exit is driven by the upstream queue closing may
// deliberately ignore the statuses; such sites carry a
// `//dopevet:ignore suspendcheck <reason>` comment.
package suspendcheck

import (
	"go/ast"

	"dope/internal/analysis/framework"
	"dope/internal/analysis/protocol"
)

var Analyzer = &framework.Analyzer{
	Name: "suspendcheck",
	Doc: "check that the Status returned by Worker.Begin/End is compared " +
		"against Suspended rather than discarded, so suspension and slot " +
		"retirement are observed",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, fn := range protocol.Funcs(pass.Files) {
		if fn.Deferred {
			continue
		}
		var discarded []*ast.CallExpr
		classified := make(map[*ast.CallExpr]bool)
		used := false
		// Walk the body without descending into nested function literals
		// (each is its own unit) and classify every Begin/End call.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false // deferred End cannot be consulted
			case *ast.ExprStmt:
				if call := statusCall(pass, n.X); call != nil {
					discarded = append(discarded, call)
					classified[call] = true
				}
			case *ast.AssignStmt:
				// `_ = w.Begin()` is still a discard; any other
				// assignment makes the status observable.
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if call := statusCall(pass, rhs); call != nil {
							classified[call] = true
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								discarded = append(discarded, call)
							} else {
								used = true
							}
						}
					}
				}
			case *ast.CallExpr:
				// A Begin/End reached here unclassified sits inside a
				// larger expression (comparison, return, argument): used.
				if !classified[n] {
					if m := protocol.WorkerMethod(pass.TypesInfo, n); m == "Begin" || m == "End" {
						used = true
					}
				}
			}
			return true
		})
		if !used && len(discarded) > 0 {
			call := discarded[0]
			pass.Reportf(call.Pos(),
				"functor discards every Worker.%s status; compare at least one Begin/End result against core.Suspended (or suppress for drain stages)",
				protocol.WorkerMethod(pass.TypesInfo, call))
		}
	}
	return nil
}

// statusCall returns the call if e is exactly a Worker.Begin or Worker.End
// call (possibly parenthesized), else nil.
func statusCall(pass *framework.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	switch protocol.WorkerMethod(pass.TypesInfo, call) {
	case "Begin", "End":
		return call
	}
	return nil
}

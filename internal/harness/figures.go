package harness

import (
	"fmt"

	"dope/internal/mechanism"
	"dope/internal/sim"
)

// tasksAt scales the paper's 500-task runs.
func tasksAt(scale float64, base int) int {
	n := int(float64(base) * scale)
	if n < 40 {
		n = 40
	}
	return n
}

// fig2DoPs are the inner extents swept in Figure 2.
var fig2DoPs = []int{1, 2, 4, 8, 16}

// Fig2a reproduces Figure 2(a): per-video execution time against load for
// each static inner DoP.
func Fig2a(scale float64) *Table {
	model := sim.Transcode()
	t := &Table{
		ID:     "fig2a",
		Title:  "Execution time (ms/video) vs load, per static <DoPouter, DoPinner>",
		Header: []string{"load"},
		Notes: []string{
			"paper: intra-video parallelism improves Texec up to 6.3x at DoPinner=8",
		},
	}
	for _, m := range fig2DoPs {
		t.Header = append(t.Header, fmt.Sprintf("inner=%d", m))
	}
	for _, lf := range loads() {
		row := []string{f1(lf)}
		for _, m := range fig2DoPs {
			res := sim.RunServer(model, sim.ServerConfig{
				Tasks: tasksAt(scale, 500), LoadFactor: lf, Seed: 11,
				OuterK: 24 / maxInt(1, m), InnerM: m,
			})
			row = append(row, ms(res.MeanExec))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig2b reproduces Figure 2(b): system throughput against load for each
// static inner DoP.
func Fig2b(scale float64) *Table {
	model := sim.Transcode()
	t := &Table{
		ID:     "fig2b",
		Title:  "Throughput (videos/s) vs load, per static <DoPouter, DoPinner>",
		Header: []string{"load"},
		Notes: []string{
			"paper: at load >= 0.9 turning inner parallelism on degrades throughput",
		},
	}
	for _, m := range fig2DoPs {
		t.Header = append(t.Header, fmt.Sprintf("inner=%d", m))
	}
	for _, lf := range loads() {
		row := []string{f1(lf)}
		for _, m := range fig2DoPs {
			res := sim.RunServer(model, sim.ServerConfig{
				Tasks: tasksAt(scale, 500), LoadFactor: lf, Seed: 11,
				OuterK: 24 / maxInt(1, m), InnerM: m,
			})
			row = append(row, f1(res.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig2c reproduces Figure 2(c): response time against load for the two
// canonical statics and the oracle that re-chooses DoP per job.
func Fig2c(scale float64) *Table {
	model := sim.Transcode()
	t := &Table{
		ID:     "fig2c",
		Title:  "Response time (ms) vs load: static seq-inner, static par-inner, oracle",
		Header: []string{"load", "<24,(1,SEQ)>", "<3,(8,PIPE)>", "oracle"},
		Notes: []string{
			"paper: statics cross over; the oracle dominates both by varying DoP with load",
		},
	}
	for _, lf := range loads() {
		tasks := tasksAt(scale, 500)
		seq := sim.RunServer(model, sim.ServerConfig{Tasks: tasks, LoadFactor: lf, Seed: 11, OuterK: 24, InnerM: 1})
		par := sim.RunServer(model, sim.ServerConfig{Tasks: tasks, LoadFactor: lf, Seed: 11, OuterK: 3, InnerM: 8})
		ora := sim.RunServer(model, sim.ServerConfig{Tasks: tasks, LoadFactor: lf, Seed: 11, Oracle: true})
		t.Rows = append(t.Rows, []string{
			f1(lf), ms(seq.MeanResponse), ms(par.MeanResponse), ms(ora.MeanResponse),
		})
	}
	return t
}

// wqParams carries the per-application administrator settings of §7.1: the
// efficiency knee Mmax and WQT-H's threshold/hysteresis, back-calculated
// from each app's acceptable response-time degradation.
type wqParams struct {
	mmax       int
	threshold  float64
	hysteresis int
}

// serverModelByName maps app names to their simulator models and WQ
// parameters.
func serverModelByName(name string) (*sim.ServerModel, wqParams) {
	switch name {
	case "x264":
		return sim.Transcode(), wqParams{mmax: 8, threshold: 8, hysteresis: 15}
	case "swaptions":
		return sim.Swaptions(), wqParams{mmax: 8, threshold: 8, hysteresis: 15}
	case "bzip":
		// bzip's parallel mode is inefficient (DoPmin 4), so the admin sets
		// a tighter threshold: leave latency mode early.
		return sim.Compress(), wqParams{mmax: 8, threshold: 6, hysteresis: 10}
	case "gimp":
		return sim.Oilify(), wqParams{mmax: 8, threshold: 8, hysteresis: 15}
	default:
		panic("harness: unknown server app " + name)
	}
}

// Fig11 reproduces one panel of Figure 11: response time against load for
// the two statics, WQT-H, and WQ-Linear.
func Fig11(app string, scale float64) *Table {
	model, wq := serverModelByName(app)
	mmax := wq.mmax
	t := &Table{
		ID:     "fig11-" + app,
		Title:  fmt.Sprintf("%s response time (ms) vs load", app),
		Header: []string{"load", "static-seq", "static-par", "WQT-H", "WQ-Linear"},
		Notes: []string{
			"paper: dynamic mechanisms dominate statics; WQ-Linear best except bzip (DoPmin=4 starves it of useful configs)",
		},
	}
	for _, lf := range loads() {
		tasks := tasksAt(scale, 500)
		seq := sim.RunServer(model, sim.ServerConfig{Tasks: tasks, LoadFactor: lf, Seed: 13, OuterK: 24, InnerM: 1})
		par := sim.RunServer(model, sim.ServerConfig{Tasks: tasks, LoadFactor: lf, Seed: 13, OuterK: 24 / mmax, InnerM: mmax})
		wqth := sim.RunServer(model, sim.ServerConfig{
			Tasks: tasks, LoadFactor: lf, Seed: 13, ControlEvery: 0.01,
			// Hysteresis lengths weighted long (§7.1 allows NOff >> NOn
			// style asymmetry; we use symmetric lengths that damp toggling
			// at mid loads — see BenchmarkAblationHysteresis).
			Mechanism: &mechanism.WQTH{Threads: 24, Mmax: mmax,
				Threshold: wq.threshold, NOn: wq.hysteresis, NOff: wq.hysteresis},
			OuterK: 24, InnerM: 1,
		})
		wql := sim.RunServer(model, sim.ServerConfig{
			Tasks: tasks, LoadFactor: lf, Seed: 13, ControlEvery: 0.01,
			Mechanism: &mechanism.WQLinear{Threads: 24, Mmax: mmax, Mmin: 1, Qmax: 14},
			OuterK:    24 / mmax, InnerM: mmax,
		})
		t.Rows = append(t.Rows, []string{
			f1(lf), ms(seq.MeanResponse), ms(par.MeanResponse),
			ms(wqth.MeanResponse), ms(wql.MeanResponse),
		})
	}
	return t
}

// Fig12 reproduces Figure 12: ferret response time against load for the
// even static, the oversubscribed static, and DoPE's load-proportional
// allocation.
func Fig12(scale float64) *Table {
	model := sim.Ferret()
	t := &Table{
		ID:     "fig12",
		Title:  "ferret response time (ms) vs load",
		Header: []string{"load", "even<1,5,5,5,6,1>", "oversub<24 each>", "DoPE"},
		Notes: []string{
			"paper: oversubscribing beats the even static; DoPE beats both by allocating threads proportional to load",
		},
	}
	for _, lf := range loads() {
		tasks := tasksAt(scale, 500)
		even := sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasks, LoadFactor: lf, Seed: 17, Extents: []int{1, 5, 5, 5, 6, 1},
		})
		over := sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasks, LoadFactor: lf, Seed: 17, Extents: []int{1, 5, 5, 5, 6, 1},
			Oversubscribed: true,
		})
		dope := sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasks, LoadFactor: lf, Seed: 17, ControlEvery: 0.02,
			Mechanism: &mechanism.LoadProportional{Threads: 24},
			Extents:   []int{1, 5, 5, 5, 6, 1},
		})
		t.Rows = append(t.Rows, []string{
			f1(lf), ms(even.MeanResponse), ms(over.MeanResponse), ms(dope.MeanResponse),
		})
	}
	return t
}

// Fig13 reproduces Figure 13: ferret throughput over time while TBF
// searches the configuration space and stabilizes.
func Fig13(scale float64) *Table {
	model := sim.Ferret()
	res := sim.RunPipeline(model, sim.PipelineConfig{
		Tasks: tasksAt(scale, 4000), Mechanism: &mechanism.TBF{Threads: 24},
		Extents: []int{1, 1, 1, 1, 1, 1}, ControlEvery: 0.02, SampleEvery: 0.05,
	})
	t := &Table{
		ID:     "fig13",
		Title:  "ferret throughput (queries/s) vs time under DoPE-TBF",
		Header: []string{"t(s)", "throughput", "total-extent"},
		Notes: []string{
			"paper: DoPE searches the parallelism configuration space before stabilizing on the maximum-throughput configuration",
			fmt.Sprintf("steady-state throughput: %.0f queries/s, reconfigurations: %d, final alt: %d",
				res.SteadyThroughput, res.Reconfigurations, res.FinalAlt),
		},
	}
	for _, p := range res.Samples {
		t.Rows = append(t.Rows, []string{f3(p.Time), f1(p.Throughput), fmt.Sprint(p.TotalExtent)})
	}
	return t
}

// Fig14 reproduces Figure 14: ferret power and throughput over time under
// the TPC controller with a 90%-of-peak power target.
func Fig14(scale float64) *Table {
	model := sim.Ferret()
	budget := 0.9 * 800.0
	res := sim.RunPipeline(model, sim.PipelineConfig{
		Tasks: tasksAt(scale, 6000), Mechanism: &mechanism.TPC{Threads: 24, Budget: budget},
		Extents: []int{1, 1, 1, 1, 1, 1}, ControlEvery: 0.02,
		// The simulator's timescale is compressed ~100× relative to the
		// testbed, so the AP7892's 13 samples/minute maps to one sample
		// every 0.05 simulated seconds — preserving the paper's
		// sampling-lag-to-control-period ratio (§8.2.3).
		PowerBudget: budget, SampleEvery: 0.1, PDUPeriod: 0.05,
	})
	t := &Table{
		ID:     "fig14",
		Title:  fmt.Sprintf("ferret power/throughput vs time under TPC (budget %.0f W)", budget),
		Header: []string{"t(s)", "power(W)", "throughput", "total-extent"},
		Notes: []string{
			"paper: DoPE ramps DoP until the budget is used, explores, then stabilizes on the best configuration under the cap",
			"PDU sampling limited to 13 samples/minute, as with the paper's AP7892",
			fmt.Sprintf("steady throughput %.0f queries/s; mean power %.0f W", res.SteadyThroughput, res.MeanPower),
		},
	}
	for _, p := range res.Samples {
		t.Rows = append(t.Rows, []string{
			f3(p.Time), f1(p.Power), f1(p.Throughput), fmt.Sprint(p.TotalExtent),
		})
	}
	return t
}

// Table5 reproduces the Figure 15 table: ferret and dedup throughput per
// scheduling approach, normalized to the Pthreads baseline.
func Table5(scale float64) *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Throughput improvement over static even thread distribution (Figure 15)",
		Header: []string{"approach", "ferret", "dedup"},
		Notes: []string{
			"paper: Pthreads-OS 2.12x/0.89x; DoPE-TBF outperforms all other mechanisms; geomean DoPE gain 2.36x",
		},
	}
	rows := map[string][2]float64{}
	order := []string{"Pthreads-Baseline", "Pthreads-OS", "DoPE-SEDA", "DoPE-FDP", "DoPE-TB", "DoPE-TBF"}

	for appIdx, app := range []struct {
		model *sim.PipelineModel
		even  []int
	}{
		{sim.Ferret(), []int{1, 5, 5, 5, 6, 1}},
		{sim.Dedup(), []int{1, 10, 11, 1}},
	} {
		tasks := tasksAt(scale, 3000)
		ones := make([]int, len(app.model.StageTimes))
		for i := range ones {
			ones[i] = 1
		}
		run := func(cfg sim.PipelineConfig) float64 {
			cfg.Tasks = tasks
			return sim.RunPipeline(app.model, cfg).SteadyThroughput
		}
		base := run(sim.PipelineConfig{Extents: app.even})
		set := func(name string, v float64) {
			r := rows[name]
			r[appIdx] = v / base
			rows[name] = r
		}
		set("Pthreads-Baseline", base)
		set("Pthreads-OS", run(sim.PipelineConfig{Extents: app.even, Oversubscribed: true}))
		set("DoPE-SEDA", run(sim.PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.SEDA{HighWater: 8, LowWater: 1, PerStageCap: 24}}))
		set("DoPE-FDP", run(sim.PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.FDP{Threads: 24}}))
		set("DoPE-TB", run(sim.PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.TBF{Threads: 24, DisableFusion: true}}))
		set("DoPE-TBF", run(sim.PipelineConfig{ControlEvery: 0.02, Extents: ones,
			Mechanism: &mechanism.TBF{Threads: 24}}))
	}
	for _, name := range order {
		r := rows[name]
		t.Rows = append(t.Rows, []string{name, fx(r[0]), fx(r[1])})
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// FprintCSV renders the table as CSV (header row first).
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FprintJSON renders the table as a JSON object with id, title, header,
// rows, and notes.
func (t *Table) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// FprintPlot renders the table as an ASCII chart: the first column is the
// x axis, every further numeric column a series. Good enough to eyeball
// the paper's figure shapes in a terminal.
func (t *Table) FprintPlot(w io.Writer, height int) error {
	if height < 4 {
		height = 12
	}
	if len(t.Rows) < 2 || len(t.Header) < 2 {
		return fmt.Errorf("harness: table %s is not plottable", t.ID)
	}
	nSeries := len(t.Header) - 1
	marks := []byte("*o+x#@%&")
	// Parse values; skip non-numeric cells.
	vals := make([][]float64, len(t.Rows))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, row := range t.Rows {
		vals[i] = make([]float64, nSeries)
		for j := 0; j < nSeries; j++ {
			v := math.NaN()
			if j+1 < len(row) {
				if p, err := strconv.ParseFloat(strings.TrimSuffix(row[j+1], "x"), 64); err == nil {
					v = p
				}
			}
			vals[i][j] = v
			if !math.IsNaN(v) {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("harness: table %s has no numeric series", t.ID)
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(t.Rows)*3))
	}
	for i := range vals {
		for j := 0; j < nSeries; j++ {
			v := vals[i][j]
			if math.IsNaN(v) {
				continue
			}
			r := int((hi - v) / (hi - lo) * float64(height-1))
			grid[r][i*3+1] = marks[j%len(marks)]
		}
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.1f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.1f", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.1f", (hi+lo)/2)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	// x labels: first and last.
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", len(t.Rows)*3))
	fmt.Fprintf(w, "%s  x: %s .. %s (%s)\n", strings.Repeat(" ", 8),
		t.Rows[0][0], t.Rows[len(t.Rows)-1][0], t.Header[0])
	for j := 0; j < nSeries; j++ {
		fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", 8), marks[j%len(marks)], t.Header[j+1])
	}
	return nil
}

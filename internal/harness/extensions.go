package harness

import (
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/sim"
)

// The experiments in this file go beyond the paper's evaluation section,
// exercising capabilities the paper describes but does not measure: the
// task-placement decision of §1 and the administrator-invented
// energy-delay-product goal of §4.

// ExtLocality quantifies the placement axis: the ferret pipeline run with
// topology-oblivious scattering, with the executive's locality-maximizing
// contiguous placement, and with the topology-free baseline (the headline
// experiments' model).
func ExtLocality(scale float64) *Table {
	// A fine-grained variant of ferret: items are small feature vectors, so
	// forwarding them costs a substantial fraction of stage work and the
	// placement decision has something to move.
	model := sim.Ferret()
	model.HopTime = 1.0e-3
	t := &Table{
		ID:     "ext-locality",
		Title:  "EXTENSION: fine-grained ferret throughput by task placement (4-socket topology)",
		Header: []string{"placement", "throughput (q/s)", "vs scatter"},
		Notes: []string{
			"§1: DoPE decides \"on which hardware thread should each stage be placed to maximize locality of communication\"",
			"cross-socket transfers cost 3x the on-socket forwarding time; this variant forwards heavyweight items",
		},
	}
	extents := []int{1, 2, 3, 5, 10, 1}
	run := func(p sim.Placement) float64 {
		return sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasksAt(scale, 2000), Extents: extents, Placement: p,
		}).SteadyThroughput
	}
	scatter := run(sim.PlaceScatter)
	rows := []struct {
		name string
		p    sim.Placement
	}{
		{"scatter (naive pool)", sim.PlaceScatter},
		{"contiguous (DoPE locality)", sim.PlaceContiguous},
		{"no-topology reference", sim.PlaceNone},
	}
	for _, r := range rows {
		tp := run(r.p)
		t.Rows = append(t.Rows, []string{r.name, f1(tp), fx(tp / scatter)})
	}
	return t
}

// ExtEDP demonstrates the energy-delay-product goal: EDP's chosen operating
// point against pure throughput maximization (TBF restricted to the
// pipeline alternative) and against all-ones, with superlinear power.
func ExtEDP(scale float64) *Table {
	model := sim.Ferret()
	t := &Table{
		ID:     "ext-edp",
		Title:  "EXTENSION: ferret under the min energy-delay-product goal (§4's example)",
		Header: []string{"approach", "throughput (q/s)", "mean power (W)", "J/item", "EDP/item (mJ·s, lower is better)"},
		Notes: []string{
			"EDP per item = power/throughput²; with the platform's linear power model the optimum stays wide,",
			"but under superlinear power it retreats from full width (see TestEDPStopsBelowFullWidthWhenPowerIsSteep)",
		},
	}
	// EDP's climb needs room to converge (settle ticks between steps), so
	// this experiment enforces a floor regardless of scale.
	tasks := tasksAt(scale, 3000)
	if tasks < 3000 {
		tasks = 3000
	}
	run := func(name string, mech core.Mechanism, extents []int) {
		res := sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasks, Extents: extents, Mechanism: mech,
			ControlEvery: 0.02, PowerBudget: 1, PDUPeriod: 0.02, SampleEvery: 0.2,
		})
		edp := 0.0
		if res.SteadyThroughput > 0 {
			edp = res.MeanPower / (res.SteadyThroughput * res.SteadyThroughput) * 1e6
		}
		perItem := res.EnergyJ / float64(tasks)
		t.Rows = append(t.Rows, []string{name, f1(res.SteadyThroughput), f1(res.MeanPower), f3(perItem), f3(edp)})
	}
	ones := []int{1, 1, 1, 1, 1, 1}
	run("all-ones static", nil, ones)
	run("DoPE-TB (max throughput)", &mechanism.TBF{Threads: 24, DisableFusion: true}, ones)
	run("DoPE-EDP", &mechanism.EDP{Threads: 24}, ones)
	return t
}

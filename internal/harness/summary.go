package harness

import (
	"fmt"
	"math"

	"dope/internal/mechanism"
	"dope/internal/sim"
)

// Summary runs the paper's headline claims end to end and reports each as
// ok/FAIL next to the paper's number — one command for a reviewer to check
// the reproduction:
//
//	go run ./cmd/dope-bench -exp summary
func Summary(scale float64) *Table {
	t := &Table{
		ID:     "summary",
		Title:  "Headline claims, paper vs this reproduction",
		Header: []string{"claim", "paper", "measured", "verdict"},
	}
	tasks := tasksAt(scale, 500)
	check := func(claim, paper, measured string, ok bool) {
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		t.Rows = append(t.Rows, []string{claim, paper, measured, verdict})
	}

	// 1. Figure 2(a): intra-video speedup at DoP 8.
	tr := sim.Transcode()
	s8 := tr.SeqTime / tr.ParTime(8)
	check("x264 exec-time speedup at inner DoP 8", "6.3x", fx(s8), s8 > 5.8 && s8 < 6.6)

	// 2. Figure 2(b): inner parallelism degrades throughput at saturation.
	seqH := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 1.0, Seed: 11, OuterK: 24, InnerM: 1})
	parH := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 1.0, Seed: 11, OuterK: 3, InnerM: 8})
	check("throughput at load 1.0: inner-par vs inner-seq", "degrades",
		fx(parH.Throughput/seqH.Throughput), parH.Throughput < seqH.Throughput)

	// 3. Figure 2(c): the oracle dominates both statics at the crossover.
	seqM := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 0.8, Seed: 11, OuterK: 24, InnerM: 1})
	parM := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 0.8, Seed: 11, OuterK: 3, InnerM: 8})
	ora := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 0.8, Seed: 11, Oracle: true})
	bestStatic := math.Min(seqM.MeanResponse, parM.MeanResponse)
	check("oracle response at load 0.8 vs best static", "dominates",
		fmt.Sprintf("%s vs %s ms", ms(ora.MeanResponse), ms(bestStatic)),
		ora.MeanResponse <= bestStatic*1.05)

	// 4. Figure 11: WQ-Linear beats both statics at heavy load.
	wql := sim.RunServer(tr, sim.ServerConfig{
		Tasks: tasks, LoadFactor: 0.9, Seed: 13, ControlEvery: 0.01,
		Mechanism: &mechanism.WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14},
		OuterK:    3, InnerM: 8,
	})
	seq9 := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 0.9, Seed: 13, OuterK: 24, InnerM: 1})
	par9 := sim.RunServer(tr, sim.ServerConfig{Tasks: tasks, LoadFactor: 0.9, Seed: 13, OuterK: 3, InnerM: 8})
	check("WQ-Linear response at load 0.9 vs both statics", "better than both",
		fmt.Sprintf("%s vs %s/%s ms", ms(wql.MeanResponse), ms(seq9.MeanResponse), ms(par9.MeanResponse)),
		wql.MeanResponse < seq9.MeanResponse && wql.MeanResponse < par9.MeanResponse)

	// 5. Figure 15: OS-scheduling ratios and the TBF geomean.
	bTasks := tasksAt(scale, 3000)
	runPipe := func(m *sim.PipelineModel, cfg sim.PipelineConfig) float64 {
		cfg.Tasks = bTasks
		return sim.RunPipeline(m, cfg).SteadyThroughput
	}
	fe := sim.Ferret()
	de := sim.Dedup()
	feBase := runPipe(fe, sim.PipelineConfig{Extents: []int{1, 5, 5, 5, 6, 1}})
	feOS := runPipe(fe, sim.PipelineConfig{Extents: []int{1, 5, 5, 5, 6, 1}, Oversubscribed: true})
	deBase := runPipe(de, sim.PipelineConfig{Extents: []int{1, 10, 11, 1}})
	deOS := runPipe(de, sim.PipelineConfig{Extents: []int{1, 10, 11, 1}, Oversubscribed: true})
	check("ferret Pthreads-OS over baseline", "2.12x", fx(feOS/feBase),
		feOS/feBase > 1.5 && feOS/feBase < 3.0)
	check("dedup Pthreads-OS over baseline", "0.89x", fx(deOS/deBase), deOS < deBase)

	feTBF := runPipe(fe, sim.PipelineConfig{ControlEvery: 0.02,
		Mechanism: &mechanism.TBF{Threads: 24}, Extents: []int{1, 1, 1, 1, 1, 1}})
	deTBF := runPipe(de, sim.PipelineConfig{ControlEvery: 0.02,
		Mechanism: &mechanism.TBF{Threads: 24}, Extents: []int{1, 1, 1, 1}})
	geomean := math.Sqrt((feTBF / feBase) * (deTBF / deBase))
	check("DoPE-TBF geomean gain over baselines", "2.36x (136%)", fx(geomean),
		geomean > 1.8 && geomean < 3.2)

	// 6. Figure 14: TPC holds the power budget.
	budget := 0.9 * 800.0
	tpc := sim.RunPipeline(fe, sim.PipelineConfig{
		Tasks: bTasks, Mechanism: &mechanism.TPC{Threads: 24, Budget: budget},
		Extents: []int{1, 1, 1, 1, 1, 1}, ControlEvery: 0.02,
		PowerBudget: budget, PDUPeriod: 0.05,
	})
	check("TPC mean power vs 720 W budget", "held", fmt.Sprintf("%.0f W", tpc.MeanPower),
		tpc.MeanPower <= budget*1.02 && tpc.SteadyThroughput > 0)

	return t
}

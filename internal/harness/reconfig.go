package harness

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/workload"
)

// ReconfigDip quantifies what in-place stage resizing buys over the legacy
// whole-nest respawn: the same ferret batch is subjected to forced extent
// toggles under both reconfiguration policies, and the experiment reports
// the windowed-throughput dip across each change, the settle latency until
// the per-stage worker gauge reaches its new target, and the
// suspension/resize counter split. A third arm runs the transcode server
// under WQ-Linear — an extent-only mechanism — to show reconfigurations and
// resizes climbing while the suspension count stays flat.
func ReconfigDip() (*Table, error) {
	t := &Table{
		ID:     "reconfig-dip",
		Title:  "REAL RUNTIME: reconfiguration cost, in-place resize vs whole-nest respawn",
		Header: []string{"arm", "queries/s", "dip q/s", "settle ms", "reconfigs", "resizes", "suspensions"},
		Notes: []string{
			"forced extent toggles on a running ferret batch: in-place resizing keeps the other stages flowing, so it settles faster and dips less than suspend/drain/respawn",
			"WQ-Linear arm: an extent-only mechanism climbs reconfigs/resizes while suspensions stay flat",
		},
	}
	for _, arm := range []struct {
		name    string
		respawn bool
	}{
		{"in-place", false},
		{"respawn", true},
	} {
		row, err := reconfigDipArm(arm.name, arm.respawn)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	row, err := reconfigWQLinearArm()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// reconfigDipArm runs one forced-toggle arm: a ferret batch whose segment…rank
// extents are flipped between narrow and wide while the batch flows.
func reconfigDipArm(name string, respawn bool) ([]string, error) {
	const nReq = 400
	narrow := []int{1, 2, 2, 2, 2, 1}
	wide := []int{1, 6, 6, 6, 6, 1}

	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 120})
	opts := []core.Option{
		core.WithContexts(liveContexts),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: narrow}),
	}
	if respawn {
		opts = append(opts, core.WithWholeNestRespawn())
	}
	e, err := core.New(spec, opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nReq; i++ {
		s.Submit(1.0)
	}
	if err := e.Start(); err != nil {
		return nil, err
	}

	// Sample completions in fixed windows; the dip is the slowest window of
	// the toggle phase.
	const win = 25 * time.Millisecond
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	var mu sync.Mutex
	var windows []float64
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(win)
		defer tick.Stop()
		last := s.Meter.Total()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				cur := s.Meter.Total()
				mu.Lock()
				windows = append(windows, float64(cur-last)/win.Seconds())
				mu.Unlock()
				last = cur
			}
		}
	}()

	// Toggle extents while the batch flows; settle latency is the time until
	// the monitor's worker gauge for the widest-swinging stage reaches its
	// new target (retirement is observed only at task boundaries, spawn
	// immediately).
	var settleSum time.Duration
	var settles int
	for i, tgt := range [][]int{wide, narrow, wide, narrow, wide, narrow} {
		time.Sleep(30 * time.Millisecond)
		e.SetConfig(&core.Config{Alt: 0, Extents: tgt})
		if d, ok := waitWorkers(e, spec.Name, "segment", tgt[1], 2*time.Second); ok {
			settleSum += d
			settles++
		} else if i == 0 {
			// The batch drained before the first toggle landed; the arm is
			// still reportable, just without settle data.
			break
		}
	}
	close(stopSample)
	sampleWG.Wait()
	s.Close()
	if err := e.Wait(); err != nil {
		return nil, err
	}

	mu.Lock()
	dip := math.Inf(1)
	// Skip the first window (spin-up) and any trailing drain windows.
	for i, w := range windows {
		if i == 0 || i >= len(windows)-1 {
			continue
		}
		if w < dip {
			dip = w
		}
	}
	mu.Unlock()
	dipCell := "-"
	if !math.IsInf(dip, 1) {
		dipCell = f1(dip)
	}
	settleCell := "-"
	if settles > 0 {
		settleCell = ms(settleSum.Seconds() / float64(settles))
	}
	return []string{
		name, f1(s.Meter.Overall()), dipCell, settleCell,
		fmt.Sprint(e.Reconfigurations()), fmt.Sprint(e.Resizes()), fmt.Sprint(e.Suspensions()),
	}, nil
}

// waitWorkers polls the report until the stage's worker gauge hits want.
func waitWorkers(e *core.Exec, nest, stage string, want int, timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	for time.Since(start) < timeout {
		if n := e.Report().Nest(nest); n != nil {
			if st := n.Stage(stage); st != nil && st.Workers == want {
				return time.Since(start), true
			}
		}
		time.Sleep(time.Millisecond)
	}
	return 0, false
}

// reconfigWQLinearArm serves the transcode app under WQ-Linear at moderate
// load: every decision is a root extent change (plus an inner-alternative
// choice that applies at the next instantiation), so the executive's
// suspension counter must stay flat while reconfigurations and resizes
// climb.
func reconfigWQLinearArm() ([]string, error) {
	const nReq = 40
	params := apps.TranscodeParams{Frames: 8, UnitsPerFrame: 2000}
	maxTp, err := calibrateTranscode(params)
	if err != nil {
		return nil, err
	}
	s := apps.NewServer(nil)
	spec := apps.NewTranscode(s, params)
	cfg := core.DefaultConfig(spec)
	cfg.Extents[0] = maxInt(1, liveContexts/8)
	if c := cfg.Child("video"); c != nil {
		c.Alt = 0
		c.Extents = []int{1, 6, 1}
	}
	e, err := core.New(spec,
		core.WithContexts(liveContexts),
		core.WithInitialConfig(cfg),
		core.WithControlInterval(5*time.Millisecond),
		core.WithMechanism(&mechanism.WQLinear{Threads: liveContexts, Mmax: 8, Mmin: 1, Qmax: 10}),
	)
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	arr := workload.NewArrivals(workload.LoadFactor(0.7).RateFor(maxTp), 23)
	for i := 0; i < nReq; i++ {
		time.Sleep(arr.Next())
		if err := s.Submit(1.0); err != nil {
			break
		}
	}
	s.Close()
	if err := e.Wait(); err != nil {
		return nil, err
	}
	return []string{
		"WQ-Linear", f1(s.Meter.Overall()), "-", "-",
		fmt.Sprint(e.Reconfigurations()), fmt.Sprint(e.Resizes()), fmt.Sprint(e.Suspensions()),
	}, nil
}

package harness

import (
	"strconv"
	"strings"
	"testing"
)

// parseF parses a formatted cell back to float.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig2aShape(t *testing.T) {
	tab := Fig2a(0.3)
	if len(tab.Rows) != 10 || len(tab.Header) != 6 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Header))
	}
	// At every load, exec time falls monotonically from inner=1 to inner=8.
	for _, row := range tab.Rows {
		e1 := parseF(t, row[1])
		e8 := parseF(t, row[4])
		if e8 >= e1 {
			t.Fatalf("load %s: exec(inner=8)=%s >= exec(inner=1)=%s", row[0], row[4], row[1])
		}
		ratio := e1 / e8
		if ratio < 5.5 || ratio > 7.0 {
			t.Fatalf("load %s: speedup %.2f, want ≈6.3", row[0], ratio)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	tab := Fig2b(0.3)
	last := tab.Rows[len(tab.Rows)-1] // load 1.0
	t1 := parseF(t, last[1])
	t8 := parseF(t, last[4])
	if t8 >= t1 {
		t.Fatalf("at load 1.0, inner=8 throughput %s must trail inner=1 %s", last[4], last[1])
	}
}

func TestFig2cShape(t *testing.T) {
	// Paper scale: the par-static's instability at saturation needs the
	// full 500-task run to show in the mean.
	tab := Fig2c(1.0)
	for _, row := range tab.Rows {
		lf := parseF(t, row[0])
		seq := parseF(t, row[1])
		par := parseF(t, row[2])
		ora := parseF(t, row[3])
		// The oracle never loses badly to either static.
		if ora > 1.15*minF(seq, par) {
			t.Fatalf("load %.1f: oracle %v worse than best static %v", lf, ora, minF(seq, par))
		}
		// The statics cross over: par wins at 0.2, seq wins at 1.0.
		if lf < 0.25 && par >= seq {
			t.Fatalf("light load: par-static should win (%v vs %v)", par, seq)
		}
		if lf > 0.95 && seq >= par {
			t.Fatalf("heavy load: seq-static should win (%v vs %v)", seq, par)
		}
	}
}

func TestFig11AllApps(t *testing.T) {
	// Paper scale: short runs mask the par-static's instability at heavy
	// load and make the statics look unrealistically good.
	for _, app := range []string{"x264", "swaptions", "bzip", "gimp"} {
		tab := Fig11(app, 1.0)
		if len(tab.Rows) != 10 {
			t.Fatalf("%s: rows = %d", app, len(tab.Rows))
		}
		// The adaptive mechanisms stay in the envelope of the statics at
		// the extremes: near the best static at light and heavy load.
		first := tab.Rows[0]
		lastRow := tab.Rows[len(tab.Rows)-2] // load 0.9; 1.0 is noisy
		for _, row := range [][]string{first, lastRow} {
			seq := parseF(t, row[1])
			par := parseF(t, row[2])
			wqth := parseF(t, row[3])
			wql := parseF(t, row[4])
			best := minF(seq, par)
			if wqth > 2.2*best || wql > 2.2*best {
				t.Fatalf("%s load %s: adaptive (%v, %v) far from best static %v",
					app, row[0], wqth, wql, best)
			}
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12(0.25)
	// At moderate-to-heavy load DoPE must beat the even static clearly.
	for _, row := range tab.Rows[4:8] { // loads 0.5-0.8
		even := parseF(t, row[1])
		dope := parseF(t, row[3])
		if dope >= even {
			t.Fatalf("load %s: DoPE %v should beat even static %v", row[0], dope, even)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13(0.25)
	if len(tab.Rows) < 5 {
		t.Fatalf("too few samples: %d", len(tab.Rows))
	}
	first := parseF(t, tab.Rows[0][1])
	peak := 0.0
	for _, row := range tab.Rows {
		if v := parseF(t, row[1]); v > peak {
			peak = v
		}
	}
	if peak < 2*first {
		t.Fatalf("no search-then-stabilize shape: first %v peak %v", first, peak)
	}
}

func TestFig14Shape(t *testing.T) {
	tab := Fig14(0.25)
	if len(tab.Rows) < 5 {
		t.Fatalf("too few samples: %d", len(tab.Rows))
	}
	// Late samples respect the budget (within a small transient band).
	n := len(tab.Rows)
	over := 0
	for _, row := range tab.Rows[n/2:] {
		if parseF(t, row[1]) > 720*1.06 {
			over++
		}
	}
	if over > n/4 {
		t.Fatalf("power cap persistently violated (%d late samples)", over)
	}
}

func TestTable3CountsAllMechanisms(t *testing.T) {
	tab := Table3()
	want := map[string]bool{"wqth": true, "wqlinear": true, "tbf": true,
		"fdp": true, "seda": true, "tpc": true, "proportional": true, "loadprop": true}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
		if parseF(t, row[1]) <= 0 {
			t.Fatalf("mechanism %s has no lines", row[0])
		}
	}
	for name := range want {
		if !seen[name] {
			t.Fatalf("mechanism %s missing from table3", name)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tab := Table4()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 applications", len(tab.Rows))
	}
	levels := map[string]string{
		"x264": "2", "swaptions": "2", "bzip": "2", "gimp": "2",
		"ferret": "1", "dedup": "1",
	}
	for _, row := range tab.Rows {
		if want := levels[row[0]]; want != row[2] {
			t.Fatalf("%s nesting levels = %s, want %s", row[0], row[2], want)
		}
		if row[0] == "bzip" && row[4] != "4" {
			t.Fatalf("bzip DoPmin = %s, want 4", row[4])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tab := Table5(0.3)
	vals := map[string][2]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = [2]float64{parseF(t, row[1]), parseF(t, row[2])}
	}
	if vals["Pthreads-Baseline"][0] != 1 || vals["Pthreads-Baseline"][1] != 1 {
		t.Fatal("baseline must be 1.0x")
	}
	if vals["Pthreads-OS"][0] <= 1.3 {
		t.Fatalf("ferret OS = %.2f, want ≈2.1x", vals["Pthreads-OS"][0])
	}
	if vals["Pthreads-OS"][1] >= 1.0 {
		t.Fatalf("dedup OS = %.2f, want <1 (paper 0.89x)", vals["Pthreads-OS"][1])
	}
	for _, other := range []string{"Pthreads-OS", "DoPE-SEDA", "DoPE-FDP", "DoPE-TB"} {
		if vals["DoPE-TBF"][0] < vals[other][0] {
			t.Fatalf("ferret TBF %.2f must top %s %.2f", vals["DoPE-TBF"][0], other, vals[other][0])
		}
	}
}

func TestRunDispatchAndPrint(t *testing.T) {
	tab, err := Run("table4", 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "ferret") || !strings.Contains(out, "== table4") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if _, err := Run("nope", 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if len(Experiments()) < 14 {
		t.Fatal("experiment catalog incomplete")
	}
}

func TestLiveFerretRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := LiveFerret()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	static := parseF(t, tab.Rows[0][1])
	tbf := parseF(t, tab.Rows[1][1])
	if static <= 0 || tbf <= 0 {
		t.Fatalf("throughputs: static=%v tbf=%v", static, tbf)
	}
}

func TestReconfigDipRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab, err := ReconfigDip()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows: arm, queries/s, dip q/s, settle ms, reconfigs, resizes, suspensions.
	inPlace, respawn, wql := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	// The forced toggles are deterministic: six SetConfigs per arm.
	if inPlace[4] != "6" || respawn[4] != "6" {
		t.Fatalf("forced arms should see 6 reconfigurations: %v / %v", inPlace, respawn)
	}
	// In-place arm must never suspend; every toggle lands as resizes.
	if inPlace[6] != "0" || inPlace[5] == "0" {
		t.Fatalf("in-place arm: want resizes>0 suspensions=0, got %v", inPlace)
	}
	// The respawn baseline pays a suspension per toggle and never resizes.
	if respawn[5] != "0" || respawn[6] == "0" {
		t.Fatalf("respawn arm: want resizes=0 suspensions>0, got %v", respawn)
	}
	// WQ-Linear only issues root extent changes: suspensions stay flat.
	if wql[6] != "0" {
		t.Fatalf("WQ-Linear arm suspended: %v", wql)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func TestExtLocalityShape(t *testing.T) {
	tab := ExtLocality(0.3)
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parseF(t, row[1])
	}
	scatter := vals["scatter (naive pool)"]
	cont := vals["contiguous (DoPE locality)"]
	none := vals["no-topology reference"]
	if cont <= scatter {
		t.Fatalf("locality-aware %v should beat scatter %v", cont, scatter)
	}
	if none < cont {
		t.Fatalf("no-topology reference %v should upper-bound contiguous %v", none, cont)
	}
}

func TestExtEDPShape(t *testing.T) {
	tab := ExtEDP(0.3)
	edp := map[string]float64{}
	for _, row := range tab.Rows {
		edp[row[0]] = parseF(t, row[3])
	}
	if edp["DoPE-EDP"] >= edp["all-ones static"] {
		t.Fatalf("EDP %v should beat the all-ones operating point %v",
			edp["DoPE-EDP"], edp["all-ones static"])
	}
	if edp["DoPE-EDP"] > edp["DoPE-TB (max throughput)"]*1.1 {
		t.Fatalf("EDP %v should not lose badly to pure throughput %v on its own objective",
			edp["DoPE-EDP"], edp["DoPE-TB (max throughput)"])
	}
}

func TestSummaryAllClaimsHold(t *testing.T) {
	tab := Summary(1.0)
	if len(tab.Rows) < 7 {
		t.Fatalf("summary rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "ok" {
			t.Errorf("claim %q: measured %q, verdict %s", row[0], row[2], row[3])
		}
	}
}

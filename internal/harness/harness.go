// Package harness regenerates every table and figure of the paper's
// evaluation (§8). Each experiment returns a Table whose rows/series mirror
// what the paper plots; the cmd/dope-bench binary prints them and the
// repository's benchmark suite (bench_test.go) wraps them in testing.B
// targets.
//
// Quantitative sweeps run on the discrete-event simulator (package sim) so
// they are deterministic and fast; the "live-*" experiments exercise the
// same applications on the real runtime (packages core + apps) at reduced
// scale.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid with notes.
type Table struct {
	// ID is the experiment identifier ("fig2a", "table5", ...).
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes carry expectations from the paper for eyeball comparison.
	Notes []string
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// f3 formats a float with three significant decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// fx formats a ratio as "N.NNx".
func fx(v float64) string { return fmt.Sprintf("%.2fx", v) }

// ms formats seconds as milliseconds.
func ms(v float64) string { return fmt.Sprintf("%.1f", v*1000) }

// loads is the standard load-factor sweep of the paper's figures.
func loads() []float64 {
	out := make([]float64, 0, 10)
	for lf := 0.1; lf <= 1.0+1e-9; lf += 0.1 {
		out = append(out, lf)
	}
	return out
}

// Experiments lists every available experiment id with a description.
func Experiments() [][2]string {
	return [][2]string{
		{"summary", "all headline claims, paper vs measured, in one table"},
		{"fig2a", "transcode execution time vs load per inner DoP"},
		{"fig2b", "transcode throughput vs load per inner DoP"},
		{"fig2c", "transcode response time: statics vs oracle"},
		{"fig11a", "x264 response time vs load: statics, WQT-H, WQ-Linear"},
		{"fig11b", "swaptions response time vs load"},
		{"fig11c", "bzip response time vs load"},
		{"fig11d", "gimp response time vs load"},
		{"fig12", "ferret response time vs load: statics vs DoPE"},
		{"fig13", "ferret throughput vs time under TBF"},
		{"fig14", "ferret power & throughput vs time under TPC"},
		{"table3", "mechanism implementation sizes (lines of code)"},
		{"ext-locality", "EXTENSION: task placement vs communication locality"},
		{"ext-edp", "EXTENSION: the min energy-delay-product goal"},
		{"ext-whatif", "EXTENSION: ferret what-if profile (causal virtual speedups)"},
		{"ext-whatif-gradient", "EXTENSION: what-if Gradient vs statics and §7 mechanisms"},
		{"tenants", "EXTENSION: multi-tenant isolation — misbehaver at 2x overload + 1% panics, arbitrated vs free-for-all"},
		{"table4", "application port summary"},
		{"table5", "ferret/dedup throughput by mechanism (Figure 15)"},
		{"reconfig-dip", "real-runtime reconfiguration cost: in-place resize vs whole-nest respawn"},
		{"faults", "real-runtime throughput under injected panics, by failure policy"},
		{"stalls", "real-runtime stall tolerance (task deadlines) and overload protection (load shedding)"},
		{"live-transcode", "real-runtime transcode server under WQ-Linear"},
		{"live-ferret", "real-runtime ferret batch under TBF"},
		{"live-power", "real-runtime ferret under TPC with a watt budget"},
		{"live-goals", "real-runtime ferret: three goals switched at run time"},
	}
}

// Run dispatches an experiment by id with the given scale factor
// (1.0 = paper scale for simulated experiments; live experiments are always
// reduced).
func Run(id string, scale float64) (*Table, error) {
	if scale <= 0 {
		scale = 1
	}
	switch id {
	case "summary":
		return Summary(scale), nil
	case "fig2a":
		return Fig2a(scale), nil
	case "fig2b":
		return Fig2b(scale), nil
	case "fig2c":
		return Fig2c(scale), nil
	case "fig11a":
		return Fig11("x264", scale), nil
	case "fig11b":
		return Fig11("swaptions", scale), nil
	case "fig11c":
		return Fig11("bzip", scale), nil
	case "fig11d":
		return Fig11("gimp", scale), nil
	case "fig12":
		return Fig12(scale), nil
	case "fig13":
		return Fig13(scale), nil
	case "fig14":
		return Fig14(scale), nil
	case "table3":
		return Table3(), nil
	case "ext-locality":
		return ExtLocality(scale), nil
	case "ext-edp":
		return ExtEDP(scale), nil
	case "ext-whatif":
		return ExtWhatIfProfile(scale), nil
	case "ext-whatif-gradient":
		return ExtWhatIfGradient(scale), nil
	case "tenants":
		return Tenants(scale), nil
	case "table4":
		return Table4(), nil
	case "table5":
		return Table5(scale), nil
	case "reconfig-dip":
		return ReconfigDip()
	case "faults":
		return Faults()
	case "stalls":
		return Stalls()
	case "live-transcode":
		return LiveTranscode()
	case "live-ferret":
		return LiveFerret()
	case "live-power":
		return LivePower()
	case "live-goals":
		return LiveGoals()
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (see Experiments())", id)
	}
}

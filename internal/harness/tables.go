package harness

import (
	"fmt"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/mechanism"
)

// Table3 reproduces the paper's Table 3: lines of code per mechanism. The
// paper measured its C++ implementations (WQT-H 28, WQ-Linear 9, TBF 89,
// FDP 94, SEDA 30, TPC 154); this table measures ours, source-embedded so
// the count is always current.
func Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Lines of code to implement tested mechanisms",
		Header: []string{"mechanism", "LoC (this repo)", "LoC (paper)"},
		Notes: []string{
			"Go counts include doc comments; the separation of concerns holds either way: mechanisms are small, local, and app-agnostic",
		},
	}
	paper := map[string]string{
		"wqth":         "28",
		"wqlinear":     "9",
		"tbf":          "89",
		"fdp":          "94",
		"seda":         "30",
		"tpc":          "154",
		"proportional": "- (Figure 10 sketch)",
		"loadprop":     "- (Figure 12 policy)",
		"edp":          "- (S4 example goal)",
	}
	loc := mechanism.LinesOfCode()
	for _, name := range mechanism.MechanismNames() {
		ref := paper[name]
		if ref == "" {
			ref = "-"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(loc[name]), ref})
	}
	return t
}

// Table4 reproduces the paper's Table 4: the applications ported to DoPE,
// their loop-nesting structure, and the minimum inner DoP for speedup —
// derived from the live application specs so the table cannot drift from
// the code.
func Table4() *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Applications enhanced using DoPE",
		Header: []string{"application", "description", "nesting levels", "alternatives", "inner DoPmin"},
		Notes: []string{
			"paper Table 4: x264/swaptions/bzip/gimp have 2 nesting levels; ferret/dedup have 1; bzip's DoPmin is 4",
		},
	}
	type entry struct {
		spec *core.NestSpec
		desc string
	}
	srv := func() *apps.Server { return apps.NewServer(nil) }
	rows := []entry{
		{apps.NewTranscode(srv(), apps.TranscodeParams{}), "transcoding of videos (x264 shape)"},
		{apps.NewSwaptions(srv(), apps.SwaptionsParams{}), "option pricing via Monte Carlo (swaptions shape)"},
		{apps.NewCompress(srv(), apps.CompressParams{}), "block data compression (bzip shape)"},
		{apps.NewOilify(srv(), apps.OilifyParams{}), "image editing, oilify plugin (gimp shape)"},
		{apps.NewFerret(srv(), apps.FerretParams{}), "content-based image search (ferret shape)"},
		{apps.NewDedup(srv(), apps.DedupParams{}), "data-stream deduplication (dedup shape)"},
	}
	for _, r := range rows {
		levels := nestingLevels(r.spec)
		alts := altSummary(r.spec)
		t.Rows = append(t.Rows, []string{
			r.spec.Name, r.desc, fmt.Sprint(levels), alts, fmt.Sprint(minDoP(r.spec)),
		})
	}
	return t
}

// nestingLevels counts exposed loop-nesting levels in a spec tree.
func nestingLevels(spec *core.NestSpec) int {
	deepest := 1
	for _, alt := range spec.Alts {
		for i := range alt.Stages {
			if n := alt.Stages[i].Nest; n != nil {
				if d := 1 + nestingLevels(n); d > deepest {
					deepest = d
				}
			}
		}
	}
	return deepest
}

// altSummary renders the alternative names of the deepest nest.
func altSummary(spec *core.NestSpec) string {
	target := spec
	for _, alt := range spec.Alts {
		for i := range alt.Stages {
			if n := alt.Stages[i].Nest; n != nil {
				target = n
			}
		}
	}
	s := ""
	for i, alt := range target.Alts {
		if i > 0 {
			s += "|"
		}
		s += alt.Name
	}
	return s
}

// minDoP returns the largest declared MinDoP anywhere in the tree (the
// paper reports it for the inner loop; stages default to 1).
func minDoP(spec *core.NestSpec) int {
	m := 1
	for _, alt := range spec.Alts {
		for i := range alt.Stages {
			if alt.Stages[i].MinDoP > m {
				m = alt.Stages[i].MinDoP
			}
			if n := alt.Stages[i].Nest; n != nil {
				if d := minDoP(n); d > m {
					m = d
				}
			}
		}
	}
	return m
}

package harness

import (
	"strings"
	"testing"
)

// TestFaultsAcceptance is the PR's acceptance check: under 1% injected
// panics, FailRestart and FailDegrade keep throughput within 2x of the
// fault-free baseline while FailStop terminates the run.
func TestFaultsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("live-runtime experiment")
	}
	tab, err := Faults()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	byArm := make(map[string][]string, len(tab.Rows))
	for _, row := range tab.Rows {
		byArm[row[0]] = row
	}
	base := parseF(t, byArm["baseline"][1])
	if base <= 0 {
		t.Fatalf("baseline throughput %v", base)
	}
	for _, arm := range []string{"fail-restart", "fail-degrade"} {
		row := byArm[arm]
		if row == nil {
			t.Fatalf("arm %q missing", arm)
		}
		if row[6] != "completed" {
			t.Fatalf("%s outcome = %q, want completed", arm, row[6])
		}
		if got := parseF(t, row[1]); got < base/2 {
			t.Fatalf("%s throughput %.1f below half of baseline %.1f", arm, got, base)
		}
		if inj := parseF(t, row[3]); inj == 0 {
			t.Fatalf("%s saw no injected faults", arm)
		}
		if row[3] != row[4] {
			t.Fatalf("%s absorbed %s of %s injected faults", arm, row[4], row[3])
		}
	}
	stop := byArm["fail-stop"]
	if stop == nil || !strings.HasPrefix(stop[6], "terminated") {
		t.Fatalf("fail-stop outcome = %v, want terminated", stop)
	}
	if deg := parseF(t, byArm["fail-degrade"][5]); deg == 0 {
		t.Fatal("fail-degrade retired no slots")
	}
}

package harness

import (
	"strings"
	"testing"
)

// TestStallsAcceptance is the PR's acceptance check for stall tolerance and
// overload protection:
//
//   - fail-stop surfaces an injected stall as a run error carrying a
//     goroutine dump, detected within 2x the stage deadline;
//   - fail-restart and fail-degrade absorb every injected stall and finish
//     the batch within 2x of the stall-free baseline;
//   - shed-newest keeps p99 sojourn bounded at 2x overload while block's
//     p99 grows with the backlog.
func TestStallsAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("live-runtime experiment")
	}
	tab, raw, err := stallsRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}

	base := raw.arms["stall-free"]
	if base == nil || base.rate <= 0 {
		t.Fatalf("stall-free baseline missing or rateless: %+v", base)
	}

	stop := raw.arms["fail-stop"]
	if stop == nil || !strings.HasPrefix(stop.outcome, "terminated") {
		t.Fatalf("fail-stop outcome = %+v, want terminated", stop)
	}
	if stop.runErr == nil {
		t.Fatal("fail-stop recorded no run error")
	}
	msg := stop.runErr.Error()
	if !strings.Contains(msg, "stalled") || !strings.Contains(msg, "deadline") {
		t.Fatalf("fail-stop error lacks stall attribution: %.200s", msg)
	}
	if !strings.Contains(msg, "goroutine ") {
		t.Fatalf("fail-stop error lacks a goroutine dump: %.200s", msg)
	}
	if stop.stalls == 0 {
		t.Fatal("fail-stop arm observed no stalls")
	}
	if stop.maxDetect <= 0 || stop.maxDetect > 2*raw.deadline {
		t.Fatalf("stall detected at age %v, want within (0, %v]", stop.maxDetect, 2*raw.deadline)
	}

	for _, arm := range []string{"fail-restart", "fail-degrade"} {
		res := raw.arms[arm]
		if res == nil {
			t.Fatalf("arm %q missing", arm)
		}
		if res.outcome != "completed" {
			t.Fatalf("%s outcome = %q, want completed", arm, res.outcome)
		}
		if res.completed != stallReqs {
			t.Fatalf("%s completed %d of %d requests", arm, res.completed, stallReqs)
		}
		if res.stalls == 0 {
			t.Fatalf("%s absorbed no stalls", arm)
		}
		if res.maxDetect > 2*raw.deadline {
			t.Fatalf("%s detected a stall at age %v, want within %v", arm, res.maxDetect, 2*raw.deadline)
		}
		if res.rate < base.rate/2 {
			t.Fatalf("%s throughput %.1f below half of baseline %.1f", arm, res.rate, base.rate)
		}
	}

	block, shedNew, shedOld := raw.arms["block"], raw.arms["shed-newest"], raw.arms["shed-oldest"]
	for name, res := range map[string]*stallsResult{"block": block, "shed-newest": shedNew, "shed-oldest": shedOld} {
		if res == nil || res.outcome != "completed" {
			t.Fatalf("overload arm %q missing or failed: %+v", name, res)
		}
	}
	if block.shed != 0 {
		t.Fatalf("block arm shed %d items", block.shed)
	}
	if block.completed != overItems {
		t.Fatalf("block completed %d of %d items", block.completed, overItems)
	}
	for _, res := range []*stallsResult{shedNew, shedOld} {
		if res.shed == 0 {
			t.Fatalf("%s shed nothing under 2x overload", res.name)
		}
		if res.completed+res.shed != overItems {
			t.Fatalf("%s completed %d + shed %d != offered %d", res.name, res.completed, res.shed, overItems)
		}
		if res.reportShed != res.queueShed {
			t.Fatalf("%s StageReport.Shed = %d, queue counted %d", res.name, res.reportShed, res.queueShed)
		}
		if res.shedEvents == 0 {
			t.Fatalf("%s emitted no EventShed", res.name)
		}
		if res.p99*2 >= block.p99 {
			t.Fatalf("%s p99 %.1fms not bounded vs block's %.1fms", res.name, res.p99*1000, block.p99*1000)
		}
	}
}

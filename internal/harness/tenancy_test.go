package harness

import "testing"

// TestTenantsIsolationAcceptance is the PR's acceptance check for the
// multi-tenant isolation experiment: with tenant A offered 2x the machine's
// capacity and 1% of its jobs panicking, arbitration holds tenants B and C
// within 1.2x of their solo p99 baselines, while the free-for-all baseline
// demonstrably does not. The simulator is deterministic, so these are exact
// replays, not timing-sensitive measurements.
func TestTenantsIsolationAcceptance(t *testing.T) {
	tab, raw := tenantsRun(1)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 arms x 3 tenants)", len(tab.Rows))
	}

	// The isolation bound: B and C within 1.2x of solo under arbitration.
	for _, name := range []string{"B", "C"} {
		solo, ok := raw.solo[name]
		if !ok || solo.P99 <= 0 {
			t.Fatalf("tenant %s solo baseline missing: %+v", name, solo)
		}
		if r := raw.ratio(raw.arbitrated, name); r <= 0 || r > 1.2 {
			t.Fatalf("tenant %s arbitrated p99 ratio = %.2fx, want (0, 1.2]", name, r)
		}
		// The free-for-all shows why arbitration matters: the same
		// streams blow past the bound when A can hog the bare pool.
		if r := raw.ratio(raw.freeForAll, name); r <= 1.2 {
			t.Fatalf("tenant %s free-for-all p99 ratio = %.2fx, want > 1.2 (figure would be vacuous)", name, r)
		}
	}

	// The misbehaver pays its own bill: its bounded queue sheds the 2x
	// excess and its panics are contained as retries.
	var arbA *[3]int
	for _, res := range raw.arbitrated {
		if res.Name == "A" {
			arbA = &[3]int{res.Completed, res.Shed, res.Panics}
		}
		// Conservation per tenant: every arrival completes or is shed.
		if res.Completed+res.Shed != tenantsTasks {
			t.Fatalf("tenant %s: completed %d + shed %d != %d arrivals",
				res.Name, res.Completed, res.Shed, tenantsTasks)
		}
		if res.Name != "A" && res.Shed != 0 {
			t.Fatalf("well-behaved tenant %s shed %d items", res.Name, res.Shed)
		}
	}
	if arbA == nil {
		t.Fatal("tenant A missing from the arbitrated arm")
	}
	if arbA[1] == 0 {
		t.Fatal("tenant A shed nothing at 2x overload")
	}
	if arbA[2] == 0 {
		t.Fatal("tenant A recorded no panics at 1% injection")
	}
}

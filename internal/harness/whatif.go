package harness

import (
	"fmt"

	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/sim"
)

// The experiments in this file evaluate the causal what-if profiler
// (internal/monitor's WhatIf) and the Gradient mechanism built on it:
// TASKPROF-style virtual speedups answering "which stage is worth the next
// hardware context", derived online from the same Begin/End windows, rates
// and queue sojourns the paper's mechanisms consume.

// reportProbe is a mechanism that records the latest observation snapshot
// and never reconfigures, so an experiment can profile a static run.
type reportProbe struct{ last *core.Report }

func (p *reportProbe) Name() string                            { return "probe" }
func (p *reportProbe) Reconfigure(r *core.Report) *core.Config { p.last = r; return nil }

// ExtWhatIfProfile runs ferret under the paper's even static thread
// distribution and prints the what-if profile: per-stage demand,
// utilization, and the predicted throughput payoff of one more context
// (or of a 10% service-time optimization). The profile must finger the rank
// stage — the paper's Figure 12 starvation — without any experiment.
func ExtWhatIfProfile(scale float64) *Table {
	model := sim.Ferret()
	even := []int{1, 5, 5, 5, 6, 1}
	probe := &reportProbe{}
	sim.RunPipeline(model, sim.PipelineConfig{
		Tasks: tasksAt(scale, 2000), LoadFactor: 0.5, Seed: 1,
		ControlEvery: 0.02, Mechanism: probe, Extents: even,
	})
	t := &Table{
		ID:     "ext-whatif",
		Title:  "EXTENSION: ferret what-if profile at the even static distribution <1,5,5,5,6,1>",
		Header: []string{"stage", "extent", "demand (ms)", "util", "payoff/+1 ctx (q/s)", "payoff/-10% svc (q/s)"},
		Notes: []string{
			"virtual speedups from the balanced queueing bounds X(N) = min(N/ΣD, 1/max D), D_i = s_i/c_i",
			"the profile ranks rank first: the even distribution starves it (Figure 12) — no experiment needed",
		},
	}
	if probe.last == nil {
		t.Notes = append(t.Notes, "control loop never ticked")
		return t
	}
	rep := probe.last.WhatIf()
	if !rep.Valid {
		t.Notes = append(t.Notes, "profile invalid: "+rep.Reason)
		return t
	}
	for _, st := range rep.Stages {
		name := st.Name
		if st.Bottleneck {
			name += " *"
		}
		var extent int
		if s := probe.last.Root.Stage(st.Name); s != nil {
			extent = s.Extent
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", extent), f3(st.Demand * 1e3), f3(st.Utilization),
			f1(st.PayoffDoP), f1(st.PayoffService),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"model throughput %.1f q/s at population %.1f; * = bottleneck (max demand)",
		rep.Throughput, rep.Population))
	return t
}

// ExtWhatIfGradient compares the Gradient mechanism — single-context moves
// scored by the what-if model — against the even static distribution, the
// work-queue mechanisms (static on flat pipelines), and the paper's
// throughput mechanisms on the ferret batch run.
func ExtWhatIfGradient(scale float64) *Table {
	model := sim.Ferret()
	ones := []int{1, 1, 1, 1, 1, 1}
	even := []int{1, 5, 5, 5, 6, 1}
	tasks := tasksAt(scale, 3000)
	t := &Table{
		ID:     "ext-whatif-gradient",
		Title:  "EXTENSION: ferret batch throughput, what-if Gradient vs statics and §7 mechanisms",
		Header: []string{"mechanism", "start", "steady (q/s)", "vs even static", "reconfigs"},
		Notes: []string{
			"Gradient moves one context per decision toward the largest model-predicted gain (min 1%, cooldown 2 ticks)",
			"WQT-H and WQ-Linear own server-shaped apps; on a flat pipeline they hold their starting configuration",
		},
	}
	run := func(name, start string, mech core.Mechanism, extents []int) float64 {
		res := sim.RunPipeline(model, sim.PipelineConfig{
			Tasks: tasks, ControlEvery: 0.02, Mechanism: mech, Extents: extents,
		})
		t.Rows = append(t.Rows, []string{name, start, f1(res.SteadyThroughput), "", fmt.Sprintf("%d", res.Reconfigurations)})
		return res.SteadyThroughput
	}
	base := run("even static", "<1,5,5,5,6,1>", nil, even)
	run("WQT-H", "<1,5,5,5,6,1>", &mechanism.WQTH{Threads: 24, Mmax: 8, Threshold: 6}, even)
	run("WQ-Linear", "<1,5,5,5,6,1>", &mechanism.WQLinear{Threads: 24, Mmax: 8, Mmin: 1, Qmax: 14}, even)
	run("Gradient (what-if)", "all ones", &mechanism.Gradient{Threads: 24}, ones)
	run("DoPE-TB", "all ones", &mechanism.TBF{Threads: 24, DisableFusion: true}, ones)
	run("DoPE-TBF", "all ones", &mechanism.TBF{Threads: 24}, ones)
	for _, row := range t.Rows {
		v := 0.0
		fmt.Sscanf(row[2], "%f", &v)
		row[3] = fx(v / base)
	}
	return t
}

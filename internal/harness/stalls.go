package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/faults"
	"dope/internal/queue"
	"dope/internal/stats"
)

// Stall-arm tuning. The deadline must comfortably exceed one healthy
// iteration's CPU section (so loaded CI machines do not trip spurious
// stalls) while keeping the detection bound — deadline + patrol interval —
// under the 2x-deadline claim the acceptance test checks.
const (
	stallDeadline = 60 * time.Millisecond
	stallRate     = 0.005 // injected stalls per stage call
	stallReqs     = 240
)

// Overload-arm tuning: a single PAR stage served from a bounded queue, with
// requests offered at 2x the stage's service rate in bursts (bursts rather
// than per-item pacing so sleep-granularity jitter cannot erase the
// overload).
const (
	overItems = 240
	overCap   = 8
	overBurst = 8
	overSlots = 4
	overUnits = 2000 // virtual-work units per item (2ms at UnitDuration)
)

// overPoll is how often blocked overload-arm workers re-check for work and
// suspension (mirrors the apps package's queue poll).
const overPoll = 200 * time.Microsecond

// Stalls regenerates the stall-tolerance and overload-protection table: the
// same ferret batch under deterministic injected stalls for each failure
// policy, then a bounded-queue server at 2x overload for each queue
// OverloadPolicy.
func Stalls() (*Table, error) {
	t, _, err := stallsRun()
	return t, err
}

// stallsRaw carries the unformatted per-arm results so the acceptance test
// and benchmark can assert on more than the table's strings.
type stallsRaw struct {
	deadline time.Duration
	arms     map[string]*stallsResult
}

func stallsRun() (*Table, *stallsRaw, error) {
	t := &Table{
		ID:     "stalls",
		Title:  "REAL RUNTIME: stall tolerance and overload protection",
		Header: []string{"arm", "completed", "rate/s", "vs base", "stalls", "shed", "p99 ms", "outcome"},
		Notes: []string{
			fmt.Sprintf("stall arms: ferret batch, %.1f%% of segment/extract/index/rank iterations wedge until abandoned; per-stage deadline %v", stallRate*100, stallDeadline),
			"fail-stop surfaces the stall as a run error with a goroutine dump within 2x the deadline; fail-restart and fail-degrade absorb every stall and finish within 2x of the stall-free baseline",
			fmt.Sprintf("overload arms: bounded queue (cap %d) offered 2x its service rate; block backpressures the producer so p99 sojourn grows with the backlog, shed-newest/shed-oldest drop items to keep p99 bounded", overCap),
		},
	}
	raw := &stallsRaw{deadline: stallDeadline, arms: map[string]*stallsResult{}}

	baseline, err := stallsArm("stall-free", 0, core.FailRestart)
	if err != nil {
		return nil, nil, err
	}
	raw.arms[baseline.name] = baseline
	t.Rows = append(t.Rows, baseline.row(baseline.rate))
	for _, arm := range []struct {
		name   string
		policy core.FailurePolicy
	}{
		{"fail-stop", core.FailStop},
		{"fail-restart", core.FailRestart},
		{"fail-degrade", core.FailDegrade},
	} {
		res, err := stallsArm(arm.name, stallRate, arm.policy)
		if err != nil {
			return nil, nil, err
		}
		raw.arms[res.name] = res
		t.Rows = append(t.Rows, res.row(baseline.rate))
	}
	for _, arm := range []struct {
		name   string
		policy queue.OverloadPolicy
	}{
		{"block", queue.Block},
		{"shed-oldest", queue.ShedOldest},
		{"shed-newest", queue.ShedNewest},
	} {
		res, err := overloadArm(arm.name, arm.policy)
		if err != nil {
			return nil, nil, err
		}
		raw.arms[res.name] = res
		t.Rows = append(t.Rows, res.row(0))
	}
	return t, raw, nil
}

type stallsResult struct {
	name      string
	completed uint64
	rate      float64 // completions/s overall
	stalls    uint64
	shed      uint64
	isShedArm bool
	p99       float64 // seconds
	outcome   string

	// raw material for the acceptance test and benchmark
	maxDetect  time.Duration // largest non-drain stall age at detection
	runErr     error
	queueShed  uint64 // the queue's own counter (overload arms)
	reportShed uint64 // StageReport.Shed for the same stage
	shedEvents uint64 // EventShed emissions observed via the trace
}

func (r *stallsResult) row(baseRate float64) []string {
	vs, shed := "-", "-"
	if baseRate > 0 && r.rate > 0 && r.name != "stall-free" && r.outcome == "completed" {
		vs = fx(r.rate / baseRate)
	}
	if r.isShedArm {
		shed = fmt.Sprint(r.shed)
	}
	return []string{
		r.name, fmt.Sprint(r.completed), f1(r.rate), vs,
		fmt.Sprint(r.stalls), shed, ms(r.p99), r.outcome,
	}
}

// stallsArm runs one ferret batch with deterministic stall injection on the
// victim stages under the given failure policy. The victim stages carry a
// per-invocation deadline, so the executive's watchdog — not the
// application — is what unwedges each stall.
func stallsArm(name string, rate float64, policy core.FailurePolicy) (*stallsResult, error) {
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 240})
	victim := make(map[string]bool, len(faultStages))
	for _, st := range faultStages {
		victim[st] = true
	}
	for i := range spec.Alts[0].Stages {
		st := &spec.Alts[0].Stages[i]
		if victim[st.Name] {
			st.OnFailure = policy
			st.FailureBudget = 50 // judge ~5 stalls against headroom, as in faultsArm
			st.Deadline = stallDeadline
		}
	}
	in := faults.New(rate, 7, faults.WithKind(faults.Stall))
	in.WrapNest(spec, faultStages...)

	var maxDetect atomic.Int64
	e, err := core.New(spec,
		core.WithContexts(liveContexts),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 6, 6, 6, 6, 1}}),
		core.WithRestartBackoff(200*time.Microsecond, 5*time.Millisecond),
		core.WithDrainTimeout(250*time.Millisecond),
		core.WithTrace(func(ev core.Event) {
			if ev.Kind == core.EventTaskStall && !ev.DuringDrain {
				for {
					cur := maxDetect.Load()
					if int64(ev.Stalled) <= cur || maxDetect.CompareAndSwap(cur, int64(ev.Stalled)) {
						break
					}
				}
			}
		}),
	)
	if err != nil {
		return nil, err
	}
	for i := 0; i < stallReqs; i++ {
		if err := s.Submit(1.0); err != nil {
			return nil, err
		}
	}
	s.Close()
	runErr := e.Run()

	res := &stallsResult{
		name:      name,
		completed: s.Meter.Total(),
		rate:      s.Meter.Overall(),
		stalls:    e.TaskStalls(),
		outcome:   "completed",
		maxDetect: time.Duration(maxDetect.Load()),
		runErr:    runErr,
	}
	if p99, err := s.Resp.Percentile(99); err == nil {
		res.p99 = p99
	}
	if runErr != nil {
		if policy == core.FailStop && rate > 0 && strings.Contains(runErr.Error(), "stalled") {
			res.outcome = fmt.Sprintf("terminated (%d/%d served)", s.Meter.Total(), stallReqs)
			return res, nil
		}
		return nil, fmt.Errorf("stalls arm %s: %w", name, runErr)
	}
	if rate > 0 && policy == core.FailStop {
		return nil, fmt.Errorf("stalls arm %s: expected the run to terminate at the first stall", name)
	}
	return res, nil
}

// overReq is one overload-arm request.
type overReq struct {
	arrived time.Time
}

// overloadArm offers overItems requests at 2x the stage's service rate into
// a bounded queue with the given overload policy and measures the sojourn
// (enqueue attempt to completion) distribution of the requests that
// complete. Under Block the producer is backpressured, so sojourn includes
// the growing backlog; under the shed policies occupancy is capped, so
// sojourn stays bounded and the drop counter pays for it.
func overloadArm(name string, policy queue.OverloadPolicy) (*stallsResult, error) {
	q := queue.NewWithPolicy[*overReq](overCap, policy)
	var mu sync.Mutex
	var sojourns []float64

	spec := &core.NestSpec{Name: "overload", Alts: []*core.AltSpec{{
		Name:   "serve",
		Stages: []core.StageSpec{{Name: "serve", Type: core.PAR}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					req, ok, err := q.DequeueWhile(
						func() bool { return !w.Suspending() }, overPoll)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					if w.Begin() == core.Suspended {
						return core.Suspended
					}
					apps.Work(overUnits)
					st := w.End()
					mu.Lock()
					sojourns = append(sojourns, time.Since(req.arrived).Seconds())
					mu.Unlock()
					return st
				},
				Load: func() float64 { return float64(q.Len()) },
				Shed: q.Shed,
			}}}, nil
		},
	}}}

	var shedEvents atomic.Uint64
	e, err := core.New(spec,
		core.WithContexts(overSlots),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{overSlots}}),
		core.WithTrace(func(ev core.Event) {
			if ev.Kind == core.EventShed {
				shedEvents.Add(1)
			}
		}),
	)
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	// 2x overload: each burst of overBurst items arrives in the time the
	// stage serves overBurst/2 of them. Arrivals are open-loop: each item
	// is stamped with its scheduled arrival time and the producer paces
	// against that absolute schedule, so when Block backpressures the
	// producer the lost time shows up in the late items' sojourns instead
	// of silently stretching the schedule (coordinated omission).
	burstEvery := time.Duration(overBurst/2) * time.Duration(overUnits) * apps.UnitDuration / overSlots
	start := time.Now()
	for i := 0; i < overItems; i++ {
		due := start.Add(time.Duration(i/overBurst) * burstEvery)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if err := q.Enqueue(&overReq{arrived: due}); err != nil && !errors.Is(err, queue.ErrShed) {
			return nil, fmt.Errorf("overload arm %s: %w", name, err)
		}
	}
	q.Close()
	runErr := e.Wait()
	wall := time.Since(start)

	res := &stallsResult{
		name:       name,
		completed:  uint64(len(sojourns)),
		shed:       q.Shed(),
		isShedArm:  true,
		outcome:    "completed",
		runErr:     runErr,
		queueShed:  q.Shed(),
		shedEvents: shedEvents.Load(),
	}
	if rep := e.Report().Nest("overload"); rep != nil {
		if sr := rep.Stage("serve"); sr != nil {
			res.reportShed = sr.Shed
		}
	}
	mu.Lock()
	if wall > 0 {
		res.rate = float64(len(sojourns)) / wall.Seconds()
	}
	if p99, err := stats.Percentile(sojourns, 99); err == nil {
		res.p99 = p99
	}
	mu.Unlock()
	if runErr != nil {
		return nil, fmt.Errorf("overload arm %s: %w", name, runErr)
	}
	return res, nil
}

package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID: "t", Title: "sample", Header: []string{"x", "a", "b"},
		Rows: [][]string{
			{"0.1", "1.0", "9.0"},
			{"0.5", "5.0", "5.0"},
			{"0.9", "9.0", "1.0"},
		},
		Notes: []string{"note"},
	}
}

func TestFprintCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0][1] != "a" || recs[3][2] != "1.0" {
		t.Fatalf("csv = %v", recs)
	}
}

func TestFprintJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().FprintJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID    string     `json:"id"`
		Rows  [][]string `json:"rows"`
		Notes []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "t" || len(got.Rows) != 3 || got.Notes[0] != "note" {
		t.Fatalf("json = %+v", got)
	}
}

func TestFprintPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().FprintPlot(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"*", "o", "x: 0.1 .. 0.9", "* = a", "o = b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// The two series cross: 'a' rises, 'b' falls; the top row must contain
	// one mark of each at opposite ends.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "o") || !strings.Contains(top, "*") {
		t.Fatalf("crossover not visible in top row: %q", top)
	}
}

func TestFprintPlotRejectsTiny(t *testing.T) {
	bad := &Table{ID: "x", Header: []string{"only"}, Rows: [][]string{{"1"}}}
	if err := bad.FprintPlot(&bytes.Buffer{}, 10); err == nil {
		t.Fatal("unplottable table accepted")
	}
	nonNumeric := &Table{ID: "y", Header: []string{"x", "s"},
		Rows: [][]string{{"a", "zzz"}, {"b", "qqq"}}}
	if err := nonNumeric.FprintPlot(&bytes.Buffer{}, 10); err == nil {
		t.Fatal("non-numeric table accepted")
	}
}

func TestFprintPlotHandlesRatioCells(t *testing.T) {
	tab := &Table{ID: "r", Title: "ratios", Header: []string{"row", "speedup"},
		Rows: [][]string{{"a", "1.00x"}, {"b", "2.44x"}}}
	var buf bytes.Buffer
	if err := tab.FprintPlot(&buf, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.4") {
		t.Fatalf("ratio axis missing:\n%s", buf.String())
	}
}

func TestFprintPlotFlatSeries(t *testing.T) {
	tab := &Table{ID: "f", Title: "flat", Header: []string{"x", "v"},
		Rows: [][]string{{"1", "5"}, {"2", "5"}}}
	if err := tab.FprintPlot(&bytes.Buffer{}, 6); err != nil {
		t.Fatal(err) // constant series must not divide by zero
	}
}

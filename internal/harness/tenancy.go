package harness

import (
	"fmt"

	"dope/internal/sim"
)

// Multi-tenant isolation sweep (simulator): three tenants with mixed goals
// share one 24-context machine. Tenant A is the injected misbehaver — a
// batch workload offered at 2x the capacity of its share, with 1% of its
// jobs panicking mid-service — while B (latency) and C (throughput) are
// offered steady load their guaranteed floors can absorb. Each arm replays
// identical arrival streams (same seeds), so the p99 ratios isolate the
// sharing regime itself.
const (
	tenantsCtx   = 24
	tenantsExec  = 0.02 // 20ms sequential jobs
	tenantsTasks = 400  // arrivals per tenant at scale 1
	tenantsSeed  = 11
)

// tenantClasses builds the three tenants. Floors: B 12, C 8, A 2 (surplus 2
// that work-conservation hands to whoever demands it — in practice A,
// which is always backlogged). A's offered rate is 2x what its ~4 granted
// contexts can serve; its bounded queue sheds the excess.
func tenantClasses() []sim.TenantClass {
	return []sim.TenantClass{
		{
			Name: "A", Goal: "batch (misbehaving)",
			Weight: 1, Min: 2,
			// 2x the whole machine's capacity: without quotas A can
			// saturate the pool on its own.
			Rate:      2 * tenantsCtx / tenantsExec,
			Exec:      tenantsExec,
			PanicRate: 0.01,
			QueueCap:  50,
		},
		{
			Name: "B", Goal: "latency",
			Weight: 2, Min: 12,
			Rate: 0.33 * 12 / tenantsExec, // comfortably inside the floor
			Exec: tenantsExec,
		},
		{
			Name: "C", Goal: "throughput",
			Weight: 1, Min: 8,
			Rate: 0.30 * 8 / tenantsExec,
			Exec: tenantsExec,
		},
	}
}

// Tenants regenerates the multi-tenant isolation figure.
func Tenants(scale float64) *Table {
	t, _ := tenantsRun(scale)
	return t
}

// tenantsRaw carries the unformatted per-arm results for the acceptance
// test: resAt(arm, name) and the solo p99 baselines.
type tenantsRaw struct {
	solo       map[string]sim.TenantResult
	freeForAll []sim.TenantResult
	arbitrated []sim.TenantResult
}

func (r *tenantsRaw) ratio(arm []sim.TenantResult, name string) float64 {
	base, ok := r.solo[name]
	if !ok || base.P99 <= 0 {
		return 0
	}
	for _, res := range arm {
		if res.Name == name {
			return res.P99 / base.P99
		}
	}
	return 0
}

func tenantsRun(scale float64) (*Table, *tenantsRaw) {
	tasks := int(float64(tenantsTasks) * scale)
	if tasks < 50 {
		tasks = 50
	}
	classes := tenantClasses()
	cfg := func(arbitrated bool, cls []sim.TenantClass) sim.TenantsConfig {
		return sim.TenantsConfig{
			Contexts:   tenantsCtx,
			Tasks:      tasks,
			Seed:       tenantsSeed,
			Arbitrated: arbitrated,
			Classes:    cls,
		}
	}
	raw := &tenantsRaw{solo: map[string]sim.TenantResult{}}
	// Solo baselines: each tenant alone on the machine, same arrival
	// stream. Seeds are per-class-index, so solo runs reuse index 0.
	for _, cl := range classes {
		res := sim.RunTenants(cfg(true, []sim.TenantClass{cl}))
		raw.solo[cl.Name] = res[0]
	}
	raw.freeForAll = sim.RunTenants(cfg(false, classes))
	raw.arbitrated = sim.RunTenants(cfg(true, classes))

	t := &Table{
		ID:     "tenants",
		Title:  "EXTENSION: multi-tenant isolation — arbitrated quotas vs free-for-all",
		Header: []string{"arm", "tenant", "goal", "quota", "completed", "shed", "panics", "p99 ms", "vs solo"},
		Notes: []string{
			fmt.Sprintf("3 tenants on %d shared contexts; A offered 2x the machine's capacity with 1%% mid-service panics (retried), B/C steady load under their floors", tenantsCtx),
			"identical arrival streams in every arm: the vs-solo column isolates the sharing regime",
			"claim: under arbitration B and C hold p99 within 1.2x of their solo baselines; in the free-for-all A's backlog drags both past it",
		},
	}
	addRows := func(arm string, results []sim.TenantResult) {
		for _, res := range results {
			vs := "-"
			if base, ok := raw.solo[res.Name]; ok && base.P99 > 0 && arm != "solo" {
				vs = fx(res.P99 / base.P99)
			}
			t.Rows = append(t.Rows, []string{
				arm, res.Name, res.Goal, f1(res.MeanQuota),
				fmt.Sprint(res.Completed), fmt.Sprint(res.Shed), fmt.Sprint(res.Panics),
				ms(res.P99), vs,
			})
		}
	}
	solos := make([]sim.TenantResult, 0, len(classes))
	for _, cl := range classes {
		solos = append(solos, raw.solo[cl.Name])
	}
	addRows("solo", solos)
	addRows("free-for-all", raw.freeForAll)
	addRows("arbitrated", raw.arbitrated)
	return t, raw
}

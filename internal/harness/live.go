package harness

import (
	"fmt"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/platform"
	"dope/internal/power"
	"dope/internal/workload"
)

// The live experiments run the actual DoPE executive (goroutines, queues,
// suspension protocol) over the synthetic applications, at a scale that
// finishes in seconds. Work is virtual (see apps.SetNativeWork): a task
// occupies one of the 24 simulated hardware contexts for its work's
// duration, so context-gated speedups are observable on any host.

// liveContexts is the platform size for live runs, matching the paper's
// machine.
const liveContexts = 24

// LiveTranscode drives the transcode server on the real runtime across
// three load levels under WQ-Linear and reports response times against the
// sequential-inner static.
func LiveTranscode() (*Table, error) {
	t := &Table{
		ID:     "live-transcode",
		Title:  "REAL RUNTIME: x264 server, WQ-Linear vs static seq-inner (reduced scale)",
		Header: []string{"load", "static ms", "WQ-Linear ms", "reconfigs"},
		Notes: []string{
			"live validation of the fig11 mechanism path: light load favors inner parallelism, heavy load favors sequential",
		},
	}
	// Work units sized so virtual-work wakeup latency (~1 ms on small
	// hosts) stays small relative to stage times.
	params := apps.TranscodeParams{Frames: 8, UnitsPerFrame: 2000}
	const nReq = 40
	// Calibrate max throughput empirically, the paper's N/T way: a batch
	// of sequential-inner transcodes on all contexts.
	maxTp, err := calibrateTranscode(params)
	if err != nil {
		return nil, err
	}

	for _, lf := range []float64{0.3, 0.9} {
		static, _, err := runLiveServer(func(s *apps.Server) *core.NestSpec {
			return apps.NewTranscode(s, params)
		}, nil, lf, maxTp, nReq, "video", 1)
		if err != nil {
			return nil, err
		}
		mech := &mechanism.WQLinear{Threads: liveContexts, Mmax: 8, Mmin: 1, Qmax: 10}
		dyn, reconfigs, err := runLiveServer(func(s *apps.Server) *core.NestSpec {
			return apps.NewTranscode(s, params)
		}, mech, lf, maxTp, nReq, "video", 8)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f1(lf), ms(static), ms(dyn), fmt.Sprint(reconfigs),
		})
	}
	return t, nil
}

// calibrateTranscode measures N/T with the static throughput-optimal
// configuration (fused sequential transcodes on every context).
func calibrateTranscode(params apps.TranscodeParams) (float64, error) {
	const n = 3 * liveContexts
	s := apps.NewServer(nil)
	spec := apps.NewTranscode(s, params)
	cfg := core.DefaultConfig(spec)
	cfg.Extents[0] = liveContexts
	cfg.Child("video").Alt = 1
	e, err := core.New(spec, core.WithContexts(liveContexts), core.WithInitialConfig(cfg))
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Run(); err != nil {
		return 0, err
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// runLiveServer runs one live server experiment and returns the mean
// response time in seconds and the number of reconfigurations.
func runLiveServer(build func(*apps.Server) *core.NestSpec, mech core.Mechanism,
	lf, maxTp float64, nReq int, innerName string, innerM int) (float64, uint64, error) {
	s := apps.NewServer(nil)
	spec := build(s)
	cfg := core.DefaultConfig(spec)
	if innerM <= 1 {
		cfg.Extents[0] = liveContexts
		if c := cfg.Child(innerName); c != nil {
			c.Alt = 1 // fused/sequential alternative
			c.Extents = []int{1}
		}
	} else {
		cfg.Extents[0] = maxInt(1, liveContexts/innerM)
		if c := cfg.Child(innerName); c != nil {
			c.Alt = 0
			// Let Normalize shape the extents; give the PAR stage the bulk.
			c.Extents = []int{1, innerM - 2, 1}
		}
	}
	opts := []core.Option{
		core.WithContexts(liveContexts),
		core.WithInitialConfig(cfg),
		core.WithControlInterval(5 * time.Millisecond),
	}
	if mech != nil {
		opts = append(opts, core.WithMechanism(mech))
	}
	e, err := core.New(spec, opts...)
	if err != nil {
		return 0, 0, err
	}
	if err := e.Start(); err != nil {
		return 0, 0, err
	}
	arr := workload.NewArrivals(workload.LoadFactor(lf).RateFor(maxTp), 23)
	for i := 0; i < nReq; i++ {
		time.Sleep(arr.Next())
		if err := s.Submit(1.0); err != nil {
			break
		}
	}
	s.Close()
	if err := e.Wait(); err != nil {
		return 0, 0, err
	}
	return s.Resp.MeanResponse(), e.Reconfigurations(), nil
}

// LiveFerret runs the ferret batch pipeline on the real runtime under TBF
// and reports throughput against the even static.
func LiveFerret() (*Table, error) {
	t := &Table{
		ID:     "live-ferret",
		Title:  "REAL RUNTIME: ferret batch, static even vs DoPE-TBF (reduced scale)",
		Header: []string{"approach", "queries/s", "final config"},
		Notes: []string{
			"live validation of the table5 path: TBF rebalances (or fuses) the skewed pipeline",
		},
	}
	const nReq = 200
	params := apps.FerretParams{UnitsBase: 120}

	runOne := func(mech core.Mechanism, extents []int) (float64, string, error) {
		s := apps.NewServer(nil)
		spec := apps.NewFerret(s, params)
		cfg := &core.Config{Alt: 0, Extents: extents}
		opts := []core.Option{
			core.WithContexts(liveContexts),
			core.WithInitialConfig(cfg),
			core.WithControlInterval(10 * time.Millisecond),
		}
		if mech != nil {
			opts = append(opts, core.WithMechanism(mech))
		}
		e, err := core.New(spec, opts...)
		if err != nil {
			return 0, "", err
		}
		for i := 0; i < nReq; i++ {
			s.Submit(1.0)
		}
		s.Close()
		if err := e.Run(); err != nil {
			return 0, "", err
		}
		return s.Meter.Overall(), e.CurrentConfig().String(), nil
	}

	even := []int{1, 5, 5, 5, 6, 1}
	tput, _, err := runOne(nil, even)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"static-even", f1(tput), fmt.Sprint(even)})

	tputTBF, final, err := runOne(&mechanism.TBF{Threads: liveContexts}, []int{1, 1, 1, 1, 1, 1})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"DoPE-TBF", f1(tputTBF), final})
	if tput > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("TBF/static = %.2fx", tputTBF/tput))
	}
	return t, nil
}

// LivePower runs ferret under TPC with a watt budget on the real runtime,
// with the power model + rate-limited PDU registered as a platform feature.
func LivePower() (*Table, error) {
	const nReq = 200
	budget := 0.9 * power.DefaultPeakWatts
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 120})
	e, err := core.New(spec,
		core.WithContexts(liveContexts),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}),
		core.WithControlInterval(20*time.Millisecond),
		core.WithMechanism(&mechanism.TPC{Threads: liveContexts, Budget: budget}),
	)
	if err != nil {
		return nil, err
	}
	// Register the power substrate: linear model over busy contexts read
	// through a fast PDU (the live run lasts ~seconds; the paper's
	// 13-samples/minute PDU would never refresh).
	model := power.NewDefaultModel(liveContexts)
	pdu := power.NewPDU(func() float64 {
		return model.Watts(e.Contexts().Busy())
	}, 50*time.Millisecond, e.Clock())
	e.Features().Register(platform.FeatureSystemPower, pdu.FeatureCB())

	if err := e.Start(); err != nil {
		return nil, err
	}
	for i := 0; i < nReq; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := e.Wait(); err != nil {
		return nil, err
	}
	finalPower, _ := e.Features().Value(platform.FeatureSystemPower)
	t := &Table{
		ID:     "live-power",
		Title:  fmt.Sprintf("REAL RUNTIME: ferret under TPC, budget %.0f W (reduced scale)", budget),
		Header: []string{"metric", "value"},
		Notes: []string{
			"live validation of the fig14 path: TPC ramps DoP and holds the watt budget",
		},
	}
	t.Rows = append(t.Rows, []string{"queries/s", f1(s.Meter.Overall())})
	t.Rows = append(t.Rows, []string{"final power (W)", f1(finalPower)})
	t.Rows = append(t.Rows, []string{"budget (W)", f1(budget)})
	t.Rows = append(t.Rows, []string{"reconfigurations", fmt.Sprint(e.Reconfigurations())})
	t.Rows = append(t.Rows, []string{"final config", e.CurrentConfig().String()})
	return t, nil
}

// LiveGoals reproduces the paper's headline demonstration for ferret
// (§8.2): "three different goals involving response time, throughput, and
// power were independently specified. DoPE automatically determined a
// stable and well performing parallelism configuration operating point in
// all cases." One live system serves three phases of queries while the
// administrator switches the goal between them at run time.
func LiveGoals() (*Table, error) {
	const perPhase = 150
	budget := 0.9 * power.DefaultPeakWatts
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 120})
	e, err := core.New(spec,
		core.WithContexts(liveContexts),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 2, 2, 2, 2, 1}}),
		core.WithControlInterval(10*time.Millisecond),
	)
	if err != nil {
		return nil, err
	}
	model := power.NewDefaultModel(liveContexts)
	pdu := power.NewPDU(func() float64 {
		return model.Watts(e.Contexts().Busy())
	}, 50*time.Millisecond, e.Clock())
	e.Features().Register(platform.FeatureSystemPower, pdu.FeatureCB())
	if err := e.Start(); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "live-goals",
		Title:  "REAL RUNTIME: one ferret instance, three goals switched at run time (§8.2)",
		Header: []string{"phase", "goal", "queries/s", "mean resp ms", "power W", "config at phase end"},
		Notes: []string{
			"paper: DoPE determined a stable, well-performing operating point for every goal on the same application",
		},
	}
	phases := []struct {
		name string
		mech core.Mechanism
	}{
		{"min-response", &mechanism.LoadProportional{Threads: liveContexts}},
		{"max-throughput", &mechanism.TBF{Threads: liveContexts}},
		{"max-throughput@720W", &mechanism.TPC{Threads: liveContexts, Budget: budget}},
	}
	for i, ph := range phases {
		e.SetMechanism(ph.mech)
		start := e.Clock().Now()
		startN := s.Meter.Total()
		for q := 0; q < perPhase; q++ {
			s.Submit(1.0)
			time.Sleep(800 * time.Microsecond) // moderate open-loop feed
		}
		// Let the phase drain before measuring it.
		for s.Meter.Total() < startN+perPhase {
			time.Sleep(2 * time.Millisecond)
		}
		elapsed := e.Clock().Since(start).Seconds()
		pw, _ := e.Features().Value(platform.FeatureSystemPower)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1), ph.name,
			f1(float64(perPhase) / elapsed),
			ms(s.Resp.MeanResponse()),
			f1(pw),
			e.CurrentConfig().String(),
		})
	}
	s.Close()
	if err := e.Wait(); err != nil {
		return nil, err
	}
	return t, nil
}

package harness

import (
	"fmt"
	"strings"
	"time"

	"dope/internal/apps"
	"dope/internal/core"
	"dope/internal/faults"
)

// faultStages are the injection victims: ferret's middle PAR stages. The
// SEQ head and tail run at extent 1, where FailDegrade has no slot to give
// up, so faulting them would only demonstrate escalation.
var faultStages = []string{"segment", "extract", "index", "rank"}

// Faults measures throughput under deterministic fault injection for each
// failure policy. The same ferret batch and the same injected-panic
// schedule (1% of stage iterations, fixed seed) run four times: fault-free
// baseline, FailStop, FailRestart, and FailDegrade. FailStop aborts the run
// at the first panic — today's behavior, now opt-out — while the other two
// policies absorb every fault and must stay within 2x of the fault-free
// throughput.
func Faults() (*Table, error) {
	t := &Table{
		ID:     "faults",
		Title:  "REAL RUNTIME: throughput under 1% injected panics, by failure policy",
		Header: []string{"arm", "queries/s", "vs baseline", "injected", "absorbed", "degrades", "outcome"},
		Notes: []string{
			"deterministic injector: 1% of segment/extract/index/rank iterations panic, same schedule in every arm",
			"fail-stop terminates at the first panic; fail-restart and fail-degrade finish the batch within 2x of the fault-free baseline",
			"degrades counts slots retired by fail-degrade (visible to mechanisms as in-place shrinks)",
		},
	}
	baseline, err := faultsArm("baseline", 0, core.FailStop)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, baseline.row(baseline.rate))
	for _, arm := range []struct {
		name   string
		policy core.FailurePolicy
	}{
		{"fail-stop", core.FailStop},
		{"fail-restart", core.FailRestart},
		{"fail-degrade", core.FailDegrade},
	} {
		res, err := faultsArm(arm.name, 0.01, arm.policy)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, res.row(baseline.rate))
	}
	return t, nil
}

type faultsResult struct {
	name     string
	rate     float64 // queries/s overall
	injected uint64
	absorbed uint64
	degrades uint64
	outcome  string
}

func (r *faultsResult) row(baseRate float64) []string {
	vs := "-"
	if baseRate > 0 && r.rate > 0 && r.name != "baseline" && r.outcome == "completed" {
		vs = fx(r.rate / baseRate)
	}
	return []string{
		r.name, f1(r.rate), vs,
		fmt.Sprint(r.injected), fmt.Sprint(r.absorbed), fmt.Sprint(r.degrades),
		r.outcome,
	}
}

// faultsArm runs one ferret batch with the given injection rate and failure
// policy on the victim stages.
func faultsArm(name string, rate float64, policy core.FailurePolicy) (*faultsResult, error) {
	const nReq = 240
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 120})
	victim := make(map[string]bool, len(faultStages))
	for _, st := range faultStages {
		victim[st] = true
	}
	for i := range spec.Alts[0].Stages {
		st := &spec.Alts[0].Stages[i]
		if victim[st.Name] {
			st.OnFailure = policy
			// The batch finishes in well under a second, so the default
			// budget of 8 per rolling second is what ~10 injected faults
			// are judged against; give the demo headroom so fail-restart
			// shows absorption, not escalation.
			st.FailureBudget = 50
		}
	}
	in := faults.New(rate, 7, faults.WithKind(faults.Panic))
	in.WrapNest(spec, faultStages...)

	e, err := core.New(spec,
		core.WithContexts(liveContexts),
		core.WithInitialConfig(&core.Config{Alt: 0, Extents: []int{1, 6, 6, 6, 6, 1}}),
		core.WithRestartBackoff(200*time.Microsecond, 5*time.Millisecond),
	)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nReq; i++ {
		s.Submit(1.0)
	}
	s.Close()
	runErr := e.Run()

	res := &faultsResult{
		name:     name,
		rate:     s.Meter.Overall(),
		injected: in.Injected(),
		absorbed: e.TaskFailures(),
		outcome:  "completed",
	}
	rep := e.Report().Nest(spec.Name)
	if rep != nil {
		for _, st := range faultStages {
			if sr := rep.Stage(st); sr != nil {
				res.degrades += sr.Retired
			}
		}
	}
	if policy != core.FailDegrade {
		res.degrades = 0 // retirements under restart/stop are drain artifacts
	}
	if runErr != nil {
		if policy == core.FailStop && rate > 0 && strings.Contains(runErr.Error(), "panicked") {
			res.outcome = fmt.Sprintf("terminated (%d/%d served)", s.Meter.Total(), nReq)
			return res, nil
		}
		return nil, fmt.Errorf("faults arm %s: %w", name, runErr)
	}
	if rate > 0 && policy == core.FailStop {
		return nil, fmt.Errorf("faults arm %s: expected the run to terminate at the first panic", name)
	}
	return res, nil
}

package core

import (
	"strings"
	"time"

	"dope/internal/monitor"
	"dope/internal/platform"
)

// StageReport is the monitored view of one stage, aggregated across all its
// instances (the paper's DoPE::getExecTime and DoPE::getLoad query results).
type StageReport struct {
	// Name, Type, MinDoP, MaxDoP echo the stage's spec.
	Name   string
	Type   TaskType
	MinDoP int
	MaxDoP int
	// HasNest reports whether the stage delegates to a nested loop.
	HasNest bool
	// Extent is the configured DoP extent.
	Extent int
	// ExecTime is the smoothed per-iteration CPU time in seconds.
	ExecTime float64
	// MeanExecTime is the lifetime mean per-iteration CPU time in seconds.
	MeanExecTime float64
	// Rate is the smoothed iteration completion rate (iterations/second,
	// summed over concurrent instances) — the throughput signal §7.2's
	// mechanisms balance.
	Rate float64
	// Load is the summed value of the stage's live LoadCBs (typically
	// total in-queue occupancy) and LoadInstances how many instances
	// reported.
	Load          float64
	LoadInstances int
	// Iterations and Completed count loop-body executions and finished
	// instances.
	Iterations uint64
	Completed  uint64
	// Workers is the live worker-slot gauge. During an in-place resize it
	// briefly diverges from Extent: retiring slots finish their current
	// iteration, fresh slots are still warming up. Mechanisms normalizing
	// Rate or Load per worker should divide by Workers, not Extent.
	Workers int
	// Spawned and Retired count worker slots ever started and slots that
	// exited because a shrink retired them; Resizes counts in-place extent
	// changes the stage has absorbed without suspending the nest.
	Spawned uint64
	Retired uint64
	Resizes uint64
	// Failures counts functor panics absorbed by the stage under any
	// failure policy; ConsecutiveFailures is the failure streak since the
	// stage last completed an iteration — a persistently failing stage
	// shows it climbing, so mechanisms can steer work away before the
	// budget escalates it to FailStop.
	Failures            uint64
	ConsecutiveFailures int
	// Stalls counts deadline overruns the watchdog detected for the stage;
	// StallsDuringDrain is the subset detected while the run was draining
	// for a reconfiguration or Stop. Zombies is the live gauge of abandoned
	// slots whose goroutines have not exited.
	Stalls            uint64
	StallsDuringDrain uint64
	Zombies           int
	// Shed counts items the stage's in-queue dropped under its overload
	// policy (cumulative across instances; see queue.OverloadPolicy).
	Shed uint64
	// QueueSojourn is the smoothed wait an item spends in the stage's
	// in-queue before this stage dequeues it, in seconds (mean over live
	// instances reporting a sojourn gauge; zero when none do). Shed items
	// are excluded — see queue.Queue.MeanSojourn.
	QueueSojourn float64
	// Observed reports that the stage has completed at least one iteration
	// since its stats were last reset, i.e. that ExecTime, MeanExecTime and
	// Rate reflect measurements rather than zero-valued defaults. The
	// what-if profiler refuses to extrapolate from unobserved stages.
	Observed bool
}

// NestReport is the monitored view of one nest under its current
// configuration.
type NestReport struct {
	// Name is the nest's own name; Path the slash-joined path from the root.
	Name string
	Path string
	// Spec is the nest's static description.
	Spec *NestSpec
	// AltIndex and AltName identify the configured alternative.
	AltIndex int
	AltName  string
	// Stages reports the stages of the configured alternative, in order.
	Stages []StageReport
	// Children holds reports for nested loops declared under the
	// configured alternative, keyed by nest name.
	Children map[string]*NestReport
}

// Stage returns the report for the named stage, or nil.
func (n *NestReport) Stage(name string) *StageReport {
	for i := range n.Stages {
		if n.Stages[i].Name == name {
			return &n.Stages[i]
		}
	}
	return nil
}

// Report is the complete observation snapshot handed to a mechanism on each
// control tick.
type Report struct {
	// Tenant is the executive's identity when several share a machine
	// (WithName); "" for a single-tenant process.
	Tenant string
	// Time is the executive uptime at snapshot.
	Time time.Duration
	// Contexts is the hardware-context budget; BusyContexts the current
	// occupancy and BlockedAcquires how many workers are waiting for a
	// context (persistent blocking signals oversubscription).
	Contexts        int
	BusyContexts    int
	BlockedAcquires int
	// Features exposes registered platform features (power, etc.).
	Features *platform.Features
	// Rejected counts arrivals refused at admission before reaching any
	// stage queue — sampled from the gauge installed by WithRejectedGauge
	// (the tenancy layer's Admit refusals); zero when no gauge is set.
	Rejected uint64
	// Config is a mutable copy of the active configuration; mechanisms may
	// edit and return it from Reconfigure.
	Config *Config
	// Root is the observation tree.
	Root *NestReport
}

// Nest returns the report at the slash-joined path ("app/video"), or nil.
func (r *Report) Nest(path string) *NestReport {
	parts := strings.Split(path, "/")
	cur := r.Root
	if cur == nil || parts[0] != cur.Name {
		return nil
	}
	for _, p := range parts[1:] {
		cur = cur.Children[p]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Mechanism is an optimization routine that inspects a Report and either
// returns a new configuration to install or nil to keep the current one
// (the paper's Mechanism::reconfigureParallelism).
type Mechanism interface {
	// Name identifies the mechanism in traces.
	Name() string
	// Reconfigure may mutate and return r.Config, or build a fresh Config,
	// or return nil for "no change". The executive normalizes the result.
	Reconfigure(r *Report) *Config
}

// Report builds an observation snapshot of the whole nest tree.
func (e *Exec) Report() *Report {
	cfg := e.cfg.Load()
	rep := &Report{
		Tenant:          e.name,
		Time:            e.Uptime(),
		Contexts:        e.contexts.N(),
		BusyContexts:    e.contexts.Busy(),
		BlockedAcquires: e.contexts.Blocked(),
		Features:        e.features,
		Config:          cfg.Clone(),
	}
	if e.rejectedFn != nil {
		rep.Rejected = e.rejectedFn()
	}
	rep.Root = e.nestReport(e.root, cfg, []string{e.root.Name})
	return rep
}

func (e *Exec) nestReport(spec *NestSpec, cfg *Config, path []string) *NestReport {
	if cfg == nil {
		cfg = DefaultConfig(spec)
	}
	alt := spec.Alt(cfg.Alt)
	nestName := strings.Join(path, "/")
	nr := &NestReport{
		Name:     spec.Name,
		Path:     nestName,
		Spec:     spec,
		AltIndex: cfg.Alt,
		AltName:  alt.Name,
	}
	for i := range alt.Stages {
		st := &alt.Stages[i]
		key := monitor.Key{Nest: nestName, Stage: st.Name}
		ss := e.mon.Stage(key)
		load, n := e.mon.Load(key)
		sojourn, _ := e.mon.Sojourn(key)
		nr.Stages = append(nr.Stages, StageReport{
			Name:          st.Name,
			Type:          st.Type,
			MinDoP:        st.MinDoP,
			MaxDoP:        st.MaxDoP,
			HasNest:       st.Nest != nil,
			Extent:        st.clampExtent(cfg.Extent(i)),
			ExecTime:      ss.ExecTime(),
			MeanExecTime:  ss.MeanExecTime(),
			Rate:          ss.Rate(),
			Load:          load,
			LoadInstances: n,
			Iterations:    ss.Iterations(),
			Completed:     ss.Completed(),
			Workers:             ss.Workers(),
			Spawned:             ss.Spawned(),
			Retired:             ss.Retired(),
			Resizes:             ss.Resizes(),
			Failures:            ss.Failures(),
			ConsecutiveFailures: ss.ConsecutiveFailures(),
			Stalls:              ss.Stalls(),
			StallsDuringDrain:   ss.StallsDuringDrain(),
			Zombies:             ss.Zombies(),
			Shed:                e.mon.Shed(key),
			QueueSojourn:        sojourn,
			Observed:            ss.Observed(),
		})
		if st.Nest != nil {
			if nr.Children == nil {
				nr.Children = make(map[string]*NestReport)
			}
			childPath := append(append([]string(nil), path...), st.Nest.Name)
			nr.Children[st.Nest.Name] = e.nestReport(st.Nest, cfg.Child(st.Nest.Name), childPath)
		}
	}
	return nr
}

// EventKind classifies executive trace events.
type EventKind int

const (
	// EventReconfigure: a new configuration was installed.
	EventReconfigure EventKind = iota
	// EventResize: one stage's worker group was resized in place (grown or
	// shrunk) without suspending the nest. A reconfiguration that changes
	// several stages' extents emits one EventResize per stage, after its
	// EventReconfigure.
	EventResize
	// EventSuspend: the executive requested top-level task suspension.
	EventSuspend
	// EventResume: top-level tasks respawned under a new configuration.
	EventResume
	// EventFinish: the application completed.
	EventFinish
	// EventError: a task or instantiation failed; the run is over.
	EventError
	// EventTaskFailure: a stage functor panicked and the stage's failure
	// policy handled it. Nest/Stage carry the stage key, Policy the action
	// taken (after any escalation, which Escalated flags), Failures and
	// ConsecFailures the stage's failure counts, and Stack the goroutine
	// stack captured at the recovery site. Under FailStop an EventError
	// with the same error follows.
	EventTaskFailure
	// EventTaskStall: an invocation overran its deadline (or outlived the
	// drain timeout, which DuringDrain flags) and the watchdog abandoned
	// its slot under the stage's failure policy. Deadline and Stalled carry
	// the limit and the overrun age; under FailStop, Err and Stack carry
	// the stall error with a full goroutine dump.
	EventTaskStall
	// EventShed: a stage's in-queue dropped items under its overload
	// policy since the last watchdog patrol. ShedItems is the delta,
	// ShedTotal the stage's cumulative count.
	EventShed
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventReconfigure:
		return "reconfigure"
	case EventResize:
		return "resize"
	case EventSuspend:
		return "suspend"
	case EventResume:
		return "resume"
	case EventFinish:
		return "finish"
	case EventError:
		return "error"
	case EventTaskFailure:
		return "task-failure"
	case EventTaskStall:
		return "task-stall"
	case EventShed:
		return "shed"
	default:
		return "unknown"
	}
}

// Event is one executive trace record.
type Event struct {
	// Time is executive uptime at emission.
	Time time.Duration
	// Kind classifies the event.
	Kind EventKind
	// Config is a copy of the configuration involved, when applicable.
	Config *Config
	// Mechanism names the deciding mechanism for reconfigurations driven
	// by the control loop.
	Mechanism string
	// Stage names the resized stage and FromExtent/ToExtent its extents
	// before and after, for EventResize. EventTaskFailure sets Stage too,
	// qualified by Nest.
	Stage      string
	FromExtent int
	ToExtent   int
	// Err carries the failure for EventError and EventTaskFailure.
	Err error
	// Nest is the failing stage's nest path for EventTaskFailure.
	Nest string
	// Policy is the failure policy applied (after escalation); Escalated
	// reports that budget or extent exhaustion forced FailStop.
	Policy    FailurePolicy
	Escalated bool
	// Failures is the stage's failure count within its rolling budget
	// window at emission (stalls share the window); ConsecFailures the
	// consecutive failures since the stage last completed an iteration.
	Failures       int
	ConsecFailures int
	// Stack is the goroutine stack captured where the panic was recovered
	// (EventTaskFailure) or a full goroutine dump taken by the watchdog
	// (EventTaskStall under FailStop).
	Stack string
	// DuringDrain marks an EventTaskStall raised by the drain watchdog;
	// Deadline is the stage's invocation deadline (zero for pure drain
	// timeouts) and Stalled how long the invocation had been running when
	// abandoned.
	DuringDrain bool
	Deadline    time.Duration
	Stalled     time.Duration
	// ShedItems and ShedTotal carry an EventShed's delta and cumulative
	// per-stage shed counts.
	ShedItems uint64
	ShedTotal uint64
}

package core

import (
	"runtime"
	"sync"
	"testing"
)

// The trace buffer's contract: delivery is in exact emission (sequence)
// order, across shards, across flushes, with concurrent emitters and a
// concurrent flusher, and nothing enqueued before the final flush is lost.
func TestTraceBufDeliversInEmissionOrder(t *testing.T) {
	const emitters, perEmitter = 8, 500
	tb := new(traceBuf)

	// Each emitter tags its events (FromExtent = emitter, ToExtent =
	// rank); per-emitter ranks must be delivered gapless and in order.
	delivered := 0
	lastRank := make([]int, emitters)
	deliver := func(ev Event) {
		delivered++
		if ev.ToExtent != lastRank[ev.FromExtent]+1 {
			t.Errorf("emitter %d: rank %d delivered after %d",
				ev.FromExtent, ev.ToExtent, lastRank[ev.FromExtent])
		}
		lastRank[ev.FromExtent] = ev.ToExtent
	}

	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tb.flush(deliver)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= perEmitter; i++ {
				tb.enqueue(Event{Kind: EventReconfigure, FromExtent: g, ToExtent: i})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
	tb.flushFinal(deliver)

	if want := emitters * perEmitter; delivered != want {
		t.Fatalf("delivered %d events, want %d", delivered, want)
	}
}

// A flush that catches one emitter mid-enqueue (sequence taken, append not
// yet visible) must hold back everything after the gap, not reorder.
func TestTraceBufHoldsBackAfterGap(t *testing.T) {
	tb := new(traceBuf)
	var got []EventKind
	deliver := func(ev Event) { got = append(got, ev.Kind) }

	tb.enqueue(Event{Kind: EventReconfigure}) // seq 1
	// Simulate an in-flight enqueue: claim seq 2 without appending.
	tb.seq.Add(1)
	tb.enqueue(Event{Kind: EventResize}) // seq 3

	tb.flush(deliver)
	if len(got) != 1 || got[0] != EventReconfigure {
		t.Fatalf("flush past a gap delivered %v, want only the pre-gap prefix", got)
	}

	// The straggler lands; both it and the held-back suffix now deliver.
	r := &tb.shards[2%traceShards]
	r.mu.Lock()
	r.buf = append(r.buf, tracedEvent{seq: 2, ev: Event{Kind: EventSuspend}})
	r.mu.Unlock()
	tb.flush(deliver)
	want := []EventKind{EventReconfigure, EventSuspend, EventResize}
	if len(got) != 3 || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestTraceBufFinalFlushWaitsForStraggler is the regression test for the
// final-flush race: an emitter that took its sequence number before the
// final flush began (a stall or failure emit landing between the last drain
// and Wait returning) but is preempted mid-enqueue for longer than a few
// scheduler yields. The old bounded sweep gave up after four passes and
// dropped both the straggler's event and every event sequenced behind the
// gap; the cut-based flush must wait it out and deliver all three in order.
func TestTraceBufFinalFlushWaitsForStraggler(t *testing.T) {
	tb := new(traceBuf)
	var got []EventKind
	deliver := func(ev Event) { got = append(got, ev.Kind) }

	tb.enqueue(Event{Kind: EventReconfigure}) // seq 1
	tb.seq.Add(1)                             // straggler claims seq 2, append pending
	tb.enqueue(Event{Kind: EventTaskStall})   // seq 3: sequenced behind the gap

	landed := make(chan struct{})
	go func() {
		// Outlast the old implementation's four Gosched passes by a wide
		// margin before completing the straggler's append.
		for i := 0; i < 1000; i++ {
			runtime.Gosched()
		}
		r := &tb.shards[2%traceShards]
		r.mu.Lock()
		r.buf = append(r.buf, tracedEvent{seq: 2, ev: Event{Kind: EventTaskFailure}})
		r.mu.Unlock()
		close(landed)
	}()

	tb.flushFinal(deliver)
	<-landed
	want := []EventKind{EventReconfigure, EventTaskFailure, EventTaskStall}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("final flush delivered %v, want %v", got, want)
	}
}

// TestTraceBufFinalFlushUnderEmitStorm runs flushFinal against emitters that
// never stop — the termination hazard of an unbounded re-collect loop. The
// cut must (a) let the flush terminate, (b) deliver every event enqueued
// before the flush began, and (c) keep per-emitter delivery a gapless
// in-order prefix even for events racing the cut. Run under -race this also
// exercises the enqueue/cut synchronization.
func TestTraceBufFinalFlushUnderEmitStorm(t *testing.T) {
	const pre = 200
	const stormers = 4
	tb := new(traceBuf)

	// Emitter 0's events all land before the flush starts.
	for i := 1; i <= pre; i++ {
		tb.enqueue(Event{Kind: EventReconfigure, FromExtent: 0, ToExtent: i})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 1; g <= stormers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
					tb.enqueue(Event{Kind: EventResize, FromExtent: g, ToExtent: i})
				}
			}
		}(g)
	}

	lastRank := make([]int, stormers+1)
	deliver := func(ev Event) {
		if ev.ToExtent != lastRank[ev.FromExtent]+1 {
			t.Errorf("emitter %d: rank %d delivered after %d",
				ev.FromExtent, ev.ToExtent, lastRank[ev.FromExtent])
		}
		lastRank[ev.FromExtent] = ev.ToExtent
	}
	tb.flushFinal(deliver)
	close(stop)
	wg.Wait()

	if lastRank[0] != pre {
		t.Fatalf("pre-flush events delivered up to rank %d, want all %d", lastRank[0], pre)
	}
}

package core

import (
	"strings"
	"testing"
)

func leafAlt(name string, stages ...StageSpec) *AltSpec {
	return &AltSpec{
		Name:   name,
		Stages: stages,
		Make: func(item any) (*AltInstance, error) {
			inst := &AltInstance{}
			for range stages {
				inst.Stages = append(inst.Stages, StageFns{
					Fn: func(w *Worker) Status { return Finished },
				})
			}
			return inst, nil
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	inner := &NestSpec{Name: "video", Alts: []*AltSpec{
		leafAlt("pipeline",
			StageSpec{Name: "read", Type: SEQ},
			StageSpec{Name: "transform", Type: PAR, MinDoP: 2},
			StageSpec{Name: "write", Type: SEQ}),
		leafAlt("fused", StageSpec{Name: "all", Type: SEQ}),
	}}
	root := &NestSpec{Name: "app", Alts: []*AltSpec{
		leafAlt("outer", StageSpec{Name: "transcode", Type: PAR, Nest: inner}),
	}}
	if err := root.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec *NestSpec
		want string
	}{
		{"empty name", &NestSpec{Name: "", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: "s"})}}, "empty name"}, //dopevet:ignore nestspec deliberately invalid spec under test
		{"no alts", &NestSpec{Name: "n"}, "no alternatives"},
		{"nil alt", &NestSpec{Name: "n", Alts: []*AltSpec{nil}}, "nil alternative"},
		{"unnamed alt", &NestSpec{Name: "n", Alts: []*AltSpec{leafAlt("", StageSpec{Name: "s"})}}, "unnamed alternative"},
		{"no stages", &NestSpec{Name: "n", Alts: []*AltSpec{{Name: "a", Make: func(any) (*AltInstance, error) { return nil, nil }}}}, "no stages"},
		{"no make", &NestSpec{Name: "n", Alts: []*AltSpec{{Name: "a", Stages: []StageSpec{{Name: "s"}}}}}, "no Make"},
		{"unnamed stage", &NestSpec{Name: "n", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: ""})}}, "unnamed stage"}, //dopevet:ignore nestspec deliberately invalid spec under test
		{"dup stage", &NestSpec{Name: "n", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: "s"}, StageSpec{Name: "s"})}}, "repeats stage"},
		{"neg dop", &NestSpec{Name: "n", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: "s", MinDoP: -1})}}, "negative DoP"},              //dopevet:ignore nestspec deliberately invalid spec under test
		{"min>max", &NestSpec{Name: "n", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: "s", MinDoP: 5, MaxDoP: 2})}}, "MinDoP > MaxDoP"}, //dopevet:ignore nestspec deliberately invalid spec under test
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateRejectsCycles(t *testing.T) {
	n := &NestSpec{Name: "n"}
	n.Alts = []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Nest: n}},
		Make:   func(any) (*AltInstance, error) { return nil, nil },
	}}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "ancestry") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestValidateRejectsDuplicateChildNests(t *testing.T) {
	child := &NestSpec{Name: "c", Alts: []*AltSpec{leafAlt("a", StageSpec{Name: "s"})}}
	n := &NestSpec{Name: "n", Alts: []*AltSpec{{
		Name: "a",
		Stages: []StageSpec{
			{Name: "s1", Nest: child},
			{Name: "s2", Nest: child},
		},
		Make: func(any) (*AltInstance, error) { return nil, nil },
	}}}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate child nests not detected: %v", err)
	}
}

func TestAltClamps(t *testing.T) {
	n := &NestSpec{Name: "n", Alts: []*AltSpec{
		leafAlt("a", StageSpec{Name: "s"}),
		leafAlt("b", StageSpec{Name: "s"}),
	}}
	if n.Alt(-5).Name != "a" {
		t.Error("negative index should clamp to first")
	}
	if n.Alt(99).Name != "b" {
		t.Error("overlarge index should clamp to last")
	}
	if n.FindAlt("b") != 1 || n.FindAlt("zzz") != -1 {
		t.Error("FindAlt wrong")
	}
}

func TestClampExtent(t *testing.T) {
	seq := StageSpec{Name: "s", Type: SEQ}
	if seq.clampExtent(8) != 1 {
		t.Error("SEQ must clamp to 1")
	}
	par := StageSpec{Name: "p", Type: PAR, MaxDoP: 6}
	if par.clampExtent(0) != 1 {
		t.Error("extent below 1 must clamp to 1")
	}
	if par.clampExtent(99) != 6 {
		t.Error("extent above MaxDoP must clamp")
	}
	unbounded := StageSpec{Name: "u", Type: PAR}
	if unbounded.clampExtent(1000) != 1000 {
		t.Error("unbounded PAR should accept any extent")
	}
}

func TestStatusAndTypeStrings(t *testing.T) {
	if Executing.String() != "EXECUTING" || Suspended.String() != "SUSPENDED" ||
		Finished.String() != "FINISHED" || Status(99).String() != "INVALID" {
		t.Error("status strings wrong")
	}
	if SEQ.String() != "SEQ" || PAR.String() != "PAR" {
		t.Error("task type strings wrong")
	}
	if EventReconfigure.String() != "reconfigure" || EventKind(99).String() != "unknown" {
		t.Error("event kind strings wrong")
	}
}

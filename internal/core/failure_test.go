package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/queue"
)

// poisonSpec is a root nest with one PAR stage draining work; items listed
// in poison panic the functor once each (the item is consumed and lost, as
// a real bad request would be).
func poisonSpec(work *queue.Queue[int], processed *atomic.Int64,
	poison map[int]bool, st StageSpec) *NestSpec {
	return &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "doall",
		Stages: []StageSpec{st},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if w.Suspending() {
						return Suspended
					}
					v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					if poison[v] {
						panic("injected-kaboom")
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					processed.Add(1)
					w.End()
					return Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func TestFailStopCapturesStack(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := poisonSpec(work, &processed, map[int]bool{3: true},
		StageSpec{Name: "worker", Type: PAR})
	var evMu sync.Mutex
	var failures []Event
	e, err := New(spec, WithContexts(2),
		WithTrace(func(ev Event) {
			if ev.Kind == EventTaskFailure {
				evMu.Lock()
				failures = append(failures, ev)
				evMu.Unlock()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 10)
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "injected-kaboom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
	// The run error must carry the recovery-site stack so the panic site is
	// attributable from logs alone.
	if !strings.Contains(err.Error(), "goroutine") || !strings.Contains(err.Error(), "failure_test.go") {
		t.Fatalf("run error lacks the captured stack:\n%v", err)
	}
	if e.Contexts().Busy() != 0 {
		t.Fatalf("context leaked after panic: busy = %d", e.Contexts().Busy())
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(failures) != 1 {
		t.Fatalf("task-failure events = %d, want 1", len(failures))
	}
	ev := failures[0]
	if ev.Nest != "app" || ev.Stage != "worker" {
		t.Fatalf("failure stage key = %s/%s", ev.Nest, ev.Stage)
	}
	if ev.Policy != FailStop || ev.Escalated {
		t.Fatalf("policy = %v escalated = %v, want plain fail-stop", ev.Policy, ev.Escalated)
	}
	if ev.Failures != 1 || ev.ConsecFailures != 1 {
		t.Fatalf("failure counts = %d/%d, want 1/1", ev.Failures, ev.ConsecFailures)
	}
	if !strings.Contains(ev.Stack, "failure_test.go") {
		t.Fatalf("event stack does not reach the panic site:\n%s", ev.Stack)
	}
	if e.TaskFailures() != 1 {
		t.Fatalf("TaskFailures = %d", e.TaskFailures())
	}
}

func TestFailRestartSurvivesPanics(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	poison := map[int]bool{5: true, 25: true, 60: true}
	spec := poisonSpec(work, &processed, poison,
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailRestart})
	e, err := New(spec, WithContexts(4),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{3}}),
		WithRestartBackoff(100*time.Microsecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const items = 100
	fillAndClose(work, items)
	if err := e.Run(); err != nil {
		t.Fatalf("restart policy surfaced a run error: %v", err)
	}
	// Poisoned items are consumed by the panicking iteration; everything
	// else must still be processed by the respawned slots.
	if got := processed.Load(); got != items-int64(len(poison)) {
		t.Fatalf("processed = %d, want %d", got, items-len(poison))
	}
	if got := e.TaskFailures(); got != uint64(len(poison)) {
		t.Fatalf("TaskFailures = %d, want %d", got, len(poison))
	}
	st := e.Report().Nest("app").Stage("worker")
	if st.Failures != uint64(len(poison)) {
		t.Fatalf("stage failures = %d, want %d", st.Failures, len(poison))
	}
	if st.ConsecutiveFailures != 0 {
		t.Fatalf("consecutive failures after recovery = %d, want 0", st.ConsecutiveFailures)
	}
	if e.Suspensions() != 0 {
		t.Fatalf("restarts caused %d suspensions", e.Suspensions())
	}
}

func TestFailRestartBudgetEscalatesToFailStop(t *testing.T) {
	work := queue.New[int](0) // fed but never closed: only escalation ends the run
	var processed atomic.Int64
	poison := make(map[int]bool)
	for i := 0; i < 10; i++ {
		poison[i] = true // every item panics
	}
	spec := poisonSpec(work, &processed, poison,
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailRestart})
	var sawEscalation atomic.Bool
	e, err := New(spec, WithContexts(2),
		WithFailureBudget(2, time.Minute),
		WithRestartBackoff(100*time.Microsecond, time.Millisecond),
		WithTrace(func(ev Event) {
			if ev.Kind == EventTaskFailure && ev.Escalated && ev.Policy == FailStop {
				sawEscalation.Store(true)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		work.Enqueue(i)
	}
	done := make(chan error, 1)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { done <- e.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "injected-kaboom") {
			t.Fatalf("err = %v, want escalated panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("budget overrun never escalated to FailStop")
	}
	if !sawEscalation.Load() {
		t.Fatal("no escalated task-failure event")
	}
	// Budget 2: failures 1 and 2 restart, the third escalates.
	if got := e.TaskFailures(); got != 3 {
		t.Fatalf("TaskFailures = %d, want 3 (budget 2 + the escalating one)", got)
	}
}

func TestFailDegradeShrinksExtentAndMechanismRegrows(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := poisonSpec(work, &processed, map[int]bool{7: true},
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailDegrade})
	var resizeMech atomic.Value
	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{4}}),
		WithTrace(func(ev Event) {
			if ev.Kind == EventResize {
				resizeMech.Store(ev.Mechanism)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// The poisoned item retires its slot: extent 4 -> 3, visible in the
	// active configuration and the worker gauge, with no suspension.
	deadline := time.Now().Add(5 * time.Second)
	for e.CurrentConfig().Extents[0] != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.CurrentConfig().Extents[0]; got != 3 {
		t.Fatalf("configured extent after degrade = %d, want 3", got)
	}
	waitForWorkers(t, e, "worker", 3)
	if mech, _ := resizeMech.Load().(string); mech != "fail-degrade" {
		t.Fatalf("resize event mechanism = %q", mech)
	}
	if e.Suspensions() != 0 {
		t.Fatalf("degrade caused %d suspensions", e.Suspensions())
	}

	// A mechanism that wants the extent back proposes it again: the shrink
	// is in the active configuration, so its proposal differs and installs
	// as an ordinary in-place grow.
	e.SetMechanism(&bumpMechanism{target: 4})
	waitForWorkers(t, e, "worker", 4)

	for i := 30; i < 60; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatalf("degrade policy surfaced a run error: %v", err)
	}
	if got := processed.Load(); got != 59 {
		t.Fatalf("processed = %d, want 59 (one poisoned item lost)", got)
	}
}

func TestFailDegradeLastSlotEscalates(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := poisonSpec(work, &processed, map[int]bool{2: true},
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailDegrade})
	var sawEscalation atomic.Bool
	e, err := New(spec, WithContexts(2),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{1}}),
		WithTrace(func(ev Event) {
			if ev.Kind == EventTaskFailure && ev.Escalated {
				sawEscalation.Store(true)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 10)
	if err := e.Run(); err == nil {
		t.Fatal("losing the last slot of a degrading stage must fail the run")
	}
	if !sawEscalation.Load() {
		t.Fatal("no escalated task-failure event")
	}
}

func TestExecutiveWideFailurePolicy(t *testing.T) {
	// The stage spec leaves OnFailure as FailDefault; WithFailurePolicy
	// supplies FailRestart for the whole executive.
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := poisonSpec(work, &processed, map[int]bool{4: true},
		StageSpec{Name: "worker", Type: PAR})
	e, err := New(spec, WithContexts(2),
		WithFailurePolicy(FailRestart),
		WithRestartBackoff(100*time.Microsecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 20)
	if err := e.Run(); err != nil {
		t.Fatalf("executive-wide restart policy surfaced: %v", err)
	}
	if processed.Load() != 19 {
		t.Fatalf("processed = %d, want 19", processed.Load())
	}
}

func TestInvalidFailurePolicyRejected(t *testing.T) {
	spec := &NestSpec{Name: "bad", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: SEQ, OnFailure: FailurePolicy(99)}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{Fn: func(w *Worker) Status { return Finished }}}}, nil
		},
	}}}
	if _, err := New(spec); err == nil || !strings.Contains(err.Error(), "failure policy") {
		t.Fatalf("invalid policy accepted: %v", err)
	}
}

func TestFailurePolicyStrings(t *testing.T) {
	for p, want := range map[FailurePolicy]string{
		FailDefault:       "default",
		FailStop:          "fail-stop",
		FailRestart:       "fail-restart",
		FailDegrade:       "fail-degrade",
		FailurePolicy(42): "invalid",
	} {
		if got := p.String(); got != want {
			t.Errorf("FailurePolicy(%d).String() = %q, want %q", p, got, want)
		}
	}
	if EventTaskFailure.String() != "task-failure" {
		t.Errorf("EventTaskFailure.String() = %q", EventTaskFailure.String())
	}
}

package core

import (
	"sync"
	"time"
)

// The Begin/End hot path takes two timestamps per monitored section, and on
// the machines the executive targets the clock read is its single largest
// cost: even the runtime's monotonic reader goes through the vDSO's seqlock
// and scaling (~30ns on a virtualized Xeon), while a raw RDTSC is under
// 10ns. When the hardware advertises an invariant TSC — which it does on
// every platform where the kernel itself selects tsc as its clocksource —
// the executive reads raw ticks and converts them with a scale calibrated
// once per process against the runtime clock. See DESIGN.md ("Hot-path
// clock").
//
// The calibration is deliberately defensive: a zero tick reader (non-amd64
// stub), a nonsensical tick rate, or ticks that do not advance all decline
// the TSC and leave the monotonic fallback in place. Durations and gaps
// derived from the scaled clock are additionally clamped nonnegative at the
// observation sites, so even a pathological counter cannot corrupt the
// monitors with negative time.
var (
	tscOnce       sync.Once
	tscOK         bool
	tscScale      float64 // nanoseconds per tick
	tscEpochTicks int64
	tscEpochUnix  int64
)

// calibrateTSC measures the tick rate against the runtime clock over a short
// spin and, if it looks sane, anchors a process-wide unix-nanosecond epoch to
// it. Runs once; ~200µs of one core, paid by the first wall-clock executive.
func calibrateTSC() {
	tscOnce.Do(func() {
		c0 := cputicks()
		if c0 == 0 {
			return
		}
		t0 := nanotime()
		var c1, t1 int64
		for {
			c1 = cputicks()
			t1 = nanotime()
			if t1-t0 >= 200_000 {
				break
			}
		}
		dn, dc := t1-t0, c1-c0
		if dc <= 0 {
			return
		}
		scale := float64(dn) / float64(dc)
		// Plausible CPU base clocks run from tens of MHz to ~10GHz.
		if scale < 0.05 || scale > 100 {
			return
		}
		tscScale = scale
		tscEpochTicks = c1
		tscEpochUnix = time.Now().UnixNano()
		tscOK = true
	})
}

// tscNow returns the current time in unix nanoseconds from the calibrated
// TSC. Only valid when tscOK.
func tscNow() int64 {
	return tscEpochUnix + int64(float64(cputicks()-tscEpochTicks)*tscScale)
}

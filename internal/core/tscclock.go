package core

import (
	"sync"
	"time"
)

// The Begin/End hot path takes two timestamps per monitored section, and on
// the machines the executive targets the clock read is its single largest
// cost: even the runtime's monotonic reader goes through the vDSO's seqlock
// and scaling (~30ns on a virtualized Xeon), while a raw RDTSC is under
// 10ns. When the hardware advertises an invariant TSC — which it does on
// every platform where the kernel itself selects tsc as its clocksource —
// the executive reads raw ticks and converts them with a scale calibrated
// once per process against the runtime clock. See DESIGN.md ("Hot-path
// clock").
//
// The calibration is deliberately defensive: a zero tick reader (non-amd64
// stub), a nonsensical tick rate, or ticks that do not advance all decline
// the TSC and leave the monotonic fallback in place. Durations and gaps
// derived from the scaled clock are additionally clamped nonnegative at the
// observation sites, so even a pathological counter cannot corrupt the
// monitors with negative time.
var (
	tscOnce       sync.Once
	tscOK         bool
	tscScale      float64 // nanoseconds per tick
	tscEpochTicks int64
	tscEpochUnix  int64
)

// calibrateTSC measures the tick rate against the runtime clock over a short
// spin and, if it looks sane, anchors a process-wide unix-nanosecond epoch to
// it. Runs once; ~200µs of one core, paid by the first wall-clock executive.
//
// Every (ticks, time) pairing is only trustworthy when nothing ran between
// the two reads: a preemption inside the scale window skews the tick rate,
// and one inside the epoch pairing bakes the length of the pause into every
// timestamp the process will ever produce as a constant offset. Each pairing
// therefore brackets the tick read between two clock reads, takes the
// tightest of eight attempts, and declines the TSC outright if even the
// tightest bracket is wide — a host that loaded calibrates against nothing,
// and the monotonic fallback is always correct.
func calibrateTSC() {
	tscOnce.Do(func() {
		if cputicks() == 0 {
			return
		}
		pair := func() (c, t, gap int64) {
			gap = 1 << 62
			for i := 0; i < 8; i++ {
				t0 := nanotime()
				ci := cputicks()
				t1 := nanotime()
				if g := t1 - t0; g < gap {
					c, t, gap = ci, (t0+t1)/2, g
				}
			}
			return
		}
		const maxBracket = 5_000 // ns; back-to-back clock reads are ~100ns
		c0, t0, g0 := pair()
		for nanotime()-t0 < 200_000 {
		}
		c1, t1, g1 := pair()
		dn, dc := t1-t0, c1-c0
		if dc <= 0 || g0 > maxBracket || g1 > maxBracket {
			return
		}
		scale := float64(dn) / float64(dc)
		// Plausible CPU base clocks run from tens of MHz to ~10GHz.
		if scale < 0.05 || scale > 100 {
			return
		}
		// Anchor the unix epoch with the same bracket discipline.
		var ec, ew int64
		gw := int64(1) << 62
		for i := 0; i < 8; i++ {
			w0 := time.Now().UnixNano()
			ci := cputicks()
			w1 := time.Now().UnixNano()
			if g := w1 - w0; g < gw {
				ec, ew, gw = ci, (w0+w1)/2, g
			}
		}
		if gw > maxBracket {
			return
		}
		tscScale = scale
		tscEpochTicks = ec
		tscEpochUnix = ew
		tscOK = true
	})
}

// tscNow returns the current time in unix nanoseconds from the calibrated
// TSC. Only valid when tscOK.
func tscNow() int64 {
	return tscEpochUnix + int64(float64(cputicks()-tscEpochTicks)*tscScale)
}

package core

import (
	"fmt"
	"time"
)

// Functor is one iteration of a task's loop body. It is invoked repeatedly
// by each worker assigned to the stage until it returns Finished or
// Suspended (the paper's TaskExecutor control-flow abstraction, Figure 4).
// Implementations bracket their CPU-intensive section with Worker.Begin and
// Worker.End and run nested loops with Worker.RunNest.
type Functor func(w *Worker) Status

// StageFns is the runtime material of one stage instance: the functor plus
// the optional callbacks of the paper's Task type.
type StageFns struct {
	// Fn is the loop body; required.
	Fn Functor
	// Load reports the stage's current workload (typically its in-queue
	// occupancy); optional.
	Load func() float64
	// Shed reports how many items the stage's in-queue has dropped under
	// its overload policy (typically queue.Queue.Shed); optional. The
	// executive aggregates it into StageReport.Shed and emits EventShed
	// when it grows.
	Shed func() uint64
	// Sojourn reports the stage's smoothed in-queue wait in seconds
	// (typically queue.Queue.MeanSojourn); optional. The executive
	// aggregates it into StageReport.QueueSojourn, which the what-if
	// profiler reads.
	Sojourn func() float64
	// Init runs once before any worker executes Fn (the paper's InitCB);
	// optional.
	Init func()
	// Fini runs once after every worker of the stage has exited (the
	// paper's FiniCB, used to propagate drain sentinels downstream);
	// optional.
	Fini func()
}

// AltInstance is a fresh instantiation of an alternative: one StageFns per
// stage, index-aligned with AltSpec.Stages.
type AltInstance struct {
	Stages []StageFns
}

// StageSpec statically describes one stage of an alternative.
type StageSpec struct {
	// Name identifies the stage for monitoring and configuration; must be
	// unique within the alternative.
	Name string
	// Type is SEQ or PAR.
	Type TaskType
	// MinDoP is the smallest extent at which the stage speeds up over
	// sequential execution (Table 4's "Inner DoPmin extent for speedup").
	// Zero means 1. Configurations below MinDoP are legal but unhelpful;
	// mechanisms may consult it.
	MinDoP int
	// MaxDoP caps the extent; zero means unlimited.
	MaxDoP int
	// Nest, when non-nil, declares that this stage's functor runs the given
	// nested loop via Worker.RunNest.
	Nest *NestSpec
	// OnFailure selects how the executive reacts when this stage's functor
	// panics; FailDefault defers to the executive-wide policy
	// (WithFailurePolicy), which defaults to FailStop.
	OnFailure FailurePolicy
	// FailureBudget and FailureWindow bound FailRestart for this stage:
	// more than FailureBudget failures within a rolling FailureWindow
	// escalate it to FailStop. Zero means the executive default
	// (DefaultFailureBudget per DefaultFailureWindow, or WithFailureBudget).
	FailureBudget int
	FailureWindow time.Duration
	// Deadline bounds one invocation's Begin..End CPU section. The
	// executive's watchdog treats an overrun as a stall and applies
	// OnFailure (see stall.go). Zero defers to the executive-wide
	// WithDeadline default, which itself defaults to none. Functors of
	// deadlined stages should watch Worker.Done() (or Context().Done())
	// inside long loops so a cancelled invocation can stop cooperatively
	// instead of leaking a goroutine.
	Deadline time.Duration
}

// AltSpec is one alternative parallelization of a loop (one ParDescriptor).
type AltSpec struct {
	// Name identifies the alternative, e.g. "pipeline" or "fused".
	Name string
	// Stages lists the interacting tasks; the first is the master task,
	// whose completion status the loop reports (§3.2 step 4).
	Stages []StageSpec
	// Make instantiates fresh functors and connecting state (queues) for
	// one run of the loop over the given work item. item is nil for the
	// root loop. Make is called once per parent worker per iteration for
	// nested loops, so it must be safe for concurrent use.
	Make func(item any) (*AltInstance, error)
}

// NestSpec is the static description of one parallelized loop together with
// its alternative parallelizations (the paper's TaskDescriptor with its
// choice of ParDescriptors).
type NestSpec struct {
	// Name identifies the loop; must be unique among siblings.
	Name string
	// Alts are the alternative parallelizations; at least one.
	Alts []*AltSpec
}

// Validate checks structural invariants of the spec tree: non-empty names,
// at least one alternative per nest, at least one stage per alternative,
// functor factories present, and name uniqueness among stages and nested
// loops.
func (n *NestSpec) Validate() error {
	return n.validate(map[*NestSpec]bool{})
}

func (n *NestSpec) validate(seen map[*NestSpec]bool) error {
	if n == nil {
		return fmt.Errorf("core: nil nest spec")
	}
	if seen[n] {
		return fmt.Errorf("core: nest %q appears in its own ancestry", n.Name)
	}
	seen[n] = true
	defer delete(seen, n)
	if n.Name == "" {
		return fmt.Errorf("core: nest with empty name")
	}
	if len(n.Alts) == 0 {
		return fmt.Errorf("core: nest %q has no alternatives", n.Name)
	}
	for _, alt := range n.Alts {
		if alt == nil {
			return fmt.Errorf("core: nest %q has a nil alternative", n.Name)
		}
		if alt.Name == "" {
			return fmt.Errorf("core: nest %q has an unnamed alternative", n.Name)
		}
		if len(alt.Stages) == 0 {
			return fmt.Errorf("core: alternative %q of nest %q has no stages", alt.Name, n.Name)
		}
		if alt.Make == nil {
			return fmt.Errorf("core: alternative %q of nest %q has no Make", alt.Name, n.Name)
		}
		names := make(map[string]bool, len(alt.Stages))
		childNames := make(map[string]bool)
		for _, st := range alt.Stages {
			if st.Name == "" {
				return fmt.Errorf("core: alternative %q of nest %q has an unnamed stage", alt.Name, n.Name)
			}
			if names[st.Name] {
				return fmt.Errorf("core: alternative %q of nest %q repeats stage %q", alt.Name, n.Name, st.Name)
			}
			names[st.Name] = true
			if st.MinDoP < 0 || st.MaxDoP < 0 {
				return fmt.Errorf("core: stage %q has negative DoP bound", st.Name)
			}
			if st.MaxDoP > 0 && st.MinDoP > st.MaxDoP {
				return fmt.Errorf("core: stage %q has MinDoP > MaxDoP", st.Name)
			}
			if !st.OnFailure.valid() {
				return fmt.Errorf("core: stage %q has invalid failure policy %d", st.Name, st.OnFailure)
			}
			if st.FailureBudget < 0 || st.FailureWindow < 0 {
				return fmt.Errorf("core: stage %q has negative failure budget or window", st.Name)
			}
			if st.Deadline < 0 {
				return fmt.Errorf("core: stage %q has negative deadline", st.Name)
			}
			if st.Nest != nil {
				if childNames[st.Nest.Name] {
					return fmt.Errorf("core: alternative %q of nest %q nests %q twice", alt.Name, n.Name, st.Nest.Name)
				}
				childNames[st.Nest.Name] = true
				if err := st.Nest.validate(seen); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Alt returns the i-th alternative, clamping i into range so a stale
// configuration can never index out of bounds.
func (n *NestSpec) Alt(i int) *AltSpec {
	if i < 0 {
		i = 0
	}
	if i >= len(n.Alts) {
		i = len(n.Alts) - 1
	}
	return n.Alts[i]
}

// FindAlt returns the index of the alternative with the given name, or -1.
func (n *NestSpec) FindAlt(name string) int {
	for i, a := range n.Alts {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// clampExtent applies the stage's type and DoP bounds to a requested extent.
func (s *StageSpec) clampExtent(e int) int {
	if s.Type == SEQ {
		return 1
	}
	if e < 1 {
		e = 1
	}
	if s.MaxDoP > 0 && e > s.MaxDoP {
		e = s.MaxDoP
	}
	return e
}

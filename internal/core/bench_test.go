package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkBeginEnd measures the cost of one monitored CPU section — the
// Task::begin/Task::end pair: a context acquire/release, two clock reads,
// and the monitor update. The paper's §8.2 claims total monitoring
// overhead below 1% "even for monitoring each and every instance of all
// the parallel tasks"; divide this number by a task's section length to
// check (e.g. ~300 ns against a 100 µs section is 0.3%).
func BenchmarkBeginEnd(b *testing.B) {
	benchBeginEnd(b, 1)
}

// BenchmarkBeginEndContended runs the same monitored section on eight PAR
// workers over eight contexts, so every iteration crosses the token pool
// and the stage monitor concurrently — the regime the sharded freelists
// and per-slot accumulators exist for.
func BenchmarkBeginEndContended(b *testing.B) {
	benchBeginEnd(b, 8)
}

func benchBeginEnd(b *testing.B, workers int) {
	b.ReportAllocs()
	typ := SEQ
	if workers > 1 {
		typ = PAR
	}
	// Each slot counts its own quota in a padded plain counter so the
	// harness does not add a shared atomic RMW to every measured iteration.
	quota := (b.N + workers - 1) / workers
	cnt := make([]struct {
		n int
		_ [56]byte
	}, workers)
	spec := &NestSpec{Name: "bench", Alts: []*AltSpec{{
		Name:   "loop",
		Stages: []StageSpec{{Name: "worker", Type: typ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					c := &cnt[w.Slot()]
					if c.n >= quota {
						return Finished
					}
					c.n++
					w.Begin() //dopevet:ignore suspendcheck benchmark runs under a static configuration; statuses are irrelevant
					w.End()
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec,
		WithContexts(workers),
		WithInitialConfig(&Config{Extents: []int{workers}}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorkerLoop measures the full executive loop overhead per
// iteration (functor dispatch + status checks) without a monitored section.
func BenchmarkWorkerLoop(b *testing.B) {
	var iters atomic.Int64
	spec := &NestSpec{Name: "bench", Alts: []*AltSpec{{
		Name:   "loop",
		Stages: []StageSpec{{Name: "worker", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if int(iters.Add(1)) > b.N {
						return Finished
					}
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNestInstantiation measures the cost of one nested-loop
// instantiation (Make + spawn + join) — the price of a reconfigurable
// per-item inner loop.
func BenchmarkNestInstantiation(b *testing.B) {
	inner := &NestSpec{Name: "inner", Alts: []*AltSpec{{
		Name:   "one",
		Stages: []StageSpec{{Name: "body", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			done := false
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if done {
						return Finished
					}
					done = true
					return Executing
				},
			}}}, nil
		},
	}}}
	var iters atomic.Int64
	spec := &NestSpec{Name: "bench", Alts: []*AltSpec{{
		Name:   "loop",
		Stages: []StageSpec{{Name: "outer", Type: SEQ, Nest: inner}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if int(iters.Add(1)) > b.N {
						return Finished
					}
					if _, err := w.RunNest(inner, nil); err != nil {
						b.Error(err)
						return Finished
					}
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReportBuild measures one monitoring snapshot over a two-level
// spec — the control loop's per-tick cost.
func BenchmarkReportBuild(b *testing.B) {
	spec := transcodeSpec()
	e, err := New(spec, WithContexts(24))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Report() == nil {
			b.Fatal("nil report")
		}
	}
	b.StopTimer()
	// The executive was never started; give its channels nothing to do.
	_ = time.Now()
}

//go:build amd64

package core

// cputicks reads the CPU's time-stamp counter; implemented in tsc_amd64.s.
// Returns raw ticks, converted to nanoseconds by the calibration in
// tscclock.go.
func cputicks() int64
